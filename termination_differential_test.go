package activerules_test

// Differential soundness suite for the tier-2 termination analysis:
// every CycleDischarged verdict — a cyclic triggering graph accepted on
// the strength of per-SCC certificates — is cross-validated against
// exhaustive execution-graph exploration. The explorer is ground truth
// for the initial state it starts from, so a discharged rule set whose
// exploration finds a cycle is an outright soundness bug
// (DISAGREEMENT), while the converse direction only checks that
// genuinely live cycles are never upgraded out of TermUnknown.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"activerules/internal/analysis"
	"activerules/internal/engine"
	"activerules/internal/execgraph"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
	"activerules/internal/workload"
)

// shapeScript returns a user transition that provokes each appended
// cyclic shape: the countdown needs an updated(v) on cd_cnt, the drain
// a delete on dr_pool, the convergent update an off-fixpoint write.
func shapeScript(shapes []string) string {
	script := ""
	for _, s := range shapes {
		if script != "" {
			script += "; "
		}
		switch s {
		case "countdown":
			script += "update cd_cnt set v = 5 where id = 1"
		case "drain":
			script += "delete from dr_pool where id = 0"
		case "converge":
			script += "update cv_keyd set v = 0 where id = 1"
		}
	}
	return script
}

// terminationWorkloads enumerates the generated configurations: seeds
// crossed with every shape combination, random part forced acyclic so
// each config's only cyclic SCCs are the hand-shaped ones and the
// expected verdict is exactly TermCycleDischarged.
func terminationWorkloads() []workload.Config {
	combos := [][]string{
		{"countdown"},
		{"drain"},
		{"converge"},
		{"countdown", "drain", "converge"},
	}
	var cfgs []workload.Config
	for seed := int64(1); seed <= 6; seed++ {
		for _, shapes := range combos {
			cfgs = append(cfgs, workload.Config{
				Seed:  seed * 31,
				Rules: 3 + int(seed%3), Tables: 3,
				Acyclic: true, WriteFanout: 2,
				UpdateFrac: 0.3, DeleteFrac: 0.1,
				ConditionFrac: 0.5, PriorityDensity: 0.2,
				CyclicShapes: shapes,
			})
		}
	}
	return cfgs
}

// TestTerminationDifferentialGenerated sweeps the generated
// configurations. For each: the analysis must land on
// TermCycleDischarged (the shapes are the only cycles and every one
// carries a certificate), and a bounded exploration from a transition
// that provokes every shape must terminate — zero tolerated
// disagreements. Suite-wide it asserts all three certificate kinds
// actually appeared, so a regression that silently stops discharging a
// kind cannot pass vacuously.
func TestTerminationDifferentialGenerated(t *testing.T) {
	cfgs := terminationWorkloads()
	if len(cfgs) < 24 {
		t.Fatalf("suite has %d configs, want >= 24", len(cfgs))
	}
	kinds := map[string]int{}
	for i, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("w%02d-seed%d-%d-shapes", i, cfg.Seed, len(cfg.CyclicShapes)), func(t *testing.T) {
			g, err := workload.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			term := analysis.New(g.Set, nil).Termination()
			if term.Status != analysis.TermCycleDischarged {
				t.Fatalf("status = %v, want cycle-discharged; report:\n%s",
					term.Status, analysis.ReportTermination(term))
			}
			for _, sv := range term.SCCs {
				if !sv.Discharged {
					t.Fatalf("SCC %d {%v} not discharged", sv.ID, sv.Members)
				}
				for _, step := range sv.Certificate {
					kinds[step.Kind]++
				}
			}

			// Ground truth: from a state that provokes every shape (and
			// a couple of random-table ops for the acyclic part), every
			// execution path must be finite.
			db := workload.SeedDatabase(g.Schema, 3)
			script := workload.UserScript(g.Schema, rand.New(rand.NewSource(cfg.Seed+1)), 1)
			script += "; " + shapeScript(cfg.CyclicShapes)
			e := engine.New(g.Set, db, engine.Options{})
			if _, err := e.ExecUser(script); err != nil {
				t.Fatalf("user script: %v", err)
			}
			res, err := execgraph.ExploreParallel(e, execgraph.Options{MaxStates: 6000, MaxDepth: 500})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if res.CycleDetected {
				t.Errorf("DISAGREEMENT: tier-2 discharged every cycle but the explorer found an infinite execution")
			}
			if res.BoundExceeded {
				t.Errorf("exploration hit its bound (%d states); raise MaxStates so the check is conclusive",
					res.StatesExplored)
			}
		})
	}
	for _, k := range []string{"ranking", "delete-only", "convergent-update"} {
		if kinds[k] == 0 {
			t.Errorf("suite never exercised a %s certificate", k)
		}
	}
}

// TestTerminationDifferentialFixtures cross-validates the shipped
// cyclic fixtures: the three discharged ones must explore to
// termination, and flipflop — the undischargeable control — must both
// stay TermUnknown and be refuted by an explorer-witnessed cycle.
func TestTerminationDifferentialFixtures(t *testing.T) {
	cases := []struct {
		dir       string
		script    string
		status    analysis.TerminationStatus
		kind      string // certificate kind expected on SCC 1
		liveCycle bool   // explorer must witness an infinite execution
	}{
		{"countdown", "update cd_cnt set v = 7 where id = 0", analysis.TermCycleDischarged, "ranking", false},
		{"drain", "delete from dr_pool where id = 0", analysis.TermCycleDischarged, "delete-only", false},
		{"converge", "update cv_keyd set v = 0 where id = 1", analysis.TermCycleDischarged, "convergent-update", false},
		{"flipflop", "update fl set v = 1 where id = 0", analysis.TermUnknown, "", true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			sch, set := loadFixtureSet(t, c.dir)
			term := analysis.New(set, nil).Termination()
			if term.Status != c.status {
				t.Fatalf("status = %v, want %v", term.Status, c.status)
			}
			if c.kind != "" {
				if len(term.SCCs) == 0 || len(term.SCCs[0].Certificate) == 0 {
					t.Fatalf("no certificate on SCC 1:\n%s", analysis.ReportTermination(term))
				}
				if got := term.SCCs[0].Certificate[0].Kind; got != c.kind {
					t.Fatalf("certificate kind = %s, want %s", got, c.kind)
				}
			}
			// Refinement must not upgrade an undischargeable live cycle
			// either: its conditions are satisfiable, so nothing prunes.
			if c.liveCycle {
				if analysis.New(set, nil).SetRefinement(true).Termination().Guaranteed {
					t.Fatal("refined analysis certified the live flip/flop cycle")
				}
			}

			db := workload.SeedDatabase(sch, 3)
			e := engine.New(set, db, engine.Options{})
			if _, err := e.ExecUser(c.script); err != nil {
				t.Fatalf("user script: %v", err)
			}
			res, err := execgraph.ExploreParallel(e, execgraph.Options{MaxStates: 6000, MaxDepth: 500})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if c.liveCycle {
				if !res.CycleDetected {
					t.Fatal("explorer should witness the flip/flop cycle")
				}
				return
			}
			if res.CycleDetected {
				t.Error("DISAGREEMENT: discharged fixture has an explorer-witnessed infinite execution")
			}
			if res.BoundExceeded {
				t.Errorf("exploration inconclusive at %d states", res.StatesExplored)
			}
		})
	}
}

// TestTerminationNegativesStayBlocked pins the interference check:
// downstream-replenisher shapes that tier-2 refuses to discharge must
// stay TermUnknown. For the ranking replenisher the refusal is
// engine-refutable — the explorer finds an infinite execution, so a
// discharge-order induction that quantified only over the SCC would
// accept it and be wrong. The delete-only replenisher documents the
// other flavor of conservatism: under the engine's net-effect
// transition semantics the constant same-row refill cancels against
// the drain's delete and this concrete instance terminates, but tier-2
// does not model net-effect cancellation, so the analysis stays
// blocked (which is sound — Unknown never disagrees with anything).
func TestTerminationNegativesStayBlocked(t *testing.T) {
	cases := []struct {
		name, schema, rules, script string
		live                        bool // explorer must refute termination
	}{
		{
			name:   "ranking-reset-by-insert",
			schema: "table t (id int, v int)",
			rules: `
create rule bump on t
when updated(v)
then update t set v = v - 1 where v > 0

create rule echo on t
when updated(v)
then insert into t values (9, 5)
`,
			script: "update t set v = 3 where id = 0",
			live:   true,
		},
		{
			name:   "delete-only-refill-in-scope",
			schema: "table dr_pool (id int, v int)",
			rules: `
create rule dr_drain on dr_pool
when deleted, inserted
then delete from dr_pool where v >= 0

create rule dr_refill on dr_pool
when deleted
then insert into dr_pool values (9, 5)
`,
			script: "delete from dr_pool where id = 0",
			live:   false,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sch, err := schema.Parse(c.schema)
			if err != nil {
				t.Fatal(err)
			}
			defs, err := ruledef.Parse(c.rules)
			if err != nil {
				t.Fatal(err)
			}
			set, err := rules.NewSet(sch, defs)
			if err != nil {
				t.Fatal(err)
			}
			term := analysis.New(set, nil).Termination()
			if term.Status != analysis.TermUnknown {
				t.Fatalf("status = %v, want unknown (replenisher must block the discharge)", term.Status)
			}
			db := storage.NewDB(sch)
			tbl := sch.TableNames()[0]
			db.MustInsert(tbl, storage.IntV(0), storage.IntV(0))
			e := engine.New(set, db, engine.Options{})
			if _, err := e.ExecUser(c.script); err != nil {
				t.Fatal(err)
			}
			res, err := execgraph.ExploreParallel(e, execgraph.Options{MaxStates: 3000, MaxDepth: 300})
			if err != nil {
				t.Fatal(err)
			}
			if c.live && res.Terminates() {
				t.Error("explorer terminated: the blocked shape was not actually live, weakening the negative suite")
			}
		})
	}
}

// TestTerminationReportStableAcrossParallelism renders the termination
// report and its JSON encoding from scratch at explorer parallelism 0,
// 2, and 8 and requires byte-identical output plus identical
// exploration verdicts. Certificates come from map-ordered discharge
// attempts internally, so this is the tripwire for iteration-order
// nondeterminism leaking into user-facing surfaces.
func TestTerminationReportStableAcrossParallelism(t *testing.T) {
	for _, dir := range []string{"countdown", "drain", "converge", "flipflop"} {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			sch, set := loadFixtureSet(t, dir)
			var wantReport, wantJSON string
			var wantFPs [][32]byte
			for _, par := range []int{0, 2, 8} {
				term := analysis.New(set, nil).Termination()
				report := analysis.ReportTermination(term)
				js, err := json.Marshal(term.SCCs)
				if err != nil {
					t.Fatal(err)
				}
				e := engine.New(set, workload.SeedDatabase(sch, 3), engine.Options{})
				if _, err := e.ExecUser(fmt.Sprintf("delete from %s where id = 2", sch.TableNames()[0])); err != nil {
					t.Fatal(err)
				}
				res, err := execgraph.ExploreParallel(e, execgraph.Options{
					MaxStates: 3000, MaxDepth: 300, Parallelism: par,
				})
				if err != nil {
					t.Fatal(err)
				}
				if wantReport == "" {
					wantReport, wantJSON, wantFPs = report, string(js), res.FinalFingerprints()
					continue
				}
				if report != wantReport {
					t.Errorf("parallelism %d: report drifted\ngot:\n%s\nwant:\n%s", par, report, wantReport)
				}
				if string(js) != wantJSON {
					t.Errorf("parallelism %d: SCC JSON drifted\ngot: %s\nwant: %s", par, js, wantJSON)
				}
				fps := res.FinalFingerprints()
				if len(fps) != len(wantFPs) {
					t.Errorf("parallelism %d: %d final states, want %d", par, len(fps), len(wantFPs))
					continue
				}
				for i := range fps {
					if fps[i] != wantFPs[i] {
						t.Errorf("parallelism %d: final fingerprint %d differs", par, i)
					}
				}
			}
		})
	}
}
