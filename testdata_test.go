package activerules_test

// The shipped sample applications in testdata/ must stay loadable and
// keep their documented verdicts (they appear in the README and serve as
// CLI examples).

import (
	"os"
	"strings"
	"testing"

	"activerules"
)

// loadCerts applies a rulecheck-format certification file to a system,
// mirroring cmd/rulecheck's loader (kept simple here: the test only
// needs the three directives).
func loadCerts(t *testing.T, sys *activerules.System, path string) (*activerules.System, *activerules.Certification) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cert := activerules.NewCertification()
	out := sys
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "commute":
			cert.CertifyCommutes(f[1], f[2])
		case "discharge":
			cert.DischargeRule(f[1])
		case "order":
			out, err = out.WithOrdering([2]string{f[1], f[2]})
			if err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown directive %q in %s", f[0], path)
		}
	}
	return out, cert
}

func TestTestdataBank(t *testing.T) {
	sys, err := activerules.LoadFiles("testdata/bank/schema.sdl", "testdata/bank/rules.srl")
	if err != nil {
		t.Fatal(err)
	}
	// Without certifications the set is flagged (hold vs purge conflict).
	if sys.Analyze(nil).AllGuaranteed() {
		t.Fatal("bank rules should need certifications")
	}
	sys2, cert := loadCerts(t, sys, "testdata/bank/certs.txt")
	rep := sys2.Analyze(cert)
	if !rep.AllGuaranteed() {
		t.Fatalf("certified bank rules should pass:\n%s", rep)
	}
	// The documented execution: seed accounts, overdraw bob, hold placed.
	db := sys2.NewDB()
	eng := sys2.NewEngine(db, activerules.EngineOptions{})
	seed, err := os.ReadFile("testdata/bank/seed.sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecUser(string(seed)); err != nil {
		t.Fatal(err)
	}
	eng.Commit()
	ops, err := os.ReadFile("testdata/bank/ops.sql")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecUser(string(ops)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Assert(); err != nil {
		t.Fatal(err)
	}
	if db.Table("holds").Len() != 1 {
		t.Errorf("holds = %d, want 1", db.Table("holds").Len())
	}
}

func TestTestdataPowernet(t *testing.T) {
	sys, err := activerules.LoadFiles("testdata/powernet/schema.sdl", "testdata/powernet/rules.srl")
	if err != nil {
		t.Fatal(err)
	}
	// The propagation cycle is real, but tier 2 discharges it with
	// convergent-update certificates — no user certification needed.
	term := sys.Analyze(nil).Termination
	if term.Status != activerules.TermCycleDischarged {
		t.Fatalf("termination status = %s, want cycle-discharged", term.Status)
	}
	if len(term.SCCs) != 1 || !term.SCCs[0].Discharged || len(term.SCCs[0].Certificate) != 2 {
		t.Fatalf("want one discharged SCC with two certificates, got %+v", term.SCCs)
	}
	for _, step := range term.SCCs[0].Certificate {
		if step.Kind != "convergent-update" {
			t.Errorf("rule %s: certificate kind = %s, want convergent-update", step.Rule, step.Kind)
		}
	}
	sys2, cert := loadCerts(t, sys, "testdata/powernet/certs.txt")
	rep := sys2.Analyze(cert)
	if !rep.Termination.Guaranteed {
		t.Error("discharged powernet should terminate")
	}
	if !rep.Confluence.Guaranteed {
		t.Errorf("certified powernet should be confluent:\n%s", rep)
	}
}
