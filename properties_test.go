package activerules_test

// Property-based invariants (testing/quick) over randomized rule sets:
// the algebraic laws the paper's constructions rely on, checked across
// the whole stack.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"activerules/internal/analysis"
	"activerules/internal/engine"
	"activerules/internal/execgraph"
	"activerules/internal/rules"
	"activerules/internal/workload"
)

// rulesRuleAlias keeps the quick property signatures readable.
type rulesRuleAlias = rules.Rule

func quickCfg(max int) *quick.Config { return &quick.Config{MaxCount: max} }

// randomSet generates a compiled rule set from quick-supplied knobs.
func randomSet(seed int64, nRules, nTables uint8, prio float64) *workload.Generated {
	g, err := workload.Generate(workload.Config{
		Seed:  seed,
		Rules: int(nRules%8) + 2, Tables: int(nTables%4) + 2,
		UpdateFrac: 0.35, DeleteFrac: 0.15, ConditionFrac: 0.3,
		PriorityDensity: prio - float64(int(prio)), ObservableFrac: 0.2,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// Property: Commute is reflexive and symmetric (Lemma 6.1's conditions
// include the symmetric closure, so the verdict cannot depend on
// argument order).
func TestPropCommuteSymmetric(t *testing.T) {
	f := func(seed int64, nRules, nTables uint8, prio float64) bool {
		g := randomSet(seed, nRules, nTables, prio)
		a := analysis.New(g.Set, nil)
		rs := g.Set.Rules()
		for _, ri := range rs {
			if ok, _ := a.Commute(ri, ri); !ok {
				return false
			}
			for _, rj := range rs {
				ab, _ := a.Commute(ri, rj)
				ba, _ := a.Commute(rj, ri)
				if ab != ba {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// Property: the priority relation is a strict partial order — transitive
// and irreflexive — and Ordered/Unordered partition distinct pairs.
func TestPropPriorityPartialOrder(t *testing.T) {
	f := func(seed int64, nRules uint8, prio float64) bool {
		g := randomSet(seed, nRules, 3, prio)
		set := g.Set
		rs := set.Rules()
		for _, a := range rs {
			if set.Higher(a, a) {
				return false
			}
			for _, b := range rs {
				if a != b && set.Ordered(a, b) == set.Unordered(a, b) {
					return false
				}
				for _, c := range rs {
					if set.Higher(a, b) && set.Higher(b, c) && !set.Higher(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// Property: Choose returns exactly the triggered rules with no
// higher-priority triggered rule (the Section 3 definition).
func TestPropChooseDefinition(t *testing.T) {
	f := func(seed int64, nRules uint8, prio float64, mask uint16) bool {
		g := randomSet(seed, nRules, 3, prio)
		set := g.Set
		var triggered []*analysisRule
		for i, r := range set.Rules() {
			if mask&(1<<uint(i%16)) != 0 {
				triggered = append(triggered, r)
			}
		}
		chosen := set.Choose(triggered)
		inChosen := map[string]bool{}
		for _, r := range chosen {
			inChosen[r.Name] = true
		}
		for _, ri := range triggered {
			blocked := false
			for _, rj := range triggered {
				if rj != ri && set.Higher(rj, ri) {
					blocked = true
				}
			}
			if blocked == inChosen[ri.Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

type analysisRule = rulesRuleAlias

// Property: Sig is monotone in T' — adding tables never shrinks the
// significant set (Definition 7.1's seed grows, and the closure is
// monotone in its seed).
func TestPropSigMonotone(t *testing.T) {
	f := func(seed int64, nRules, nTables uint8) bool {
		g := randomSet(seed, nRules, nTables, 0.3)
		a := analysis.New(g.Set, nil)
		tables := g.Schema.TableNames()
		small := a.Sig(tables[:1])
		large := a.Sig(tables)
		inLarge := map[string]bool{}
		for _, r := range large {
			inLarge[r.Name] = true
		}
		for _, r := range small {
			if !inLarge[r.Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// Property: any single engine run's final database is among the final
// states found by exhaustive exploration, for every strategy.
func TestPropRunWithinExploration(t *testing.T) {
	f := func(seed int64, nRules uint8, stratSeed int64) bool {
		g, err := workload.Generate(workload.Config{
			Seed: seed, Rules: int(nRules%4) + 2, Tables: 3, Acyclic: true,
			UpdateFrac: 0.3, DeleteFrac: 0.15, ConditionFrac: 0.3,
		})
		if err != nil {
			return false
		}
		db := workload.SeedDatabase(g.Schema, 2)
		e := engine.New(g.Set, db, engine.Options{})
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		if _, err := e.ExecUser(workload.UserScript(g.Schema, rng, 2)); err != nil {
			return false
		}
		res, err := execgraph.Explore(e, execgraph.Options{MaxStates: 20000, MaxDepth: 300})
		if err != nil || !res.Terminates() {
			return true // inconclusive instance; property vacuous
		}
		for _, strat := range []engine.Strategy{
			engine.FirstByName{}, engine.LastByName{}, engine.NewSeeded(stratSeed),
		} {
			run := e.Clone()
			run.SetStrategy(strat)
			if _, err := run.Assert(); err != nil {
				return false
			}
			if _, ok := res.FinalDBs[run.DB().Fingerprint()]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// Property: FirstByName runs are exactly reproducible.
func TestPropDeterministicReplay(t *testing.T) {
	f := func(seed int64, nRules uint8) bool {
		g, err := workload.Generate(workload.Config{
			Seed: seed, Rules: int(nRules%5) + 2, Tables: 3, Acyclic: true,
			UpdateFrac: 0.3, ConditionFrac: 0.3,
		})
		if err != nil {
			return false
		}
		run := func() string {
			db := workload.SeedDatabase(g.Schema, 2)
			e := engine.New(g.Set, db, engine.Options{})
			rng := rand.New(rand.NewSource(seed))
			if _, err := e.ExecUser(workload.UserScript(g.Schema, rng, 2)); err != nil {
				return "err"
			}
			if _, err := e.Assert(); err != nil {
				return "err"
			}
			return e.StateFingerprint()
		}
		return run() == run()
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}
