module activerules

go 1.22
