package activerules

import (
	"activerules/internal/analysis"
	"activerules/internal/replica"
	"activerules/internal/shard"
)

// Sharding and replication: the §7 horizontal-scale step. The analyzer
// proves a maximal partition of the schema's tables into groups with
// pairwise-disjoint Sig(T') (Theorem 7.2 then makes rule processing on
// different groups commute), a ShardGroup serves that partition with
// one engine+WAL per shard, and a ReplicaSource streams each leader's
// durable WAL bytes to Followers. See DESIGN.md §10 for the soundness
// argument.

// Re-exported sharding and replication types.
type (
	// ShardPlan is the maximal analysis-proven partition of the
	// schema's tables into independently servable groups, with the
	// rulelint-style blockers that prevent a finer partition. Its
	// String and MarshalJSON forms are deterministic.
	ShardPlan = analysis.ShardPlan
	// PlanShard is one group of a ShardPlan.
	PlanShard = analysis.ShardGroup
	// ShardBlocker names one reason a ShardPlan cannot be finer.
	ShardBlocker = analysis.ShardBlocker
	// ShardGroup runs one serving engine (with its own WAL, breaker,
	// and checkpoint/drain) per effective shard of the plan, routing
	// each request to the shard owning its tables.
	ShardGroup = shard.Group
	// ShardError reports a request that cannot be confined to one
	// shard; the request was not executed.
	ShardError = shard.ShardError
	// ReplicaSource streams a leader server's durable WAL bytes to
	// followers over TCP.
	ReplicaSource = replica.Source
	// ReplicaSourceConfig tunes a ReplicaSource.
	ReplicaSourceConfig = replica.SourceConfig
	// Follower replays a leader's WAL stream into a local directory
	// and read-only database, serving health and a state fingerprint;
	// Promote turns it into a full server after a leader failure.
	Follower = replica.Follower
	// FollowerConfig tunes a Follower.
	FollowerConfig = replica.FollowerConfig
	// FollowerHealth is a follower's health view.
	FollowerHealth = replica.FollowerHealth
)

// ShardPlan computes the maximal analysis-proven shard partition for
// this system. The plan is deterministic: equal systems yield
// byte-identical plans at every analysis parallelism.
func (s *System) ShardPlan() *ShardPlan {
	return s.Analyzer(nil).ShardPlan()
}

// NewShardGroup opens one serving engine per shard of this system's
// plan under dir, coalesced to at most n shards (n <= 0 means as many
// as the plan allows). cfg applies to every shard.
func (s *System) NewShardGroup(dir string, n int, cfg ServeConfig) (*ShardGroup, error) {
	if s.compiled {
		cfg.Engine.Compiled = true
	}
	return shard.Open(s.schema, s.defs, dir, n, cfg)
}

// NewReplicaSource starts streaming the leader's durable WAL to
// followers connecting at addr (e.g. "127.0.0.1:0").
func NewReplicaSource(leader *Server, addr string, cfg ReplicaSourceConfig) (*ReplicaSource, error) {
	return replica.NewSource(leader, addr, cfg)
}

// NewFollower starts a follower replicating from the source at addr
// into dir, using this system's schema.
func (s *System) NewFollower(dir, addr string, cfg FollowerConfig) (*Follower, error) {
	return replica.NewFollower(s.schema, dir, addr, cfg)
}
