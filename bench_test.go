package activerules_test

// The benchmark harness regenerating the measured experiments of
// EXPERIMENTS.md (E1, E2, E3, E6 scaling; E4 ground-truth throughput;
// E5 baseline comparison; F1 diamond validation). The paper itself
// reports no measurements (implementation was future work, Section 9);
// these benchmarks characterize the reproduction and record the rows
// that EXPERIMENTS.md cites.
//
// Run everything:  go test -bench=. -benchmem .
// One experiment:  go test -bench=BenchmarkE1 .

import (
	"fmt"
	"math/rand"
	"testing"

	"activerules"
	"activerules/internal/analysis"
	"activerules/internal/baseline"
	"activerules/internal/engine"
	"activerules/internal/execgraph"
	"activerules/internal/workload"
)

// activerulesLoad aliases the facade loader for the engine benches.
var activerulesLoad = activerules.Load

// benchSet generates a compiled rule set for benchmarking, failing the
// benchmark on generator errors.
func benchSet(b *testing.B, cfg workload.Config) *workload.Generated {
	b.Helper()
	g, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- E1: termination analysis scaling (Theorem 5.1) --------------------

func BenchmarkE1Termination(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		for _, density := range []struct {
			name   string
			tables int
		}{
			{"sparse", n}, // many tables: few triggering edges
			{"dense", 4},  // few tables: many triggering edges
		} {
			b.Run(fmt.Sprintf("rules=%d/%s", n, density.name), func(b *testing.B) {
				g := benchSet(b, workload.Config{
					Seed: 11, Rules: n, Tables: density.tables,
					UpdateFrac: 0.3, DeleteFrac: 0.15, ConditionFrac: 0.3,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := analysis.New(g.Set, nil)
					v := a.Termination()
					_ = v.Guaranteed
				}
			})
		}
	}
}

// --- E2: confluence analysis scaling (Definition 6.5) ------------------

func BenchmarkE2Confluence(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		for _, prio := range []float64{0, 0.3, 0.9} {
			b.Run(fmt.Sprintf("rules=%d/prio=%.1f", n, prio), func(b *testing.B) {
				g := benchSet(b, workload.Config{
					Seed: 13, Rules: n, Tables: n / 2, Acyclic: true,
					UpdateFrac: 0.3, DeleteFrac: 0.1, ConditionFrac: 0.3,
					PriorityDensity: prio,
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := analysis.New(g.Set, nil)
					v := a.Confluence()
					_ = v.Guaranteed
				}
			})
		}
	}
}

// --- E3: Sig(T') and partial confluence scaling (Definition 7.1) -------

func BenchmarkE3PartialConfluence(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		for _, nt := range []int{1, 4} {
			b.Run(fmt.Sprintf("rules=%d/tables=%d", n, nt), func(b *testing.B) {
				g := benchSet(b, workload.Config{
					Seed: 17, Rules: n, Tables: n / 2, Acyclic: true,
					UpdateFrac: 0.3, DeleteFrac: 0.1, PriorityDensity: 0.2,
				})
				targets := g.Schema.TableNames()[:nt]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := analysis.New(g.Set, nil)
					v := a.PartialConfluence(targets)
					_ = v.Guaranteed()
				}
			})
		}
	}
}

// --- E4: ground-truth model checking throughput -------------------------

func BenchmarkE4GroundTruth(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			g := benchSet(b, workload.Config{
				Seed: 19, Rules: n, Tables: 4, Acyclic: true,
				UpdateFrac: 0.35, DeleteFrac: 0.15, ConditionFrac: 0.3,
			})
			db := workload.SeedDatabase(g.Schema, 2)
			e := engine.New(g.Set, db, engine.Options{})
			rng := rand.New(rand.NewSource(23))
			if _, err := e.ExecUser(workload.UserScript(g.Schema, rng, 2)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := execgraph.Explore(e, execgraph.Options{MaxStates: 50000, MaxDepth: 400})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.StatesExplored
			}
		})
	}
}

// --- E5: paper analysis vs HH91-style baseline --------------------------

func BenchmarkE5Baseline(b *testing.B) {
	g := benchSet(b, workload.Config{
		Seed: 29, Rules: 64, Tables: 32, Acyclic: true,
		UpdateFrac: 0.4, PriorityDensity: 0.6,
	})
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := baseline.Analyze(g.Set)
			_ = v.UniqueFixedPoint()
		}
	})
	b.Run("paper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := analysis.New(g.Set, nil).Confluence()
			_ = v.Guaranteed
		}
	})
}

// --- E6: engine throughput ----------------------------------------------

// BenchmarkE6EngineCascade measures rule-processing steps through a
// linear triggering chain of the given depth.
func BenchmarkE6EngineCascade(b *testing.B) {
	for _, depth := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			// A chain: rule k moves a token from t(k) to t(k+1).
			schemaSrc := ""
			rulesSrc := ""
			for i := 0; i <= depth; i++ {
				schemaSrc += fmt.Sprintf("table t%d (v int)\n", i)
			}
			for i := 0; i < depth; i++ {
				rulesSrc += fmt.Sprintf(
					"create rule r%02d on t%d when inserted then insert into t%d select v from inserted\n\n",
					i, i, i+1)
			}
			sys, err := activerulesLoad(schemaSrc, rulesSrc)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := sys.NewDB()
				eng := sys.NewEngine(db, engine.Options{})
				if _, err := eng.ExecUser("insert into t0 values (1)"); err != nil {
					b.Fatal(err)
				}
				res, err := eng.Assert()
				if err != nil {
					b.Fatal(err)
				}
				if res.Fired != depth {
					b.Fatalf("fired = %d, want %d", res.Fired, depth)
				}
			}
		})
	}
}

// BenchmarkE6EngineWideTransition measures processing of a set-oriented
// transition: one rule handling n inserted tuples at once.
func BenchmarkE6EngineWideTransition(b *testing.B) {
	for _, width := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			sys, err := activerulesLoad(
				"table src (v int)\ntable dst (v int)",
				"create rule copy on src when inserted then insert into dst select v from inserted")
			if err != nil {
				b.Fatal(err)
			}
			script := "insert into src values (0)"
			for i := 1; i < width; i++ {
				script += fmt.Sprintf(", (%d)", i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := sys.NewDB()
				eng := sys.NewEngine(db, engine.Options{})
				if _, err := eng.ExecUser(script); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Assert(); err != nil {
					b.Fatal(err)
				}
				if db.Table("dst").Len() != width {
					b.Fatal("copy incomplete")
				}
			}
		})
	}
}

// --- Ablation: explorer state memoization --------------------------------

// BenchmarkAblationExplorerMemo quantifies the memoization design choice
// of the model checker: without cross-path state sharing the diamond-
// shaped execution graphs of commuting rules explode combinatorially.
func BenchmarkAblationExplorerMemo(b *testing.B) {
	// n independent commuting inserters: 2^n states memoized, n! paths
	// without memoization.
	const n = 6
	schemaSrc := "table t (v int)\n"
	rulesSrc := ""
	for i := 0; i < n; i++ {
		schemaSrc += fmt.Sprintf("table d%d (v int)\n", i)
		rulesSrc += fmt.Sprintf("create rule r%d on t when inserted then insert into d%d values (1)\n\n", i, i)
	}
	sys, err := activerulesLoad(schemaSrc, rulesSrc)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *activerules.Engine {
		eng := sys.NewEngine(sys.NewDB(), engine.Options{})
		if _, err := eng.ExecUser("insert into t values (1)"); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	for _, memo := range []bool{true, false} {
		name := "memo"
		if !memo {
			name = "nomemo"
		}
		b.Run(name, func(b *testing.B) {
			eng := mk()
			for i := 0; i < b.N; i++ {
				res, err := execgraph.Explore(eng, execgraph.Options{
					MaxStates: 1 << 20, MaxDepth: 100, DisableMemo: !memo,
				})
				if err != nil || len(res.FinalDBs) != 1 {
					b.Fatalf("exploration broken: %v %d", err, len(res.FinalDBs))
				}
			}
		})
	}
}

// --- Parallel explorer ---------------------------------------------------

// BenchmarkExploreParallel compares the sequential memoized DFS against
// the frontier-based parallel explorer on a branching generated
// workload. Both must report identical verdicts (checked per iteration);
// the parallel rows characterize worker-pool scaling on the host.
func BenchmarkExploreParallel(b *testing.B) {
	g := benchSet(b, workload.Config{
		Seed: 4, Rules: 7, Tables: 3, Acyclic: true, WriteFanout: 2,
		UpdateFrac: 0.4, DeleteFrac: 0.1, ConditionFrac: 0.2, TransRefFrac: 0.4,
	})
	db := workload.SeedDatabase(g.Schema, 3)
	e := engine.New(g.Set, db, engine.Options{})
	rng := rand.New(rand.NewSource(5))
	if _, err := e.ExecUser(workload.UserScript(g.Schema, rng, 6)); err != nil {
		b.Fatal(err)
	}
	opts := execgraph.Options{TrackObservables: true, MaxStates: 50000}
	base, err := execgraph.Explore(e, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := execgraph.Explore(e, opts)
			if err != nil || res.StatesExplored != base.StatesExplored {
				b.Fatalf("exploration broken: %v", err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			popts := opts
			popts.Parallelism = workers
			for i := 0; i < b.N; i++ {
				res, err := execgraph.ExploreParallel(e, popts)
				if err != nil || res.StatesExplored != base.StatesExplored {
					b.Fatalf("exploration broken: %v", err)
				}
			}
		})
	}
}

// --- F1: commutativity diamond validation -------------------------------

func BenchmarkF1CommutativityDiamond(b *testing.B) {
	// Two statically-commutative rules, both triggered by the same
	// insert: the diamond of Figure 1, validated per iteration.
	sys, err := activerulesLoad(
		"table t (v int)\ntable a (v int)\ntable c (v int)",
		`
create rule ra on t when inserted then insert into a select v from inserted
create rule rc on t when inserted then insert into c select v from inserted
`)
	if err != nil {
		b.Fatal(err)
	}
	eng := sys.NewEngine(sys.NewDB(), engine.Options{})
	if _, err := eng.ExecUser("insert into t values (1)"); err != nil {
		b.Fatal(err)
	}
	eng.BeginAssert()
	a := analysis.New(sys.Rules(), nil)
	ri, rj := sys.Rules().Rule("ra"), sys.Rules().Rule("rc")
	if ok, _ := a.Commute(ri, rj); !ok {
		b.Fatal("pair should commute")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e1 := eng.Clone()
		e1.Consider(ri)
		e1.Consider(rj)
		e2 := eng.Clone()
		e2.Consider(rj)
		e2.Consider(ri)
		if e1.TRStateFingerprint() != e2.TRStateFingerprint() {
			b.Fatal("diamond broke")
		}
	}
}

// --- Refined analysis: cost and yield of condition-aware refinement ----

// BenchmarkRefinedAnalysis measures the abstract-interpretation overhead
// of -refine against the raw syntactic analysis on the same workloads,
// and reports how many triggering edges the refinement prunes. The
// ValueFloor=60 variants generate writes provably above every condition
// bound, the regime where pruning pays off.
func BenchmarkRefinedAnalysis(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		for _, floor := range []int{0, 60} {
			cfg := workload.Config{
				Seed: 11, Rules: n, Tables: 4,
				UpdateFrac: 0.3, DeleteFrac: 0.1, ConditionFrac: 0.9,
				TransRefFrac: 0.6, ValueFloor: floor,
			}
			g := benchSet(b, cfg)
			b.Run(fmt.Sprintf("rules=%d/floor=%d/raw", n, floor), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a := analysis.New(g.Set, nil)
					v := a.Termination()
					_ = a.Confluence()
					_ = v.Guaranteed
				}
			})
			b.Run(fmt.Sprintf("rules=%d/floor=%d/refined", n, floor), func(b *testing.B) {
				pruned := 0
				for i := 0; i < b.N; i++ {
					a := analysis.New(g.Set, nil).SetRefinement(true)
					v := a.Termination()
					_ = a.Confluence()
					pruned = len(v.PrunedEdges)
				}
				b.ReportMetric(float64(pruned), "edges-pruned")
			})
		}
	}
}
