package activerules_test

// Every example application is run end-to-end as part of the test suite
// (each main validates its own expectations and exits non-zero on
// failure). Skipped in -short mode: each run compiles a binary.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := []struct {
		dir  string
		want string // substring the example prints on success
	}{
		{"./examples/quickstart", "quickstart OK"},
		{"./examples/constraints", "constraints OK"},
		{"./examples/powernet", "powernet OK"},
		{"./examples/derived", "derived OK"},
		{"./examples/interactive", "interactive OK"},
		{"./examples/restricted", "restricted OK"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(strings.TrimPrefix(ex.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", ex.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex.dir, err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Errorf("%s: success marker %q missing:\n%s", ex.dir, ex.want, out)
			}
		})
	}
}
