// Package activerules is a static analyzer and execution engine for
// database production rules, reproducing Aiken, Widom & Hellerstein,
// "Behavior of Database Production Rules: Termination, Confluence, and
// Observable Determinism" (SIGMOD 1992).
//
// The package analyzes Starburst-style rule sets for four properties:
//
//   - Termination (Section 5): is rule processing guaranteed to
//     terminate after any transition in any database state?
//   - Confluence (Section 6): is the final database state independent of
//     the order in which unordered triggered rules are considered?
//   - Partial confluence (Section 7): confluence restricted to a set of
//     important tables.
//   - Observable determinism (Section 8): is the order and content of
//     observable actions (SELECT, ROLLBACK) order-independent?
//
// All analyses are conservative. When a property is not guaranteed, the
// verdict isolates the responsible rules and states criteria —
// commutativity certifications, priority orderings, cycle discharges —
// that, if satisfied by the user, guarantee the property (the
// interactive process of Sections 5 and 6.4).
//
// Alongside the analyzer, the package includes a complete substrate: an
// in-memory relational store, an SQL subset, a rule engine implementing
// the Section 2 processing semantics (net-effect transitions, transition
// tables, priorities, untriggering, rollback), and an execution-graph
// model checker that exhaustively explores all processing orders on
// small instances — the ground truth used to validate the analyzer.
//
// # Quick start
//
//	sys, err := activerules.Load(schemaText, rulesText)
//	rep := sys.Analyze(nil)
//	fmt.Print(rep)                     // all four verdicts
//
//	db := sys.NewDB()
//	eng := sys.NewEngine(db, activerules.EngineOptions{})
//	eng.ExecUser("insert into account values (1, 'ann', 100.0)")
//	res, err := eng.Assert()           // run rule processing
package activerules

import (
	"context"
	"fmt"
	"os"
	"strings"

	"activerules/internal/analysis"
	"activerules/internal/engine"
	"activerules/internal/execgraph"
	"activerules/internal/faultinject"
	"activerules/internal/par"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
)

// Re-exported core types. The internal packages carry the
// implementation; these aliases are the public surface.
type (
	// Schema is an immutable database schema.
	Schema = schema.Schema
	// Op is one database modification operation: (I,t), (D,t), (U,t.c).
	Op = schema.Op
	// OpSet is a set of operations.
	OpSet = schema.OpSet

	// Definition is the authored form of a rule.
	Definition = rules.Definition
	// TriggerSpec is one triggering operation of a rule.
	TriggerSpec = rules.TriggerSpec
	// Rule is a compiled rule with its derived sets.
	Rule = rules.Rule
	// RuleSet is a compiled, validated rule set with its priorities.
	RuleSet = rules.Set

	// Analyzer runs the four static analyses.
	Analyzer = analysis.Analyzer
	// Certification records user-verified facts for the analyses.
	Certification = analysis.Certification
	// TerminationVerdict is the Section 5 result.
	TerminationVerdict = analysis.TerminationVerdict
	// TerminationStatus is the three-valued tiered termination outcome.
	TerminationStatus = analysis.TerminationStatus
	// SCCVerdict is the tier-2 verdict for one cyclic strong component.
	SCCVerdict = analysis.SCCVerdict
	// DischargeStep is one tier-2 discharge certificate.
	DischargeStep = analysis.DischargeStep
	// DischargeFailure explains why an SCC could not be discharged.
	DischargeFailure = analysis.DischargeFailure
	// ConfluenceVerdict is the Section 6 result.
	ConfluenceVerdict = analysis.ConfluenceVerdict
	// PartialConfluenceVerdict is the Section 7 result.
	PartialConfluenceVerdict = analysis.PartialConfluenceVerdict
	// ObservableVerdict is the Section 8 result.
	ObservableVerdict = analysis.ObservableVerdict
	// Violation is one failed Confluence Requirement check.
	Violation = analysis.Violation
	// NoncommuteReason cites a Lemma 6.1 condition.
	NoncommuteReason = analysis.NoncommuteReason
	// RestrictedVerdict is the restricted-user-operations result (the
	// Section 9 extension).
	RestrictedVerdict = analysis.RestrictedVerdict
	// TriggeringGraph is the Section 5 graph TG_R.
	TriggeringGraph = analysis.TriggeringGraph
	// Incremental caches per-partition verdicts across rule-set edits
	// (the Section 9 incremental-analysis extension).
	Incremental = analysis.Incremental
	// IncrementalResult reports one incremental analysis call.
	IncrementalResult = analysis.IncrementalResult
	// RepairPlan is the outcome of the automated Section 6.4 loop.
	RepairPlan = analysis.RepairPlan
	// PrunedEdge is a triggering edge removed by condition-aware
	// refinement, with its justification.
	PrunedEdge = analysis.PrunedEdge
	// RefinementDischarge is a dead rule discharged by refinement.
	RefinementDischarge = analysis.RefinementDischarge
	// CommuteUpgrade is a pair upgraded to "commutes" by refinement.
	CommuteUpgrade = analysis.CommuteUpgrade
	// LintResult is the sorted diagnostics of the rulelint engine.
	LintResult = analysis.LintResult
	// Diagnostic is one lint finding with a stable RL0xx code.
	Diagnostic = analysis.Diagnostic
	// Severity classifies a lint diagnostic.
	Severity = analysis.Severity

	// DB is an in-memory database instance.
	DB = storage.DB
	// Value is a dynamically typed SQL value.
	Value = storage.Value
	// Tuple is a row with a stable identity.
	Tuple = storage.Tuple
	// TupleID is the stable identity of a tuple.
	TupleID = storage.TupleID

	// Engine executes rule processing (Section 2 semantics).
	Engine = engine.Engine
	// EngineOptions configure an Engine.
	EngineOptions = engine.Options
	// EngineResult summarizes one assertion point's rule processing.
	EngineResult = engine.Result
	// ObservableEvent is one environment-visible action.
	ObservableEvent = engine.ObservableEvent
	// TraceEvent is one step of rule processing (EngineOptions.Trace).
	TraceEvent = engine.TraceEvent
	// Strategy picks among simultaneously eligible rules.
	Strategy = engine.Strategy
	// Mutator receives primitive data modifications; wrap it via
	// EngineOptions.WrapMutator for fault injection.
	Mutator = engine.Mutator

	// ExecError reports a failed rule consideration; the consideration
	// has been fully undone and processing is resumable.
	ExecError = engine.ExecError
	// PanicError is a recovered rule-processing panic.
	PanicError = engine.PanicError
	// LivelockError is a runtime nontermination witness: a repeated
	// execution-graph state with the repeating rule cycle.
	LivelockError = engine.LivelockError
	// CancelledError reports that AssertContext's context was done.
	CancelledError = engine.CancelledError

	// FaultInjector deterministically fails chosen storage mutations
	// (testing/chaos; see EngineOptions.WrapMutator).
	FaultInjector = faultinject.Injector
	// FaultConfig selects which mutations a FaultInjector fails.
	FaultConfig = faultinject.Config

	// ExploreOptions bound the execution-graph model checker.
	ExploreOptions = execgraph.Options
	// ExploreResult reports reachable final states, cycles, and streams.
	ExploreResult = execgraph.Result
)

// Value constructors, re-exported.
var (
	// Null is the SQL null value.
	Null = storage.Null

	// ErrMaxSteps is returned by Engine.Assert when rule processing
	// exceeds its step budget (possible nontermination). A
	// *LivelockError — the same verdict with a concrete witness —
	// satisfies errors.Is against it.
	ErrMaxSteps = engine.ErrMaxSteps

	// ErrInjectedFault is the sentinel wrapped by every fault a
	// FaultInjector injects.
	ErrInjectedFault = faultinject.ErrInjected
)

// Lint severities, re-exported.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

// Termination statuses, re-exported.
const (
	TermUnknown         = analysis.TermUnknown
	TermAcyclic         = analysis.TermAcyclic
	TermCycleDischarged = analysis.TermCycleDischarged
)

// ExplainSCC renders the tier-2 verdict for the cyclic component with
// the given 1-based ID, or an error message if no such component exists.
func ExplainSCC(v *TerminationVerdict, id int) string { return analysis.ExplainSCC(v, id) }

// RenderLintText renders lint diagnostics in compiler style; file labels
// the rules source.
func RenderLintText(lr *LintResult, file string) string { return analysis.RenderLintText(lr, file) }

// RenderLintJSON renders lint diagnostics as stable indented JSON.
func RenderLintJSON(lr *LintResult, file string) ([]byte, error) {
	return analysis.RenderLintJSON(lr, file)
}

// NewFaultInjector returns an armed deterministic fault injector; pass
// its Wrap method as EngineOptions.WrapMutator.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultinject.New(cfg) }

// IntV returns an integer value.
func IntV(i int64) Value { return storage.IntV(i) }

// FloatV returns a floating-point value.
func FloatV(f float64) Value { return storage.FloatV(f) }

// StringV returns a string value.
func StringV(s string) Value { return storage.StringV(s) }

// BoolV returns a boolean value.
func BoolV(b bool) Value { return storage.BoolV(b) }

// NewCertification returns an empty certification set.
func NewCertification() *Certification { return analysis.NewCertification() }

// NewIncremental returns an incremental analyzer honoring cert (nil for
// none).
func NewIncremental(cert *Certification) *Incremental { return analysis.NewIncremental(cert) }

// FirstByName is the deterministic default strategy.
func FirstByName() Strategy { return engine.FirstByName{} }

// LastByName is the reverse deterministic strategy.
func LastByName() Strategy { return engine.LastByName{} }

// SeededStrategy picks uniformly at random, reproducibly for a seed.
func SeededStrategy(seed int64) Strategy { return engine.NewSeeded(seed) }

// System bundles a schema with a compiled rule set — everything the
// analyses and the engine need.
type System struct {
	schema *Schema
	rules  *RuleSet
	defs   []Definition // authored definitions, kept for Without

	// analysisPar is the resolved worker count applied to every
	// analyzer the system constructs; 0 (never set) means the
	// sequential legacy path.
	analysisPar int

	// analysisRefine enables condition-aware refinement on every
	// analyzer the system constructs.
	analysisRefine bool

	// compiled selects the execution mode of every engine this system
	// constructs (NewEngine, OpenDurable, NewServer, NewShardGroup):
	// true — the default — runs the compiled hot path (closure-compiled
	// conditions and actions, delta-driven triggering); false runs the
	// reference interpreter. The two are observably identical; the
	// interpreter remains available as the differential oracle.
	compiled bool
}

// SetCompiled selects compiled (true, the default) or interpreted
// execution for engines this system constructs afterwards. Explicitly
// requesting EngineOptions.Compiled overrides a false setting.
func (s *System) SetCompiled(on bool) { s.compiled = on }

// SetAnalysisParallelism sets the worker count used by the analyzers
// this system constructs (see Analyzer.SetParallelism): 0 means one
// worker per CPU, 1 (the default) the sequential legacy path, n > 1
// exactly n workers. Verdicts are identical at every parallelism.
func (s *System) SetAnalysisParallelism(n int) { s.analysisPar = par.Workers(n) }

// SetAnalysisRefinement enables (or disables) condition-aware refinement
// — predicate abstraction that prunes statically infeasible triggering
// edges and noncommutativity conflicts — on every analyzer this system
// constructs. Off by default: the refined verdicts are strictly no more
// conservative, but their reports carry extra sections.
func (s *System) SetAnalysisRefinement(on bool) { s.analysisRefine = on }

// Load parses a schema definition and a rule definition file and
// compiles them together.
func Load(schemaSrc, rulesSrc string) (*System, error) {
	sch, err := schema.Parse(schemaSrc)
	if err != nil {
		return nil, err
	}
	defs, err := ruledef.Parse(rulesSrc)
	if err != nil {
		return nil, err
	}
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		return nil, err
	}
	return &System{schema: sch, rules: set, defs: defs, compiled: true}, nil
}

// LoadFiles is Load reading from files.
func LoadFiles(schemaPath, rulesPath string) (*System, error) {
	sb, err := os.ReadFile(schemaPath)
	if err != nil {
		return nil, err
	}
	rb, err := os.ReadFile(rulesPath)
	if err != nil {
		return nil, err
	}
	return Load(string(sb), string(rb))
}

// FromDefinitions compiles programmatically constructed definitions.
func FromDefinitions(sch *Schema, defs []Definition) (*System, error) {
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		return nil, err
	}
	return &System{schema: sch, rules: set, defs: defs, compiled: true}, nil
}

// MustLoad is Load, panicking on error. Intended for tests and examples.
func MustLoad(schemaSrc, rulesSrc string) *System {
	sys, err := Load(schemaSrc, rulesSrc)
	if err != nil {
		panic(err)
	}
	return sys
}

// ParseSchema parses a schema definition.
func ParseSchema(src string) (*Schema, error) { return schema.Parse(src) }

// ParseDefinitions parses rule definitions without compiling them.
func ParseDefinitions(src string) ([]Definition, error) { return ruledef.Parse(src) }

// Schema returns the system's schema.
func (s *System) Schema() *Schema { return s.schema }

// Rules returns the compiled rule set.
func (s *System) Rules() *RuleSet { return s.rules }

// WithOrdering returns a new System with additional (higher, lower)
// priority pairs — Approach 2 of the interactive confluence process
// (Section 6.4).
func (s *System) WithOrdering(pairs ...[2]string) (*System, error) {
	ns, err := s.rules.WithOrdering(pairs...)
	if err != nil {
		return nil, err
	}
	return &System{schema: s.schema, rules: ns, defs: s.defs,
		analysisPar: s.analysisPar, analysisRefine: s.analysisRefine,
		compiled: s.compiled}, nil
}

// Without returns a new System with the named rules deactivated
// (Starburst's deactivate operation): the remaining definitions are
// recompiled with priority references to removed rules dropped. It
// supports "what if this rule were disabled" exploration in the
// interactive environment.
func (s *System) Without(names ...string) (*System, error) {
	drop := map[string]bool{}
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		if s.rules.Rule(n) == nil {
			return nil, fmt.Errorf("activerules: Without: unknown rule %q", n)
		}
		drop[n] = true
	}
	var kept []Definition
	for _, def := range s.defs {
		if drop[strings.ToLower(def.Name)] {
			continue
		}
		nd := def
		nd.Precedes = filterNames(def.Precedes, drop)
		nd.Follows = filterNames(def.Follows, drop)
		kept = append(kept, nd)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("activerules: Without: no rules remain")
	}
	return FromDefinitions(s.schema, kept)
}

func filterNames(in []string, drop map[string]bool) []string {
	var out []string
	for _, n := range in {
		if !drop[strings.ToLower(n)] {
			out = append(out, n)
		}
	}
	return out
}

// Analyzer returns an analyzer honoring the certifications (nil for
// none).
func (s *System) Analyzer(cert *Certification) *Analyzer {
	a := analysis.New(s.rules, cert)
	if s.analysisPar > 0 {
		a.SetParallelism(s.analysisPar)
	}
	if s.analysisRefine {
		a.SetRefinement(true)
	}
	return a
}

// Lint runs the rulelint diagnostics engine (dead rules, self-
// deactivating updates, shadowed priorities, dead-store columns,
// infeasible cycles) with the given certifications (nil for none).
func (s *System) Lint(cert *Certification) *LintResult {
	return s.Analyzer(cert).Lint()
}

// NewDB returns an empty database over the system's schema.
func (s *System) NewDB() *DB { return storage.NewDB(s.schema) }

// NewEngine returns a rule-processing engine over db, compiled unless
// SetCompiled(false) selected the interpreter.
func (s *System) NewEngine(db *DB, opts EngineOptions) *Engine {
	if s.compiled {
		opts.Compiled = true
	}
	return engine.New(s.rules, db, opts)
}

// Explore exhaustively model-checks all rule-processing orders from the
// engine's current state (Section 4 execution graphs). The engine is not
// mutated.
func Explore(e *Engine, opts ExploreOptions) (*ExploreResult, error) {
	return execgraph.Explore(e, opts)
}

// ExploreContext is Explore with cancellation: the context is checked at
// every state visit, bounding the wall-clock time of large explorations.
func ExploreContext(ctx context.Context, e *Engine, opts ExploreOptions) (*ExploreResult, error) {
	return execgraph.ExploreContext(ctx, e, opts)
}

// ExploreParallel is Explore with a worker pool (opts.Parallelism
// workers over a memo table of opts.MemoShards shards): verdicts are
// bit-identical to Explore's, and witnesses are chosen deterministically
// (shortest-then-lexicographically-least schedule), so output is
// run-to-run stable.
func ExploreParallel(e *Engine, opts ExploreOptions) (*ExploreResult, error) {
	return execgraph.ExploreParallel(e, opts)
}

// ExploreParallelContext is ExploreParallel with cancellation.
func ExploreParallelContext(ctx context.Context, e *Engine, opts ExploreOptions) (*ExploreResult, error) {
	return execgraph.ExploreParallelContext(ctx, e, opts)
}

// Report bundles all four verdicts for one rule set.
type Report struct {
	Termination *TerminationVerdict
	Confluence  *ConfluenceVerdict
	Observable  *ObservableVerdict
	// Partial holds partial-confluence verdicts for the table sets
	// requested via AnalyzeTables, keyed by the joined table list.
	Partial map[string]*PartialConfluenceVerdict
}

// Analyze runs termination, confluence, and observable-determinism
// analysis with the given certifications (nil for none).
func (s *System) Analyze(cert *Certification) *Report {
	a := s.Analyzer(cert)
	return &Report{
		Termination: a.Termination(),
		Confluence:  a.Confluence(),
		Observable:  a.ObservableDeterminism(),
		Partial:     map[string]*PartialConfluenceVerdict{},
	}
}

// AnalyzeTables extends a report with partial confluence w.r.t. tables.
func (s *System) AnalyzeTables(rep *Report, cert *Certification, tables ...string) *PartialConfluenceVerdict {
	v := s.Analyzer(cert).PartialConfluence(tables)
	rep.Partial[strings.Join(v.Tables, ",")] = v
	return v
}

// UserOp constructors for AnalyzeRestricted: the operations a restricted
// workload may perform.

// UserInsert is the user operation (I, table).
func UserInsert(table string) Op { return schema.Insert(table) }

// UserDelete is the user operation (D, table).
func UserDelete(table string) Op { return schema.Delete(table) }

// UserUpdate is the user operation (U, table.column).
func UserUpdate(table, column string) Op { return schema.Update(table, column) }

// AnalyzeRestricted analyzes the three properties under the assumption
// that user transactions only perform the given operations — the
// "Restricted user operations" extension of Section 9. Unreachable rules
// are excluded from every check.
func (s *System) AnalyzeRestricted(cert *Certification, ops ...Op) *RestrictedVerdict {
	return s.Analyzer(cert).AnalyzeRestricted(schema.NewOpSet(ops...))
}

// RestrictedReport renders a restricted verdict in the report format.
func RestrictedReport(v *RestrictedVerdict) string { return analysis.ReportRestricted(v) }

// PartitionReport partitions the rule set into independent groups (the
// Section 9 incremental-analysis extension), analyzes confluence per
// partition, and renders the result.
func (s *System) PartitionReport(cert *Certification) string {
	a := s.Analyzer(cert)
	parts := a.Partition()
	_, per := a.PartitionedConfluence()
	return analysis.ReportPartition(parts, per)
}

// TriggeringGraphDOT renders the triggering graph in Graphviz DOT
// format, with the rules of any surviving cycles highlighted.
func (s *System) TriggeringGraphDOT(cert *Certification) string {
	a := s.Analyzer(cert)
	v := a.Termination()
	return analysis.BuildTriggeringGraph(s.rules).DOT(v)
}

// StatsReport renders descriptive statistics of the rule set: triggering
// graph shape, priority coverage, commutativity profile, partitions.
func (s *System) StatsReport(cert *Certification) string {
	return analysis.ReportStats(s.Analyzer(cert).Stats())
}

// ExplainPair renders the commutativity and Confluence Requirement story
// for one pair of rules — the interactive environment's answer to "why
// is this pair flagged?".
func (s *System) ExplainPair(cert *Certification, a, b string) (string, error) {
	ra, rb := s.rules.Rule(a), s.rules.Rule(b)
	if ra == nil || rb == nil {
		return "", fmt.Errorf("activerules: ExplainPair: unknown rule (%q, %q)", a, b)
	}
	return analysis.ExplainPair(s.Analyzer(cert), ra, rb), nil
}

// AutoRepairReport runs the automated Section 6.4 loop and renders the
// resulting plan.
func (s *System) AutoRepairReport(cert *Certification) string {
	plan, err := s.Analyzer(cert).AutoRepair(0)
	if err != nil {
		return "AUTO-REPAIR: " + err.Error() + "\n"
	}
	return analysis.ReportRepairPlan(plan)
}

// String renders the full report in the interactive environment's
// format.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString(analysis.ReportTermination(r.Termination))
	sb.WriteString(analysis.ReportConfluence(r.Confluence))
	for _, key := range sortedKeys(r.Partial) {
		sb.WriteString(analysis.ReportPartialConfluence(r.Partial[key]))
	}
	sb.WriteString(analysis.ReportObservable(r.Observable))
	return sb.String()
}

// AllGuaranteed reports whether every analyzed property is guaranteed.
func (r *Report) AllGuaranteed() bool {
	ok := r.Termination.Guaranteed && r.Confluence.Guaranteed && r.Observable.Guaranteed()
	for _, v := range r.Partial {
		ok = ok && v.Guaranteed()
	}
	return ok
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// small n; insertion sort keeps imports minimal
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Version identifies the library release.
const Version = "1.0.0"
