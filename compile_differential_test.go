package activerules_test

// The compiled/interpreted differential battery: the compiled hot path
// (internal/compile, delta-driven triggering) and the reference
// interpreter must be observably indistinguishable — byte-identical
// trace streams, identical results and observables, identical final
// state hashes, and the same error taxonomy down to the message, on
// generated workloads, the shipped examples, and handwritten corner
// cases (rollback, livelock witnesses, untriggering, runtime errors).
// Any disagreement is a bug in the compiled path by definition: the
// interpreter is the oracle.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"activerules"
	"activerules/internal/workload"
)

// twinOptions builds one mode's engine options; strategies carry
// per-engine state (the seeded one owns an RNG), so each engine gets a
// fresh instance.
type twinOptions struct {
	maxSteps int
	strategy func() activerules.Strategy
}

func (o twinOptions) engineOpts(trace *[]string) activerules.EngineOptions {
	opts := activerules.EngineOptions{MaxSteps: o.maxSteps}
	if o.strategy != nil {
		opts.Strategy = o.strategy()
	}
	if trace != nil {
		opts.Trace = func(ev activerules.TraceEvent) { *trace = append(*trace, ev.String()) }
	}
	return opts
}

// modeRun is everything observable about one engine run.
type modeRun struct {
	trace       []string
	userResults string // rendered ExecUser results per segment
	userErr     string
	assertErrs  []string // one per assertion point: "<nil>" or "%T: %v"
	considered  []int
	fired       []int
	rolledBack  []bool
	firedByRule []map[string]int
	observables []string
	stateHash   [32]byte
	finalDB     string
	livelocks   []string // rendered livelock witnesses, in order
}

// runMode executes seed + script segments (split on "assert" markers by
// the caller into segs) through one engine mode and records everything
// observable.
func runMode(t *testing.T, sys *activerules.System, compiled bool, seed string, segs []string, opts twinOptions) modeRun {
	t.Helper()
	sys.SetCompiled(compiled)
	var run modeRun
	eng := sys.NewEngine(sys.NewDB(), opts.engineOpts(&run.trace))
	if eng.Compiled() != compiled {
		t.Fatalf("engine compiled=%v, want %v", eng.Compiled(), compiled)
	}
	if seed != "" {
		if _, err := eng.ExecUser(seed); err != nil {
			t.Fatalf("seed: %v", err)
		}
		if err := eng.Commit(); err != nil {
			t.Fatalf("seed commit: %v", err)
		}
	}
	for _, seg := range segs {
		if seg != "" {
			res, err := eng.ExecUser(seg)
			if err != nil {
				run.userErr = fmt.Sprintf("%T: %v", err, err)
				break
			}
			run.userResults += fmt.Sprintf("%+v\n", res)
		}
		res, err := eng.Assert()
		if err != nil {
			run.assertErrs = append(run.assertErrs, fmt.Sprintf("%T: %v", err, err))
			var le *activerules.LivelockError
			if asLivelock(err, &le) {
				run.livelocks = append(run.livelocks,
					fmt.Sprintf("period=%d steps=%d cycle=%v", le.Period, le.Steps, le.Cycle))
			}
		} else {
			run.assertErrs = append(run.assertErrs, "<nil>")
		}
		run.considered = append(run.considered, res.Considered)
		run.fired = append(run.fired, res.Fired)
		run.rolledBack = append(run.rolledBack, res.RolledBack)
		run.firedByRule = append(run.firedByRule, res.FiredByRule)
		for _, ev := range res.Observables {
			run.observables = append(run.observables, ev.String())
		}
	}
	run.stateHash = eng.StateHash()
	run.finalDB = eng.DB().String()
	return run
}

func asLivelock(err error, le **activerules.LivelockError) bool {
	return errors.As(err, le)
}

// diffModes runs both modes and fails on any observable disagreement.
// It returns the (oracle) interpreter run so callers can additionally
// assert the scenario produced the outcome it was designed to produce.
func diffModes(t *testing.T, sys *activerules.System, seed string, segs []string, opts twinOptions) modeRun {
	t.Helper()
	interp := runMode(t, sys, false, seed, segs, opts)
	comp := runMode(t, sys, true, seed, segs, opts)

	if !reflect.DeepEqual(interp.trace, comp.trace) {
		t.Errorf("trace stream diverged:\n interp:   %q\n compiled: %q", interp.trace, comp.trace)
	}
	if interp.userResults != comp.userResults || interp.userErr != comp.userErr {
		t.Errorf("user results diverged:\n interp:   %q %q\n compiled: %q %q",
			interp.userResults, interp.userErr, comp.userResults, comp.userErr)
	}
	if !reflect.DeepEqual(interp.assertErrs, comp.assertErrs) {
		t.Errorf("assert error taxonomy diverged:\n interp:   %v\n compiled: %v", interp.assertErrs, comp.assertErrs)
	}
	if !reflect.DeepEqual(interp.livelocks, comp.livelocks) {
		t.Errorf("livelock witnesses diverged:\n interp:   %v\n compiled: %v", interp.livelocks, comp.livelocks)
	}
	if !reflect.DeepEqual(interp.considered, comp.considered) ||
		!reflect.DeepEqual(interp.fired, comp.fired) ||
		!reflect.DeepEqual(interp.rolledBack, comp.rolledBack) ||
		!reflect.DeepEqual(interp.firedByRule, comp.firedByRule) {
		t.Errorf("results diverged:\n interp:   c=%v f=%v rb=%v by=%v\n compiled: c=%v f=%v rb=%v by=%v",
			interp.considered, interp.fired, interp.rolledBack, interp.firedByRule,
			comp.considered, comp.fired, comp.rolledBack, comp.firedByRule)
	}
	if !reflect.DeepEqual(interp.observables, comp.observables) {
		t.Errorf("observable stream diverged:\n interp:   %q\n compiled: %q", interp.observables, comp.observables)
	}
	if interp.stateHash != comp.stateHash {
		t.Errorf("state hash diverged: %x vs %x", interp.stateHash, comp.stateHash)
	}
	if interp.finalDB != comp.finalDB {
		t.Errorf("final database diverged:\n interp:\n%s compiled:\n%s", interp.finalDB, comp.finalDB)
	}
	return interp
}

// TestCompileDifferentialGenerated sweeps a grid of generated workloads
// — 24 configurations crossing seeds, trigger-graph topology,
// transition-table usage, and condition density — through both modes.
// Cyclic configurations may livelock or exhaust the step budget; the
// two modes must then fail identically, witness for witness.
func TestCompileDifferentialGenerated(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, acyclic := range []bool{true, false} {
			for _, transFrac := range []float64{0, 0.6} {
				for _, condFrac := range []float64{0.3, 0.9} {
					name := fmt.Sprintf("seed=%d/acyclic=%v/trans=%.1f/cond=%.1f", seed, acyclic, transFrac, condFrac)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						cfg := workload.Config{
							Seed: seed, Rules: 12, Tables: 4, Acyclic: acyclic,
							WriteFanout: 2, UpdateFrac: 0.3, DeleteFrac: 0.15,
							ConditionFrac: condFrac, TransRefFrac: transFrac,
							ObservableFrac: 0.3, PriorityDensity: 0.2,
						}
						g, err := workload.Generate(cfg)
						if err != nil {
							t.Fatal(err)
						}
						sys, err := activerules.FromDefinitions(g.Schema, g.Defs)
						if err != nil {
							t.Fatal(err)
						}
						rng := rand.New(rand.NewSource(seed * 31))
						seedSQL := ""
						for _, tbl := range g.Schema.TableNames() {
							seedSQL += fmt.Sprintf("insert into %s values (0, 10), (1, 45), (2, 70);\n", tbl)
						}
						segs := []string{
							workload.UserScript(g.Schema, rng, 3),
							workload.UserScript(g.Schema, rng, 3),
						}
						diffModes(t, sys, seedSQL, segs, twinOptions{maxSteps: 400})
					})
				}
			}
		}
	}
}

// TestCompileDifferentialStrategies re-runs one branching generated
// workload under every selection strategy (and a livelock-prone cyclic
// one), since the compiled TriggeredRules must preserve definition
// order for Choose and the strategies to behave identically.
func TestCompileDifferentialStrategies(t *testing.T) {
	g, err := workload.Generate(workload.Config{
		Seed: 7, Rules: 10, Tables: 4, WriteFanout: 2,
		UpdateFrac: 0.35, DeleteFrac: 0.1, ConditionFrac: 0.4,
		TransRefFrac: 0.5, ObservableFrac: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := activerules.FromDefinitions(g.Schema, g.Defs)
	if err != nil {
		t.Fatal(err)
	}
	strategies := map[string]func() activerules.Strategy{
		"first":  activerules.FirstByName,
		"last":   activerules.LastByName,
		"random": func() activerules.Strategy { return activerules.SeededStrategy(99) },
	}
	for name, strat := range strategies {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(70))
			segs := []string{workload.UserScript(g.Schema, rng, 4)}
			seedSQL := ""
			for _, tbl := range g.Schema.TableNames() {
				seedSQL += fmt.Sprintf("insert into %s values (0, 20), (1, 55);\n", tbl)
			}
			diffModes(t, sys, seedSQL, segs, twinOptions{maxSteps: 400, strategy: strat})
		})
	}
}

// TestCompileDifferentialExamples runs the shipped example rule sets.
func TestCompileDifferentialExamples(t *testing.T) {
	cases := []struct {
		dir, seed string
		segs      []string
	}{
		{
			dir:  "bank",
			seed: "insert into account values (1, 'ann', 100);\ninsert into account values (2, 'bob', 25)",
			segs: []string{
				"update account set balance = balance - 80 where id = 2",
				"insert into account values (3, 'cyd', -5)",
				"delete from account where id = 2",
			},
		},
		{
			dir:  "powernet",
			seed: "insert into node values (1, 'plant', true), (2, 'sub', false), (3, 'home', false);\ninsert into wire values (10, 1, 2, false), (11, 2, 3, false)",
			segs: []string{
				"update node set powered = true where id = 1",
				"insert into wire values (12, 3, 1, false)",
			},
		},
		{
			dir:  "lintdemo",
			segs: []string{"insert into t values (1)"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			sys, err := activerules.LoadFiles(
				"testdata/"+tc.dir+"/schema.sdl", "testdata/"+tc.dir+"/rules.srl")
			if err != nil {
				t.Fatal(err)
			}
			diffModes(t, sys, tc.seed, tc.segs, twinOptions{maxSteps: 1000})
		})
	}
}

// TestCompileDifferentialHandwritten pins the corner cases the grid is
// unlikely to hit precisely: rollback actions, a livelock witness, net-
// effect untriggering, runtime action errors, and budget exhaustion.
func TestCompileDifferentialHandwritten(t *testing.T) {
	cases := []struct {
		name, schema, rules, seed string
		segs                      []string
		maxSteps                  int
		// check asserts the scenario exercised what its name promises
		// (on the oracle run; diffModes already proved both modes agree).
		check func(t *testing.T, run modeRun)
	}{
		{
			name:   "rollback-action",
			schema: "table t (v int)\ntable audit (v int)",
			rules: `
create rule guard on t
when inserted
if exists (select 1 from inserted where v < 0)
then rollback

create rule log on t
when inserted
then insert into audit select v from inserted
`,
			segs: []string{"insert into t values (5)", "insert into t values (-1)"},
			check: func(t *testing.T, run modeRun) {
				if !run.rolledBack[1] {
					t.Error("second assertion did not roll back")
				}
			},
		},
		{
			name:   "livelock-witness",
			schema: "table a (v int)\ntable b (v int)",
			rules: `
create rule ping on a
when inserted
then delete from b; insert into b values (1)

create rule pong on b
when inserted
then delete from a; insert into a values (1)
`,
			segs:     []string{"insert into a values (1)"},
			maxSteps: 200,
			check: func(t *testing.T, run modeRun) {
				if len(run.livelocks) == 0 {
					t.Errorf("no livelock witness; errors: %v", run.assertErrs)
				}
			},
		},
		{
			name:   "untriggering-by-net-effect",
			schema: "table t (v int)\ntable x (v int)\ntable out (v int)",
			rules: `
create rule feed on t
when inserted
then insert into x values (1)

create rule sweep on t
when inserted
then delete from x
precedes consume

create rule consume on x
when inserted
then insert into out select v from inserted
`,
			segs: []string{"insert into t values (1)"},
			check: func(t *testing.T, run modeRun) {
				// sweep ran before consume and emptied x, so consume's
				// net transition is empty: it must never fire.
				if n := run.firedByRule[0]["consume"]; n != 0 {
					t.Errorf("consume fired %d times despite untriggering", n)
				}
			},
		},
		{
			name:   "runtime-action-error",
			schema: "table t (v int)\ntable d (v int)",
			rules: `
create rule boom on t
when inserted
then insert into d select v / (v - v) from inserted
`,
			segs: []string{"insert into t values (3)"},
			check: func(t *testing.T, run modeRun) {
				if len(run.assertErrs) == 0 || run.assertErrs[0] == "<nil>" {
					t.Errorf("runtime error not surfaced: %v", run.assertErrs)
				}
			},
		},
		{
			name:   "maxsteps-exhausted",
			schema: "table t (v int)",
			rules: `
create rule grow on t
when inserted
then insert into t select v + 1 from inserted
`,
			segs:     []string{"insert into t values (0)"},
			maxSteps: 25,
			check: func(t *testing.T, run modeRun) {
				if len(run.assertErrs) == 0 || run.assertErrs[0] == "<nil>" {
					t.Errorf("budget exhaustion not surfaced: %v", run.assertErrs)
				}
			},
		},
		{
			name:   "condition-false-skips",
			schema: "table t (v int)\ntable d (v int)",
			rules: `
create rule maybe on t
when inserted
if exists (select 1 from inserted where v > 100)
then insert into d values (1); select v from d
`,
			segs: []string{"insert into t values (5)", "insert into t values (500)"},
		},
		{
			name:   "observable-stream",
			schema: "table t (v int)\ntable d (v int)",
			rules: `
create rule echo on t
when inserted, updated(v)
then insert into d select v from inserted; select v from d
`,
			seed: "insert into t values (1)",
			segs: []string{"insert into t values (2)", "update t set v = 9 where v = 1"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys, err := activerules.Load(tc.schema, tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			ms := tc.maxSteps
			if ms == 0 {
				ms = 1000
			}
			run := diffModes(t, sys, tc.seed, tc.segs, twinOptions{maxSteps: ms})
			if tc.check != nil {
				tc.check(t, run)
			}
		})
	}
}
