package activerules

import (
	"activerules/internal/retry"
	"activerules/internal/serve"
)

// The serving layer: a supervised, concurrent front over a durable
// session. See internal/serve for the mechanics and DESIGN.md §9 for
// the degraded-mode argument.

// Re-exported serving types.
type (
	// Server is the concurrent serving layer: admission control with
	// deadline-aware load shedding, per-request deadlines, rule
	// quarantine with degraded-mode reporting, durability-fault retry,
	// and graceful drain.
	Server = serve.Server
	// ServeConfig configures System.NewServer.
	ServeConfig = serve.Config
	// ServeRequest is one client transaction (user SQL + assertion).
	ServeRequest = serve.Request
	// ServeResponse reports a committed request.
	ServeResponse = serve.Response
	// ServerHealth is the readiness view, including the degraded-mode
	// report.
	ServerHealth = serve.Health
	// ServerStats is the counters view.
	ServerStats = serve.Stats
	// DegradedReport describes the serving guarantees under the
	// current rule quarantine, per table, via the §7 Sig(T') analysis.
	DegradedReport = serve.DegradedReport
	// TableGuarantee is one table's degraded-mode verdict.
	TableGuarantee = serve.TableGuarantee
	// OverloadError reports load shedding at admission.
	OverloadError = serve.OverloadError
	// OverloadReason says why admission rejected a request.
	OverloadReason = serve.OverloadReason
	// DeadlineError reports a request shed after its deadline expired
	// in the queue, without occupying an execution slot.
	DeadlineError = serve.DeadlineError
	// ServerClosedError reports a request rejected because the server
	// is draining, closed, or failed.
	ServerClosedError = serve.ClosedError
	// RetryPolicy shapes the seeded, jittered exponential backoff used
	// by quarantine probes and durability retries.
	RetryPolicy = retry.Policy
)

// Overload reasons, re-exported.
const (
	// OverloadQueueFull: the bounded admission queue had no free slot.
	OverloadQueueFull = serve.OverloadQueueFull
	// OverloadProjectedWait: the projected queue wait exceeded the
	// request's deadline, so it was shed on arrival.
	OverloadProjectedWait = serve.OverloadProjectedWait
)

// Server states, re-exported (ServerHealth.State, ServerClosedError.State).
const (
	ServerRunning  = serve.StateRunning
	ServerDraining = serve.StateDraining
	ServerClosed   = serve.StateClosed
	ServerFailed   = serve.StateFailed
)

// NewServer opens (or recovers) the write-ahead log directory dir and
// starts a serving layer over this system's rules. The server owns the
// durable session: Close (or Shutdown) drains in-flight work, writes a
// final checkpoint, and releases the log.
func (s *System) NewServer(dir string, cfg ServeConfig) (*Server, error) {
	if s.compiled {
		cfg.Engine.Compiled = true
	}
	return serve.New(s.schema, s.defs, dir, cfg)
}
