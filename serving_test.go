package activerules_test

// Facade-level serving tests: System.NewServer round-trips through the
// public API, and one System safely backs several concurrent consumers
// — two independent engines plus the parallel analyzers — under -race.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"activerules"
)

const servingSchema = `
table src (v int)
table dst (v int)
`

const servingRules = `
create rule copy on src
when inserted
then insert into dst select v from inserted
`

func TestSystemNewServerRoundTrip(t *testing.T) {
	sys, err := activerules.Load(servingSchema, servingRules)
	if err != nil {
		t.Fatal(err)
	}
	fsys := activerules.NewMemFS()
	srv, err := sys.NewServer("wal", activerules.ServeConfig{
		WAL: activerules.WALOptions{FS: fsys},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Submit(context.Background(), activerules.ServeRequest{
		SQL: "insert into src values (5)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fired != 1 || resp.StateHash == "" {
		t.Errorf("response = %+v", resp)
	}
	h := srv.Health()
	if h.State != activerules.ServerRunning || !h.Ready || h.Degraded {
		t.Errorf("health = %+v", h)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed servers reject with the typed error.
	_, err = srv.Submit(context.Background(), activerules.ServeRequest{SQL: "insert into src values (6)"})
	var ce *activerules.ServerClosedError
	if !errors.As(err, &ce) || ce.State != activerules.ServerClosed {
		t.Errorf("Submit after Close = %v, want *ServerClosedError (closed)", err)
	}
	// The drain checkpointed: recovery over the same fs sees the
	// committed rows.
	db, _, err := sys.Recover("wal", fsys)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Table("dst").Len(); got != 1 {
		t.Errorf("recovered dst has %d rows, want 1", got)
	}
}

// TestSystemSharedAcrossEnginesAndAnalysis runs two engines built from
// one System in parallel with the multi-worker analyzers. A System is
// documented as read-only after construction; this test backs that with
// the race detector.
func TestSystemSharedAcrossEnginesAndAnalysis(t *testing.T) {
	sys, err := activerules.Load(servingSchema, servingRules)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetAnalysisParallelism(4)

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := sys.NewEngine(sys.NewDB(), activerules.EngineOptions{})
			for i := 0; i < 25; i++ {
				if _, err := eng.ExecUser(fmt.Sprintf("insert into src values (%d)", g*100+i)); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Assert(); err != nil {
					t.Error(err)
					return
				}
			}
			if got := eng.DB().Table("dst").Len(); got != 25 {
				t.Errorf("engine %d: dst has %d rows, want 25", g, got)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			rep := sys.Analyze(nil)
			if rep.Termination == nil || rep.Confluence == nil {
				t.Error("incomplete analysis report")
				return
			}
		}
	}()
	wg.Wait()
}
