// Quickstart: define a small rule set, run all four static analyses,
// then execute the rules against a database and watch the cascade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"activerules"
)

const schemaSrc = `
table account (id int, owner string, balance float)
table audit   (id int, owner string)
table holds   (id int, acct int)
`

// Three rules: audit new accounts, place holds on overdrawn accounts,
// and purge holds when accounts disappear.
const rulesSrc = `
create rule r_audit on account
when inserted
then insert into audit select id, owner from inserted

create rule r_hold on account
when updated(balance)
if exists (select 1 from new-updated nu where nu.balance < 0)
then insert into holds select nu.id, nu.id from new-updated nu where nu.balance < 0

create rule r_purge on account
when deleted
then delete from holds where acct in (select id from deleted)
`

func main() {
	sys, err := activerules.Load(schemaSrc, rulesSrc)
	if err != nil {
		log.Fatal(err)
	}

	// --- Static analysis -------------------------------------------------
	rep := sys.Analyze(nil)
	fmt.Println("=== static analysis ===")
	fmt.Print(rep)

	// --- Execution --------------------------------------------------------
	fmt.Println("=== execution ===")
	db := sys.NewDB()
	eng := sys.NewEngine(db, activerules.EngineOptions{})

	steps := []string{
		"insert into account values (1, 'ann', 100.0), (2, 'bob', 20.0)",
		"update account set balance = balance - 75.0", // bob overdraws
		"delete from account where id = 2",
	}
	for _, op := range steps {
		if _, err := eng.ExecUser(op); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Assert()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s -> considered=%d fired=%d\n", op, res.Considered, res.Fired)
	}

	fmt.Println("\nfinal database:")
	fmt.Print(db.String())

	if db.Table("audit").Len() != 2 || db.Table("holds").Len() != 0 {
		log.Fatal("unexpected final state")
	}
	fmt.Println("quickstart OK")
}
