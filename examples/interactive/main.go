// Interactive demonstrates the Section 6.4 development loop in full: a
// rule set is analyzed, each reported violation is repaired with the
// analyzer's own suggestions (certify a commutative pair or order a
// conflicting one), and the analysis is repeated until confluence is
// guaranteed. It also shows the paper's warning in action: adding an
// ordering can make NEW violations appear elsewhere ("a source of
// non-confluence can appear to move around"), which is why the loop is
// iterative.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"

	"activerules"
)

const schemaSrc = `
table orders  (id int, qty int, status string)
table stock   (item int, qty int)
table pending (id int, item int)
`

// A small order-processing rule set with two latent problems:
//
//   - reserve and restock both update stock.qty (condition 5) and are
//     unordered;
//   - approve triggers queue (insert into pending), and queue conflicts
//     with cleanup (insert vs delete on pending, condition 4) — but
//     cleanup's delete condition (status cancelled) never matches
//     queue's inserts (status approved), the paper's example of a pair
//     that is safe to certify.
const rulesSrc = `
create rule approve on orders
when inserted
then update orders set status = 'approved' where status = 'new'

create rule queue on orders
when updated(status)
then insert into pending select o.id, o.qty from orders o where o.status = 'approved'
     and o.id not in (select id from pending)

create rule cleanup on orders
when updated(status)
then delete from pending where id in (select id from orders where status = 'cancelled')

create rule reserve on orders
when inserted
then update stock set qty = qty - 1 where item in (select qty from inserted)

create rule restock on stock
when updated(qty)
if exists (select 1 from new-updated nu where nu.qty < 0)
then update stock set qty = 0 where qty < 0
`

func main() {
	sys, err := activerules.Load(schemaSrc, rulesSrc)
	if err != nil {
		log.Fatal(err)
	}
	cert := activerules.NewCertification()
	// The self-repairing rules cannot sustain their cycles: approve only
	// moves 'new' -> 'approved', restock only clamps negatives upward.
	// The user verifies and discharges them up front (Section 5).
	cert.DischargeRule("approve").DischargeRule("restock").DischargeRule("queue").DischargeRule("cleanup")

	for round := 1; ; round++ {
		rep := sys.Analyze(cert)
		fmt.Printf("=== round %d ===\n", round)
		fmt.Print(rep)
		if rep.Confluence.Guaranteed {
			fmt.Printf("confluence reached after %d round(s)\n", round)
			break
		}
		if round > 10 {
			log.Fatal("interactive loop did not converge")
		}
		if len(rep.Confluence.Violations) == 0 {
			log.Fatal("not confluent but no violations — termination gap")
		}
		v := rep.Confluence.Violations[0]
		fmt.Printf(">>> repairing: %s vs %s\n", v.CulpritA, v.CulpritB)
		if certifiable(v) {
			// Approach 1: the culprits actually commute; certify.
			fmt.Printf(">>> user certifies: %s and %s commute\n", v.CulpritA, v.CulpritB)
			cert.CertifyCommutes(v.CulpritA, v.CulpritB)
			continue
		}
		// Approach 2: order the analyzed pair.
		fmt.Printf(">>> user orders: %s precedes %s\n", v.PairI, v.PairJ)
		sys, err = sys.WithOrdering([2]string{v.PairI, v.PairJ})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Sanity-run the repaired system.
	db := sys.NewDB()
	db.MustInsert("stock", activerules.IntV(5), activerules.IntV(1))
	eng := sys.NewEngine(db, activerules.EngineOptions{})
	if _, err := eng.ExecUser("insert into orders values (1, 5, 'new')"); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Assert()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: considered=%d fired=%d\n", res.Considered, res.Fired)
	fmt.Print(db.String())

	// The same loop, fully automated: AutoRepair applies Approach 2
	// (orderings) until the Confluence Requirement holds. Certifications
	// still come from the user — pass the same ones.
	fresh, err := activerules.Load(schemaSrc, rulesSrc)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fresh.Analyzer(cert).AutoRepair(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-repair: %d ordering(s) in %d round(s): %v\n",
		len(plan.Orderings), plan.Rounds, plan.Orderings)
	if !plan.Succeeded() {
		log.Fatal("auto-repair should converge like the manual loop")
	}
	fmt.Println("interactive OK")
}

// certifiable encodes this application's domain knowledge: the
// queue/cleanup insert-vs-delete conflict is safe (the paper's first
// refinement example — inserted approved orders never satisfy the
// cancelled-delete condition). Everything else needs an ordering.
func certifiable(v activerules.Violation) bool {
	a, b := v.CulpritA, v.CulpritB
	return (a == "queue" && b == "cleanup") || (a == "cleanup" && b == "queue")
}
