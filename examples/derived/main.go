// Derived: derived-data maintenance with observable alerting — the
// Section 8 scenario. A materialized per-department headcount is kept in
// sync by rules, and two alerting rules emit observable SELECTs when
// thresholds are crossed. Unordered observable rules are flagged by the
// observable-determinism analysis; adding an ordering repairs them, and
// the execution-graph explorer confirms a single observable stream.
//
//	go run ./examples/derived
package main

import (
	"fmt"
	"log"

	"activerules"
)

const schemaSrc = `
table emp       (id int, dept int)
table headcount (dept int, n int)
table alerts    (dept int, msg string)
`

// The maintenance rules adjust the materialized count; the alert rules
// observe it.
const rulesBase = `
create rule hc_add on emp
when inserted
then update headcount set n = n + (select count(*) from inserted i where i.dept = headcount.dept)
     where dept in (select dept from inserted)

create rule hc_sub on emp
when deleted
then update headcount set n = n - (select count(*) from deleted d where d.dept = headcount.dept)
     where dept in (select dept from deleted)

create rule alert_big on headcount
when updated(n)
if exists (select 1 from new-updated nu where nu.n >= 3)
then select dept, n from new-updated where n >= 3 order by dept;
     insert into alerts select dept, 'big' from new-updated where n >= 3

create rule alert_empty on headcount
when updated(n)
if exists (select 1 from new-updated nu where nu.n <= 0)
then select dept, n from new-updated where n <= 0 order by dept;
     insert into alerts select dept, 'empty' from new-updated where n <= 0
`

func main() {
	sys, err := activerules.Load(schemaSrc, rulesBase)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== observable-determinism analysis (unordered alerts) ===")
	rep := sys.Analyze(nil)
	fmt.Print(rep)
	if rep.Observable.Guaranteed() {
		log.Fatal("unordered observable rules must be flagged")
	}

	// Corollary 8.2 in action: the two observable rules must be ordered —
	// and because the maintenance rules trigger the alerts (and so join
	// Sig(Obs), Definition 7.1), the whole pipeline needs a total order:
	// maintenance before alerting, additions before removals.
	sys2, err := sys.WithOrdering(
		[2]string{"hc_add", "hc_sub"},
		[2]string{"hc_add", "alert_big"},
		[2]string{"hc_add", "alert_empty"},
		[2]string{"hc_sub", "alert_big"},
		[2]string{"hc_sub", "alert_empty"},
		[2]string{"alert_big", "alert_empty"},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== after ordering the pipeline ===")
	rep2 := sys2.Analyze(nil)
	fmt.Print(rep2)
	if !rep2.Observable.Guaranteed() {
		log.Fatal("ordered alerts should be observably deterministic")
	}

	// --- Execution: maintenance + a deterministic alert stream ---------
	db := sys2.NewDB()
	db.MustInsert("headcount", activerules.IntV(1), activerules.IntV(0))
	db.MustInsert("headcount", activerules.IntV(2), activerules.IntV(0))
	eng := sys2.NewEngine(db, activerules.EngineOptions{})

	if _, err := eng.ExecUser("insert into emp values (10, 1), (11, 1), (12, 1), (13, 2)"); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Assert()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== execution ===")
	for _, ev := range res.Observables {
		fmt.Println("observable:", ev.String())
	}
	var n1 int64
	db.Table("headcount").Scan(func(tu *activerules.Tuple) bool {
		if tu.Vals[0].I == 1 {
			n1 = tu.Vals[1].I
		}
		return true
	})
	if n1 != 3 {
		log.Fatalf("headcount(1) = %d, want 3", n1)
	}
	if db.Table("alerts").Len() != 1 {
		log.Fatalf("alerts = %d, want 1 (dept 1 is big)", db.Table("alerts").Len())
	}

	// Exhaustively confirm the single observable stream.
	eng2 := sys2.NewEngine(db.Clone(), activerules.EngineOptions{})
	if _, err := eng2.ExecUser("delete from emp where dept = 1"); err != nil {
		log.Fatal(err)
	}
	xres, err := activerules.Explore(eng2, activerules.ExploreOptions{TrackObservables: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploration: final-states=%d observable-streams=%d\n",
		len(xres.FinalDBs), len(xres.Streams))
	if !xres.ObservablyDeterministic() {
		log.Fatal("ordered alerts must produce one stream")
	}
	fmt.Println("derived OK")
}
