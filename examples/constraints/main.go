// Constraints: integrity-constraint maintenance with production rules,
// the application that motivated the paper's termination analysis
// (Ceri & Widom, VLDB 1990, cited as [CW90]).
//
// Two constraints over an employee/department database are maintained by
// repair rules:
//
//  1. Referential integrity: every employee's dept must exist. Repair:
//     deleting a department cascades to its employees; inserting an
//     employee with a dangling dept moves them to dept 0 (the default).
//  2. Salary cap: no employee may earn more than their department's cap.
//     Repair: clamp the salary.
//
// The example runs the analyzer (the repair rules are accepted after the
// interactive certifications a [CW90]-style derivation would justify)
// and then demonstrates cascades, including a two-level one.
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"

	"activerules"
)

const schemaSrc = `
table dept (id int, cap float)
table emp  (id int, dept int, salary float)
`

const rulesSrc = `
-- Referential integrity, deletion side: remove employees of deleted
-- departments (cascade).
create rule ri_cascade on dept
when deleted
then delete from emp where dept in (select id from deleted)

-- Referential integrity, insertion side: employees inserted with a
-- dangling department are moved to the default department 0.
create rule ri_default on emp
when inserted, updated(dept)
if exists (select 1 from emp where emp.dept not in (select id from dept))
then update emp set dept = 0 where dept not in (select id from dept)

-- Salary cap: clamp salaries above the department cap.
create rule cap_clamp on emp
when inserted, updated(salary), updated(dept)
if exists (select 1 from emp e, dept d where e.dept = d.id and e.salary > d.cap)
then update emp set salary = (select cap from dept where dept.id = emp.dept)
     where exists (select 1 from dept d where d.id = emp.dept and emp.salary > d.cap)
follows ri_default
`

func main() {
	sys, err := activerules.Load(schemaSrc, rulesSrc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== static analysis (no certifications) ===")
	rep := sys.Analyze(nil)
	fmt.Print(rep)

	// The analyzer flags the self-triggering repair rules (each is
	// triggered by the operations it performs — the classic constraint-
	// maintenance cycle). A [CW90]-style argument discharges them:
	//   - ri_default only moves employees TO dept 0, which exists, so a
	//     second round finds no danglers: its action eventually has no
	//     effect.
	//   - cap_clamp only lowers salaries to the cap, so a second round
	//     finds nothing above the cap.
	cert := activerules.NewCertification().
		DischargeRule("ri_default").
		DischargeRule("cap_clamp")
	// ri_cascade's deletions and cap_clamp's clamping touch disjoint
	// tuple sets only when the cascade runs first; ordering handles the
	// rest of the violations interactively (Section 6.4, Approach 2).
	sys2, err := sys.WithOrdering(
		[2]string{"ri_cascade", "ri_default"},
		[2]string{"ri_cascade", "cap_clamp"},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== static analysis (with discharges and orderings) ===")
	rep2 := sys2.Analyze(cert)
	fmt.Print(rep2)
	if !rep2.Termination.Guaranteed {
		log.Fatal("termination should be guaranteed after discharges")
	}

	// --- Execution ---------------------------------------------------
	fmt.Println("=== execution ===")
	db := sys2.NewDB()
	eng := sys2.NewEngine(db, activerules.EngineOptions{})

	run := func(op string) {
		if _, err := eng.ExecUser(op); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Assert()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-60s -> considered=%d fired=%d\n", op, res.Considered, res.Fired)
	}

	run("insert into dept values (0, 50000.0), (1, 90000.0), (2, 120000.0)")
	// A violating employee: dangling dept 9 AND over the default cap.
	// ri_default moves them to dept 0, then cap_clamp clamps to 50000.
	run("insert into emp values (100, 9, 75000.0)")
	var salary float64
	var dept int64
	db.Table("emp").Scan(func(tu *activerules.Tuple) bool {
		dept, salary = tu.Vals[1].I, tu.Vals[2].F
		return true
	})
	if dept != 0 || salary != 50000 {
		log.Fatalf("repair chain failed: dept=%d salary=%v", dept, salary)
	}
	fmt.Printf("employee repaired: dept=%d salary=%.0f (two-level cascade)\n", dept, salary)

	// Deleting a department cascades to its employees.
	run("insert into emp values (200, 2, 110000.0)")
	run("delete from dept where id = 2")
	if db.Table("emp").Len() != 1 {
		log.Fatalf("cascade failed: %d employees remain", db.Table("emp").Len())
	}
	fmt.Println("cascade OK; final database:")
	fmt.Print(db.String())
	fmt.Println("constraints OK")
}
