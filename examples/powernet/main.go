// Powernet reconstructs the power-network design case study that the
// paper used to exercise its termination analysis (Section 5, citing the
// constraint-maintenance derivation of [CW90]).
//
// A distribution network has nodes (plants and consumers) and directed
// wires. Two propagation rules maintain the derived "powered"/"live"
// attributes:
//
//	w_live:  wires leaving a powered node become live
//	n_power: nodes fed by a live wire become powered
//
// The two rules trigger each other — the triggering graph has a genuine
// cycle, so Theorem 5.1 alone cannot prove termination. Section 5's
// interactive argument applies: both updates are monotonic (false ->
// true only), so repeated consideration eventually has no effect. The
// tier-2 termination analysis now derives exactly that argument
// automatically: each rule earns a convergent-update certificate (the
// update writes `true`, provably outside its own `= false` scope, and
// nothing writes the flags back), so the cycle is discharged with no
// user certification at all. The example inspects the certificates and
// then validates them by exhaustively model-checking a small network
// (every execution order terminates, and — since the propagation is a
// monotone fixpoint — all orders reach the same final state).
//
//	go run ./examples/powernet
package main

import (
	"fmt"
	"log"

	"activerules"
)

const schemaSrc = `
table node (id int, kind string, powered bool)
table wire (id int, src int, dst int, live bool)
`

const rulesSrc = `
-- Wires leaving a powered node carry power.
create rule w_live on node
when updated(powered), inserted
then update wire set live = true
     where live = false and src in (select id from node where powered = true)

-- A node fed by a live wire is powered.
create rule n_power on wire
when updated(live), inserted
then update node set powered = true
     where powered = false and id in (select dst from wire where live = true)
`

func main() {
	sys, err := activerules.Load(schemaSrc, rulesSrc)
	if err != nil {
		log.Fatal(err)
	}

	// --- Termination analysis: the cycle is discharged automatically ---
	fmt.Println("=== termination analysis (no certifications) ===")
	rep := sys.Analyze(nil)
	fmt.Print(rep)
	term := rep.Termination
	if term.Status != activerules.TermCycleDischarged {
		log.Fatalf("want the propagation cycle found and discharged, got status %s", term.Status)
	}
	if len(term.SCCs) != 1 || !term.SCCs[0].Discharged {
		log.Fatal("the w_live/n_power cycle should appear as one discharged component")
	}
	for _, step := range term.SCCs[0].Certificate {
		if step.Kind != "convergent-update" {
			log.Fatalf("rule %s: want a convergent-update certificate, got %s", step.Rule, step.Kind)
		}
	}
	fmt.Println("=== why the cycle terminates ===")
	fmt.Print(activerules.ExplainSCC(term, 1))

	// Before the tier-2 analysis, this verdict needed Section 5's
	// interactive step: the user observed that both rules only flip
	// false -> true and discharged them by hand. That route still works
	// and yields the same guarantee.
	cert := activerules.NewCertification().
		DischargeRule("w_live").
		DischargeRule("n_power")
	if rep2 := sys.Analyze(cert); !rep2.Termination.Guaranteed {
		log.Fatal("user-discharged cycle should be accepted too")
	}

	// --- Validate the discharge by exhaustive exploration --------------
	// Build a small network: plant(1) -> 2 -> 3, with a cycle 3 -> 2 and
	// a separate island 4.
	db := sys.NewDB()
	for _, n := range [][3]any{{1, "plant", false}, {2, "user", false}, {3, "user", false}, {4, "user", false}} {
		db.MustInsert("node",
			activerules.IntV(int64(n[0].(int))),
			activerules.StringV(n[1].(string)),
			activerules.BoolV(n[2].(bool)))
	}
	for _, w := range [][3]int{{10, 1, 2}, {11, 2, 3}, {12, 3, 2}} {
		db.MustInsert("wire",
			activerules.IntV(int64(w[0])), activerules.IntV(int64(w[1])),
			activerules.IntV(int64(w[2])), activerules.BoolV(false))
	}

	eng := sys.NewEngine(db, activerules.EngineOptions{})
	// The triggering transition: the plant comes online.
	if _, err := eng.ExecUser("update node set powered = true where kind = 'plant'"); err != nil {
		log.Fatal(err)
	}

	res, err := activerules.Explore(eng, activerules.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== exhaustive exploration ===\nstates=%d terminates=%v final-states=%d\n",
		res.StatesExplored, res.Terminates(), len(res.FinalDBs))
	if !res.Terminates() || len(res.FinalDBs) != 1 {
		log.Fatal("monotone propagation should terminate confluently")
	}

	final := res.FinalDBs[res.FinalFingerprints()[0]]
	powered := 0
	final.Table("node").Scan(func(tu *activerules.Tuple) bool {
		if tu.Vals[2].B {
			powered++
		}
		return true
	})
	live := 0
	final.Table("wire").Scan(func(tu *activerules.Tuple) bool {
		if tu.Vals[3].B {
			live++
		}
		return true
	})
	fmt.Printf("fixpoint: %d/4 nodes powered, %d/3 wires live\n", powered, live)
	if powered != 3 || live != 3 {
		log.Fatal("propagation fixpoint wrong (island must stay dark)")
	}
	fmt.Println("final network:")
	fmt.Print(final.String())
	fmt.Println("powernet OK")
}
