// Restricted demonstrates the "Restricted user operations" extension
// sketched in the paper's Section 9: a rule set that is unsafe for
// arbitrary user transactions can still be certified safe for a known
// workload, because only the rules reachable from the workload's
// operations can ever run.
//
// The scenario is a ticketing system. Its reconciliation rules form a
// triggering cycle and its two report rules are unordered observables —
// the general analysis rejects the set on every count. But the
// production workload only ever INSERTS into bookings; under that
// restriction the cycle and one of the observables are unreachable, and
// every property is guaranteed.
//
//	go run ./examples/restricted
package main

import (
	"fmt"
	"log"

	"activerules"
)

const schemaSrc = `
table bookings  (id int, seat int)
table seats     (id int, taken bool)
table refunds   (id int, amount float)
table ledger    (id int, delta float)
`

const rulesSrc = `
-- Reachable from booking inserts: mark the seat taken.
create rule take_seat on bookings
when inserted
then update seats set taken = true
     where taken = false and id in (select seat from inserted)

-- Reachable: report each new booking (observable).
create rule report_bookings on bookings
when inserted
then select id, seat from inserted

-- The refund reconciliation pair: each compensates the other's table —
-- a genuine triggering cycle (refunds -> ledger -> refunds).
create rule refund_ledger on refunds
when inserted
then insert into ledger select id, amount from inserted

create rule ledger_refund on ledger
when inserted
if exists (select 1 from inserted where delta < 0)
then insert into refunds select id, delta from inserted where delta < 0

-- A second observable, unordered with report_bookings.
create rule report_refunds on refunds
when inserted
then select id, amount from inserted
`

func main() {
	sys, err := activerules.Load(schemaSrc, rulesSrc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== unrestricted analysis ===")
	rep := sys.Analyze(nil)
	fmt.Print(rep)
	if rep.Termination.Guaranteed || rep.Observable.Guaranteed() {
		log.Fatal("the general analysis must reject this set")
	}

	fmt.Println("=== restricted to the production workload (insert:bookings) ===")
	v := sys.AnalyzeRestricted(nil, activerules.UserInsert("bookings"))
	fmt.Print(activerules.RestrictedReport(v))
	if !v.Termination.Guaranteed || !v.Confluence.Guaranteed || !v.Observable.Guaranteed() {
		log.Fatal("the restricted analysis should certify the workload")
	}

	// The unreachable refund cycle never runs under this workload;
	// demonstrate with an execution.
	db := sys.NewDB()
	db.MustInsert("seats", activerules.IntV(12), activerules.BoolV(false))
	eng := sys.NewEngine(db, activerules.EngineOptions{})
	if _, err := eng.ExecUser("insert into bookings values (1, 12)"); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Assert()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: considered=%d fired=%d observables=%d\n",
		res.Considered, res.Fired, len(res.Observables))
	var taken bool
	db.Table("seats").Scan(func(tu *activerules.Tuple) bool { taken = tu.Vals[1].B; return true })
	if !taken || db.Table("refunds").Len() != 0 || db.Table("ledger").Len() != 0 {
		log.Fatal("unexpected execution result")
	}
	fmt.Println("restricted OK")
}
