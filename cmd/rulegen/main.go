// Command rulegen emits a random schema and rule set in the definition
// languages, for experimentation with rulecheck and ruleexec. The
// generator is the one used by the EXPERIMENTS.md workloads; it is
// deterministic for a fixed seed.
//
// Usage:
//
//	rulegen -rules 10 -tables 5 -seed 42 [flags] > out.txt
//	rulegen ... -split dir   # write dir/schema.sdl and dir/rules.srl
//
// Flags mirror the workload generator: -acyclic, -update, -delete,
// -cond, -priority, -obs, -fanout. -cyclic-terminating appends
// hand-shaped cyclic-but-terminating patterns (comma separated:
// countdown, drain, converge) that the tier-2 termination analysis
// discharges with certificates; they live on fresh tables and leave
// the random part byte-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"activerules/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rulegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nRules := fs.Int("rules", 8, "number of rules")
	nTables := fs.Int("tables", 4, "number of tables")
	seed := fs.Int64("seed", 1, "generator seed")
	acyclic := fs.Bool("acyclic", false, "force an acyclic triggering graph")
	update := fs.Float64("update", 0.3, "fraction of update statements")
	del := fs.Float64("delete", 0.15, "fraction of delete statements")
	cond := fs.Float64("cond", 0.3, "fraction of rules with conditions")
	prio := fs.Float64("priority", 0.2, "pairwise priority density")
	obs := fs.Float64("obs", 0.1, "fraction of observable rules")
	fanout := fs.Int("fanout", 2, "max statements per action")
	split := fs.String("split", "", "write schema.sdl and rules.srl into this directory")
	cyclic := fs.String("cyclic-terminating", "", "append cyclic-but-terminating shapes (comma separated: countdown, drain, converge)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var shapes []string
	if *cyclic != "" {
		for _, s := range strings.Split(*cyclic, ",") {
			shapes = append(shapes, strings.TrimSpace(s))
		}
	}
	g, err := workload.Generate(workload.Config{
		Seed: *seed, Rules: *nRules, Tables: *nTables, Acyclic: *acyclic,
		UpdateFrac: *update, DeleteFrac: *del, ConditionFrac: *cond,
		PriorityDensity: *prio, ObservableFrac: *obs, WriteFanout: *fanout,
		CyclicShapes: shapes,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rulegen:", err)
		return 2
	}

	var rulesText strings.Builder
	for i, r := range g.Set.Rules() {
		if i > 0 {
			rulesText.WriteString("\n")
		}
		rulesText.WriteString(r.String())
		rulesText.WriteString("\n")
	}

	if *split != "" {
		if err := os.MkdirAll(*split, 0o755); err != nil {
			fmt.Fprintln(stderr, "rulegen:", err)
			return 2
		}
		if err := os.WriteFile(filepath.Join(*split, "schema.sdl"), []byte(g.Schema.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "rulegen:", err)
			return 2
		}
		if err := os.WriteFile(filepath.Join(*split, "rules.srl"), []byte(rulesText.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "rulegen:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s/schema.sdl and %s/rules.srl (%d rules)\n", *split, *split, g.Set.Len())
		return 0
	}

	fmt.Fprintln(stdout, "-- schema")
	fmt.Fprint(stdout, g.Schema.String())
	fmt.Fprintln(stdout, "\n-- rules")
	fmt.Fprint(stdout, rulesText.String())
	return 0
}
