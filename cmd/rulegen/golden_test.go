package main

// Golden-file tests for rulegen: the generator is documented as
// deterministic for a fixed seed, so the emitted schema and rule text
// must be byte-stable — across runs, Go releases of this repo, and
// refactors of the workload generator. Run with -update to rewrite the
// golden files after an intentional generator change:
//
//	go test ./cmd/rulegen -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"default-seed1", []string{"-seed", "1"}},
		{"default-seed2", []string{"-seed", "2"}},
		{"acyclic", []string{"-seed", "7", "-acyclic", "-rules", "12", "-tables", "6"}},
		{"rich", []string{"-seed", "11", "-cond", "0.8", "-priority", "0.5", "-obs", "0.5", "-fanout", "3"}},
		{"deletes", []string{"-seed", "3", "-update", "0", "-delete", "0.9"}},
		{"cyclic-countdown", []string{"-seed", "1", "-cyclic-terminating", "countdown"}},
		{"cyclic-all", []string{"-seed", "7", "-acyclic", "-rules", "6", "-tables", "4",
			"-cyclic-terminating", "countdown,drain,converge"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 0 {
				t.Fatalf("exit = %d; stderr: %s", code, errb.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
					golden, out.String(), want)
			}
		})
	}
}

// TestGoldenSplitMatchesStdout checks the -split files carry exactly
// the schema and rule sections of the stdout rendering: two surfaces,
// one source of truth.
func TestGoldenSplitMatchesStdout(t *testing.T) {
	args := []string{"-seed", "1"}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	dir := t.TempDir()
	var sout bytes.Buffer
	if code := run(append(args, "-split", dir), &sout, &errb); code != 0 {
		t.Fatalf("split run: exit = %d; %s", code, errb.String())
	}
	sch, err := os.ReadFile(filepath.Join(dir, "schema.sdl"))
	if err != nil {
		t.Fatal(err)
	}
	rules, err := os.ReadFile(filepath.Join(dir, "rules.srl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), sch) {
		t.Errorf("stdout does not contain the split schema:\nstdout:\n%s\nschema.sdl:\n%s", out.String(), sch)
	}
	if !bytes.Contains(out.Bytes(), rules) {
		t.Errorf("stdout does not contain the split rules:\nstdout:\n%s\nrules.srl:\n%s", out.String(), rules)
	}
}
