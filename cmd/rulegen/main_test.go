package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activerules"
)

func TestRulegenStdout(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "5", "-tables", "3", "-seed", "9"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "-- schema") || !strings.Contains(s, "-- rules") {
		t.Errorf("missing sections:\n%s", s)
	}
	if strings.Count(s, "create rule") != 5 {
		t.Errorf("rule count wrong:\n%s", s)
	}
}

func TestRulegenSplitOutputLoads(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "6", "-tables", "4", "-seed", "11", "-acyclic", "-split", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	// The written files must load through the public API.
	sys, err := activerules.LoadFiles(filepath.Join(dir, "schema.sdl"), filepath.Join(dir, "rules.srl"))
	if err != nil {
		t.Fatalf("generated files do not load: %v", err)
	}
	if sys.Rules().Len() != 6 {
		t.Errorf("rules = %d", sys.Rules().Len())
	}
	// Acyclic generation: the analyzer must prove termination.
	if !sys.Analyze(nil).Termination.Guaranteed {
		t.Error("acyclic generated set should terminate")
	}
}

func TestRulegenDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	run([]string{"-rules", "4", "-seed", "5"}, &a, &bytes.Buffer{})
	run([]string{"-rules", "4", "-seed", "5"}, &b, &bytes.Buffer{})
	if a.String() != b.String() {
		t.Error("same seed must generate identical output")
	}
}

func TestRulegenErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d", code)
	}
	// Unwritable split dir.
	if code := run([]string{"-split", string(filepath.Separator) + "dev/null/sub"}, &out, &errb); code != 2 {
		t.Errorf("bad split dir: exit = %d", code)
	}
	_ = os.Remove("schema.sdl")
}
