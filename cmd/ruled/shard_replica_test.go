package main

// CLI coverage for the sharded (-shards) and replicated
// (-replicate/-follow) serving modes.

import (
	"encoding/json"
	"io"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// shardFixture has two independent table clusters {a,b} and {c,d}, so
// the maximal shard plan has exactly two shards.
func shardFixture(t *testing.T) (schemaPath, rulesPath, walDir string) {
	t.Helper()
	dir := t.TempDir()
	schemaPath = write(t, dir, "schema.sdl", `
table a (id int, v int)
table b (id int, v int)
table c (id int, v int)
table d (id int, v int)
`)
	rulesPath = write(t, dir, "rules.srl", `
create rule r_ab on a
when inserted
then insert into b select id, v from inserted

create rule r_cd on c
when inserted
then insert into d select id, v from inserted
`)
	return schemaPath, rulesPath, filepath.Join(dir, "wal")
}

func TestRuledShardedSession(t *testing.T) {
	sp, rp, wd := shardFixture(t)
	stdin := strings.NewReader(strings.Join([]string{
		`{"op":"assert","sql":"insert into a values (1, 10)"}`,
		`{"op":"assert","sql":"insert into c values (1, 100)"}`,
		`{"op":"assert","sql":"insert into a values (2, 2); insert into c values (2, 2)"}`,
		`{"op":"health"}`,
		`{"op":"stats"}`,
		`{"op":"checkpoint"}`,
		`{"op":"shutdown"}`,
	}, "\n"))
	var out, errb syncBuffer
	code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd, "-shards", "2"}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	if len(resps) != 7 {
		t.Fatalf("got %d responses, want 7:\n%s", len(resps), out.String())
	}
	for _, i := range []int{0, 1} {
		if resps[i]["ok"] != true || resps[i]["fired"] != float64(1) {
			t.Fatalf("in-shard assert %d = %v", i, resps[i])
		}
	}
	if resps[2]["ok"] != false || resps[2]["code"] != "shard" {
		t.Fatalf("cross-shard assert = %v, want code shard", resps[2])
	}
	health := resps[3]
	if health["ready"] != true {
		t.Fatalf("sharded health = %v", health)
	}
	if shards, ok := health["shards"].([]any); !ok || len(shards) != 2 {
		t.Fatalf("sharded health shards = %v, want 2 entries", health["shards"])
	}
	if resps[4]["accepted"] != float64(2) {
		t.Fatalf("sharded stats accepted = %v, want 2 (the rejected request is never admitted)", resps[4])
	}
	for _, i := range []int{5, 6} {
		if resps[i]["ok"] != true {
			t.Fatalf("response %d = %v", i, resps[i])
		}
	}
}

func TestRuledReplicationFlagConflicts(t *testing.T) {
	sp, rp, wd := fixture(t)
	for _, args := range [][]string{
		{"-schema", sp, "-rules", rp, "-wal", wd, "-shards", "2", "-replicate", "127.0.0.1:0"},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-follow", "127.0.0.1:1", "-shards", "2"},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-follow", "127.0.0.1:1", "-replicate", "127.0.0.1:0"},
	} {
		var out, errb syncBuffer
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Fatalf("%v: exit = %d, want 2; stderr: %s", args, code, errb.String())
		}
	}
}

// TestRuledFollowerReadOnly runs a follower of a source that is not
// there: it must still serve health (disconnected, retrying) and reject
// asserts with code "read-only".
func TestRuledFollowerReadOnly(t *testing.T) {
	sp, rp, wd := fixture(t)
	// A port with no listener: bind one, note it, release it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stdin := strings.NewReader(strings.Join([]string{
		`{"op":"health"}`,
		`{"op":"assert","sql":"insert into src values (1)"}`,
		`{"op":"checkpoint"}`,
		`{"op":"shutdown"}`,
	}, "\n"))
	var out, errb syncBuffer
	code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd, "-follow", addr}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	if len(resps) != 4 {
		t.Fatalf("got %d responses, want 4:\n%s", len(resps), out.String())
	}
	if resps[0]["ok"] != true || resps[0]["ready"] == true {
		t.Fatalf("disconnected follower health = %v", resps[0])
	}
	if resps[1]["code"] != "read-only" || resps[2]["code"] != "read-only" {
		t.Fatalf("follower mutating ops = %v, %v, want code read-only", resps[1], resps[2])
	}
}

// ruledProc drives one in-process run() over pipes, collecting output.
type ruledProc struct {
	t    *testing.T
	in   *io.PipeWriter
	out  *syncBuffer
	errb *syncBuffer
	done chan int
}

func startRuled(t *testing.T, args []string) *ruledProc {
	t.Helper()
	pr, pw := io.Pipe()
	p := &ruledProc{t: t, in: pw, out: &syncBuffer{}, errb: &syncBuffer{}, done: make(chan int, 1)}
	go func() { p.done <- run(args, pr, p.out, p.errb) }()
	return p
}

func (p *ruledProc) send(line string) {
	p.t.Helper()
	if _, err := io.WriteString(p.in, line+"\n"); err != nil {
		p.t.Fatalf("send %q: %v", line, err)
	}
}

// statusLine polls stdout for a "ruled: <prefix>..." line and returns
// the remainder.
func (p *ruledProc) statusLine(prefix string) string {
	p.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(p.out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.t.Fatalf("no %q line; stdout: %s stderr: %s", prefix, p.out.String(), p.errb.String())
	return ""
}

// responses decodes the JSON lines emitted so far.
func (p *ruledProc) responses() []map[string]any {
	p.t.Helper()
	var resps []map[string]any
	for _, line := range strings.Split(p.out.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "ruled:") {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			p.t.Fatalf("non-JSON response line %q: %v", line, err)
		}
		resps = append(resps, m)
	}
	return resps
}

// waitResponses blocks until n responses have been emitted.
func (p *ruledProc) waitResponses(n int) []map[string]any {
	p.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if resps := p.responses(); len(resps) >= n {
			return resps
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.t.Fatalf("timed out waiting for %d responses; stdout: %s", n, p.out.String())
	return nil
}

func (p *ruledProc) shutdown() {
	p.t.Helper()
	p.send(`{"op":"shutdown"}`)
	p.in.Close()
	select {
	case code := <-p.done:
		if code != 0 {
			p.t.Fatalf("exit = %d; stderr: %s", code, p.errb.String())
		}
	case <-time.After(15 * time.Second):
		p.t.Fatalf("no exit after shutdown; stdout: %s", p.out.String())
	}
}

// TestRuledReplicationEndToEnd wires a leader (-replicate) to a
// follower (-follow) through the CLI and checks the follower converges
// to the leader's committed state hash.
func TestRuledReplicationEndToEnd(t *testing.T) {
	sp, rp, wd := fixture(t)
	leader := startRuled(t, []string{"-schema", sp, "-rules", rp, "-wal", wd, "-replicate", "127.0.0.1:0"})
	addr := leader.statusLine("ruled: replicating on ")

	leader.send(`{"op":"assert","sql":"insert into src values (7)"}`)
	// The trailing empty assert fences the insert: a follower applies a
	// committed transaction only once a later begin arrives (until then
	// a streamed abort could still cancel it).
	leader.send(`{"op":"assert"}`)
	lresps := leader.waitResponses(2)
	if lresps[0]["ok"] != true || lresps[0]["fired"] != float64(1) {
		t.Fatalf("leader assert = %v", lresps[0])
	}
	wantHash, _ := lresps[0]["state_hash"].(string)
	if wantHash == "" {
		t.Fatalf("leader assert carries no state_hash: %v", lresps[0])
	}

	fwd := filepath.Join(t.TempDir(), "replica-wal")
	follower := startRuled(t, []string{"-schema", sp, "-rules", rp, "-wal", fwd, "-follow", addr})
	deadline := time.Now().Add(10 * time.Second)
	caught := false
	polls := 0
	for !caught && time.Now().Before(deadline) {
		follower.send(`{"op":"health"}`)
		polls++
		for _, r := range follower.waitResponses(polls) {
			if r["state_hash"] == wantHash {
				caught = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !caught {
		t.Fatalf("follower never reached leader hash %s; follower out: %s", wantHash, follower.out.String())
	}
	follower.shutdown()
	leader.shutdown()
}
