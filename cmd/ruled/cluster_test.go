package main

// CLI coverage for the automatic-failover (-cluster) serving mode and
// the follower lag-health surface.

import (
	"net"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRuledClusterFlagConflicts(t *testing.T) {
	sp, rp, wd := fixture(t)
	for _, args := range [][]string{
		{"-schema", sp, "-rules", rp, "-wal", wd, "-cluster", "-replicate", "127.0.0.1:0", "-peer", "127.0.0.1:1", "-shards", "2"},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-cluster", "-replicate", "127.0.0.1:0", "-peer", "127.0.0.1:1", "-follow", "127.0.0.1:1"},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-cluster", "-peer", "127.0.0.1:1"},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-cluster", "-replicate", "127.0.0.1:0"},
		{"-tenants", t.TempDir(), "-cluster"},
	} {
		var out, errb syncBuffer
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Fatalf("%v: exit = %d, want 2; stderr: %s", args, code, errb.String())
		}
	}
}

// freePort binds an ephemeral port, notes it, and releases it, so two
// cluster members can be cross-wired with static -peer flags.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRuledClusterPairEndToEnd starts both members of a failover pair
// in-process: the bootstrap node must lead and acknowledge asserts, the
// peer must follow and answer asserts with a redirect carrying the
// leader's advertised address, and both health surfaces must report the
// supervisor's view.
func TestRuledClusterPairEndToEnd(t *testing.T) {
	sp, rp, _ := fixture(t)
	dirA := filepath.Join(t.TempDir(), "wal-a")
	dirB := filepath.Join(t.TempDir(), "wal-b")
	addrA, addrB := freePort(t), freePort(t)

	a := startRuled(t, []string{"-schema", sp, "-rules", rp, "-wal", dirA,
		"-cluster", "-replicate", addrA, "-peer", addrB,
		"-bootstrap", "-lease", "300ms", "-advertise", "node-a"})
	a.statusLine("ruled: cluster member on ")
	b := startRuled(t, []string{"-schema", sp, "-rules", rp, "-wal", dirB,
		"-cluster", "-replicate", addrB, "-peer", addrA,
		"-lease", "300ms", "-advertise", "node-b"})
	b.statusLine("ruled: cluster member on ")

	// A fresh leader is suspended until its follower's first ack, so
	// the first asserts may bounce with a redirect; retry until acked.
	deadline := time.Now().Add(15 * time.Second)
	sent, acked := 0, false
	for !acked && time.Now().Before(deadline) {
		a.send(`{"op":"assert","sql":"insert into src values (7)"}`)
		sent++
		resp := a.waitResponses(sent)[sent-1]
		switch {
		case resp["ok"] == true:
			acked = true
		case resp["code"] == "redirect":
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("leader assert = %v", resp)
		}
	}
	if !acked {
		t.Fatalf("bootstrap node never acknowledged an assert; out: %s", a.out.String())
	}

	b.send(`{"op":"assert","sql":"insert into src values (8)"}`)
	if resp := b.waitResponses(1)[0]; resp["code"] != "redirect" || resp["leader"] != "node-a" {
		t.Fatalf("follower assert = %v, want code redirect with leader node-a", resp)
	}

	a.send(`{"op":"health"}`)
	ah := a.waitResponses(sent + 1)[sent]
	if ah["role"] != "leader" || ah["epoch"] != float64(1) || ah["ready"] != true {
		t.Fatalf("leader health = %v", ah)
	}
	if _, ok := ah["serve"].(map[string]any); !ok {
		t.Fatalf("leader health carries no serve sub-view: %v", ah)
	}
	b.send(`{"op":"health"}`)
	bh := b.waitResponses(2)[1]
	if bh["role"] != "follower" || bh["leader"] != "node-a" {
		t.Fatalf("follower health = %v", bh)
	}
	if repl, ok := bh["replication"].(map[string]any); !ok || repl["leader"] != "node-a" {
		t.Fatalf("follower health replication sub-view = %v", bh["replication"])
	}

	b.shutdown()
	a.shutdown()
}

// TestRuledFollowerLagHealthGolden pins the follower health wire shape
// — including the replication-lag fields — as a golden transcript. The
// one wall-clock field (last_frame_ms) is normalized to 0.
func TestRuledFollowerLagHealthGolden(t *testing.T) {
	sp, rp, wd := fixture(t)
	leader := startRuled(t, []string{"-schema", sp, "-rules", rp, "-wal", wd, "-replicate", "127.0.0.1:0"})
	addr := leader.statusLine("ruled: replicating on ")
	leader.send(`{"op":"assert","sql":"insert into src values (7)"}`)
	leader.send(`{"op":"assert"}`) // fence: makes the insert applicable
	lresps := leader.waitResponses(2)
	wantHash, _ := lresps[0]["state_hash"].(string)
	if wantHash == "" {
		t.Fatalf("leader assert carries no state_hash: %v", lresps[0])
	}

	fwd := filepath.Join(t.TempDir(), "replica-wal")
	follower := startRuled(t, []string{"-schema", sp, "-rules", rp, "-wal", fwd, "-follow", addr})
	norm := regexp.MustCompile(`"last_frame_ms":\d+`)
	var got string
	deadline := time.Now().Add(10 * time.Second)
	polls := 0
	for got == "" && time.Now().Before(deadline) {
		follower.send(`{"op":"health"}`)
		polls++
		resps := follower.waitResponses(polls)
		r := resps[polls-1]
		if r["state"] == "following" && r["state_hash"] == wantHash && r["behind"] == float64(0) {
			lines := strings.Split(strings.TrimSpace(follower.out.String()), "\n")
			got = norm.ReplaceAllString(lines[len(lines)-1], `"last_frame_ms":0`) + "\n"
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got == "" {
		t.Fatalf("follower never caught up to %s; out: %s", wantHash, follower.out.String())
	}
	follower.shutdown()
	leader.shutdown()

	golden := filepath.Join("testdata", "follower_health.golden")
	if os.Getenv("RULED_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with RULED_UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("follower health drifted from %s:\n--- want ---\n%s--- got ---\n%s\n(run with RULED_UPDATE_GOLDEN=1 to regenerate)",
			golden, want, got)
	}
}
