package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func fixture(t *testing.T) (schemaPath, rulesPath, walDir string) {
	dir := t.TempDir()
	schemaPath = write(t, dir, "schema.sdl", `
table src (v int)
table dst (v int)
`)
	rulesPath = write(t, dir, "rules.srl", `
create rule copy on src
when inserted
then insert into dst select v from inserted
`)
	return schemaPath, rulesPath, filepath.Join(dir, "wal")
}

// decodeLines parses every JSON line of a session transcript, skipping
// the human-readable "ruled:" status lines.
func decodeLines(t *testing.T, out string) []map[string]any {
	t.Helper()
	var resps []map[string]any
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "ruled:") {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON response line %q: %v", line, err)
		}
		resps = append(resps, m)
	}
	return resps
}

func TestRuledStdioSession(t *testing.T) {
	sp, rp, wd := fixture(t)
	stdin := strings.NewReader(strings.Join([]string{
		`{"op":"assert","sql":"insert into src values (7)"}`,
		`{"op":"assert","sql":"select v from dst"}`,
		`{"op":"health"}`,
		`{"op":"checkpoint"}`,
		`{"op":"stats"}`,
		`{"op":"shutdown"}`,
	}, "\n"))
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	if len(resps) != 6 {
		t.Fatalf("got %d responses, want 6:\n%s", len(resps), out.String())
	}
	for i, r := range resps {
		if r["ok"] != true {
			t.Fatalf("response %d not ok: %v", i, r)
		}
	}
	if resps[0]["fired"] != float64(1) || resps[0]["state_hash"] == "" {
		t.Errorf("assert response = %v", resps[0])
	}
	// The copied row is visible to the follow-up select.
	res, _ := json.Marshal(resps[1]["results"])
	if got := string(res); !strings.Contains(got, "[[7]]") {
		t.Errorf("select results = %s, want row [7]", got)
	}
	if resps[2]["ready"] != true || resps[2]["degraded"] != false {
		t.Errorf("health = %v", resps[2])
	}
	if resps[4]["completed"] != float64(2) {
		t.Errorf("stats completed = %v, want 2 (checkpoints are not counted)", resps[4]["completed"])
	}
	if resps[5]["state"] != "draining" {
		t.Errorf("shutdown ack state = %v", resps[5]["state"])
	}
	if !strings.Contains(out.String(), "ruled: drained cleanly") {
		t.Errorf("missing drain confirmation:\n%s", out.String())
	}
}

func TestRuledDurableAcrossSessions(t *testing.T) {
	sp, rp, wd := fixture(t)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd},
		strings.NewReader(`{"op":"assert","sql":"insert into src values (3)"}`), &out, &errb)
	if code != 0 {
		t.Fatalf("first session: exit %d; %s", code, errb.String())
	}
	out.Reset()
	code = run([]string{"-schema", sp, "-rules", rp, "-wal", wd},
		strings.NewReader(`{"op":"assert","sql":"select v from dst"}`), &out, &errb)
	if code != 0 {
		t.Fatalf("second session: exit %d; %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	res, _ := json.Marshal(resps[0]["results"])
	if got := string(res); !strings.Contains(got, "[[3]]") {
		t.Errorf("state did not survive restart: select = %s", got)
	}
}

func TestRuledBadRequestLines(t *testing.T) {
	sp, rp, wd := fixture(t)
	stdin := strings.NewReader(strings.Join([]string{
		`{not json`,
		`{"op":"frobnicate"}`,
		`{"op":"assert","sql":"insert into nosuch values (1)"}`,
	}, "\n"))
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd}, stdin, &out, &errb); code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3:\n%s", len(resps), out.String())
	}
	if resps[0]["ok"] != false || resps[0]["code"] != "bad-request" {
		t.Errorf("bad JSON response = %v", resps[0])
	}
	if resps[1]["code"] != "bad-request" || !strings.Contains(resps[1]["error"].(string), "frobnicate") {
		t.Errorf("unknown op response = %v", resps[1])
	}
	// A failed assert is an error response, not a dead server.
	if resps[2]["ok"] != false {
		t.Errorf("bad SQL response = %v", resps[2])
	}
}

func TestRuledLivelockErrorCode(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", "table ping (v int)\ntable pong (v int)\n")
	rp := write(t, dir, "rules.srl", `
create rule ra on ping when inserted then delete from ping; insert into pong values (1)
create rule rb on pong when inserted then delete from pong; insert into ping values (1)
`)
	stdin := strings.NewReader(strings.Join([]string{
		`{"op":"assert","sql":"insert into ping values (1)"}`,
		`{"op":"assert","sql":"select v from ping"}`,
	}, "\n"))
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-wal", filepath.Join(dir, "wal"), "-maxsteps", "64"}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	if resps[0]["ok"] != false || resps[0]["code"] != "livelock" {
		t.Errorf("livelocked assert = %v, want code livelock", resps[0])
	}
	// The livelocked transaction rolled back: ping is empty.
	res, _ := json.Marshal(resps[1]["results"])
	if got := string(res); strings.Contains(got, "[[1]]") {
		t.Errorf("livelocked transaction leaked rows: %s", got)
	}
}

func TestRuledUsageErrors(t *testing.T) {
	sp, rp, wd := fixture(t)
	cases := [][]string{
		{},
		{"-schema", sp, "-rules", rp},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-fsync", "bogus"},
		{"-schema", sp, "-rules", rp, "-wal", wd, "-strategy", "bogus"},
		{"-schema", "/nonexistent", "-rules", rp, "-wal", wd},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2; stderr: %s", args, code, errb.String())
		}
	}
}

func TestRuledUnrecoverableWALExitCode(t *testing.T) {
	sp, rp, wd := fixture(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd},
		strings.NewReader(`{"op":"assert","sql":"insert into src values (1)"}`), &out, &errb); code != 0 {
		t.Fatalf("priming session: exit %d; %s", code, errb.String())
	}
	if err := os.WriteFile(filepath.Join(wd, "snapshot.db"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-schema", sp, "-rules", rp, "-wal", wd}, strings.NewReader(""), &out, &errb)
	if code != 7 {
		t.Fatalf("corrupt snapshot: exit %d, want 7; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unrecoverable write-ahead log") {
		t.Errorf("stderr missing diagnostic:\n%s", errb.String())
	}
}

// syncBuffer lets the test read stdout while run writes it from another
// goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRuledTCPSession(t *testing.T) {
	sp, rp, wd := fixture(t)
	var out syncBuffer
	var errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-schema", sp, "-rules", rp, "-wal", wd, "-listen", "127.0.0.1:0"},
			strings.NewReader(""), &out, &errb)
	}()

	// The server prints its bound address once listening.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never listened; stdout: %s stderr: %s", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "ruled: listening "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	send := func(line string) map[string]any {
		t.Helper()
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("no response to %q: %v", line, sc.Err())
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad response %q: %v", sc.Text(), err)
		}
		return m
	}

	if r := send(`{"op":"assert","sql":"insert into src values (9)"}`); r["ok"] != true || r["fired"] != float64(1) {
		t.Fatalf("assert over TCP = %v", r)
	}
	if r := send(`{"op":"health"}`); r["ready"] != true {
		t.Fatalf("health over TCP = %v", r)
	}
	if r := send(`{"op":"shutdown"}`); r["ok"] != true {
		t.Fatalf("shutdown over TCP = %v", r)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d; stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after shutdown op")
	}
}
