package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"activerules"
	"activerules/internal/wal"
)

// FuzzWireOp throws arbitrary bytes at the wire-protocol line decoder —
// including the tenant lifecycle ops — against a live multi-tenant
// backend. Invariants: serveLines never panics, and every response line
// is a JSON object carrying an "ok" field (malformed input becomes a
// typed wire error, never silence or garbage).

var (
	fuzzOnce    sync.Once
	fuzzBackend tenantBackend
)

const fuzzTenant = "inv"

// fuzzManager builds one in-memory manager per test process. MaxTenants
// caps what hostile tenant-create streams can allocate.
func fuzzManager(f *testing.F) tenantBackend {
	f.Helper()
	fuzzOnce.Do(func() {
		m, err := activerules.OpenTenants("root", activerules.TenantConfig{
			FS:         wal.NewMemFS(),
			MaxTenants: 8,
		})
		if err != nil {
			f.Fatal(err)
		}
		fuzzBackend = tenantBackend{m}
	})
	if fuzzBackend.m == nil {
		f.Fatal("fuzz manager failed to start in an earlier target")
	}
	return fuzzBackend
}

// ensureInvariantTenant restores the standing tenant a legitimate fuzz
// input may have dropped: Load revives a detached drop, Create replaces
// a destroyed one, and a stranger is evicted if an input-made fleet
// filled the MaxTenants quota.
func ensureInvariantTenant(t *testing.T, b tenantBackend) {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := b.m.Load(fuzzTenant); err == nil {
			return
		}
		if _, err := b.m.Create(fuzzTenant, "table t (v int)\ntable l (v int)\n",
			"create rule copy on t when inserted then insert into l select v from inserted"); err == nil {
			return
		} else {
			lastErr = err
		}
		for _, id := range b.m.Tenants() {
			if id != fuzzTenant {
				_ = b.m.Drop(id, true)
				break
			}
		}
	}
	t.Fatalf("cannot restore invariant tenant: %v", lastErr)
}

func FuzzWireOp(f *testing.F) {
	seeds := []string{
		`{"op":"assert","tenant":"inv","sql":"insert into t values (1)"}`,
		`{"op":"assert","tenant":"inv","sql":"select v from l"}`,
		`{"op":"assert","sql":"insert into t values (1)"}`,
		`{"op":"checkpoint","tenant":"inv"}`,
		`{"op":"health"}` + "\n" + `{"op":"stats","tenant":"inv"}`,
		`{"op":"tenant-create","tenant":"fz","schema":"table a (v int)\n","rules":""}`,
		`{"op":"tenant-swap","tenant":"inv","rules":"create rule r on t when inserted then insert into t values (1)"}`,
		`{"op":"tenant-drop","tenant":"inv","destroy":true}`,
		`{"op":"tenant-stats"}`,
		`{"op":"tenant-load","tenant":"../escape"}`,
		`{"op":"frobnicate"}`,
		`{not json`,
		``,
		`null`,
		`[1,2,3]`,
		`{"op":"assert","tenant":"inv","sql":"` + strings.Repeat("select ", 40) + `"}`,
		"{\"op\":\"assert\",\"tenant\":\"inv\",\"sql\":\"insert into t values (\xff\xfe)\"}",
		`{"op":"shutdown"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	b := fuzzManager(f)
	f.Fuzz(func(t *testing.T, line string) {
		if len(line) > 2048 {
			t.Skip("oversized input")
		}
		ensureInvariantTenant(t, b)
		var out bytes.Buffer
		serveLines(b, strings.NewReader(line), &out, func() {})
		for _, resp := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
			if resp == "" {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(resp), &m); err != nil {
				t.Fatalf("non-JSON response line %q to input %q: %v", resp, line, err)
			}
			if _, hasOK := m["ok"]; !hasOK {
				t.Fatalf("response %q to input %q lacks the ok field", resp, line)
			}
		}
	})
}
