// Command ruled is a long-running rule server: it recovers a durable
// session from a write-ahead log and serves line-delimited JSON
// requests over stdin/stdout or TCP, with admission control, per-
// request deadlines, rule quarantine (with degraded-mode reporting via
// the paper's §7 Sig(T') analysis), and graceful drain.
//
// Usage:
//
//	ruled -schema schema.sdl -rules rules.srl -wal dir [flags]
//	ruled -tenants root [flags]
//
// Flags:
//
//	-listen addr     serve TCP on addr (e.g. 127.0.0.1:7070); when
//	                 empty (the default), serve stdin/stdout
//	-tenants root    multi-tenant mode: host many independent rule
//	                 systems under one root directory, each with its own
//	                 schema, rules, and WAL (tenants/<id>/wal), restored
//	                 on startup from their manifests; excludes -shards,
//	                 -replicate, and -follow, and makes -schema/-rules/
//	                 -wal unnecessary (tenants are created over the
//	                 wire)
//	-tenant-slots n  per-tenant outstanding-request quota (0 = 8),
//	                 enforced before the tenant's queue; shed requests
//	                 get code "quota", distinct from "overload"
//	-quarantine-on-regress
//	                 admit verdict-regressing tenant-swap ops in
//	                 degraded mode (with a §7 Sig(T') report) instead of
//	                 rejecting them with code "swap-rejected"
//	-parallel n      analyzer worker count for the shared analysis
//	                 cache (0 = sequential; verdicts and reports are
//	                 identical at every parallelism)
//	-shards n        run one engine+WAL per analysis-proven shard
//	                 (Section 7: disjoint Sig(T') groups), coalesced to
//	                 at most n shards, routing each assert to the shard
//	                 owning its tables; cross-shard requests are
//	                 rejected with code "shard". 0 (default) serves one
//	                 unsharded engine
//	-replicate addr  also stream the WAL to follower replicas
//	                 connecting on addr (unsharded mode only)
//	-follow addr     run as a read-only follower replicating from the
//	                 ruled -replicate source at addr; serves health and
//	                 stats (including replication lag: generation, bytes
//	                 behind the leader frontier, time since last frame),
//	                 rejects asserts with code "read-only"
//	-cluster         automatic-failover mode: run one member of a
//	                 leader/follower pair that elects its own role,
//	                 fences deposed leaders durably (WAL epochs), and
//	                 promotes on lease expiry; requires -replicate (this
//	                 node's replication listen address) and -peer;
//	                 excludes -shards, -follow, and -tenants. Asserts
//	                 sent to the non-leader get code "redirect" with the
//	                 leader's advertised address; commits the follower
//	                 never acknowledged get code "unacked"
//	-peer addr       the cluster peer's replication address
//	-advertise addr  this node's client address, carried in cluster
//	                 lease frames for redirects (default: -listen)
//	-bootstrap       cluster: this node self-elects on a completely
//	                 fresh start (exactly one member sets it)
//	-lease d         cluster leadership lease duration (0 = 1s)
//	-queue-depth n   admission queue bound (default 64)
//	-deadline d      default per-request deadline (0 = none); requests
//	                 may override with "deadline_ms"
//	-drain d         graceful-drain bound on shutdown (default 5s)
//	-quarantine n    consecutive attributed faults that quarantine a
//	                 rule (default 3); 0 keeps the default
//	-no-probe        never readmit quarantined rules (no half-open
//	                 probing)
//	-seed n          seed for the jittered probe/retry backoff
//	-maxsteps n      rule-consideration budget per request
//	-strategy s      first | last | random:<seed>
//	-compiled        run rules through the compiled hot path (default
//	                 true); -compiled=false selects the reference
//	                 interpreter — responses are identical either way
//	-fsync policy    commit (default) | always | never
//	-group-commit n  fsync every nth commit (below 2 = every commit)
//
// Protocol: one JSON object per line in, one per line out.
//
//	{"op":"assert","sql":"insert into t values (1)","deadline_ms":100}
//	{"op":"health"}   {"op":"stats"}   {"op":"checkpoint"}   {"op":"shutdown"}
//
// In multi-tenant mode every op carries a "tenant" field routing it to
// that tenant's server, and five lifecycle ops manage the fleet:
//
//	{"op":"tenant-create","tenant":"acme","schema":"...","rules":"..."}
//	{"op":"tenant-load","tenant":"acme"}
//	{"op":"tenant-swap","tenant":"acme","rules":"..."}
//	{"op":"tenant-drop","tenant":"acme","destroy":true}
//	{"op":"tenant-stats"}            (fleet aggregate + analysis cache)
//	{"op":"tenant-stats","tenant":"acme"}   (same as {"op":"stats",...})
//
// Every response carries "ok"; failures add "error" and a stable
// "code": overload | deadline | closed | exec | livelock | maxsteps |
// cancelled | durability | shard | read-only | redirect | unacked |
// quota | swap-rejected | no-tenant | tenant-exists | bad-request.
// A "redirect" body also carries "leader": the address to resend to.
//
// Exit status:
//
//	0  clean shutdown (signal, EOF, or shutdown op; drain completed)
//	2  usage or load errors, or an internal error
//	7  the -wal directory is unrecoverable
//	8  the drain deadline expired before in-flight work completed
//	9  replication failure (-replicate or -follow could not start)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"activerules"
	"activerules/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (code int) {
	// Containment: a hostile rule set or request stream must produce a
	// diagnostic and a sane exit code, never a crash.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "ruled: internal error: panic: %v\n", p)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("ruled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaPath := fs.String("schema", "", "schema definition file (required)")
	rulesPath := fs.String("rules", "", "rule definition file (required)")
	walDir := fs.String("wal", "", "write-ahead log directory (required; recovered on start)")
	listen := fs.String("listen", "", "TCP listen address (empty = stdin/stdout)")
	tenants := fs.String("tenants", "", "multi-tenant root directory (excludes -shards/-replicate/-follow)")
	tenantSlots := fs.Int("tenant-slots", 0, "per-tenant outstanding-request quota (0 = 8)")
	quarOnRegress := fs.Bool("quarantine-on-regress", false, "admit verdict-regressing swaps in degraded mode")
	parallel := fs.Int("parallel", 0, "analyzer workers for the shared analysis cache (0 = sequential)")
	shards := fs.Int("shards", 0, "engines: one per analysis-proven shard, at most n (0 = unsharded)")
	replicate := fs.String("replicate", "", "stream the WAL to followers on this address (unsharded only)")
	follow := fs.String("follow", "", "run as a read-only follower of the source at this address")
	clusterMode := fs.Bool("cluster", false, "automatic-failover pair member (requires -replicate and -peer)")
	peer := fs.String("peer", "", "the cluster peer's replication address")
	advertise := fs.String("advertise", "", "client address carried in cluster lease frames (default: -listen)")
	bootstrap := fs.Bool("bootstrap", false, "cluster: self-elect on a completely fresh start")
	lease := fs.Duration("lease", 0, "cluster leadership lease duration (0 = 1s)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue bound (0 = 64)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = none)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-drain bound on shutdown")
	quarantine := fs.Int("quarantine", 0, "faults that quarantine a rule (0 = 3)")
	noProbe := fs.Bool("no-probe", false, "never readmit quarantined rules")
	seed := fs.Int64("seed", 0, "seed for jittered probe/retry backoff")
	maxSteps := fs.Int("maxsteps", 10000, "rule consideration budget per request")
	compiled := fs.Bool("compiled", true, "run rules through the compiled hot path (false = reference interpreter)")
	strategy := fs.String("strategy", "first", "first | last | random:<seed>")
	fsync := fs.String("fsync", "commit", "commit | always | never")
	groupCommit := fs.Int("group-commit", 0, "fsync every nth commit (below 2 = every commit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tenants == "" && (*schemaPath == "" || *rulesPath == "" || *walDir == "") {
		fmt.Fprintln(stderr, "ruled: -schema, -rules, and -wal are required (or -tenants for multi-tenant mode)")
		fs.Usage()
		return 2
	}

	var sys *activerules.System
	if *tenants == "" {
		var err error
		sys, err = activerules.LoadFiles(*schemaPath, *rulesPath)
		if err != nil {
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		sys.SetCompiled(*compiled)
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(stderr, "ruled:", err)
		return 2
	}
	policy, err := parseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(stderr, "ruled:", err)
		return 2
	}

	cfg := activerules.ServeConfig{
		WAL:                 activerules.WALOptions{Sync: policy, GroupCommit: *groupCommit},
		Engine:              activerules.EngineOptions{MaxSteps: *maxSteps, Strategy: strat},
		QueueDepth:          *queueDepth,
		DefaultDeadline:     *deadline,
		DrainTimeout:        *drain,
		QuarantineThreshold: *quarantine,
		DisableProbing:      *noProbe,
		Seed:                *seed,
	}

	var b backend
	var shutdown func(context.Context) error
	switch {
	case *tenants != "":
		if *shards > 0 || *replicate != "" || *follow != "" || *clusterMode {
			fmt.Fprintln(stderr, "ruled: -tenants excludes -shards, -replicate, -follow, and -cluster")
			return 2
		}
		cfg.Engine.Compiled = *compiled
		m, err := activerules.OpenTenants(*tenants, activerules.TenantConfig{
			Serve:               cfg,
			TenantSlots:         *tenantSlots,
			QuarantineOnRegress: *quarOnRegress,
			AnalysisParallelism: *parallel,
		})
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruled: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		fmt.Fprintf(stdout, "ruled: %d tenant(s)\n", len(m.Tenants()))
		b = tenantBackend{m}
		shutdown = m.Shutdown
	case *clusterMode:
		if *shards > 0 || *follow != "" {
			fmt.Fprintln(stderr, "ruled: -cluster excludes -shards and -follow")
			return 2
		}
		if *replicate == "" || *peer == "" {
			fmt.Fprintln(stderr, "ruled: -cluster requires -replicate (this node's replication listen address) and -peer")
			return 2
		}
		adv := *advertise
		if adv == "" {
			adv = *listen
		}
		peerAddr := *peer
		node, err := sys.NewClusterNode(activerules.ClusterConfig{
			Dir:       *walDir,
			Serve:     cfg,
			ReplAddr:  *replicate,
			Peer:      func() string { return peerAddr },
			Advertise: adv,
			Bootstrap: *bootstrap,
			Lease:     *lease,
			Seed:      *seed,
		})
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruled: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruled: cluster:", err)
			return 9
		}
		fmt.Fprintf(stdout, "ruled: cluster member on %s (peer %s)\n", node.ReplAddr(), peerAddr)
		b = clusterBackend{n: node}
		shutdown = func(context.Context) error { return node.Close() }
	case *follow != "":
		if *shards > 0 || *replicate != "" {
			fmt.Fprintln(stderr, "ruled: -follow excludes -shards and -replicate")
			return 2
		}
		fol, err := sys.NewFollower(*walDir, *follow, activerules.FollowerConfig{Seed: *seed})
		if err != nil {
			fmt.Fprintln(stderr, "ruled: replication:", err)
			return 9
		}
		b = followerBackend{f: fol}
		shutdown = func(context.Context) error { return fol.Close() }
	case *shards > 0:
		if *replicate != "" {
			fmt.Fprintln(stderr, "ruled: -replicate streams one WAL; use it without -shards")
			return 2
		}
		g, err := sys.NewShardGroup(*walDir, *shards, cfg)
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruled: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		fmt.Fprintf(stdout, "ruled: %d shard(s)\n", g.NumShards())
		b = shardBackend{g: g}
		shutdown = g.Shutdown
	default:
		srv, err := sys.NewServer(*walDir, cfg)
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruled: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		if *replicate != "" {
			src, err := activerules.NewReplicaSource(srv, *replicate, activerules.ReplicaSourceConfig{})
			if err != nil {
				srv.Close()
				fmt.Fprintln(stderr, "ruled: replication:", err)
				return 9
			}
			defer src.Close()
			fmt.Fprintf(stdout, "ruled: replicating on %s\n", src.Addr())
		}
		b = flatBackend{srv: srv}
		shutdown = srv.Shutdown
	}

	// stop coordinates the three shutdown triggers: a signal, input
	// EOF (stdio mode), and the shutdown op.
	var stopOnce sync.Once
	stop := make(chan struct{})
	requestStop := func() { stopOnce.Do(func() { close(stop) }) }

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
			requestStop()
		case <-stop:
		}
	}()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "ruled: listening %s\n", ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed during shutdown
				}
				go func() {
					defer conn.Close()
					serveLines(b, conn, conn, requestStop)
				}()
			}
		}()
		<-stop
		ln.Close()
	} else {
		go func() {
			serveLines(b, stdin, stdout, requestStop)
			requestStop() // EOF on stdin drains the server
		}()
		<-stop
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = shutdown(ctx)
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "ruled: drain deadline exceeded; queued work was shed")
		return 8
	}
	if err != nil {
		if errors.Is(err, activerules.ErrUnrecoverableLog) {
			fmt.Fprintln(stderr, "ruled: shutdown:", err)
			return 7
		}
		fmt.Fprintln(stderr, "ruled: shutdown:", err)
		return 2
	}
	fmt.Fprintln(stdout, "ruled: drained cleanly")
	return 0
}

// wireReq is one request line.
type wireReq struct {
	Op         string `json:"op"`
	SQL        string `json:"sql,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	// Tenant routes the op in multi-tenant mode; Schema/Rules/Destroy
	// are the tenant lifecycle ops' payloads.
	Tenant  string `json:"tenant,omitempty"`
	Schema  string `json:"schema,omitempty"`
	Rules   string `json:"rules,omitempty"`
	Destroy bool   `json:"destroy,omitempty"`
}

// serveLines reads JSON lines from r and writes one JSON response line
// per request to w. Writes are serialized so concurrent asserts from
// one peer interleave whole lines.
// backend abstracts the serving modes — one server, a shard group, a
// read-only follower, a tenant fleet — behind the wire protocol. The
// tenant parameter is the request's routing field; single-system
// backends reject a non-empty one with errNoTenant.
type backend interface {
	assert(ctx context.Context, tenant string, req activerules.ServeRequest) (*activerules.ServeResponse, error)
	checkpoint(ctx context.Context, tenant string) error
	healthBody(tenant string) (map[string]any, error)
	statsBody(tenant string) (map[string]any, error)
	tenantOp(ctx context.Context, req wireReq) map[string]any
}

// errReadOnly rejects mutating ops on a follower (code "read-only").
var errReadOnly = errors.New("follower is read-only; send asserts to the leader")

// errNoTenant rejects tenant-routed ops on single-system backends
// (code "no-tenant"); run ruled with -tenants to serve a fleet.
var errNoTenant = errors.New("this server is single-tenant; restart with -tenants to serve tenants")

// singleTenant supplies the tenant rejections shared by the flat,
// shard, and follower backends.
type singleTenant struct{}

func (singleTenant) tenantOp(context.Context, wireReq) map[string]any { return errorBody(errNoTenant) }

func (singleTenant) rejectTenant(tenant string) error {
	if tenant != "" {
		return errNoTenant
	}
	return nil
}

type flatBackend struct {
	singleTenant
	srv *activerules.Server
}

func (b flatBackend) assert(ctx context.Context, tenant string, req activerules.ServeRequest) (*activerules.ServeResponse, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return b.srv.Submit(ctx, req)
}
func (b flatBackend) checkpoint(ctx context.Context, tenant string) error {
	if err := b.rejectTenant(tenant); err != nil {
		return err
	}
	return b.srv.Checkpoint(ctx)
}
func (b flatBackend) healthBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return healthFields(b.srv.Health()), nil
}
func (b flatBackend) statsBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return statsFields(b.srv.Stats()), nil
}

type shardBackend struct {
	singleTenant
	g *activerules.ShardGroup
}

func (b shardBackend) assert(ctx context.Context, tenant string, req activerules.ServeRequest) (*activerules.ServeResponse, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return b.g.Submit(ctx, req)
}
func (b shardBackend) checkpoint(ctx context.Context, tenant string) error {
	if err := b.rejectTenant(tenant); err != nil {
		return err
	}
	return b.g.Checkpoint(ctx)
}

func (b shardBackend) healthBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return b.shardHealth(), nil
}

func (b shardBackend) shardHealth() map[string]any {
	hs := b.g.Health()
	ready, degraded := true, false
	perShard := make([]map[string]any, len(hs))
	state := hs[0].State
	for i, h := range hs {
		ready = ready && h.Ready
		degraded = degraded || h.Degraded
		if h.State != state {
			state = "mixed"
		}
		perShard[i] = healthFields(h)
	}
	return map[string]any{
		"ok": true, "state": state, "ready": ready, "degraded": degraded,
		"shards": perShard,
	}
}

func (b shardBackend) statsBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	sts := b.g.Stats()
	perShard := make([]map[string]any, len(sts))
	var accepted, completed, failed uint64
	for i, st := range sts {
		accepted += st.Accepted
		completed += st.Completed
		failed += st.Failed
		perShard[i] = statsFields(st)
	}
	return map[string]any{
		"ok": true, "accepted": accepted, "completed": completed, "failed": failed,
		"shards": perShard,
	}, nil
}

type followerBackend struct {
	singleTenant
	f *activerules.Follower
}

func (b followerBackend) assert(context.Context, string, activerules.ServeRequest) (*activerules.ServeResponse, error) {
	return nil, errReadOnly
}
func (b followerBackend) checkpoint(context.Context, string) error { return errReadOnly }
func (b followerBackend) healthBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return followerHealthFields(b.f.Health()), nil
}
func (b followerBackend) statsBody(tenant string) (map[string]any, error) {
	return b.healthBody(tenant)
}

// followerHealthFields renders a follower's health including its
// replication lag: the local position, how many bytes it trails the
// leader's durable frontier, and how long ago the last frame arrived.
func followerHealthFields(h activerules.FollowerHealth) map[string]any {
	body := map[string]any{
		"ok":            true,
		"state":         h.State,
		"ready":         h.State == "following",
		"gen":           h.Gen,
		"off":           h.Off,
		"behind":        h.Behind,
		"last_frame_ms": h.LastFrameAge.Milliseconds(),
		"state_hash":    h.StateHash,
	}
	if h.Epoch > 0 {
		body["epoch"] = h.Epoch
	}
	if h.LeaderAddr != "" {
		body["leader"] = h.LeaderAddr
	}
	if h.LastErr != "" {
		body["last_error"] = h.LastErr
	}
	return body
}

// clusterBackend serves one member of an automatic-failover pair. Ops
// work on the leader; a follower (or a suspended leader) answers
// asserts with code "redirect" carrying the believed leader's address.
type clusterBackend struct {
	singleTenant
	n *activerules.ClusterNode
}

func (b clusterBackend) assert(ctx context.Context, tenant string, req activerules.ServeRequest) (*activerules.ServeResponse, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	return b.n.Submit(ctx, req)
}
func (b clusterBackend) checkpoint(ctx context.Context, tenant string) error {
	if err := b.rejectTenant(tenant); err != nil {
		return err
	}
	return b.n.Checkpoint(ctx)
}
func (b clusterBackend) healthBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	h := b.n.Health()
	body := map[string]any{
		"ok":        true,
		"role":      h.Role,
		"epoch":     h.Epoch,
		"ready":     h.Role == "leader" && !h.Suspended,
		"failovers": h.Failovers,
	}
	if h.Suspended {
		body["suspended"] = true
	}
	if h.Leader != "" {
		body["leader"] = h.Leader
	}
	if h.LastErr != "" {
		body["last_error"] = h.LastErr
	}
	if srv := b.n.Server(); srv != nil {
		sub := healthFields(srv.Health())
		delete(sub, "ok")
		body["serve"] = sub
	} else if fol := b.n.Follower(); fol != nil {
		sub := followerHealthFields(fol.Health())
		delete(sub, "ok")
		body["replication"] = sub
	}
	return body, nil
}
func (b clusterBackend) statsBody(tenant string) (map[string]any, error) {
	if err := b.rejectTenant(tenant); err != nil {
		return nil, err
	}
	if srv := b.n.Server(); srv != nil {
		return statsFields(srv.Stats()), nil
	}
	return b.healthBody(tenant)
}

// tenantBackend routes the wire protocol onto a tenant fleet.
type tenantBackend struct{ m *activerules.TenantManager }

// errTenantRequired rejects data-plane ops missing the routing field in
// multi-tenant mode (code "bad-request").
var errTenantRequired = errors.New(`multi-tenant mode: op requires a "tenant" field`)

func (b tenantBackend) assert(ctx context.Context, tenant string, req activerules.ServeRequest) (*activerules.ServeResponse, error) {
	if tenant == "" {
		return nil, errTenantRequired
	}
	return b.m.Submit(ctx, tenant, req)
}

func (b tenantBackend) checkpoint(ctx context.Context, tenant string) error {
	if tenant == "" {
		return errTenantRequired
	}
	return b.m.Checkpoint(ctx, tenant)
}

func (b tenantBackend) healthBody(tenant string) (map[string]any, error) {
	if tenant == "" {
		ids := b.m.Tenants()
		return map[string]any{"ok": true, "tenants": len(ids), "ids": ids}, nil
	}
	h, err := b.m.Health(tenant)
	if err != nil {
		return nil, err
	}
	body := healthFields(h.Health)
	body["tenant"] = h.Tenant
	if h.SwapQuarantine != nil {
		body["swap_quarantine"] = h.SwapQuarantine.String()
	}
	return body, nil
}

func (b tenantBackend) statsBody(tenant string) (map[string]any, error) {
	if tenant == "" {
		return b.fleetStats(), nil
	}
	st, err := b.m.Stats(tenant)
	if err != nil {
		return nil, err
	}
	return tenantStatsFields(st), nil
}

// fleetStats is the aggregate tenant-stats body: the fleet roster plus
// the shared analysis cache's counters.
func (b tenantBackend) fleetStats() map[string]any {
	ms := b.m.StatsAll()
	per := make([]map[string]any, 0, len(ms.PerTenant))
	for _, st := range ms.PerTenant {
		per = append(per, tenantStatsFields(st))
	}
	return map[string]any{
		"ok":            true,
		"tenants":       ms.Tenants,
		"cache_hits":    ms.CacheHits,
		"cache_misses":  ms.CacheMisses,
		"cache_entries": ms.CacheEntries,
		"per_tenant":    per,
	}
}

func tenantStatsFields(st *activerules.TenantStats) map[string]any {
	body := statsFields(st.Stats)
	body["tenant"] = st.Tenant
	body["in_flight"] = st.InFlight
	body["outstanding"] = st.Outstanding
	body["quota_limit"] = st.QuotaLimit
	body["shed_quota"] = st.ShedQuota
	body["rule_set_hash"] = st.RuleSetHash
	return body
}

// summaryFields reports a rule set's analysis verdicts in a lifecycle
// response.
func summaryFields(tenant string, sum *activerules.RuleSetSummary) map[string]any {
	return map[string]any{
		"ok":            true,
		"tenant":        tenant,
		"rule_set_hash": sum.Hash,
		"termination":   sum.Term.String(),
		"terminates":    sum.TermGuaranteed,
		"confluent":     sum.ConfGuaranteed,
		"observable":    sum.ObsGuaranteed,
	}
}

func (b tenantBackend) tenantOp(ctx context.Context, req wireReq) map[string]any {
	if req.Tenant == "" && req.Op != "tenant-stats" {
		return errorBody(errTenantRequired)
	}
	switch req.Op {
	case "tenant-create":
		sum, err := b.m.Create(req.Tenant, req.Schema, req.Rules)
		if err != nil {
			return errorBody(err)
		}
		return summaryFields(req.Tenant, sum)
	case "tenant-load":
		sum, err := b.m.Load(req.Tenant)
		if err != nil {
			return errorBody(err)
		}
		return summaryFields(req.Tenant, sum)
	case "tenant-swap":
		sum, quar, err := b.m.Swap(ctx, req.Tenant, req.Rules)
		if err != nil {
			return errorBody(err)
		}
		body := summaryFields(req.Tenant, sum)
		if quar != nil {
			body["swap_quarantine"] = quar.String()
		}
		return body
	case "tenant-drop":
		if err := b.m.Drop(req.Tenant, req.Destroy); err != nil {
			return errorBody(err)
		}
		return map[string]any{"ok": true, "tenant": req.Tenant, "destroyed": req.Destroy}
	case "tenant-stats":
		body, err := b.statsBody(req.Tenant)
		if err != nil {
			return errorBody(err)
		}
		return body
	default:
		return errorBody(fmt.Errorf("unknown tenant op %q", req.Op))
	}
}

func healthFields(h activerules.ServerHealth) map[string]any {
	return map[string]any{
		"ok":          true,
		"state":       h.State,
		"ready":       h.Ready,
		"degraded":    h.Degraded,
		"quarantined": h.Report.Quarantined,
		"probing":     h.Report.Probing,
		"report":      h.Report.String(),
	}
}

func statsFields(st activerules.ServerStats) map[string]any {
	return map[string]any{
		"ok":             true,
		"state":          st.State,
		"queue_len":      st.QueueLen,
		"queue_cap":      st.QueueCap,
		"accepted":       st.Accepted,
		"completed":      st.Completed,
		"failed":         st.Failed,
		"shed_overload":  st.ShedOverload,
		"shed_deadline":  st.ShedDeadline,
		"reopens":        st.Reopens,
		"avg_service_ns": int64(st.AvgService),
		"quarantined":    st.Quarantined,
		"probing":        st.Probing,
	}
}

func serveLines(b backend, r io.Reader, w io.Writer, requestStop func()) {
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	respond := func(v map[string]any) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(v)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req wireReq
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			respond(map[string]any{"ok": false, "code": "bad-request", "error": "bad JSON: " + err.Error()})
			continue
		}
		switch req.Op {
		case "assert":
			resp, err := b.assert(context.Background(), req.Tenant, activerules.ServeRequest{
				SQL:      req.SQL,
				Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
			})
			if err != nil {
				respond(errorBody(err))
				continue
			}
			respond(assertBody(resp))
		case "health":
			body, err := b.healthBody(req.Tenant)
			if err != nil {
				respond(errorBody(err))
				continue
			}
			respond(body)
		case "stats":
			body, err := b.statsBody(req.Tenant)
			if err != nil {
				respond(errorBody(err))
				continue
			}
			respond(body)
		case "checkpoint":
			if err := b.checkpoint(context.Background(), req.Tenant); err != nil {
				respond(errorBody(err))
				continue
			}
			respond(map[string]any{"ok": true})
		case "tenant-create", "tenant-load", "tenant-swap", "tenant-drop", "tenant-stats":
			respond(b.tenantOp(context.Background(), req))
		case "shutdown":
			respond(map[string]any{"ok": true, "state": activerules.ServerDraining})
			requestStop()
		default:
			respond(map[string]any{"ok": false, "code": "bad-request",
				"error": fmt.Sprintf("unknown op %q (want assert, health, stats, checkpoint, shutdown, or tenant-create/load/swap/drop/stats)", req.Op)})
		}
	}
}

func assertBody(resp *activerules.ServeResponse) map[string]any {
	body := map[string]any{
		"ok":         true,
		"considered": resp.Considered,
		"fired":      resp.Fired,
		"rolledback": resp.RolledBack,
		"state_hash": resp.StateHash,
		"gen":        resp.Gen,
		"attempts":   resp.Attempts,
	}
	if len(resp.FiredByRule) != 0 {
		body["fired_by_rule"] = resp.FiredByRule
	}
	if len(resp.Results) != 0 {
		results := make([]map[string]any, 0, len(resp.Results))
		for _, r := range resp.Results {
			m := map[string]any{"affected": r.Affected}
			if len(r.Rows) != 0 {
				rows := make([][]any, 0, len(r.Rows))
				for _, row := range r.Rows {
					vals := make([]any, 0, len(row))
					for _, v := range row {
						vals = append(vals, jsonValue(v))
					}
					rows = append(rows, vals)
				}
				m["rows"] = rows
			}
			results = append(results, m)
		}
		body["results"] = results
	}
	return body
}

// errorBody maps the serving/engine failure taxonomy to a stable wire
// code. The livelock check precedes the maxsteps one: a livelock
// witness satisfies errors.Is(ErrMaxSteps) but carries more.
func errorBody(err error) map[string]any {
	code := "error"
	var oe *activerules.OverloadError
	var de *activerules.DeadlineError
	var ce *activerules.ServerClosedError
	var xe *activerules.ExecError
	var le *activerules.LivelockError
	var cancelled *activerules.CancelledError
	var dur *activerules.DurabilityError
	var she *activerules.ShardError
	var tq *activerules.TenantQuotaError
	var tsr *activerules.SwapRejectedError
	var tnf *activerules.TenantNotFoundError
	var tex *activerules.TenantExistsError
	var tid *activerules.TenantIDError
	var nl *activerules.NotLeaderError
	var ua *activerules.UnackedError
	switch {
	case errors.As(err, &she):
		code = "shard"
	case errors.As(err, &nl):
		// The client's move is to resend to the leader; a redirect body
		// carries its advertised address when known.
		code = "redirect"
	case errors.As(err, &ua):
		// Durable here, unacknowledged by the follower: the outcome is
		// indeterminate until the pair settles. Distinct from
		// "durability" (which means the transaction did not commit).
		code = "unacked"
	case errors.Is(err, errReadOnly):
		code = "read-only"
	case errors.As(err, &tq):
		// Per-tenant quota shedding, deliberately distinct from the
		// server-level "overload" code.
		code = "quota"
	case errors.As(err, &tsr):
		code = "swap-rejected"
	case errors.As(err, &tnf), errors.Is(err, errNoTenant):
		code = "no-tenant"
	case errors.As(err, &tex):
		code = "tenant-exists"
	case errors.As(err, &tid), errors.Is(err, errTenantRequired):
		code = "bad-request"
	case errors.Is(err, activerules.ErrTenantManagerClosed):
		code = "closed"
	case errors.As(err, &oe):
		code = "overload"
	case errors.As(err, &de):
		code = "deadline"
	case errors.As(err, &ce):
		code = "closed"
	case errors.As(err, &le):
		code = "livelock"
	case errors.As(err, &xe):
		code = "exec"
	case errors.As(err, &cancelled):
		code = "cancelled"
	case errors.As(err, &dur):
		code = "durability"
	case errors.Is(err, activerules.ErrMaxSteps):
		code = "maxsteps"
	}
	body := map[string]any{"ok": false, "code": code, "error": err.Error()}
	if nl != nil && nl.Leader != "" {
		body["leader"] = nl.Leader
	}
	return body
}

func jsonValue(v storage.Value) any {
	switch v.Kind {
	case storage.KindInt:
		return v.I
	case storage.KindFloat:
		return v.F
	case storage.KindString:
		return v.S
	case storage.KindBool:
		return v.B
	default:
		return nil
	}
}

func parseSyncPolicy(s string) (activerules.SyncPolicy, error) {
	switch s {
	case "commit":
		return activerules.SyncCommit, nil
	case "always":
		return activerules.SyncAlways, nil
	case "never":
		return activerules.SyncNever, nil
	default:
		return activerules.SyncCommit, fmt.Errorf("unknown -fsync policy %q (want commit, always, or never)", s)
	}
}

func parseStrategy(s string) (activerules.Strategy, error) {
	switch {
	case s == "first":
		return activerules.FirstByName(), nil
	case s == "last":
		return activerules.LastByName(), nil
	case strings.HasPrefix(s, "random:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(s, "random:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad random seed in %q", s)
		}
		return activerules.SeededStrategy(seed), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", s)
	}
}
