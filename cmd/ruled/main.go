// Command ruled is a long-running rule server: it recovers a durable
// session from a write-ahead log and serves line-delimited JSON
// requests over stdin/stdout or TCP, with admission control, per-
// request deadlines, rule quarantine (with degraded-mode reporting via
// the paper's §7 Sig(T') analysis), and graceful drain.
//
// Usage:
//
//	ruled -schema schema.sdl -rules rules.srl -wal dir [flags]
//
// Flags:
//
//	-listen addr     serve TCP on addr (e.g. 127.0.0.1:7070); when
//	                 empty (the default), serve stdin/stdout
//	-shards n        run one engine+WAL per analysis-proven shard
//	                 (Section 7: disjoint Sig(T') groups), coalesced to
//	                 at most n shards, routing each assert to the shard
//	                 owning its tables; cross-shard requests are
//	                 rejected with code "shard". 0 (default) serves one
//	                 unsharded engine
//	-replicate addr  also stream the WAL to follower replicas
//	                 connecting on addr (unsharded mode only)
//	-follow addr     run as a read-only follower replicating from the
//	                 ruled -replicate source at addr; serves health and
//	                 stats, rejects asserts with code "read-only"
//	-queue-depth n   admission queue bound (default 64)
//	-deadline d      default per-request deadline (0 = none); requests
//	                 may override with "deadline_ms"
//	-drain d         graceful-drain bound on shutdown (default 5s)
//	-quarantine n    consecutive attributed faults that quarantine a
//	                 rule (default 3); 0 keeps the default
//	-no-probe        never readmit quarantined rules (no half-open
//	                 probing)
//	-seed n          seed for the jittered probe/retry backoff
//	-maxsteps n      rule-consideration budget per request
//	-strategy s      first | last | random:<seed>
//	-compiled        run rules through the compiled hot path (default
//	                 true); -compiled=false selects the reference
//	                 interpreter — responses are identical either way
//	-fsync policy    commit (default) | always | never
//	-group-commit n  fsync every nth commit (below 2 = every commit)
//
// Protocol: one JSON object per line in, one per line out.
//
//	{"op":"assert","sql":"insert into t values (1)","deadline_ms":100}
//	{"op":"health"}   {"op":"stats"}   {"op":"checkpoint"}   {"op":"shutdown"}
//
// Every response carries "ok"; failures add "error" and a stable
// "code": overload | deadline | closed | exec | livelock | maxsteps |
// cancelled | durability | shard | read-only | bad-request.
//
// Exit status:
//
//	0  clean shutdown (signal, EOF, or shutdown op; drain completed)
//	2  usage or load errors, or an internal error
//	7  the -wal directory is unrecoverable
//	8  the drain deadline expired before in-flight work completed
//	9  replication failure (-replicate or -follow could not start)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"activerules"
	"activerules/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (code int) {
	// Containment: a hostile rule set or request stream must produce a
	// diagnostic and a sane exit code, never a crash.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "ruled: internal error: panic: %v\n", p)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("ruled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaPath := fs.String("schema", "", "schema definition file (required)")
	rulesPath := fs.String("rules", "", "rule definition file (required)")
	walDir := fs.String("wal", "", "write-ahead log directory (required; recovered on start)")
	listen := fs.String("listen", "", "TCP listen address (empty = stdin/stdout)")
	shards := fs.Int("shards", 0, "engines: one per analysis-proven shard, at most n (0 = unsharded)")
	replicate := fs.String("replicate", "", "stream the WAL to followers on this address (unsharded only)")
	follow := fs.String("follow", "", "run as a read-only follower of the source at this address")
	queueDepth := fs.Int("queue-depth", 0, "admission queue bound (0 = 64)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = none)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-drain bound on shutdown")
	quarantine := fs.Int("quarantine", 0, "faults that quarantine a rule (0 = 3)")
	noProbe := fs.Bool("no-probe", false, "never readmit quarantined rules")
	seed := fs.Int64("seed", 0, "seed for jittered probe/retry backoff")
	maxSteps := fs.Int("maxsteps", 10000, "rule consideration budget per request")
	compiled := fs.Bool("compiled", true, "run rules through the compiled hot path (false = reference interpreter)")
	strategy := fs.String("strategy", "first", "first | last | random:<seed>")
	fsync := fs.String("fsync", "commit", "commit | always | never")
	groupCommit := fs.Int("group-commit", 0, "fsync every nth commit (below 2 = every commit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *schemaPath == "" || *rulesPath == "" || *walDir == "" {
		fmt.Fprintln(stderr, "ruled: -schema, -rules, and -wal are required")
		fs.Usage()
		return 2
	}

	sys, err := activerules.LoadFiles(*schemaPath, *rulesPath)
	if err != nil {
		fmt.Fprintln(stderr, "ruled:", err)
		return 2
	}
	sys.SetCompiled(*compiled)
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(stderr, "ruled:", err)
		return 2
	}
	policy, err := parseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(stderr, "ruled:", err)
		return 2
	}

	cfg := activerules.ServeConfig{
		WAL:                 activerules.WALOptions{Sync: policy, GroupCommit: *groupCommit},
		Engine:              activerules.EngineOptions{MaxSteps: *maxSteps, Strategy: strat},
		QueueDepth:          *queueDepth,
		DefaultDeadline:     *deadline,
		DrainTimeout:        *drain,
		QuarantineThreshold: *quarantine,
		DisableProbing:      *noProbe,
		Seed:                *seed,
	}

	var b backend
	var shutdown func(context.Context) error
	switch {
	case *follow != "":
		if *shards > 0 || *replicate != "" {
			fmt.Fprintln(stderr, "ruled: -follow excludes -shards and -replicate")
			return 2
		}
		fol, err := sys.NewFollower(*walDir, *follow, activerules.FollowerConfig{Seed: *seed})
		if err != nil {
			fmt.Fprintln(stderr, "ruled: replication:", err)
			return 9
		}
		b = followerBackend{fol}
		shutdown = func(context.Context) error { return fol.Close() }
	case *shards > 0:
		if *replicate != "" {
			fmt.Fprintln(stderr, "ruled: -replicate streams one WAL; use it without -shards")
			return 2
		}
		g, err := sys.NewShardGroup(*walDir, *shards, cfg)
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruled: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		fmt.Fprintf(stdout, "ruled: %d shard(s)\n", g.NumShards())
		b = shardBackend{g}
		shutdown = g.Shutdown
	default:
		srv, err := sys.NewServer(*walDir, cfg)
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruled: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		if *replicate != "" {
			src, err := activerules.NewReplicaSource(srv, *replicate, activerules.ReplicaSourceConfig{})
			if err != nil {
				srv.Close()
				fmt.Fprintln(stderr, "ruled: replication:", err)
				return 9
			}
			defer src.Close()
			fmt.Fprintf(stdout, "ruled: replicating on %s\n", src.Addr())
		}
		b = flatBackend{srv}
		shutdown = srv.Shutdown
	}

	// stop coordinates the three shutdown triggers: a signal, input
	// EOF (stdio mode), and the shutdown op.
	var stopOnce sync.Once
	stop := make(chan struct{})
	requestStop := func() { stopOnce.Do(func() { close(stop) }) }

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
			requestStop()
		case <-stop:
		}
	}()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, "ruled:", err)
			return 2
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "ruled: listening %s\n", ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed during shutdown
				}
				go func() {
					defer conn.Close()
					serveLines(b, conn, conn, requestStop)
				}()
			}
		}()
		<-stop
		ln.Close()
	} else {
		go func() {
			serveLines(b, stdin, stdout, requestStop)
			requestStop() // EOF on stdin drains the server
		}()
		<-stop
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = shutdown(ctx)
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "ruled: drain deadline exceeded; queued work was shed")
		return 8
	}
	if err != nil {
		if errors.Is(err, activerules.ErrUnrecoverableLog) {
			fmt.Fprintln(stderr, "ruled: shutdown:", err)
			return 7
		}
		fmt.Fprintln(stderr, "ruled: shutdown:", err)
		return 2
	}
	fmt.Fprintln(stdout, "ruled: drained cleanly")
	return 0
}

// wireReq is one request line.
type wireReq struct {
	Op         string `json:"op"`
	SQL        string `json:"sql,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// serveLines reads JSON lines from r and writes one JSON response line
// per request to w. Writes are serialized so concurrent asserts from
// one peer interleave whole lines.
// backend abstracts the three serving modes — one server, a shard
// group, a read-only follower — behind the wire protocol.
type backend interface {
	assert(ctx context.Context, req activerules.ServeRequest) (*activerules.ServeResponse, error)
	checkpoint(ctx context.Context) error
	healthBody() map[string]any
	statsBody() map[string]any
}

// errReadOnly rejects mutating ops on a follower (code "read-only").
var errReadOnly = errors.New("follower is read-only; send asserts to the leader")

type flatBackend struct{ srv *activerules.Server }

func (b flatBackend) assert(ctx context.Context, req activerules.ServeRequest) (*activerules.ServeResponse, error) {
	return b.srv.Submit(ctx, req)
}
func (b flatBackend) checkpoint(ctx context.Context) error { return b.srv.Checkpoint(ctx) }
func (b flatBackend) healthBody() map[string]any           { return healthFields(b.srv.Health()) }
func (b flatBackend) statsBody() map[string]any            { return statsFields(b.srv.Stats()) }

type shardBackend struct{ g *activerules.ShardGroup }

func (b shardBackend) assert(ctx context.Context, req activerules.ServeRequest) (*activerules.ServeResponse, error) {
	return b.g.Submit(ctx, req)
}
func (b shardBackend) checkpoint(ctx context.Context) error { return b.g.Checkpoint(ctx) }

func (b shardBackend) healthBody() map[string]any {
	hs := b.g.Health()
	ready, degraded := true, false
	perShard := make([]map[string]any, len(hs))
	state := hs[0].State
	for i, h := range hs {
		ready = ready && h.Ready
		degraded = degraded || h.Degraded
		if h.State != state {
			state = "mixed"
		}
		perShard[i] = healthFields(h)
	}
	return map[string]any{
		"ok": true, "state": state, "ready": ready, "degraded": degraded,
		"shards": perShard,
	}
}

func (b shardBackend) statsBody() map[string]any {
	sts := b.g.Stats()
	perShard := make([]map[string]any, len(sts))
	var accepted, completed, failed uint64
	for i, st := range sts {
		accepted += st.Accepted
		completed += st.Completed
		failed += st.Failed
		perShard[i] = statsFields(st)
	}
	return map[string]any{
		"ok": true, "accepted": accepted, "completed": completed, "failed": failed,
		"shards": perShard,
	}
}

type followerBackend struct{ f *activerules.Follower }

func (b followerBackend) assert(context.Context, activerules.ServeRequest) (*activerules.ServeResponse, error) {
	return nil, errReadOnly
}
func (b followerBackend) checkpoint(context.Context) error { return errReadOnly }
func (b followerBackend) healthBody() map[string]any {
	h := b.f.Health()
	body := map[string]any{
		"ok":         true,
		"state":      h.State,
		"ready":      h.State == "following",
		"gen":        h.Gen,
		"off":        h.Off,
		"state_hash": h.StateHash,
	}
	if h.LastErr != "" {
		body["last_error"] = h.LastErr
	}
	return body
}
func (b followerBackend) statsBody() map[string]any { return b.healthBody() }

func healthFields(h activerules.ServerHealth) map[string]any {
	return map[string]any{
		"ok":          true,
		"state":       h.State,
		"ready":       h.Ready,
		"degraded":    h.Degraded,
		"quarantined": h.Report.Quarantined,
		"probing":     h.Report.Probing,
		"report":      h.Report.String(),
	}
}

func statsFields(st activerules.ServerStats) map[string]any {
	return map[string]any{
		"ok":             true,
		"state":          st.State,
		"queue_len":      st.QueueLen,
		"queue_cap":      st.QueueCap,
		"accepted":       st.Accepted,
		"completed":      st.Completed,
		"failed":         st.Failed,
		"shed_overload":  st.ShedOverload,
		"shed_deadline":  st.ShedDeadline,
		"reopens":        st.Reopens,
		"avg_service_ns": int64(st.AvgService),
		"quarantined":    st.Quarantined,
		"probing":        st.Probing,
	}
}

func serveLines(b backend, r io.Reader, w io.Writer, requestStop func()) {
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	respond := func(v map[string]any) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(v)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req wireReq
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			respond(map[string]any{"ok": false, "code": "bad-request", "error": "bad JSON: " + err.Error()})
			continue
		}
		switch req.Op {
		case "assert":
			resp, err := b.assert(context.Background(), activerules.ServeRequest{
				SQL:      req.SQL,
				Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
			})
			if err != nil {
				respond(errorBody(err))
				continue
			}
			respond(assertBody(resp))
		case "health":
			respond(b.healthBody())
		case "stats":
			respond(b.statsBody())
		case "checkpoint":
			if err := b.checkpoint(context.Background()); err != nil {
				respond(errorBody(err))
				continue
			}
			respond(map[string]any{"ok": true})
		case "shutdown":
			respond(map[string]any{"ok": true, "state": activerules.ServerDraining})
			requestStop()
		default:
			respond(map[string]any{"ok": false, "code": "bad-request",
				"error": fmt.Sprintf("unknown op %q (want assert, health, stats, checkpoint, or shutdown)", req.Op)})
		}
	}
}

func assertBody(resp *activerules.ServeResponse) map[string]any {
	body := map[string]any{
		"ok":         true,
		"considered": resp.Considered,
		"fired":      resp.Fired,
		"rolledback": resp.RolledBack,
		"state_hash": resp.StateHash,
		"gen":        resp.Gen,
		"attempts":   resp.Attempts,
	}
	if len(resp.FiredByRule) != 0 {
		body["fired_by_rule"] = resp.FiredByRule
	}
	if len(resp.Results) != 0 {
		results := make([]map[string]any, 0, len(resp.Results))
		for _, r := range resp.Results {
			m := map[string]any{"affected": r.Affected}
			if len(r.Rows) != 0 {
				rows := make([][]any, 0, len(r.Rows))
				for _, row := range r.Rows {
					vals := make([]any, 0, len(row))
					for _, v := range row {
						vals = append(vals, jsonValue(v))
					}
					rows = append(rows, vals)
				}
				m["rows"] = rows
			}
			results = append(results, m)
		}
		body["results"] = results
	}
	return body
}

// errorBody maps the serving/engine failure taxonomy to a stable wire
// code. The livelock check precedes the maxsteps one: a livelock
// witness satisfies errors.Is(ErrMaxSteps) but carries more.
func errorBody(err error) map[string]any {
	code := "error"
	var oe *activerules.OverloadError
	var de *activerules.DeadlineError
	var ce *activerules.ServerClosedError
	var xe *activerules.ExecError
	var le *activerules.LivelockError
	var cancelled *activerules.CancelledError
	var dur *activerules.DurabilityError
	var she *activerules.ShardError
	switch {
	case errors.As(err, &she):
		code = "shard"
	case errors.Is(err, errReadOnly):
		code = "read-only"
	case errors.As(err, &oe):
		code = "overload"
	case errors.As(err, &de):
		code = "deadline"
	case errors.As(err, &ce):
		code = "closed"
	case errors.As(err, &le):
		code = "livelock"
	case errors.As(err, &xe):
		code = "exec"
	case errors.As(err, &cancelled):
		code = "cancelled"
	case errors.As(err, &dur):
		code = "durability"
	case errors.Is(err, activerules.ErrMaxSteps):
		code = "maxsteps"
	}
	return map[string]any{"ok": false, "code": code, "error": err.Error()}
}

func jsonValue(v storage.Value) any {
	switch v.Kind {
	case storage.KindInt:
		return v.I
	case storage.KindFloat:
		return v.F
	case storage.KindString:
		return v.S
	case storage.KindBool:
		return v.B
	default:
		return nil
	}
}

func parseSyncPolicy(s string) (activerules.SyncPolicy, error) {
	switch s {
	case "commit":
		return activerules.SyncCommit, nil
	case "always":
		return activerules.SyncAlways, nil
	case "never":
		return activerules.SyncNever, nil
	default:
		return activerules.SyncCommit, fmt.Errorf("unknown -fsync policy %q (want commit, always, or never)", s)
	}
}

func parseStrategy(s string) (activerules.Strategy, error) {
	switch {
	case s == "first":
		return activerules.FirstByName(), nil
	case s == "last":
		return activerules.LastByName(), nil
	case strings.HasPrefix(s, "random:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(s, "random:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad random seed in %q", s)
		}
		return activerules.SeededStrategy(seed), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", s)
	}
}
