package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const tenantTestSchema = `
table t (v int)
table l (v int)
table ping (v int)
table pong (v int)
`

const tenantTestRules = `create rule copy on t when inserted then insert into l select v from inserted`

// tenantTestRegress adds an undischargeable insert-only cycle: the
// termination (and confluence) verdicts regress versus tenantTestRules.
const tenantTestRegress = tenantTestRules + `
create rule ra on ping when inserted then insert into pong values (1)
create rule rb on pong when inserted then insert into ping values (1)
`

// op builds one wire-protocol request line.
func op(t *testing.T, fields map[string]any) string {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRuledTenantStdioSession(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		op(t, map[string]any{"op": "tenant-create", "tenant": "acme", "schema": tenantTestSchema, "rules": tenantTestRules}),
		op(t, map[string]any{"op": "tenant-create", "tenant": "beta", "schema": tenantTestSchema, "rules": tenantTestRules}),
		op(t, map[string]any{"op": "assert", "tenant": "acme", "sql": "insert into t values (7)"}),
		op(t, map[string]any{"op": "assert", "tenant": "beta", "sql": "insert into t values (8)"}),
		op(t, map[string]any{"op": "assert", "tenant": "acme", "sql": "select v from l"}),
		op(t, map[string]any{"op": "assert", "tenant": "beta", "sql": "select v from l"}),
		op(t, map[string]any{"op": "assert", "sql": "insert into t values (1)"}),
		op(t, map[string]any{"op": "assert", "tenant": "nosuch", "sql": "insert into t values (1)"}),
		op(t, map[string]any{"op": "tenant-swap", "tenant": "acme", "rules": tenantTestRegress}),
		op(t, map[string]any{"op": "health", "tenant": "acme"}),
		op(t, map[string]any{"op": "tenant-stats"}),
		op(t, map[string]any{"op": "tenant-drop", "tenant": "beta", "destroy": true}),
		op(t, map[string]any{"op": "assert", "tenant": "beta", "sql": "insert into t values (1)"}),
		op(t, map[string]any{"op": "shutdown"}),
	}
	var out, errb bytes.Buffer
	code := run([]string{"-tenants", dir}, strings.NewReader(strings.Join(lines, "\n")), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
	resps := decodeLines(t, out.String())
	if len(resps) != len(lines) {
		t.Fatalf("got %d responses, want %d:\n%s", len(resps), len(lines), out.String())
	}

	// Both creates report the analyzer's verdicts — and the same hash,
	// since the rule sets are byte-identical.
	for i := 0; i < 2; i++ {
		if resps[i]["ok"] != true || resps[i]["terminates"] != true || resps[i]["confluent"] != true {
			t.Errorf("create %d = %v", i, resps[i])
		}
	}
	if resps[0]["rule_set_hash"] != resps[1]["rule_set_hash"] {
		t.Errorf("identical rule sets hashed differently: %v vs %v", resps[0]["rule_set_hash"], resps[1]["rule_set_hash"])
	}

	// Each tenant's rules ran in its own system.
	if resps[2]["fired"] != float64(1) || resps[3]["fired"] != float64(1) {
		t.Errorf("asserts = %v / %v", resps[2], resps[3])
	}
	for i, want := range map[int]string{4: "[[7]]", 5: "[[8]]"} {
		res, _ := json.Marshal(resps[i]["results"])
		if !strings.Contains(string(res), want) {
			t.Errorf("response %d: results %s, want %s (tenant isolation)", i, res, want)
		}
	}

	// Routing errors: missing tenant field, unknown tenant.
	if resps[6]["ok"] != false || resps[6]["code"] != "bad-request" {
		t.Errorf("tenantless assert = %v, want code bad-request", resps[6])
	}
	if resps[7]["ok"] != false || resps[7]["code"] != "no-tenant" {
		t.Errorf("unknown-tenant assert = %v, want code no-tenant", resps[7])
	}

	// The verdict-regressing swap is rejected by the analyzer gate.
	if resps[8]["ok"] != false || resps[8]["code"] != "swap-rejected" {
		t.Errorf("regressing swap = %v, want code swap-rejected", resps[8])
	}
	if msg, _ := resps[8]["error"].(string); !strings.Contains(msg, "termination") {
		t.Errorf("swap rejection does not name the lost verdict: %q", msg)
	}

	// The rejected swap left acme serving and healthy.
	if resps[9]["ok"] != true || resps[9]["ready"] != true || resps[9]["tenant"] != "acme" {
		t.Errorf("health = %v", resps[9])
	}

	// Fleet stats: two tenants; the cache holds the shared live set plus
	// the rejected swap candidate, and the identical second create hit.
	if resps[10]["tenants"] != float64(2) || resps[10]["cache_entries"] != float64(2) {
		t.Errorf("fleet stats = %v", resps[10])
	}
	if hits, _ := resps[10]["cache_hits"].(float64); hits < 1 {
		t.Errorf("fleet stats report no cache hits: %v", resps[10])
	}

	// Dropped (destroyed) tenants are gone.
	if resps[11]["ok"] != true || resps[11]["destroyed"] != true {
		t.Errorf("drop = %v", resps[11])
	}
	if resps[12]["code"] != "no-tenant" {
		t.Errorf("assert to destroyed tenant = %v, want code no-tenant", resps[12])
	}

	// Restart: the surviving tenant is restored from its own WAL, with
	// the durable row and the pre-swap rule set intact.
	out.Reset()
	second := []string{
		op(t, map[string]any{"op": "assert", "tenant": "acme", "sql": "select v from l"}),
		op(t, map[string]any{"op": "tenant-stats", "tenant": "acme"}),
	}
	if code := run([]string{"-tenants", dir}, strings.NewReader(strings.Join(second, "\n")), &out, &errb); code != 0 {
		t.Fatalf("second session: exit %d; %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ruled: 1 tenant(s)") {
		t.Errorf("restart did not restore the fleet:\n%s", out.String())
	}
	resps = decodeLines(t, out.String())
	res, _ := json.Marshal(resps[0]["results"])
	if !strings.Contains(string(res), "[[7]]") {
		t.Errorf("durable state lost across restart: %s", res)
	}
	if resps[1]["rule_set_hash"] == "" || resps[1]["tenant"] != "acme" {
		t.Errorf("restored stats = %v", resps[1])
	}
}

func TestRuledTenantFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	for _, extra := range [][]string{
		{"-shards", "2"},
		{"-replicate", "127.0.0.1:0"},
		{"-follow", "127.0.0.1:1"},
	} {
		var out, errb bytes.Buffer
		args := append([]string{"-tenants", dir}, extra...)
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestRuledTenantStatsGolden pins the tenant-stats wire body to a
// golden transcript and requires it to be byte-stable across analyzer
// parallelism — the shared cache's reports must not depend on worker
// scheduling. The scenario is request-free so every counter is zero.
func TestRuledTenantStatsGolden(t *testing.T) {
	lines := []string{
		op(t, map[string]any{"op": "tenant-create", "tenant": "acme", "schema": tenantTestSchema, "rules": tenantTestRules}),
		op(t, map[string]any{"op": "tenant-stats", "tenant": "acme"}),
		op(t, map[string]any{"op": "tenant-stats"}),
	}
	var base string
	for _, par := range []string{"0", "2", "8"} {
		var out, errb bytes.Buffer
		code := run([]string{"-tenants", t.TempDir(), "-parallel", par},
			strings.NewReader(strings.Join(lines, "\n")), &out, &errb)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d; %s", par, code, errb.String())
		}
		// Keep only the JSON lines: the transcript proper.
		var jsonLines []string
		for _, line := range strings.Split(out.String(), "\n") {
			if line != "" && !strings.HasPrefix(line, "ruled:") {
				jsonLines = append(jsonLines, line)
			}
		}
		got := strings.Join(jsonLines, "\n") + "\n"
		if base == "" {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("tenant-stats transcript differs at -parallel %s:\n--- base ---\n%s--- got ---\n%s", par, base, got)
		}
	}

	golden := filepath.Join("testdata", "tenant_stats.golden")
	if os.Getenv("RULED_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(base), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with RULED_UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if base != string(want) {
		t.Errorf("tenant-stats transcript drifted from %s:\n--- want ---\n%s--- got ---\n%s\n(run with RULED_UPDATE_GOLDEN=1 to regenerate)",
			golden, want, base)
	}
}
