package main

// Golden-file tests for rulecheck's report surfaces. Run with -update to
// rewrite the golden files after an intentional output change:
//
//	go test ./cmd/rulecheck -run TestGolden -update
//
// Every surface the command renders — the full report, the quiet
// summary, JSON, Graphviz DOT, the pair explainer, partial confluence,
// statistics, and the auto-repair plan — must be byte-stable: the
// analyses iterate sets in sorted order precisely so that two runs (and
// any worker count) print identical bytes.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const bankSchema = "../../testdata/bank/schema.sdl"
const bankRules = "../../testdata/bank/rules.srl"
const bankCerts = "../../testdata/bank/certs.txt"
const powerSchema = "../../testdata/powernet/schema.sdl"
const powerRules = "../../testdata/powernet/rules.srl"
const lintSchema = "../../testdata/lintdemo/schema.sdl"
const lintRules = "../../testdata/lintdemo/rules.srl"
const cdSchema = "../../testdata/countdown/schema.sdl"
const cdRules = "../../testdata/countdown/rules.srl"
const drSchema = "../../testdata/drain/schema.sdl"
const drRules = "../../testdata/drain/rules.srl"
const cvSchema = "../../testdata/converge/schema.sdl"
const cvRules = "../../testdata/converge/rules.srl"
const flSchema = "../../testdata/flipflop/schema.sdl"
const flRules = "../../testdata/flipflop/rules.srl"

func TestGolden(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"bank-report", []string{"-schema", bankSchema, "-rules", bankRules}, 1},
		{"bank-report-cert", []string{"-schema", bankSchema, "-rules", bankRules, "-cert", bankCerts}, 0},
		{"bank-quiet", []string{"-schema", bankSchema, "-rules", bankRules, "-quiet"}, 1},
		{"bank-json", []string{"-schema", bankSchema, "-rules", bankRules, "-json"}, 1},
		{"bank-dot", []string{"-schema", bankSchema, "-rules", bankRules, "-dot"}, 0},
		{"bank-why", []string{"-schema", bankSchema, "-rules", bankRules, "-why", "r_hold,r_purge"}, 0},
		{"bank-tables", []string{"-schema", bankSchema, "-rules", bankRules, "-cert", bankCerts, "-tables", "audit"}, 0},
		{"bank-stats", []string{"-schema", bankSchema, "-rules", bankRules, "-stats", "-cert", bankCerts}, 0},
		{"bank-autorepair", []string{"-schema", bankSchema, "-rules", bankRules, "-autorepair"}, 0},
		{"bank-shard-plan", []string{"-schema", bankSchema, "-rules", bankRules, "-shard-plan"}, 0},
		{"bank-shard-plan-json", []string{"-schema", bankSchema, "-rules", bankRules, "-shard-plan", "-json"}, 0},
		{"powernet-shard-plan", []string{"-schema", powerSchema, "-rules", powerRules, "-shard-plan"}, 0},
		{"powernet-report", []string{"-schema", powerSchema, "-rules", powerRules}, 1},
		{"powernet-dot", []string{"-schema", powerSchema, "-rules", powerRules, "-dot"}, 0},
		{"lintdemo-report", []string{"-schema", lintSchema, "-rules", lintRules}, 1},
		{"lintdemo-refined", []string{"-schema", lintSchema, "-rules", lintRules, "-refine"}, 0},
		{"lintdemo-refined-json", []string{"-schema", lintSchema, "-rules", lintRules, "-refine", "-json"}, 0},
		{"lintdemo-refined-dot", []string{"-schema", lintSchema, "-rules", lintRules, "-refine", "-dot"}, 0},
		{"lintdemo-why-refine", []string{"-schema", lintSchema, "-rules", lintRules, "-refine", "-why", "r_low,r_hi"}, 0},
		{"lintdemo-lint", []string{"-schema", lintSchema, "-rules", lintRules, "-lint"}, 3},
		{"lintdemo-lint-json", []string{"-schema", lintSchema, "-rules", lintRules, "-lint", "-json"}, 3},
		{"bank-lint", []string{"-schema", bankSchema, "-rules", bankRules, "-lint"}, 0},
		// Tier-2 termination fixtures: three cyclic-but-terminating rule
		// sets that acyclicity alone rejects but a discharge certificate
		// accepts (countdown/ranking, drain/delete-only,
		// converge/convergent-update), plus the undischargeable flipflop
		// control. countdown and drain exit 1 for confluence, not
		// termination.
		{"countdown-report", []string{"-schema", cdSchema, "-rules", cdRules}, 1},
		{"countdown-json", []string{"-schema", cdSchema, "-rules", cdRules, "-json"}, 1},
		{"countdown-lint", []string{"-schema", cdSchema, "-rules", cdRules, "-lint"}, 0},
		{"countdown-why-scc", []string{"-schema", cdSchema, "-rules", cdRules, "-why-scc", "1"}, 0},
		{"countdown-dot", []string{"-schema", cdSchema, "-rules", cdRules, "-dot"}, 0},
		{"drain-report", []string{"-schema", drSchema, "-rules", drRules}, 1},
		{"drain-lint", []string{"-schema", drSchema, "-rules", drRules, "-lint"}, 0},
		{"converge-report", []string{"-schema", cvSchema, "-rules", cvRules}, 0},
		{"converge-lint", []string{"-schema", cvSchema, "-rules", cvRules, "-lint"}, 0},
		{"flipflop-report", []string{"-schema", flSchema, "-rules", flRules}, 1},
		{"flipflop-lint", []string{"-schema", flSchema, "-rules", flRules, "-lint"}, 0},
		{"flipflop-why-scc", []string{"-schema", flSchema, "-rules", flRules, "-why-scc", "1"}, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(tc.args, &out, &errb)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d; stderr: %s", code, tc.wantCode, errb.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
					golden, out.String(), want)
			}
		})
	}
}

// TestWhySCCBadID checks the out-of-range -why-scc diagnostics: a
// usage-level failure (exit 2) that names the valid ID range, or the
// acyclic message when there is no cyclic component at all.
func TestWhySCCBadID(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", cdSchema, "-rules", cdRules, "-why-scc", "99"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if want := "no cyclic component 99: IDs run 1..1"; !bytes.Contains(errb.Bytes(), []byte(want)) {
		t.Errorf("stderr %q does not contain %q", errb.String(), want)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-schema", bankSchema, "-rules", bankRules, "-why-scc", "1"}, &out, &errb); code != 2 {
		t.Fatalf("acyclic: exit = %d, want 2", code)
	}
	if want := "the analyzed triggering graph is acyclic"; !bytes.Contains(errb.Bytes(), []byte(want)) {
		t.Errorf("stderr %q does not contain %q", errb.String(), want)
	}
}

// TestGoldenStableAcrossParallelism re-renders every golden surface with
// -parallel 8 and compares against the same golden files: the -parallel
// flag is a pure performance knob and must never change a byte of
// output.
func TestGoldenStableAcrossParallelism(t *testing.T) {
	cases := [][]string{
		{"-schema", bankSchema, "-rules", bankRules},
		{"-schema", bankSchema, "-rules", bankRules, "-cert", bankCerts},
		{"-schema", bankSchema, "-rules", bankRules, "-json"},
		{"-schema", powerSchema, "-rules", powerRules},
		{"-schema", lintSchema, "-rules", lintRules, "-refine"},
		{"-schema", lintSchema, "-rules", lintRules, "-refine", "-json"},
		{"-schema", lintSchema, "-rules", lintRules, "-lint"},
		{"-schema", lintSchema, "-rules", lintRules, "-lint", "-json"},
		{"-schema", bankSchema, "-rules", bankRules, "-shard-plan"},
		{"-schema", bankSchema, "-rules", bankRules, "-shard-plan", "-json"},
		{"-schema", cdSchema, "-rules", cdRules},
		{"-schema", cdSchema, "-rules", cdRules, "-json"},
		{"-schema", cdSchema, "-rules", cdRules, "-why-scc", "1"},
		{"-schema", flSchema, "-rules", flRules},
		{"-schema", flSchema, "-rules", flRules, "-lint"},
	}
	goldens := []string{"bank-report", "bank-report-cert", "bank-json", "powernet-report",
		"lintdemo-refined", "lintdemo-refined-json", "lintdemo-lint", "lintdemo-lint-json",
		"bank-shard-plan", "bank-shard-plan-json",
		"countdown-report", "countdown-json", "countdown-why-scc",
		"flipflop-report", "flipflop-lint"}
	for i, args := range cases {
		want, err := os.ReadFile(filepath.Join("testdata", goldens[i]+".golden"))
		if err != nil {
			t.Fatalf("%v (run TestGolden with -update first)", err)
		}
		var out, errb bytes.Buffer
		run(append(append([]string{}, args...), "-parallel", "8"), &out, &errb)
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("%s: -parallel 8 output differs from golden", goldens[i])
		}
	}
}

// TestGoldenRepeatable runs the full report twice in-process and demands
// byte equality — a tripwire for any nondeterministic iteration sneaking
// back into the analyses or report rendering.
func TestGoldenRepeatable(t *testing.T) {
	render := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-schema", bankSchema, "-rules", bankRules, "-stats"}, &out, &errb); code != 1 {
			t.Fatalf("exit = %d; stderr: %s", code, errb.String())
		}
		return out.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs from run 0:\n%s", i+1, fmt.Sprintf("got:\n%s\nwant:\n%s", got, first))
		}
	}
}
