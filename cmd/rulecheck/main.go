// Command rulecheck is the interactive rule-analysis environment of the
// paper (Sections 5, 6.4, 9): it loads a schema and a rule set, runs the
// termination, confluence, partial-confluence, and observable-determinism
// analyses, and prints verdicts with the rules responsible for any
// failure and the criteria that would repair it.
//
// Usage:
//
//	rulecheck -schema schema.sdl -rules rules.srl [flags]
//
// Flags:
//
//	-cert file      certification file (see below); repeatable via commas
//	-tables t1,t2   also analyze partial confluence w.r.t. these tables
//	-parallel n     worker count for the pairwise analyses: 0 means one
//	                worker per CPU, 1 (the default) the sequential path;
//	                verdicts are identical at every setting
//	-refine         enable condition-aware refinement: predicate
//	                abstraction prunes statically infeasible triggering
//	                edges and noncommutativity conflicts before the
//	                Section 5/6 analyses
//	-lint           run the rulelint diagnostics (RL0xx codes) instead of
//	                the property analyses; combine with -json for
//	                machine-readable output
//	-shard-plan     print the maximal analysis-proven shard plan (Section
//	                7: table groups with pairwise-disjoint Sig, plus the
//	                rules/edges blocking a finer partition) and exit;
//	                combine with -json for machine-readable output
//	-why-scc n      explain cyclic component n's tier-2 termination
//	                verdict (members, stratum, certificate or the failed
//	                discharge attempts) and exit
//	-quiet          print only the one-line verdict summary
//
// The certification file carries the facts a user has verified in the
// interactive process, one per line:
//
//	commute r1 r2     -- r1 and r2 actually commute (Section 6.1)
//	discharge r3      -- r3 cannot sustain a triggering cycle (Section 5)
//	noedge r1 r2      -- r1 never actually triggers r2 (edge discharge)
//	order r1 r2       -- add priority r1 > r2 (Section 6.4, Approach 2)
//	-- comments and blank lines are ignored
//
// Exit status:
//
//	0  every analyzed property is guaranteed (or -lint found no
//	   error-severity findings)
//	1  some analyzed property may not hold
//	2  usage or load errors
//	3  -lint found at least one error-severity finding
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"activerules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	// Last-resort containment: a hostile rule set must produce a
	// diagnostic and a sane exit code, never a crash.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "rulecheck: internal error: panic: %v\n", p)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("rulecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaPath := fs.String("schema", "", "schema definition file (required)")
	rulesPath := fs.String("rules", "", "rule definition file (required)")
	certPath := fs.String("cert", "", "certification file(s), comma separated")
	tables := fs.String("tables", "", "analyze partial confluence w.r.t. these tables (comma separated)")
	partition := fs.Bool("partition", false, "show independent rule partitions (incremental analysis)")
	dot := fs.Bool("dot", false, "print the triggering graph in Graphviz DOT format and exit")
	user := fs.String("user", "", "restrict user operations, e.g. insert:t,update:t.c,delete:u")
	parallel := fs.Int("parallel", 1, "analysis worker count (0 = one per CPU, 1 = sequential)")
	refine := fs.Bool("refine", false, "enable condition-aware refinement (predicate abstraction)")
	lint := fs.Bool("lint", false, "run the rulelint diagnostics instead of the property analyses")
	shardPlan := fs.Bool("shard-plan", false, "print the maximal analysis-proven shard plan and exit")
	quiet := fs.Bool("quiet", false, "print only the verdict summary")
	jsonOut := fs.Bool("json", false, "emit the verdicts as JSON")
	stats := fs.Bool("stats", false, "include rule-set statistics in the report")
	why := fs.String("why", "", "explain one pair, e.g. -why r1,r2")
	whySCC := fs.Int("why-scc", 0, "explain one cyclic component's termination verdict by its 1-based ID")
	autorepair := fs.Bool("autorepair", false, "print the orderings the automated 6.4 loop would add")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *schemaPath == "" || *rulesPath == "" {
		fmt.Fprintln(stderr, "rulecheck: -schema and -rules are required")
		fs.Usage()
		return 2
	}

	sys, err := activerules.LoadFiles(*schemaPath, *rulesPath)
	if err != nil {
		fmt.Fprintln(stderr, "rulecheck:", err)
		return 2
	}

	cert := activerules.NewCertification()
	if *certPath != "" {
		for _, p := range strings.Split(*certPath, ",") {
			orders, err := loadCertFile(strings.TrimSpace(p), cert)
			if err != nil {
				fmt.Fprintln(stderr, "rulecheck:", err)
				return 2
			}
			if len(orders) > 0 {
				sys, err = sys.WithOrdering(orders...)
				if err != nil {
					fmt.Fprintln(stderr, "rulecheck:", err)
					return 2
				}
			}
		}
	}

	sys.SetAnalysisParallelism(*parallel)
	sys.SetAnalysisRefinement(*refine)

	if *lint {
		lr := sys.Lint(cert)
		if *jsonOut {
			b, err := activerules.RenderLintJSON(lr, *rulesPath)
			if err != nil {
				fmt.Fprintln(stderr, "rulecheck:", err)
				return 2
			}
			stdout.Write(b)
		} else {
			fmt.Fprint(stdout, activerules.RenderLintText(lr, *rulesPath))
		}
		if lr.HasErrors() {
			return 3
		}
		return 0
	}

	if *shardPlan {
		plan := sys.ShardPlan()
		if *jsonOut {
			b, err := json.MarshalIndent(plan, "", "  ")
			if err != nil {
				fmt.Fprintln(stderr, "rulecheck:", err)
				return 2
			}
			stdout.Write(b)
			fmt.Fprintln(stdout)
		} else {
			fmt.Fprint(stdout, plan.String())
		}
		return 0
	}

	if *dot {
		fmt.Fprint(stdout, sys.TriggeringGraphDOT(cert))
		return 0
	}

	if *why != "" {
		a, b, ok := strings.Cut(*why, ",")
		if !ok {
			fmt.Fprintln(stderr, "rulecheck: -why wants two rule names separated by a comma")
			return 2
		}
		out, err := sys.ExplainPair(cert, strings.TrimSpace(a), strings.TrimSpace(b))
		if err != nil {
			fmt.Fprintln(stderr, "rulecheck:", err)
			return 2
		}
		fmt.Fprint(stdout, out)
		return 0
	}

	if *whySCC != 0 {
		term := sys.Analyze(cert).Termination
		if *whySCC < 0 || *whySCC > len(term.SCCs) {
			fmt.Fprint(stderr, "rulecheck: "+activerules.ExplainSCC(term, *whySCC))
			return 2
		}
		fmt.Fprint(stdout, activerules.ExplainSCC(term, *whySCC))
		return 0
	}

	if *autorepair {
		fmt.Fprint(stdout, sys.AutoRepairReport(cert))
		return 0
	}

	if *user != "" {
		ops, err := parseUserOps(*user)
		if err != nil {
			fmt.Fprintln(stderr, "rulecheck:", err)
			return 2
		}
		v := sys.AnalyzeRestricted(cert, ops...)
		fmt.Fprint(stdout, activerules.RestrictedReport(v))
		if v.Termination.Guaranteed && v.Confluence.Guaranteed && v.Observable.Guaranteed() {
			return 0
		}
		return 1
	}

	rep := sys.Analyze(cert)
	if *tables != "" {
		sys.AnalyzeTables(rep, cert, strings.Split(*tables, ",")...)
	}

	if *jsonOut {
		if err := writeJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "rulecheck:", err)
			return 2
		}
		if rep.AllGuaranteed() {
			return 0
		}
		return 1
	}

	if !*quiet {
		if *stats {
			fmt.Fprint(stdout, sys.StatsReport(cert))
		}
		fmt.Fprint(stdout, rep.String())
		if *partition {
			fmt.Fprint(stdout, sys.PartitionReport(cert))
		}
	}
	fmt.Fprintf(stdout, "summary: termination=%v confluence=%v observable-determinism=%v",
		rep.Termination.Guaranteed, rep.Confluence.Guaranteed, rep.Observable.Guaranteed())
	for key, v := range rep.Partial {
		fmt.Fprintf(stdout, " partial[%s]=%v", key, v.Guaranteed())
	}
	fmt.Fprintln(stdout)
	if rep.AllGuaranteed() {
		return 0
	}
	return 1
}

// jsonReport is the machine-readable verdict shape emitted by -json.
type jsonReport struct {
	Termination struct {
		Guaranteed           bool                     `json:"guaranteed"`
		Status               string                   `json:"status"`
		SCCs                 []activerules.SCCVerdict `json:"sccs,omitempty"`
		CyclicSCCs           [][]string               `json:"cyclic_sccs,omitempty"`
		AutoDischarged       []string                 `json:"auto_discharged,omitempty"`
		UserDischarged       []string                 `json:"user_discharged,omitempty"`
		Refined              bool                     `json:"refined,omitempty"`
		RefinementDischarged []string                 `json:"refinement_discharged,omitempty"`
		PrunedEdges          []jsonEdge               `json:"pruned_edges,omitempty"`
	} `json:"termination"`
	Confluence struct {
		Guaranteed   bool            `json:"guaranteed"`
		PairsChecked int             `json:"pairs_checked"`
		Violations   []jsonViolation `json:"violations,omitempty"`
		Upgrades     []jsonUpgrade   `json:"refined_commuting_pairs,omitempty"`
	} `json:"confluence"`
	Observable struct {
		Guaranteed      bool            `json:"guaranteed"`
		ObservableRules []string        `json:"observable_rules,omitempty"`
		Sig             []string        `json:"sig,omitempty"`
		Violations      []jsonViolation `json:"violations,omitempty"`
	} `json:"observable_determinism"`
	Partial map[string]bool `json:"partial_confluence,omitempty"`
	All     bool            `json:"all_guaranteed"`
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Why  string `json:"why"`
}

type jsonUpgrade struct {
	Pair [2]string `json:"pair"`
	Why  []string  `json:"why"`
}

type jsonViolation struct {
	Pair        [2]string `json:"pair"`
	Culprits    [2]string `json:"culprits"`
	Reasons     []string  `json:"reasons"`
	Suggestions []string  `json:"suggestions"`
}

func toJSONViolations(vs []activerules.Violation) []jsonViolation {
	out := make([]jsonViolation, len(vs))
	for i, v := range vs {
		jv := jsonViolation{
			Pair:        [2]string{v.PairI, v.PairJ},
			Culprits:    [2]string{v.CulpritA, v.CulpritB},
			Suggestions: v.Suggestions(),
		}
		for _, r := range v.Reasons {
			jv.Reasons = append(jv.Reasons, r.String())
		}
		out[i] = jv
	}
	return out
}

func writeJSON(w io.Writer, rep *activerules.Report) error {
	var jr jsonReport
	jr.Termination.Guaranteed = rep.Termination.Guaranteed
	jr.Termination.Status = rep.Termination.Status.String()
	jr.Termination.SCCs = rep.Termination.SCCs
	for _, comp := range rep.Termination.CyclicSCCs {
		var names []string
		for _, r := range comp {
			names = append(names, r.Name)
		}
		jr.Termination.CyclicSCCs = append(jr.Termination.CyclicSCCs, names)
	}
	jr.Termination.AutoDischarged = rep.Termination.AutoDischarged
	jr.Termination.UserDischarged = rep.Termination.UserDischarged
	jr.Termination.Refined = rep.Termination.Refined
	for _, d := range rep.Termination.RefinementDischarged {
		jr.Termination.RefinementDischarged = append(jr.Termination.RefinementDischarged, d.Rule)
	}
	for _, pe := range rep.Termination.PrunedEdges {
		jr.Termination.PrunedEdges = append(jr.Termination.PrunedEdges,
			jsonEdge{From: pe.From, To: pe.To, Why: pe.Why})
	}
	jr.Confluence.Guaranteed = rep.Confluence.Guaranteed
	jr.Confluence.PairsChecked = rep.Confluence.PairsChecked
	jr.Confluence.Violations = toJSONViolations(rep.Confluence.Violations)
	for _, up := range rep.Confluence.Upgrades {
		jr.Confluence.Upgrades = append(jr.Confluence.Upgrades,
			jsonUpgrade{Pair: [2]string{up.A, up.B}, Why: up.Why})
	}
	jr.Observable.Guaranteed = rep.Observable.Guaranteed()
	jr.Observable.ObservableRules = rep.Observable.ObservableRules
	jr.Observable.Sig = rep.Observable.Partial.SigNames()
	jr.Observable.Violations = toJSONViolations(rep.Observable.Violations())
	if len(rep.Partial) > 0 {
		jr.Partial = map[string]bool{}
		for k, v := range rep.Partial {
			jr.Partial[k] = v.Guaranteed()
		}
	}
	jr.All = rep.AllGuaranteed()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

// parseUserOps parses the -user restriction syntax:
// "insert:t,delete:u,update:t.c".
func parseUserOps(s string) ([]activerules.Op, error) {
	var out []activerules.Op
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, target, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad user op %q (want kind:target)", part)
		}
		switch kind {
		case "insert":
			out = append(out, activerules.UserInsert(target))
		case "delete":
			out = append(out, activerules.UserDelete(target))
		case "update":
			table, col, ok := strings.Cut(target, ".")
			if !ok {
				return nil, fmt.Errorf("bad update target %q (want table.column)", target)
			}
			out = append(out, activerules.UserUpdate(table, col))
		default:
			return nil, fmt.Errorf("unknown user op kind %q", kind)
		}
	}
	return out, nil
}

// loadCertFile parses a certification file into cert, returning any
// requested orderings (which must be applied to the rule set itself).
func loadCertFile(path string, cert *activerules.Certification) ([][2]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var orders [][2]string
	for lineNo, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "--"); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "commute":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%s:%d: commute wants two rule names", path, lineNo+1)
			}
			cert.CertifyCommutes(fields[1], fields[2])
		case "discharge":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: discharge wants one rule name", path, lineNo+1)
			}
			cert.DischargeRule(fields[1])
		case "order":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%s:%d: order wants two rule names (higher lower)", path, lineNo+1)
			}
			orders = append(orders, [2]string{fields[1], fields[2]})
		case "noedge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%s:%d: noedge wants two rule names (from to)", path, lineNo+1)
			}
			cert.DischargeEdge(fields[1], fields[2])
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, lineNo+1, fields[0])
		}
	}
	return orders, nil
}
