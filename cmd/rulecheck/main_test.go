package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write writes content to a file inside dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const testSchema = `
table trig (x int)
table t (v int)
`

const racyRules = `
create rule ri on trig when inserted then update t set v = 1
create rule rj on trig when inserted then update t set v = 2
`

func TestRulecheckFlagsRace(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"may not be confluent", "summary: termination=true confluence=false"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRulecheckCertRepairs(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	cp := write(t, dir, "certs.txt", "-- repair the race\norder ri rj\n")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-cert", cp, "-quiet"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "confluence=true") {
		t.Errorf("summary wrong: %s", out.String())
	}
	// -quiet suppresses the detailed sections.
	if strings.Contains(out.String(), "TERMINATION:") {
		t.Error("-quiet should suppress sections")
	}
}

func TestRulecheckCommuteAndDischargeDirectives(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", `
create rule loop on t when updated(v) then update t set v = v * 2 where v < 10 and v > 0
create rule ri on trig when inserted then insert into t values (1)
create rule rj on trig when inserted then delete from t where v < 0
`)
	cp := write(t, dir, "certs.txt", "discharge loop\ncommute ri rj\ncommute loop ri\ncommute loop rj\n")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-cert", cp, "-quiet", "-tables", "t"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; stderr=%s out=%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "partial[t]=true") {
		t.Errorf("partial summary missing: %s", out.String())
	}
}

func TestRulecheckPartition(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema+"\ntable iso (y int)\n")
	rp := write(t, dir, "rules.srl", racyRules+`
create rule solo on iso when inserted then delete from iso where y < 0
`)
	var out, errb bytes.Buffer
	run([]string{"-schema", sp, "-rules", rp, "-partition"}, &out, &errb)
	s := out.String()
	if !strings.Contains(s, "PARTITIONS: 2 independent group(s)") {
		t.Errorf("partition report missing:\n%s", s)
	}
	if !strings.Contains(s, "solo") || !strings.Contains(s, "violation(s)") {
		t.Errorf("partition details missing:\n%s", s)
	}
}

func TestRulecheckRestricted(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	// Updates on t trigger neither rule: everything is unreachable, all
	// properties hold.
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-user", "update:t.v"}, &out, &errb)
	if code != 0 {
		t.Fatalf("restricted exit = %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "RESTRICTED ANALYSIS") {
		t.Errorf("missing restricted report:\n%s", out.String())
	}
	// Inserts on trig reach the race: flagged.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-user", "insert:trig"}, &out2, &err2); code != 1 {
		t.Errorf("reachable race should exit 1, got %d", code)
	}
	// Bad syntax.
	for _, u := range []string{"frob:t", "insert", "update:t"} {
		var o, e bytes.Buffer
		if code := run([]string{"-schema", sp, "-rules", rp, "-user", u}, &o, &e); code != 2 {
			t.Errorf("user %q: exit = %d, want 2", u, code)
		}
	}
}

func TestRulecheckWhyAndAutorepair(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-why", "ri, rj"}, &out, &errb)
	if code != 0 {
		t.Fatalf("why exit = %d; %s", code, errb.String())
	}
	for _, want := range []string{"PAIR (ri, rj)", "may NOT commute", "R1 = {ri}", "VIOLATED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("why output missing %q:\n%s", want, out.String())
		}
	}
	// Errors.
	for _, w := range []string{"ri", "ri,ghost"} {
		var o, e bytes.Buffer
		if code := run([]string{"-schema", sp, "-rules", rp, "-why", w}, &o, &e); code != 2 {
			t.Errorf("-why %q: exit = %d, want 2", w, code)
		}
	}
	// Auto-repair.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-autorepair"}, &out2, &err2); code != 0 {
		t.Fatalf("autorepair exit = %d", code)
	}
	if !strings.Contains(out2.String(), "AUTO-REPAIR: confluence guaranteed") ||
		!strings.Contains(out2.String(), "order ri rj") {
		t.Errorf("autorepair output:\n%s", out2.String())
	}
}

func TestRulecheckStats(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	var out, errb bytes.Buffer
	run([]string{"-schema", sp, "-rules", rp, "-stats"}, &out, &errb)
	if !strings.Contains(out.String(), "RULE SET STATISTICS") {
		t.Errorf("stats missing:\n%s", out.String())
	}
}

func TestRulecheckJSON(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-json", "-tables", "t"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var parsed map[string]any
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	conf := parsed["confluence"].(map[string]any)
	if conf["guaranteed"].(bool) {
		t.Error("confluence should be false")
	}
	if len(conf["violations"].([]any)) != 1 {
		t.Error("expected one violation in JSON")
	}
	if parsed["all_guaranteed"].(bool) {
		t.Error("all_guaranteed should be false")
	}
	if parsed["partial_confluence"].(map[string]any)["t"].(bool) {
		t.Error("partial on racing table should be false")
	}
}

func TestRulecheckDOT(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-dot"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "digraph triggering") {
		t.Errorf("missing DOT output:\n%s", out.String())
	}
}

func TestRulecheckErrors(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", testSchema)
	rp := write(t, dir, "rules.srl", racyRules)
	cases := [][]string{
		{},              // missing flags
		{"-schema", sp}, // missing rules
		{"-schema", "/nope", "-rules", rp},
		{"-schema", sp, "-rules", "/nope"},
		{"-schema", sp, "-rules", rp, "-cert", "/nope"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	// The noedge directive breaks cycles without removing rules.
	rp2 := write(t, dir, "cyc.srl", `
create rule r1 on t when updated(v) then update trig set x = 1
create rule r2 on trig when updated(x) then update t set v = 1
`)
	np := write(t, dir, "noedge.txt", "noedge r2 r1\ncommute r1 r2\n")
	var nout, nerr bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp2, "-cert", np, "-quiet"}, &nout, &nerr); code != 0 {
		t.Errorf("noedge cert should pass: exit %d\n%s%s", code, nout.String(), nerr.String())
	}

	// Bad cert directives.
	for _, cert := range []string{"frobnicate x", "commute onlyone", "discharge", "order a", "order a a a", "noedge a"} {
		cp := write(t, dir, "bad.txt", cert)
		var out, errb bytes.Buffer
		if code := run([]string{"-schema", sp, "-rules", rp, "-cert", cp}, &out, &errb); code != 2 {
			t.Errorf("cert %q: exit = %d, want 2", cert, code)
		}
	}
	// Ordering cycle via cert file.
	cp := write(t, dir, "cycle.txt", "order ri rj\norder rj ri\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-cert", cp}, &out, &errb); code != 2 {
		t.Errorf("cyclic order: exit = %d, want 2", code)
	}
}
