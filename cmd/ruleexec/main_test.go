package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func fixture(t *testing.T) (schemaPath, rulesPath, scriptPath string) {
	dir := t.TempDir()
	schemaPath = write(t, dir, "schema.sdl", `
table src (v int)
table dst (v int)
`)
	rulesPath = write(t, dir, "rules.srl", `
create rule copy on src
when inserted
then insert into dst select v from inserted; select v from inserted
`)
	scriptPath = write(t, dir, "ops.sql", "insert into src values (7)")
	return
}

func TestRuleexecBasicRun(t *testing.T) {
	sp, rp, op := fixture(t)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"considered=1 fired=1", "observable: copy:", "dst (1 rows)", "(7)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRuleexecSeedCommitted(t *testing.T) {
	sp, rp, _ := fixture(t)
	dir := t.TempDir()
	seed := write(t, dir, "seed.sql", "insert into src values (1)")
	op := write(t, dir, "ops.sql", "insert into src values (2)")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-seed", seed}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	// Only the scripted insert is part of the transition: one row copied.
	if !strings.Contains(out.String(), "dst (1 rows)") {
		t.Errorf("seed leaked into the transition:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "src (2 rows)") {
		t.Errorf("seed row missing:\n%s", out.String())
	}
}

func TestRuleexecStrategies(t *testing.T) {
	sp, rp, op := fixture(t)
	for _, s := range []string{"first", "last", "random:3"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-strategy", s}, &out, &errb); code != 0 {
			t.Errorf("strategy %s: exit %d (%s)", s, code, errb.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-strategy", "bogus"}, &out, &errb); code != 2 {
		t.Error("bogus strategy should exit 2")
	}
	if code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-strategy", "random:x"}, &out, &errb); code != 2 {
		t.Error("bad random seed should exit 2")
	}
}

func TestRuleexecExplore(t *testing.T) {
	sp, rp, op := fixture(t)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-explore"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	for _, want := range []string{"final database states: 1", "observable streams: 1", "--- stream 1 ---"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explore output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRuleexecExploreDivergence(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", "table trig (x int)\ntable t (v int)")
	rp := write(t, dir, "rules.srl", `
create rule ra on trig when inserted then update t set v = 1
create rule rb on trig when inserted then update t set v = 2
`)
	seed := write(t, dir, "seed.sql", "insert into t values (0)")
	op := write(t, dir, "ops.sql", "insert into trig values (1)")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-seed", seed, "-explore"}, &out, &errb)
	if code != 1 {
		t.Fatalf("divergent exploration should exit 1, got %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "final database states: 2") {
		t.Errorf("expected 2 final states:\n%s", out.String())
	}
}

func TestRuleexecBudgetExceeded(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", "table t (v int)")
	rp := write(t, dir, "rules.srl", "create rule loop on t when inserted then insert into t values (1)")
	op := write(t, dir, "ops.sql", "insert into t values (0)")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-maxsteps", "25"}, &out, &errb)
	if code != 1 {
		t.Fatalf("budget run should exit 1, got %d", code)
	}
	if !strings.Contains(errb.String(), "step budget") {
		t.Errorf("stderr missing budget message: %s", errb.String())
	}
}

func TestRuleexecAssertionSegments(t *testing.T) {
	sp, rp, _ := fixture(t)
	dir := t.TempDir()
	op := write(t, dir, "multi.sql", `
insert into src values (1)
assert
insert into src values (2), (3)
ASSERT;
insert into src values (4)
`)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"assertion point 1: considered=1 fired=1",
		"assertion point 2: considered=1 fired=1",
		"assertion point 3: considered=1 fired=1",
		"dst (4 rows)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRuleexecTrace(t *testing.T) {
	sp, rp, op := fixture(t)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-trace"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d; %s", code, errb.String())
	}
	for _, want := range []string{"trace: assert: begin", "trace: choose copy", "trace: fire copy", "trace: assert: end"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("trace missing %q:\n%s", want, out.String())
		}
	}
}

func TestRuleexecErrors(t *testing.T) {
	sp, rp, op := fixture(t)
	cases := [][]string{
		{},
		{"-schema", sp, "-rules", rp}, // missing script
		{"-schema", "/nope", "-rules", rp, "-script", op},
		{"-schema", sp, "-rules", "/nope", "-script", op},
		{"-schema", sp, "-rules", rp, "-script", "/nope"},
		{"-schema", sp, "-rules", rp, "-script", op, "-seed", "/nope"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	// A script with a rollback is rejected by the engine.
	dir := t.TempDir()
	bad := write(t, dir, "bad.sql", "rollback")
	var out, errb bytes.Buffer
	if code := run([]string{"-schema", sp, "-rules", rp, "-script", bad}, &out, &errb); code != 2 {
		t.Error("user rollback script should exit 2")
	}
}

// pingPongFixture writes a two-rule livelock set: ra and rb bounce a
// single tuple between tables a and b forever.
func pingPongFixture(t *testing.T) (schemaPath, rulesPath, scriptPath string) {
	t.Helper()
	dir := t.TempDir()
	schemaPath = write(t, dir, "schema.sdl", "table a (v int)\ntable b (v int)")
	rulesPath = write(t, dir, "rules.srl", `
create rule ra on a when inserted then delete from a; insert into b values (1)
create rule rb on b when inserted then delete from b; insert into a values (1)
`)
	scriptPath = write(t, dir, "ops.sql", "insert into a values (1)")
	return
}

func TestRuleexecLivelockWitness(t *testing.T) {
	sp, rp, op := pingPongFixture(t)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-maxsteps", "100"}, &out, &errb)
	if code != 3 {
		t.Fatalf("livelock run should exit 3, got %d; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"livelock", "period 2", "ra", "rb", "->"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
}

func TestRuleexecRuntimeActionError(t *testing.T) {
	dir := t.TempDir()
	sp := write(t, dir, "schema.sdl", "table t (v int)")
	rp := write(t, dir, "rules.srl", "create rule bad on t when inserted then update t set v = v / 0")
	op := write(t, dir, "ops.sql", "insert into t values (1)")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op}, &out, &errb)
	if code != 4 {
		t.Fatalf("runtime action failure should exit 4, got %d; stderr: %s", code, errb.String())
	}
	for _, want := range []string{`rule "bad"`, "division by zero", "rolled back"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errb.String())
		}
	}
}

func TestRuleexecTimeout(t *testing.T) {
	// An already-expired deadline: AssertContext observes it before the
	// first consideration, so the exit code is deterministic.
	sp, rp, op := pingPongFixture(t)
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-timeout", "1ns"}, &out, &errb)
	if code != 5 {
		t.Fatalf("timed-out run should exit 5, got %d; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr missing interruption diagnostic:\n%s", errb.String())
	}

	// -timeout also bounds -explore (exploration of this set would
	// otherwise only stop at the cycle check).
	out.Reset()
	errb.Reset()
	code = run([]string{"-schema", sp, "-rules", rp, "-script", op, "-explore", "-timeout", "1ns"}, &out, &errb)
	if code != 5 {
		t.Fatalf("timed-out exploration should exit 5, got %d; stderr: %s", code, errb.String())
	}
}

func TestRuleexecRecoverAcrossRuns(t *testing.T) {
	sp, rp, op := fixture(t)
	wal := filepath.Join(t.TempDir(), "wal")
	args := []string{"-schema", sp, "-rules", rp, "-script", op, "-wal", wal}

	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("first run: exit %d; %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal: fresh directory (gen=1)") {
		t.Errorf("first run missing fresh-directory line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "dst (1 rows)") {
		t.Errorf("first run wrong state:\n%s", out.String())
	}

	// Second run: the first run's committed state is recovered, so the
	// same script accumulates on top of it.
	out.Reset()
	errb.Reset()
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("second run: exit %d; %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal: recovered gen=1") {
		t.Errorf("second run missing recovery summary:\n%s", out.String())
	}
	for _, want := range []string{"dst (2 rows)", "src (2 rows)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("second run missing %q (recovered state lost):\n%s", want, out.String())
		}
	}
}

func TestRuleexecSnapshotEveryRotatesGenerations(t *testing.T) {
	sp, rp, op := fixture(t)
	wal := filepath.Join(t.TempDir(), "wal")
	args := []string{"-schema", sp, "-rules", rp, "-script", op, "-wal", wal, "-snapshot-every", "1"}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d; %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal: checkpoint gen=2") {
		t.Errorf("missing checkpoint line:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("post-checkpoint run: exit %d; %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal: recovered gen=2") {
		t.Errorf("recovery did not resume from the rotated generation:\n%s", out.String())
	}
}

func TestRuleexecUnrecoverableLogExitCode(t *testing.T) {
	sp, rp, op := fixture(t)
	wal := filepath.Join(t.TempDir(), "wal")
	args := []string{"-schema", sp, "-rules", rp, "-script", op, "-wal", wal}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("priming run: exit %d; %s", code, errb.String())
	}
	// Trash the snapshot foundation: the directory must be reported
	// unrecoverable with exit status 7, never silently reset.
	if err := os.WriteFile(filepath.Join(wal, "snapshot.db"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run(args, &out, &errb); code != 7 {
		t.Fatalf("corrupt snapshot: exit %d, want 7; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unrecoverable write-ahead log") {
		t.Errorf("stderr missing diagnostic:\n%s", errb.String())
	}
}

func TestRuleexecWALFlagValidation(t *testing.T) {
	sp, rp, op := fixture(t)
	wal := filepath.Join(t.TempDir(), "wal")
	var out, errb bytes.Buffer
	code := run([]string{"-schema", sp, "-rules", rp, "-script", op, "-wal", wal, "-fsync", "bogus"}, &out, &errb)
	if code != 2 {
		t.Fatalf("bad -fsync should exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown -fsync policy") {
		t.Errorf("stderr missing policy diagnostic:\n%s", errb.String())
	}
}
