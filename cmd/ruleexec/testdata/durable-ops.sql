insert into src values (1)
assert
insert into src values (2), (3)
assert
insert into src values (4)
