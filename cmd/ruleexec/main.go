// Command ruleexec runs a rule set against a database: it executes a
// user SQL script (building the initial transition of Section 2), runs
// rule processing at an assertion point, and prints the final database
// state and the observable action stream.
//
// Usage:
//
//	ruleexec -schema schema.sdl -rules rules.srl -script ops.sql [flags]
//
// Flags:
//
//	-seed file       SQL script executed BEFORE the engine starts (its
//	                 effects are committed state, not part of the
//	                 triggering transition)
//	-strategy s      first | last | random:<seed> — which eligible rule
//	                 to consider when several are unordered
//	-maxsteps n      rule-consideration budget (default 10000)
//	-timeout d       wall-clock bound for rule processing (e.g. 2s);
//	                 0 means none
//	-explore         instead of one run, exhaustively model-check every
//	                 execution order and report the distinct final
//	                 states and observable streams
//	-parallel n      worker count for -explore: 0 means one worker per
//	                 CPU, 1 (the default) the sequential explorer, n > 1
//	                 exactly n workers; verdicts are identical at every
//	                 setting
//	-lint            run the rulelint preflight before executing; any
//	                 error-severity finding (e.g. a dead rule) aborts the
//	                 run with exit status 6
//	-compiled        run rules through the compiled hot path (default
//	                 true); -compiled=false selects the reference
//	                 interpreter — output is byte-identical either way
//	-wal dir         durable mode: open (and recover) a write-ahead log
//	                 in dir; every assertion point is a durable commit,
//	                 and a crashed run resumes from its last commit on
//	                 the next start
//	-snapshot-every n  with -wal, checkpoint (snapshot + log rotation)
//	                 after every n assertion points; 0 never checkpoints
//	-fsync policy    with -wal: commit (default) | always | never
//	-group-commit n  with -wal, fsync every nth commit instead of every
//	                 one (riskier, faster); values below 2 disable
//
// Exit status:
//
//	0  success
//	1  step budget exhausted without a witness (possible
//	   nontermination; the budget may just be too small), or the
//	   exploration found divergence
//	2  usage or load errors, or an internal error
//	3  livelock: rule processing revisited a state — a definitive
//	   runtime nontermination witness; the repeating rule cycle is
//	   printed
//	4  a rule's condition or action failed at runtime (the failed
//	   consideration was rolled back; the database is consistent)
//	5  the -timeout deadline expired
//	6  the -lint preflight found an error-severity finding
//	7  the -wal directory is unrecoverable: its snapshot is corrupt or
//	   does not match its log; committed history cannot be replayed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"activerules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	// Last-resort containment: a hostile rule set must produce a
	// diagnostic and a sane exit code, never a crash.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "ruleexec: internal error: panic: %v\n", p)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("ruleexec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	schemaPath := fs.String("schema", "", "schema definition file (required)")
	rulesPath := fs.String("rules", "", "rule definition file (required)")
	scriptPath := fs.String("script", "", "user operation script (required)")
	seedPath := fs.String("seed", "", "database seed script (committed before the transition)")
	strategy := fs.String("strategy", "first", "first | last | random:<seed>")
	maxSteps := fs.Int("maxsteps", 10000, "rule consideration budget")
	timeout := fs.Duration("timeout", 0, "wall-clock bound for rule processing (0 = none)")
	explore := fs.Bool("explore", false, "model-check all execution orders instead of one run")
	parallel := fs.Int("parallel", 1, "worker count for -explore (0 = one per CPU, 1 = sequential)")
	traceFlag := fs.Bool("trace", false, "print each rule-processing step")
	lint := fs.Bool("lint", false, "run the rulelint preflight; error findings abort with status 6")
	compiled := fs.Bool("compiled", true, "run rules through the compiled hot path (false = reference interpreter)")
	walDir := fs.String("wal", "", "durable mode: write-ahead log directory (recovered on start)")
	snapEvery := fs.Int("snapshot-every", 0, "with -wal, checkpoint after every n assertion points (0 = never)")
	fsync := fs.String("fsync", "commit", "with -wal: commit | always | never")
	groupCommit := fs.Int("group-commit", 0, "with -wal, fsync every nth commit (below 2 = every commit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *schemaPath == "" || *rulesPath == "" || *scriptPath == "" {
		fmt.Fprintln(stderr, "ruleexec: -schema, -rules, and -script are required")
		fs.Usage()
		return 2
	}

	sys, err := activerules.LoadFiles(*schemaPath, *rulesPath)
	if err != nil {
		fmt.Fprintln(stderr, "ruleexec:", err)
		return 2
	}
	sys.SetCompiled(*compiled)
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(stderr, "ruleexec:", err)
		return 2
	}

	if *lint {
		lr := sys.Lint(nil)
		if lr.HasErrors() {
			fmt.Fprint(stderr, activerules.RenderLintText(lr, *rulesPath))
			fmt.Fprintln(stderr, "ruleexec: lint preflight failed; fix the errors or drop -lint")
			return 6
		}
	}

	opts := activerules.EngineOptions{MaxSteps: *maxSteps, Strategy: strat}
	if *traceFlag {
		opts.Trace = func(ev activerules.TraceEvent) {
			fmt.Fprintln(stdout, "trace:", ev.String())
		}
	}
	var eng *activerules.Engine
	var ds *activerules.DurableSession
	if *walDir != "" {
		policy, err := parseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(stderr, "ruleexec:", err)
			return 2
		}
		ds, err = sys.OpenDurable(*walDir, activerules.DurableOptions{
			Engine: opts,
			WAL:    activerules.WALOptions{Sync: policy, GroupCommit: *groupCommit},
		})
		if err != nil {
			if errors.Is(err, activerules.ErrUnrecoverableLog) {
				fmt.Fprintln(stderr, "ruleexec: unrecoverable write-ahead log:", err)
				return 7
			}
			fmt.Fprintln(stderr, "ruleexec:", err)
			return 2
		}
		defer func() {
			if err := ds.Close(); err != nil && code == 0 {
				fmt.Fprintln(stderr, "ruleexec: wal close:", err)
				code = 2
			}
		}()
		eng = ds.Engine
		if info := ds.Recovery(); info.Fresh {
			fmt.Fprintf(stdout, "wal: fresh directory (gen=%d)\n", ds.Gen())
		} else {
			fmt.Fprintf(stdout, "wal: recovered gen=%d records=%d committed=%d mutations=%d aborted=%d discarded=%d truncated=%dB\n",
				info.Gen, info.RecordsScanned, info.TxCommitted, info.MutationsReplayed,
				info.Aborts, info.TailDiscarded, info.TruncatedBytes)
		}
		if *traceFlag {
			fmt.Fprintf(stdout, "trace: wal: gen=%d fsync=%s group-commit=%d\n",
				ds.Gen(), policy, *groupCommit)
		}
	} else {
		eng = sys.NewEngine(sys.NewDB(), opts)
	}

	if *seedPath != "" {
		seedSrc, err := os.ReadFile(*seedPath)
		if err != nil {
			fmt.Fprintln(stderr, "ruleexec:", err)
			return 2
		}
		if _, err := eng.ExecUser(string(seedSrc)); err != nil {
			fmt.Fprintln(stderr, "ruleexec: seed script:", err)
			return 2
		}
		// Seed effects are committed state, not a transition.
		if err := eng.Commit(); err != nil {
			fmt.Fprintln(stderr, "ruleexec: seed commit:", err)
			return 2
		}
	}

	script, err := os.ReadFile(*scriptPath)
	if err != nil {
		fmt.Fprintln(stderr, "ruleexec:", err)
		return 2
	}
	// A line consisting solely of "assert" (or "assert;") separates
	// transitions: each segment is executed and then rule-processed at
	// its own assertion point (Section 2's user-specified assertion
	// points). The final segment is always followed by an assertion.
	segments := splitAssertSegments(string(script))
	if len(segments) == 0 {
		fmt.Fprintln(stderr, "ruleexec: empty script")
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	for i, seg := range segments {
		if strings.TrimSpace(seg) != "" {
			if _, err := eng.ExecUser(seg); err != nil {
				fmt.Fprintf(stderr, "ruleexec: user script (segment %d): %v\n", i+1, err)
				return 2
			}
		}
		if *explore && i == len(segments)-1 {
			return runExplore(ctx, eng, *parallel, stdout, stderr)
		}
		res, err := eng.AssertContext(ctx)
		if err != nil {
			return reportAssertError(err, res, stderr)
		}
		fmt.Fprintf(stdout, "assertion point %d: considered=%d fired=%d rolledback=%v\n",
			i+1, res.Considered, res.Fired, res.RolledBack)
		for _, ev := range res.Observables {
			fmt.Fprintln(stdout, "observable:", ev.String())
		}
		if ds != nil && *snapEvery > 0 && (i+1)%*snapEvery == 0 {
			if err := ds.Checkpoint(); err != nil {
				fmt.Fprintln(stderr, "ruleexec: checkpoint:", err)
				return 2
			}
			fmt.Fprintf(stdout, "wal: checkpoint gen=%d\n", ds.Gen())
		}
	}
	fmt.Fprintln(stdout, "final database:")
	fmt.Fprint(stdout, eng.DB().String())
	return 0
}

// reportAssertError maps a rule-processing failure to a diagnostic and
// an exit code. The LivelockError check must come before the
// ErrMaxSteps one: a livelock witness satisfies errors.Is(ErrMaxSteps)
// for compatibility, but carries strictly more information.
func reportAssertError(err error, res activerules.EngineResult, stderr io.Writer) int {
	var le *activerules.LivelockError
	if errors.As(err, &le) {
		fmt.Fprintf(stderr, "ruleexec: livelock: state revisited after %d rule considerations\n", le.Steps)
		fmt.Fprintf(stderr, "ruleexec: repeating cycle (period %d): %s\n",
			le.Period, strings.Join(le.Cycle, " -> "))
		return 3
	}
	if errors.Is(err, activerules.ErrMaxSteps) {
		fmt.Fprintf(stderr, "ruleexec: %v (considered %d rules)\n", err, res.Considered)
		return 1
	}
	var xe *activerules.ExecError
	if errors.As(err, &xe) {
		fmt.Fprintf(stderr, "ruleexec: %v\n", err)
		fmt.Fprintln(stderr, "ruleexec: the failed consideration was rolled back; the database is consistent")
		return 4
	}
	var ce *activerules.CancelledError
	if errors.As(err, &ce) {
		fmt.Fprintf(stderr, "ruleexec: rule processing interrupted: %v\n", err)
		return 5
	}
	fmt.Fprintln(stderr, "ruleexec:", err)
	return 2
}

// splitAssertSegments splits the script on lines that contain only the
// word "assert" (optionally with a trailing ';').
func splitAssertSegments(src string) []string {
	var segments []string
	var cur strings.Builder
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSuffix(strings.TrimSpace(line), ";")
		if strings.EqualFold(trimmed, "assert") {
			segments = append(segments, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteString(line)
		cur.WriteString("\n")
	}
	segments = append(segments, cur.String())
	return segments
}

func runExplore(ctx context.Context, eng *activerules.Engine, parallel int, stdout, stderr io.Writer) int {
	opts := activerules.ExploreOptions{TrackObservables: true}
	var res *activerules.ExploreResult
	var err error
	if parallel == 1 {
		res, err = activerules.ExploreContext(ctx, eng, opts)
	} else {
		opts.Parallelism = parallel
		res, err = activerules.ExploreParallelContext(ctx, eng, opts)
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(stderr, "ruleexec: exploration interrupted: %v\n", err)
			return 5
		}
		fmt.Fprintln(stderr, "ruleexec:", err)
		return 2
	}
	fmt.Fprintf(stdout, "exploration: states=%d branching=%v terminates=%v\n",
		res.StatesExplored, res.Branching, res.Terminates())
	fmt.Fprintf(stdout, "final database states: %d\n", len(res.FinalDBs))
	fmt.Fprintf(stdout, "observable streams: %d\n", len(res.Streams))
	for i, fp := range res.FinalFingerprints() {
		fmt.Fprintf(stdout, "--- final state %d (schedule: %s) ---\n",
			i+1, strings.Join(res.Witnesses[fp], ", "))
		fmt.Fprint(stdout, res.FinalDBs[fp].String())
	}
	for i, s := range res.StreamRenderings() {
		fmt.Fprintf(stdout, "--- stream %d ---\n%s", i+1, s)
	}
	if !res.Terminates() || len(res.FinalDBs) > 1 || len(res.Streams) > 1 {
		return 1
	}
	return 0
}

func parseSyncPolicy(s string) (activerules.SyncPolicy, error) {
	switch s {
	case "commit":
		return activerules.SyncCommit, nil
	case "always":
		return activerules.SyncAlways, nil
	case "never":
		return activerules.SyncNever, nil
	default:
		return activerules.SyncCommit, fmt.Errorf("unknown -fsync policy %q (want commit, always, or never)", s)
	}
}

func parseStrategy(s string) (activerules.Strategy, error) {
	switch {
	case s == "first":
		return activerules.FirstByName(), nil
	case s == "last":
		return activerules.LastByName(), nil
	case strings.HasPrefix(s, "random:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(s, "random:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad random seed in %q", s)
		}
		return activerules.SeededStrategy(seed), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", s)
	}
}
