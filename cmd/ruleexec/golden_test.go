package main

// Golden-file tests for ruleexec's durable-mode output surfaces: the
// recovery summary line, the -trace wal preamble, and the checkpoint
// lines. Run with -update to rewrite the golden files after an
// intentional output change:
//
//	go test ./cmd/ruleexec -run TestGolden -update
//
// The WAL directory lives in a fresh temp dir per case, so none of its
// paths leak into the output; everything printed must be byte-stable —
// across runs and across -parallel worker counts.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const durSchema = "testdata/durable-schema.sdl"
const durRules = "testdata/durable-rules.srl"
const durOps = "testdata/durable-ops.sql"

func TestGoldenDurable(t *testing.T) {
	base := []string{"-schema", durSchema, "-rules", durRules, "-script", durOps}
	cases := []struct {
		name  string
		extra []string // appended after -wal <dir>
		prime int      // prior runs against the same wal dir
	}{
		{"durable-fresh", []string{"-trace", "-snapshot-every", "2"}, 0},
		{"durable-recovered", nil, 1},
		{"durable-recovered-twice", []string{"-snapshot-every", "1"}, 2},
		{"durable-explore", []string{"-explore"}, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wal := filepath.Join(t.TempDir(), "wal")
			args := append(append([]string{}, base...), "-wal", wal)
			for i := 0; i < tc.prime; i++ {
				var out, errb bytes.Buffer
				if code := run(args, &out, &errb); code != 0 {
					t.Fatalf("priming run %d: exit %d; %s", i, code, errb.String())
				}
			}
			args = append(args, tc.extra...)
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 0 {
				t.Fatalf("exit = %d; stderr: %s", code, errb.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
					golden, out.String(), want)
			}
		})
	}
}

// TestGoldenCompiledModeStable re-renders every durable golden surface
// with the compiled hot path explicitly on and explicitly off; both must
// reproduce the same golden bytes. -compiled is a pure performance knob:
// the compiled engine and the reference interpreter are observably
// indistinguishable (see the differential battery at the repo root).
func TestGoldenCompiledModeStable(t *testing.T) {
	cases := []struct {
		name  string
		extra []string
	}{
		{"durable-fresh", []string{"-trace", "-snapshot-every", "2"}},
		{"durable-explore", []string{"-explore"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.name+".golden"))
			if err != nil {
				t.Fatalf("%v (run TestGoldenDurable with -update first)", err)
			}
			for _, mode := range []string{"true", "false"} {
				wal := filepath.Join(t.TempDir(), "wal")
				args := []string{"-schema", durSchema, "-rules", durRules, "-script", durOps,
					"-wal", wal, "-compiled=" + mode}
				args = append(args, tc.extra...)
				var out, errb bytes.Buffer
				if code := run(args, &out, &errb); code != 0 {
					t.Fatalf("-compiled=%s: exit %d; %s", mode, code, errb.String())
				}
				if !bytes.Equal(out.Bytes(), want) {
					t.Errorf("-compiled=%s output differs from golden:\ngot:\n%s\nwant:\n%s",
						mode, out.String(), want)
				}
			}
		})
	}
}

// TestGoldenDurableStableAcrossParallelism re-renders the durable
// exploration surface at several -parallel worker counts and compares
// each against the same golden bytes: -parallel is a pure performance
// knob even in durable mode.
func TestGoldenDurableStableAcrossParallelism(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "durable-explore.golden"))
	if err != nil {
		t.Fatalf("%v (run TestGoldenDurable with -update first)", err)
	}
	for _, workers := range []string{"0", "2", "8"} {
		wal := filepath.Join(t.TempDir(), "wal")
		var out, errb bytes.Buffer
		code := run([]string{"-schema", durSchema, "-rules", durRules, "-script", durOps,
			"-wal", wal, "-explore", "-parallel", workers}, &out, &errb)
		if code != 0 {
			t.Fatalf("-parallel %s: exit %d; %s", workers, code, errb.String())
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("-parallel %s output differs from golden:\ngot:\n%s\nwant:\n%s",
				workers, out.String(), want)
		}
	}
}
