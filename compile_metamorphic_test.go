package activerules_test

// Metamorphic properties of the compiled hot path: observable behavior
// must be invariant under transformations that cannot matter — the
// order rules were loaded in, the explorer's worker count, and whether
// the delta-driven trigger index is maintained incrementally or rebuilt
// from scratch between steps. Each invariance is checked in both modes
// and cross-checked compiled-vs-interpreted.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"activerules"
	"activerules/internal/rules"
	"activerules/internal/workload"
)

// metamorphicWorkload is the shared branching workload: cyclic enough
// to cascade, conditioned enough to skip, observable enough to compare
// streams.
func metamorphicWorkload(t *testing.T) *workload.Generated {
	t.Helper()
	g, err := workload.Generate(workload.Config{
		Seed: 21, Rules: 10, Tables: 4, Acyclic: true, WriteFanout: 2,
		UpdateFrac: 0.3, DeleteFrac: 0.1, ConditionFrac: 0.4,
		TransRefFrac: 0.5, ObservableFrac: 0.4, PriorityDensity: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func metamorphicScript(sch *activerules.Schema) (seed string, segs []string) {
	for _, tbl := range sch.TableNames() {
		seed += fmt.Sprintf("insert into %s values (0, 20), (1, 55), (2, 80);\n", tbl)
	}
	rng := rand.New(rand.NewSource(210))
	return seed, []string{workload.UserScript(sch, rng, 4), workload.UserScript(sch, rng, 3)}
}

// invariantView strips a modeRun down to what load-order permutation
// must preserve. Trace streams legitimately differ (the "choose" events
// list triggered rules in definition order), and StateHash covers
// engine bookkeeping indexed by definition order (per-rule marks), so
// neither is included; the database content, every count, and the
// observable stream may not differ.
type invariantView struct {
	considered  []int
	fired       []int
	rolledBack  []bool
	firedByRule []map[string]int
	observables []string
	assertErrs  []string
	finalDB     string
}

func view(r modeRun) invariantView {
	return invariantView{
		considered: r.considered, fired: r.fired, rolledBack: r.rolledBack,
		firedByRule: r.firedByRule, observables: r.observables,
		assertErrs: r.assertErrs, finalDB: r.finalDB,
	}
}

// TestCompileMetamorphicLoadOrder permutes the order rule definitions
// are loaded in. Under the deterministic FirstByName strategy the whole
// run — counts, observables, state hash — must be permutation-invariant
// in both modes (the strategy picks by name; candidate scanning and
// TriggeredRules only affect order within the eligible set).
func TestCompileMetamorphicLoadOrder(t *testing.T) {
	g := metamorphicWorkload(t)
	seed, segs := metamorphicScript(g.Schema)

	perms := map[string]func([]rules.Definition) []rules.Definition{
		"identity": func(d []rules.Definition) []rules.Definition { return d },
		"reversed": func(d []rules.Definition) []rules.Definition {
			out := append([]rules.Definition(nil), d...)
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
			return out
		},
		"name-desc": func(d []rules.Definition) []rules.Definition {
			out := append([]rules.Definition(nil), d...)
			sort.Slice(out, func(i, j int) bool { return out[i].Name > out[j].Name })
			return out
		},
		"shuffled": func(d []rules.Definition) []rules.Definition {
			out := append([]rules.Definition(nil), d...)
			rng := rand.New(rand.NewSource(5))
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		},
	}

	var baseline *invariantView
	for name, perm := range perms {
		sys, err := activerules.FromDefinitions(g.Schema, perm(g.Defs))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		interp := runMode(t, sys, false, seed, segs, twinOptions{maxSteps: 500})
		comp := runMode(t, sys, true, seed, segs, twinOptions{maxSteps: 500})
		// Within one permutation the two modes must agree exactly,
		// including the state hash and the trace stream.
		if interp.stateHash != comp.stateHash {
			t.Errorf("%s: compiled state hash diverged from interpreted", name)
		}
		if !reflect.DeepEqual(interp.trace, comp.trace) {
			t.Errorf("%s: compiled trace diverged from interpreted", name)
		}
		for _, m := range []struct {
			label string
			run   modeRun
		}{{"interpreted", interp}, {"compiled", comp}} {
			v := view(m.run)
			if baseline == nil {
				baseline = &v
				continue
			}
			if !reflect.DeepEqual(*baseline, v) {
				t.Errorf("%s/%s: run diverged across load orders:\n baseline: %+v\n got:      %+v",
					name, m.label, *baseline, v)
			}
		}
	}
	if baseline != nil && len(baseline.observables) == 0 {
		t.Error("workload produced no observables; the invariance check is vacuous")
	}
}

// TestCompileMetamorphicExploreParallel model-checks one branching
// workload at explorer parallelism 0 (one worker per CPU), 2, and 8, in
// both modes, and requires identical verdicts, final states, and
// observable streams everywhere. The sequential interpreted explorer is
// the oracle.
func TestCompileMetamorphicExploreParallel(t *testing.T) {
	g, err := workload.Generate(workload.Config{
		Seed: 4, Rules: 7, Tables: 3, Acyclic: true, WriteFanout: 2,
		UpdateFrac: 0.4, DeleteFrac: 0.1, ConditionFrac: 0.2, TransRefFrac: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := activerules.FromDefinitions(g.Schema, g.Defs)
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := metamorphicScript(g.Schema)
	rng := rand.New(rand.NewSource(5))
	script := workload.UserScript(g.Schema, rng, 5)

	mkEngine := func(compiled bool) *activerules.Engine {
		sys.SetCompiled(compiled)
		eng := sys.NewEngine(sys.NewDB(), activerules.EngineOptions{MaxSteps: 500})
		if _, err := eng.ExecUser(seed); err != nil {
			t.Fatal(err)
		}
		if err := eng.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ExecUser(script); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	type verdict struct {
		terminates   bool
		fingerprints [][32]byte
		streams      []string
	}
	render := func(res *activerules.ExploreResult) verdict {
		return verdict{
			terminates:   res.Terminates(),
			fingerprints: res.FinalFingerprints(),
			streams:      res.StreamRenderings(),
		}
	}

	opts := activerules.ExploreOptions{TrackObservables: true, MaxStates: 50000}
	oracleRes, err := activerules.Explore(mkEngine(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := render(oracleRes)
	if len(oracle.fingerprints) == 0 {
		t.Fatal("oracle exploration found no final states")
	}

	for _, compiled := range []bool{false, true} {
		for _, workers := range []int{0, 2, 8} {
			label := fmt.Sprintf("compiled=%v/parallel=%d", compiled, workers)
			popts := opts
			popts.Parallelism = workers
			res, err := activerules.ExploreParallel(mkEngine(compiled), popts)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if got := render(res); !reflect.DeepEqual(got, oracle) {
				t.Errorf("%s: exploration verdict diverged from sequential interpreted oracle\n got:    %+v\n oracle: %+v",
					label, got, oracle)
			}
		}
		// The sequential explorer too, in both modes.
		res, err := activerules.Explore(mkEngine(compiled), opts)
		if err != nil {
			t.Fatalf("sequential compiled=%v: %v", compiled, err)
		}
		if got := render(res); !reflect.DeepEqual(got, oracle) {
			t.Errorf("sequential compiled=%v diverged from oracle", compiled)
		}
	}
}

// TestCompileMetamorphicRebuildIndex drives rule processing step by
// step and rebuilds the candidate index from scratch before every
// step. The incremental index is a lazy superset of the rebuilt
// fixpoint, and candidacy is filtered through the exact transition
// predicate, so the chosen rules — and therefore every observable —
// must be identical. The interpreted stepper is run too, as the oracle.
func TestCompileMetamorphicRebuildIndex(t *testing.T) {
	g := metamorphicWorkload(t)
	seed, segs := metamorphicScript(g.Schema)
	sys, err := activerules.FromDefinitions(g.Schema, g.Defs)
	if err != nil {
		t.Fatal(err)
	}

	// step mirrors one Assert iteration under FirstByName: consider the
	// eligible rule with the smallest name until quiescence.
	type stepRun struct {
		chosen []string
		fired  []bool
		finals []string // StateFingerprint after each segment's quiescence
	}
	drive := func(compiled, rebuild bool) stepRun {
		t.Helper()
		sys.SetCompiled(compiled)
		eng := sys.NewEngine(sys.NewDB(), activerules.EngineOptions{MaxSteps: 500})
		if _, err := eng.ExecUser(seed); err != nil {
			t.Fatal(err)
		}
		if err := eng.Commit(); err != nil {
			t.Fatal(err)
		}
		var run stepRun
		for _, seg := range segs {
			if _, err := eng.ExecUser(seg); err != nil {
				t.Fatal(err)
			}
			eng.BeginAssert()
			for steps := 0; ; steps++ {
				if steps > 500 {
					t.Fatal("stepper exceeded budget; workload is supposed to terminate")
				}
				if rebuild {
					eng.RebuildTriggerIndex()
				}
				eligible := eng.EligibleRules()
				if len(eligible) == 0 {
					break
				}
				r := eligible[0]
				for _, cand := range eligible[1:] {
					if cand.Name < r.Name {
						r = cand
					}
				}
				fired, _, rolled, err := eng.Consider(r)
				if err != nil {
					t.Fatalf("consider %s: %v", r.Name, err)
				}
				if rolled {
					t.Fatalf("unexpected rollback from %s", r.Name)
				}
				run.chosen = append(run.chosen, r.Name)
				run.fired = append(run.fired, fired)
			}
			run.finals = append(run.finals, eng.StateFingerprint())
			if err := eng.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return run
	}

	oracle := drive(false, false)
	if len(oracle.chosen) == 0 {
		t.Fatal("oracle stepper considered no rules; workload is inert")
	}
	for _, tc := range []struct {
		label             string
		compiled, rebuild bool
	}{
		{"compiled-incremental", true, false},
		{"compiled-rebuilt", true, true},
		{"interpreted-rebuild-noop", false, true},
	} {
		got := drive(tc.compiled, tc.rebuild)
		if !reflect.DeepEqual(got, oracle) {
			t.Errorf("%s diverged from interpreted stepper:\n got:    %+v\n oracle: %+v", tc.label, got, oracle)
		}
	}
}
