package activerules_test

import (
	"strings"
	"testing"

	"activerules"
)

func TestFacadeRestrictedAnalysis(t *testing.T) {
	sys := activerules.MustLoad("table a (v int)\ntable b (v int)", `
create rule loop_a on a when inserted then insert into b values (1)
create rule loop_b on b when inserted then insert into a values (1)
create rule safe on a when deleted then delete from b where v < 0
`)
	v := sys.AnalyzeRestricted(nil,
		activerules.UserDelete("a"),
		activerules.UserUpdate("a", "v"))
	if !v.Termination.Guaranteed {
		t.Error("only 'safe' is reachable under deletes/updates on a")
	}
	rep := activerules.RestrictedReport(v)
	if !strings.Contains(rep, "RESTRICTED ANALYSIS") || !strings.Contains(rep, "safe") {
		t.Errorf("restricted report:\n%s", rep)
	}
	// Inserts reach the loop.
	v2 := sys.AnalyzeRestricted(nil, activerules.UserInsert("a"))
	if v2.Termination.Guaranteed {
		t.Error("loop reachable under inserts")
	}
}

func TestFacadePartitionReport(t *testing.T) {
	sys := activerules.MustLoad("table a (v int)\ntable b (v int)", `
create rule ra on a when inserted then delete from a where v < 0
create rule rb on b when inserted then delete from b where v < 0
`)
	out := sys.PartitionReport(nil)
	if !strings.Contains(out, "PARTITIONS: 2 independent group(s)") {
		t.Errorf("partition report:\n%s", out)
	}
}

func TestFacadeDOT(t *testing.T) {
	sys := activerules.MustLoad("table a (v int)", `
create rule r on a when inserted then insert into a values (1)
`)
	out := sys.TriggeringGraphDOT(nil)
	if !strings.Contains(out, "digraph triggering") || !strings.Contains(out, "color=red") {
		t.Errorf("DOT output:\n%s", out)
	}
}

func TestFacadeCertificationHelpers(t *testing.T) {
	cert := activerules.NewCertification()
	cert.CertifyCommutes("a", "b").DischargeRule("c")
	if !cert.Commutes("B", "A") {
		t.Error("certification should be symmetric and case-insensitive")
	}
	if !cert.Discharged("C") {
		t.Error("discharge lookup failed")
	}
	if got := cert.CertifiedPairs(); len(got) != 1 || got[0] != [2]string{"a", "b"} {
		t.Errorf("CertifiedPairs = %v", got)
	}
	if got := cert.DischargedRules(); len(got) != 1 || got[0] != "c" {
		t.Errorf("DischargedRules = %v", got)
	}
	cl := cert.Clone()
	cl.CertifyCommutes("x", "y")
	if cert.Commutes("x", "y") {
		t.Error("Clone must be independent")
	}
}

func TestFacadeIncremental(t *testing.T) {
	sys := activerules.MustLoad("table a (v int)\ntable b (v int)", `
create rule ra on a when inserted then delete from a where v < 0
create rule rb on b when inserted then delete from b where v < 0
`)
	inc := activerules.NewIncremental(nil)
	r1 := inc.Analyze(sys.Rules())
	if !r1.Combined.Guaranteed || r1.Analyzed != 2 {
		t.Fatalf("first incremental call: %+v", r1)
	}
	r2 := inc.Analyze(sys.Rules())
	if r2.Reused != 2 || r2.Analyzed != 0 {
		t.Errorf("second call should be fully cached: %+v", r2)
	}
}

func TestFacadeStatsReport(t *testing.T) {
	sys := activerules.MustLoad("table a (v int)", `
create rule r on a when inserted then insert into a values (1)
`)
	out := sys.StatsReport(nil)
	if !strings.Contains(out, "RULE SET STATISTICS") || !strings.Contains(out, "1 self-loops") {
		t.Errorf("stats report:\n%s", out)
	}
}

func TestFacadeSchemaAccessors(t *testing.T) {
	sys := activerules.MustLoad("table a (v int, w string)", `
create rule r on a when inserted then delete from a where v < 0
`)
	sch := sys.Schema()
	tbl := sch.Table("a")
	if tbl.Column(1).Name != "w" {
		t.Error("Column accessor wrong")
	}
	if got := tbl.ColumnNames(); len(got) != 2 || got[0] != "v" {
		t.Errorf("ColumnNames = %v", got)
	}
	if got := sch.SortedTables(); len(got) != 1 || got[0].Name != "a" {
		t.Errorf("SortedTables = %v", got)
	}
	r := sys.Rules().Rule("r")
	if r.Index() != 0 {
		t.Error("Index wrong")
	}
	if sys.Rules().Schema() != sch {
		t.Error("RuleSet.Schema mismatch")
	}
}
