package activerules_test

// Chaos soak: deterministic fault injection at every reachable storage
// mutation across many seeds, asserting the engine's resilience
// contract end-to-end:
//
//   - atomicity: a faulted Assert/ExecUser returns a typed error with
//     the engine state fingerprint equal to the pre-action state;
//   - resumability: a subsequent fault-free retry succeeds and the run
//     converges to the same final state as a never-faulted run;
//   - witnesses: analyzer-terminating sets never produce a
//     LivelockError, even under severe budget pressure, while a known
//     cyclic set produces one with the correct cycle.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"activerules"
	"activerules/internal/workload"
)

// chaosScenario is one deterministic end-to-end run: fixed rule set,
// fixed seeded starting database, fixed per-round user scripts, fixed
// commit schedule.
type chaosScenario struct {
	sys     *activerules.System
	g       *workload.Generated
	scripts []string
	commits []bool
}

func buildChaosScenario(t *testing.T, seed int64) *chaosScenario {
	t.Helper()
	g, err := workload.Generate(workload.Config{
		Seed: seed, Rules: 5, Tables: 4, Acyclic: true,
		UpdateFrac: 0.35, DeleteFrac: 0.2, ConditionFrac: 0.3,
		ObservableFrac: 0.2, WriteFanout: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := activerules.FromDefinitions(g.Schema, g.Defs)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Analyze(nil).Termination.Guaranteed {
		t.Fatal("acyclic generation must be analyzer-terminating")
	}
	rng := rand.New(rand.NewSource(seed * 17))
	sc := &chaosScenario{sys: sys, g: g}
	for round := 0; round < 6; round++ {
		sc.scripts = append(sc.scripts, workload.UserScript(g.Schema, rng, 1+rng.Intn(2)))
		sc.commits = append(sc.commits, round%3 == 2)
	}
	return sc
}

// run executes the scenario with the given injector. At every injected
// fault it asserts the atomicity contract, then retries fault-free (the
// single-shot FailAt point has passed) and carries on. Returns the final
// state fingerprint.
func (sc *chaosScenario) run(t *testing.T, inj *activerules.FaultInjector) string {
	t.Helper()
	db := workload.SeedDatabase(sc.g.Schema, 3)
	var eng *activerules.Engine
	var lastChoose string
	opts := activerules.EngineOptions{
		MaxSteps: 5000,
		Trace: func(ev activerules.TraceEvent) {
			if ev.Kind == "choose" {
				lastChoose = eng.StateFingerprint()
			}
		},
	}
	if inj != nil {
		opts.WrapMutator = inj.Wrap
	}
	eng = sc.sys.NewEngine(db, opts)

	for round, script := range sc.scripts {
		preUser := eng.StateFingerprint()
		if _, err := eng.ExecUser(script); err != nil {
			if !errors.Is(err, activerules.ErrInjectedFault) {
				t.Fatalf("round %d: non-injected user-script error: %v", round, err)
			}
			if got := eng.StateFingerprint(); got != preUser {
				t.Fatalf("round %d: failed user script left a partial transition", round)
			}
			if _, err := eng.ExecUser(script); err != nil {
				t.Fatalf("round %d: fault-free retry of user script failed: %v", round, err)
			}
		}
		if _, err := eng.Assert(); err != nil {
			var xe *activerules.ExecError
			if !errors.As(err, &xe) {
				t.Fatalf("round %d: Assert error is not a typed *ExecError: %v", round, err)
			}
			if !errors.Is(err, activerules.ErrInjectedFault) {
				t.Fatalf("round %d: non-injected exec error: %v", round, err)
			}
			if got := eng.StateFingerprint(); got != lastChoose {
				t.Fatalf("round %d: engine state differs from the pre-action state after %v", round, err)
			}
			if !eng.InFlight() {
				t.Fatalf("round %d: engine not resumable after %v", round, err)
			}
			if _, err := eng.Assert(); err != nil {
				t.Fatalf("round %d: fault-free resume failed: %v", round, err)
			}
		}
		if sc.commits[round] {
			eng.Commit()
		}
	}
	return eng.StateFingerprint()
}

func TestChaosAtomicityEveryInjectionPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := buildChaosScenario(t, seed)

			// Probe: count the reachable injection points and record the
			// fault-free outcome.
			probe := activerules.NewFaultInjector(activerules.FaultConfig{})
			probe.Disarm()
			baseline := sc.run(t, probe)
			total := probe.Calls()
			if total == 0 {
				t.Fatal("scenario performed no mutations; generator too weak")
			}

			// Fault every single injection point, one run each.
			for k := 1; k <= total; k++ {
				inj := activerules.NewFaultInjector(activerules.FaultConfig{FailAt: k})
				final := sc.run(t, inj)
				if inj.Faults() != 1 {
					t.Fatalf("FailAt=%d: injected %d faults, want 1", k, inj.Faults())
				}
				if final != baseline {
					t.Fatalf("FailAt=%d: resumed run diverged from the fault-free run", k)
				}
			}
		})
	}
}

func TestChaosProbabilisticSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	// Higher-rate random faulting: several faults per run, all of which
	// must be survived. Final-state equality is still required because
	// every fault is retried to completion at the point it occurred.
	for seed := int64(0); seed < 8; seed++ {
		sc := buildChaosScenario(t, 100+seed)
		probe := activerules.NewFaultInjector(activerules.FaultConfig{})
		probe.Disarm()
		baseline := sc.run(t, probe)
		inj := activerules.NewFaultInjector(activerules.FaultConfig{P: 0.05, Seed: seed})
		final := sc.runWithRetries(t, inj)
		if final != baseline {
			t.Fatalf("seed %d: probabilistic chaos run diverged", seed)
		}
	}
}

// runWithRetries is run for injectors that can fire repeatedly: each
// failed call is retried until it goes through (the probabilistic stream
// advances per call, so retries eventually pass).
func (sc *chaosScenario) runWithRetries(t *testing.T, inj *activerules.FaultInjector) string {
	t.Helper()
	db := workload.SeedDatabase(sc.g.Schema, 3)
	var eng *activerules.Engine
	var lastChoose string
	eng = sc.sys.NewEngine(db, activerules.EngineOptions{
		MaxSteps:    5000,
		WrapMutator: inj.Wrap,
		Trace: func(ev activerules.TraceEvent) {
			if ev.Kind == "choose" {
				lastChoose = eng.StateFingerprint()
			}
		},
	})
	for round, script := range sc.scripts {
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatal("user script retry budget exhausted")
			}
			pre := eng.StateFingerprint()
			if _, err := eng.ExecUser(script); err != nil {
				if !errors.Is(err, activerules.ErrInjectedFault) {
					t.Fatalf("round %d: %v", round, err)
				}
				if eng.StateFingerprint() != pre {
					t.Fatalf("round %d: partial user transition survived", round)
				}
				continue
			}
			break
		}
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatal("assert retry budget exhausted")
			}
			if _, err := eng.Assert(); err != nil {
				if !errors.Is(err, activerules.ErrInjectedFault) {
					t.Fatalf("round %d: %v", round, err)
				}
				if eng.StateFingerprint() != lastChoose {
					t.Fatalf("round %d: pre-action state not restored", round)
				}
				continue
			}
			break
		}
		if sc.commits[round] {
			eng.Commit()
		}
	}
	return eng.StateFingerprint()
}

func TestLivelockWitnessProperty(t *testing.T) {
	// Analyzer-terminating sets must never yield a LivelockError, even
	// when driven with a budget so tight that every assertion point is
	// under livelock-tracking pressure; repeated budget-limited Asserts
	// must eventually quiesce (the resume contract).
	for seed := int64(0); seed < 15; seed++ {
		g := workload.MustGenerate(workload.Config{
			Seed: seed, Rules: 6, Tables: 4, Acyclic: true,
			UpdateFrac: 0.3, DeleteFrac: 0.2, ConditionFrac: 0.3, WriteFanout: 2,
		})
		sys, err := activerules.FromDefinitions(g.Schema, g.Defs)
		if err != nil {
			t.Fatal(err)
		}
		if !sys.Analyze(nil).Termination.Guaranteed {
			t.Fatal("acyclic generation must be analyzer-terminating")
		}
		db := workload.SeedDatabase(g.Schema, 2)
		eng := sys.NewEngine(db, activerules.EngineOptions{MaxSteps: 25})
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 10; round++ {
			if _, err := eng.ExecUser(workload.UserScript(g.Schema, rng, 2)); err != nil {
				t.Fatal(err)
			}
			for attempt := 0; ; attempt++ {
				if attempt > 500 {
					t.Fatalf("seed %d round %d: terminating set failed to quiesce", seed, round)
				}
				_, err := eng.Assert()
				if err == nil {
					break
				}
				var le *activerules.LivelockError
				if errors.As(err, &le) {
					t.Fatalf("seed %d: analyzer-terminating set produced a livelock witness: %v", seed, le)
				}
				if !errors.Is(err, activerules.ErrMaxSteps) {
					t.Fatalf("seed %d: unexpected error: %v", seed, err)
				}
			}
		}
	}

	// A known cyclic set must produce a witness with the correct cycle,
	// and the §5 static verdict must agree that termination is not
	// guaranteed (the witness cross-checks the triggering-graph cycle).
	sys := activerules.MustLoad("table a (v int)\ntable b (v int)", `
create rule ra on a when inserted then delete from a; insert into b values (1)
create rule rb on b when inserted then delete from b; insert into a values (1)
`)
	if sys.Analyze(nil).Termination.Guaranteed {
		t.Fatal("ping-pong set must not be analyzer-terminating")
	}
	eng := sys.NewEngine(sys.NewDB(), activerules.EngineOptions{MaxSteps: 100})
	if _, err := eng.ExecUser("insert into a values (1)"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Assert()
	var le *activerules.LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("cyclic set must yield a livelock witness, got %v", err)
	}
	if le.Period != 2 {
		t.Errorf("period = %d, want 2", le.Period)
	}
	names := map[string]bool{}
	for _, r := range le.Cycle {
		names[r] = true
	}
	if !names["ra"] || !names["rb"] {
		t.Errorf("cycle %v must contain ra and rb", le.Cycle)
	}
}
