package activerules

import (
	"activerules/internal/tenant"
)

// Multi-tenancy: many independent rule systems (schema + rules + WAL
// directory) hosted in one process, with a shared analysis cache,
// analyzer-gated hot swaps, and per-tenant admission quotas. See
// internal/tenant for the mechanics and DESIGN.md §13 for the
// soundness argument.

// Re-exported tenancy types.
type (
	// TenantManager supervises a fleet of per-tenant servers rooted at
	// one directory, each tenant recovering from its own WAL.
	TenantManager = tenant.Manager
	// TenantConfig configures OpenTenants.
	TenantConfig = tenant.Config
	// RuleSetSummary is one shared-analysis-cache entry: the §5–§8
	// verdicts, the §7 per-table baseline, and the rendered report.
	RuleSetSummary = tenant.Summary
	// TenantHealth is a tenant's readiness view plus any standing
	// swap-quarantine report.
	TenantHealth = tenant.Health
	// TenantStats is a tenant's counters view plus the quota fence's
	// counters and rule-set hash.
	TenantStats = tenant.Stats
	// TenantManagerStats aggregates the fleet and the analysis cache.
	TenantManagerStats = tenant.ManagerStats
	// SwapQuarantineReport describes a verdict-regressing swap admitted
	// under the quarantine-on-regress policy.
	SwapQuarantineReport = tenant.QuarantineReport
	// SwapTableRisk is one table's row in a SwapQuarantineReport.
	SwapTableRisk = tenant.TableRisk
	// TenantNotFoundError, TenantExistsError, TenantIDError,
	// TenantQuotaError, and SwapRejectedError are the tenancy failure
	// taxonomy layered over the serving-layer errors.
	TenantNotFoundError = tenant.NotFoundError
	TenantExistsError   = tenant.ExistsError
	TenantIDError       = tenant.IDError
	TenantQuotaError    = tenant.QuotaError
	SwapRejectedError   = tenant.SwapRejectedError
)

// ErrTenantManagerClosed reports an operation on a shut-down manager.
var ErrTenantManagerClosed = tenant.ErrManagerClosed

// TenantRuleSetHash is the canonical identity of a (schema, rules)
// source pair — the shared analysis cache's key.
func TenantRuleSetHash(schemaSrc, rulesSrc string) string {
	return tenant.RuleSetHash(schemaSrc, rulesSrc)
}

// OpenTenants attaches (or initializes) a multi-tenant root directory:
// every tenant manifest found under it is started, each recovering its
// own last durable point from its own WAL.
func OpenTenants(root string, cfg TenantConfig) (*TenantManager, error) {
	return tenant.Open(root, cfg)
}
