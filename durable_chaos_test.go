package activerules_test

// Durable chaos: the storage-mutation faults of chaos_test.go and the
// filesystem faults of the WAL layer drawn from ONE seeded injector, so
// a single deterministic stream interleaves "the statement's Nth
// primitive mutation was rejected" with "the process died at the Nth
// filesystem operation". After every simulated crash the facade-level
// recovery (System.Recover / OpenDurable) must land on a durable point
// the reference run actually passed through, and recovering again must
// find nothing left to repair.

import (
	"errors"
	"fmt"
	"testing"

	"activerules"
	"activerules/internal/schema"
)

const durableDir = "wal"

// seedInserts populates every table through the engine (so the rows
// flow into the log), mirroring workload.SeedDatabase's (i, i) shape.
func seedInserts(sch *schema.Schema, n int) string {
	script := ""
	for _, t := range sch.TableNames() {
		for i := 0; i < n; i++ {
			if script != "" {
				script += "; "
			}
			script += fmt.Sprintf("insert into %s values (%d, %d)", t, i, i)
		}
	}
	return script
}

// runDurable executes the scenario in a durable session on fsys, with
// inj wrapping both the mutator and the filesystem. Storage faults are
// retried per the resilience contract; a durability failure (the
// simulated crash) ends the run with its error. note, when non-nil,
// receives the content fingerprint of every durable point.
func (sc *chaosScenario) runDurable(t *testing.T, inj *activerules.FaultInjector, fsys activerules.WALFS, note func([32]byte)) error {
	t.Helper()
	ds, err := sc.sys.OpenDurable(durableDir, activerules.DurableOptions{
		Engine: activerules.EngineOptions{MaxSteps: 5000, WrapMutator: inj.Wrap},
		WAL:    activerules.WALOptions{FS: inj.WrapFS(fsys)},
	})
	if err != nil {
		return err
	}
	eng := ds.Engine
	collect := func() {
		if note != nil {
			note(eng.DB().Fingerprint())
		}
	}
	collect()
	scripts := append([]string{seedInserts(sc.g.Schema, 3)}, sc.scripts...)
	for round, script := range scripts {
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatal("user script retry budget exhausted")
			}
			if _, err := eng.ExecUser(script); err != nil {
				if errors.Is(err, activerules.ErrCrashed) {
					ds.Close()
					return err
				}
				if !errors.Is(err, activerules.ErrInjectedFault) {
					t.Fatalf("round %d: non-injected user-script error: %v", round, err)
				}
				continue
			}
			break
		}
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatal("assert retry budget exhausted")
			}
			if _, err := eng.Assert(); err != nil {
				if errors.Is(err, activerules.ErrCrashed) {
					ds.Close()
					return err
				}
				if !errors.Is(err, activerules.ErrInjectedFault) {
					t.Fatalf("round %d: non-injected assert error: %v", round, err)
				}
				continue
			}
			break
		}
		collect()
		if round > 0 && sc.commits[round-1] {
			if err := eng.Commit(); err != nil {
				ds.Close()
				return err
			}
			collect()
		}
		if round == 4 {
			if err := ds.Checkpoint(); err != nil {
				ds.Close()
				return err
			}
			collect()
		}
	}
	return ds.Close()
}

// TestDurableChaosCrashRecovery enumerates every filesystem crash point
// of durable chaos runs whose storage layer is simultaneously under
// probabilistic fault injection — both fault domains drawing from the
// same seeded stream — and checks facade-level recovery after each.
func TestDurableChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := buildChaosScenario(t, 200+seed)

			// Probe: storage faults armed (and survived via retries), no
			// fs faults. Records the durable-point fingerprints and the
			// number of fs crash points.
			probe := activerules.NewFaultInjector(activerules.FaultConfig{P: 0.25, Seed: seed})
			ref := map[[32]byte]bool{}
			if err := sc.runDurable(t, probe, activerules.NewMemFS(), func(fp [32]byte) { ref[fp] = true }); err != nil {
				t.Fatalf("probe run: %v", err)
			}
			total := probe.FSCalls()
			if total < 10 || probe.Faults() == 0 {
				t.Fatalf("weak scenario: %d fs ops, %d storage faults", total, probe.Faults())
			}

			for k := 1; k <= total; k++ {
				fsys := activerules.NewMemFS()
				inj := activerules.NewFaultInjector(activerules.FaultConfig{
					P: 0.25, Seed: seed, FSCrashAt: k,
				})
				runErr := sc.runDurable(t, inj, fsys, nil)
				if !inj.Crashed() {
					t.Fatalf("crash point %d/%d never reached (err: %v)", k, total, runErr)
				}
				if runErr == nil {
					t.Errorf("crash at %d/%d surfaced no error", k, total)
				}

				// Facade recovery: read-only reconstruction must be a
				// durable point of the reference run.
				db, _, err := sc.sys.Recover(durableDir, fsys)
				if err != nil {
					t.Fatalf("crash at %d/%d: Recover: %v", k, total, err)
				}
				fp := db.Fingerprint()
				if !ref[fp] {
					t.Fatalf("crash at %d/%d: recovered state is not a durable point of the reference run", k, total)
				}

				// Idempotency through the facade: the first OpenDurable
				// repairs the log; a second finds nothing to truncate.
				for pass := 0; pass < 2; pass++ {
					ds, err := sc.sys.OpenDurable(durableDir, activerules.DurableOptions{
						WAL: activerules.WALOptions{FS: fsys},
					})
					if err != nil {
						t.Fatalf("crash at %d/%d: open pass %d: %v", k, total, pass, err)
					}
					if got := ds.Engine.DB().Fingerprint(); got != fp {
						t.Fatalf("crash at %d/%d: open pass %d diverged from Recover", k, total, pass)
					}
					if pass == 1 && ds.Recovery().TruncatedBytes != 0 {
						t.Fatalf("crash at %d/%d: second open still truncating", k, total)
					}
					if err := ds.Close(); err != nil {
						t.Fatalf("crash at %d/%d: close pass %d: %v", k, total, pass, err)
					}
				}
			}
		})
	}
}
