package activerules

import "activerules/internal/cluster"

// Automatic failover: a ClusterNode supervises one member of a
// leader/follower pair, using WAL fencing epochs, leases piggybacked on
// the replication stream, and split-brain-safe promotion so the pair
// heals itself after crashes and partitions while preserving a single
// epoch-ordered history. See internal/cluster and DESIGN.md §14 for the
// safety argument.

// Re-exported failover types.
type (
	// ClusterNode supervises one member of the replicated pair,
	// transitioning it between leader (Server + ReplicaSource) and
	// follower (Follower + probe responder) as epochs and leases
	// dictate.
	ClusterNode = cluster.Node
	// ClusterConfig assembles a cluster node. Schema and Defs are
	// filled in by System.NewClusterNode.
	ClusterConfig = cluster.Config
	// ClusterHealth is the failover-level health view, layered over
	// the active role's serving or follower health.
	ClusterHealth = cluster.Health
	// ClusterRole is a node's current position in the pair.
	ClusterRole = cluster.Role
	// NotLeaderError refuses a request on a node that cannot currently
	// acknowledge writes; Leader carries the believed leader's client
	// address for redirects.
	NotLeaderError = cluster.NotLeaderError
	// UnackedError reports an indeterminate commit: durable on this
	// leader, not acknowledged by the follower within AckTimeout.
	UnackedError = cluster.UnackedError
)

// Cluster roles, re-exported.
const (
	ClusterFollower = cluster.RoleFollower
	ClusterLeader   = cluster.RoleLeader
	ClusterStopped  = cluster.RoleStopped
)

// NewClusterNode starts a failover supervisor for this system over the
// WAL directory named in cfg.Dir. Exactly one node of the pair sets
// cfg.Bootstrap; the node elects its own role and re-elects on peer
// failure.
func (s *System) NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) {
	cfg.Schema = s.schema
	cfg.Defs = s.defs
	if s.compiled {
		cfg.Serve.Engine.Compiled = true
	}
	return cluster.New(cfg)
}
