package engine

import (
	"errors"
	"strings"
	"testing"

	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
)

func mkSet(t *testing.T, schemaSrc, rulesSrc string) (*rules.Set, *storage.DB) {
	t.Helper()
	sch := schema.MustParse(schemaSrc)
	defs, err := ruledef.Parse(rulesSrc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		t.Fatal(err)
	}
	return set, storage.NewDB(sch)
}

func TestSimpleCascade(t *testing.T) {
	set, db := mkSet(t, `
table account (id int, owner string)
table audit (id int, owner string)
`, `
create rule r_audit on account
when inserted
then insert into audit select id, owner from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into account values (1, 'ann'), (2, 'bob')"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 1 || res.Fired != 1 {
		t.Errorf("Considered=%d Fired=%d", res.Considered, res.Fired)
	}
	if db.Table("audit").Len() != 2 {
		t.Errorf("audit rows = %d, want 2", db.Table("audit").Len())
	}
}

func TestConditionFalseDoesNotFire(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
if exists (select 1 from inserted where v > 100)
then insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (5)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 1 || res.Fired != 0 {
		t.Errorf("Considered=%d Fired=%d", res.Considered, res.Fired)
	}
	if db.Table("u").Len() != 0 {
		t.Error("action should not have run")
	}
}

func TestRuleSeesCompositeTransition(t *testing.T) {
	// The tuple is inserted then updated by the user; the rule must see a
	// single insertion of the UPDATED tuple (net-effect rule 3).
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1); update t set v = 42"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	var got int64
	db.Table("u").Scan(func(tu *storage.Tuple) bool { got = tu.Vals[0].I; return true })
	if got != 42 {
		t.Errorf("rule saw v=%d, want 42 (insert of updated tuple)", got)
	}
}

func TestUpdateRuleNotTriggeredByInsert(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when updated(v)
then insert into u values (1)
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 0 {
		t.Errorf("update rule considered on insert: %d", res.Considered)
	}
}

func TestUntriggering(t *testing.T) {
	// Footnote 2 of the paper: r_keep is triggered by insertions, but
	// r_sweep (higher priority) deletes all inserted tuples first, so
	// r_keep becomes untriggered and never fires.
	set, db := mkSet(t, "table t (v int)\ntable log (v int)", `
create rule r_sweep on t
when inserted
then delete from t
precedes r_keep

create rule r_keep on t
when inserted
then insert into log select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (7)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("log").Len() != 0 {
		t.Error("r_keep should have been untriggered")
	}
	// Only r_sweep was considered: after its delete, the composite
	// transition for r_keep is empty (insert+delete annihilate).
	if res.Considered != 1 {
		t.Errorf("Considered = %d, want 1", res.Considered)
	}
}

func TestSelfTriggeringHitsBudget(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule r on t
when inserted
then insert into t values (1)
`)
	e := New(set, db, Options{MaxSteps: 50})
	if _, err := e.ExecUser("insert into t values (0)"); err != nil {
		t.Fatal(err)
	}
	_, err := e.Assert()
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestSelfDisablingRuleTerminates(t *testing.T) {
	// A rule triggered by its own operation kind but whose condition
	// eventually becomes false (the paper's monotonic special case).
	set, db := mkSet(t, "table t (v int)", `
create rule r on t
when updated(v)
if exists (select 1 from t where v < 3)
then update t set v = v + 1 where v < 3
`)
	db.MustInsert("t", storage.IntV(0))
	e := New(set, db, Options{})
	if _, err := e.ExecUser("update t set v = 1"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	db.Table("t").Scan(func(tu *storage.Tuple) bool { got = tu.Vals[0].I; return true })
	if got != 3 {
		t.Errorf("v = %d, want 3", got)
	}
	// v=1 -> 2 and 2 -> 3 fired; the final consideration found the
	// condition false.
	if res.Fired != 2 || res.Considered != 3 {
		t.Errorf("Fired = %d, Considered = %d; want 2, 3", res.Fired, res.Considered)
	}
}

func TestPriorityOrderRespected(t *testing.T) {
	// Both rules are triggered; r_first must be considered before
	// r_second, so r_second's condition sees r_first's output.
	set, db := mkSet(t, "table t (v int)\ntable log (step int)", `
create rule r_first on t
when inserted
then insert into log values (1)
precedes r_second

create rule r_second on t
when inserted
if exists (select 1 from log where step = 1)
then insert into log values (2)
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (0)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired != 2 || db.Table("log").Len() != 2 {
		t.Errorf("Fired=%d log=%d; r_second should have seen r_first's insert",
			res.Fired, db.Table("log").Len())
	}
}

func TestRollbackRestoresSnapshot(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule r on t
when inserted
if exists (select 1 from inserted where v < 0)
then rollback
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	e.Commit()
	before := e.DB().Fingerprint()
	if _, err := e.ExecUser("insert into t values (-5)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if !res.RolledBack {
		t.Fatal("expected rollback")
	}
	if e.DB().Fingerprint() != before {
		t.Error("rollback did not restore the committed state")
	}
	if len(res.Observables) != 1 || !res.Observables[0].Rollback {
		t.Errorf("observables = %v", res.Observables)
	}
}

func TestObservableSelectEvents(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then select v from inserted; insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (3)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Observables) != 1 {
		t.Fatalf("observables = %d", len(res.Observables))
	}
	ev := res.Observables[0]
	if ev.Rollback || len(ev.Rows) != 1 || ev.Rows[0][0].I != 3 {
		t.Errorf("event = %+v", ev)
	}
	if !strings.Contains(ev.String(), "(3)") {
		t.Errorf("event string = %q", ev.String())
	}
}

func TestAssertionPointBoundaries(t *testing.T) {
	// A rule considered in a previous assertion point must not see that
	// old transition again in the next one.
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if db.Table("u").Len() != 1 {
		t.Fatal("first assert should copy one row")
	}
	// No new user operations: nothing is triggered at the next point.
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 0 || db.Table("u").Len() != 1 {
		t.Errorf("second assert re-processed the old transition (considered=%d)", res.Considered)
	}
	// New operations create a fresh transition seen exactly once.
	if _, err := e.ExecUser("insert into t values (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if db.Table("u").Len() != 2 {
		t.Errorf("u rows = %d, want 2", db.Table("u").Len())
	}
}

func TestExecUserRejectsRollback(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule r on t
when inserted
then delete from t
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("rollback"); err == nil {
		t.Error("user rollback should be rejected")
	}
}

func TestStrategiesDiverge(t *testing.T) {
	// A deliberately non-confluent set: two unordered rules race to set v
	// to different values; different strategies reach different states.
	schemaSrc := "table t (v int)\ntable trig (x int)"
	rulesSrc := `
create rule r_a on trig
when inserted
then update t set v = 1

create rule r_b on trig
when inserted
then update t set v = 2
`
	runWith := func(s Strategy) [32]byte {
		set, db := mkSet(t, schemaSrc, rulesSrc)
		db.MustInsert("t", storage.IntV(0))
		e := New(set, db, Options{Strategy: s})
		if _, err := e.ExecUser("insert into trig values (1)"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Assert(); err != nil {
			t.Fatal(err)
		}
		return e.DB().Fingerprint()
	}
	if runWith(FirstByName{}) == runWith(LastByName{}) {
		t.Error("FirstByName and LastByName should reach different final states here")
	}
	// Seeded strategy is reproducible.
	if runWith(NewSeeded(7)) != runWith(NewSeeded(7)) {
		t.Error("same seed should reproduce the same run")
	}
}

func TestScriptedStrategy(t *testing.T) {
	s := &Scripted{Choices: []int{1, 99}}
	set, _ := mkSet(t, "table t (v int)", `
create rule a on t when inserted then delete from t
create rule b on t when inserted then delete from t
`)
	rs := set.Rules()
	if got := s.Pick(rs); got != rs[1] {
		t.Errorf("scripted pick 1 = %s", got.Name)
	}
	if got := s.Pick(rs); got != rs[0] {
		t.Errorf("out-of-range pick should clamp to 0, got %s", got.Name)
	}
	if got := s.Pick(rs); got.Name != "a" {
		t.Errorf("exhausted script should fall back to FirstByName, got %s", got.Name)
	}
}

func TestCloneIndependence(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	cl := e.Clone()
	if cl.StateFingerprint() != e.StateFingerprint() {
		t.Fatal("clone should share the state fingerprint")
	}
	if _, err := cl.Assert(); err != nil {
		t.Fatal(err)
	}
	if e.DB().Table("u").Len() != 0 {
		t.Error("asserting the clone mutated the original")
	}
	if cl.StateFingerprint() == e.StateFingerprint() {
		t.Error("fingerprints should diverge after the clone ran")
	}
}

func TestStateFingerprintCapturesPendingTransitions(t *testing.T) {
	// Same database contents but different pending transitions must be
	// different states (Section 4: a state is (D, TR)).
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then insert into u select v from inserted
`)
	e1 := New(set, db.Clone(), Options{})
	e2 := New(set, db.Clone(), Options{})
	// e1: inserted then deleted (no net transition, same contents).
	if _, err := e1.ExecUser("insert into t values (9); delete from t"); err != nil {
		t.Fatal(err)
	}
	// e2: untouched.
	if e1.DB().Fingerprint() != e2.DB().Fingerprint() {
		t.Fatal("database contents should match")
	}
	if e1.StateFingerprint() != e2.StateFingerprint() {
		t.Error("insert+delete has no net effect; states should match")
	}
	// e2 with a real pending insert differs.
	if _, err := e2.ExecUser("insert into t values (9)"); err != nil {
		t.Fatal(err)
	}
	if e1.StateFingerprint() == e2.StateFingerprint() {
		t.Error("pending transition must distinguish states")
	}
}

func TestFiredByRule(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule bump on t when updated(v) if exists (select 1 from t where v < 3) then update t set v = v + 1 where v < 3
`)
	db.MustInsert("t", storage.IntV(0))
	e := New(set, db, Options{})
	if _, err := e.ExecUser("update t set v = 1"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.FiredByRule["bump"] != 2 { // 1->2, 2->3
		t.Errorf("FiredByRule = %v", res.FiredByRule)
	}
	// No firings: map stays nil.
	res2, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res2.FiredByRule != nil {
		t.Errorf("empty run should have nil FiredByRule: %v", res2.FiredByRule)
	}
}

func TestSetStrategyAndAccessors(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable a (v int)\ntable b (v int)", `
create rule ra on t when inserted then update a set v = 1
create rule rb on t when inserted then update a set v = 2
`)
	db.MustInsert("a", storage.IntV(0))
	e := New(set, db, Options{})
	if e.Set() != set {
		t.Error("Set accessor wrong")
	}
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	e.SetStrategy(LastByName{})
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	// LastByName considers rb first, so ra's update lands last: v = 1.
	var v int64
	db.Table("a").Scan(func(tu *storage.Tuple) bool { v = tu.Vals[0].I; return true })
	if v != 1 {
		t.Errorf("v = %d; LastByName should run rb before ra", v)
	}
	// nil resets to the default without panicking.
	e.SetStrategy(nil)
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
}

func TestTRStateFingerprint(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t when deleted then insert into u values (1)
`)
	id := db.MustInsert("t", storage.IntV(1))
	e1 := New(set, db.Clone(), Options{})
	e2 := New(set, db.Clone(), Options{})
	// e1 carries a pending UPDATE on t (not triggering r: r is
	// delete-triggered); e2 is clean. The fine fingerprint differs, the
	// paper's (D, TR) fingerprint does not... except the DB contents
	// differ after the update, so change it back for the TR comparison.
	if _, err := e1.ExecUser("update t set v = 2; update t set v = 1"); err != nil {
		t.Fatal(err)
	}
	// Identity composite: same DB, empty net — both fingerprints match.
	if e1.TRStateFingerprint() != e2.TRStateFingerprint() {
		t.Error("identity transition should not distinguish TR states")
	}
	// A genuinely triggering delete makes both differ.
	e3 := e2.Clone()
	if _, err := e3.ExecUser("delete from t"); err != nil {
		t.Fatal(err)
	}
	if e3.TRStateFingerprint() == e2.TRStateFingerprint() {
		t.Error("triggered rule must appear in the TR fingerprint")
	}
	_ = id
}

func TestRecordingMutatorErrors(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule r on t when inserted then update t set v = 1 where v = 99
`)
	e := New(set, db, Options{})
	// Engine-level exec of statements that fail mid-way: update of a
	// missing tuple is unreachable through SQL (scan-based), so exercise
	// the error paths through the mutator interface directly.
	m := recordingMutator{db: e.db, log: e.log}
	if err := m.Delete("t", 999); err == nil {
		t.Error("delete of missing tuple should fail")
	}
	if err := m.Update("t", 999, "v", storage.IntV(1)); err == nil {
		t.Error("update of missing tuple should fail")
	}
	if _, err := m.Insert("t", []storage.Value{storage.StringV("bad")}); err == nil {
		t.Error("type mismatch should fail")
	}
}

func TestExecUserErrors(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule r on t when inserted then delete from t where v < 0
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("not sql at all ()"); err == nil {
		t.Error("parse error should surface")
	}
	if _, err := e.ExecUser("insert into missing values (1)"); err == nil {
		t.Error("resolve error should surface")
	}
	if _, err := e.ExecUser("select 1 / 0 from t"); err == nil {
		// needs a row for the division to evaluate
		db.MustInsert("t", storage.IntV(1))
		if _, err := e.ExecUser("select 1 / 0 from t"); err == nil {
			t.Error("eval error should surface")
		}
	}
}

func TestRuleConditionErrorSurfaces(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule r on t when inserted if (select v from t) > 0 then delete from t where v < 0
`)
	e := New(set, db, Options{})
	// Two rows make the scalar subquery fail at condition time.
	if _, err := e.ExecUser("insert into t values (1), (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err == nil {
		t.Error("condition evaluation error should abort Assert")
	}
}

func TestEligibleRules(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule hi on t when inserted then insert into u values (1) precedes lo
create rule lo on t when inserted then insert into u values (2)
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	trig := e.TriggeredRules()
	if len(trig) != 2 {
		t.Fatalf("triggered = %d", len(trig))
	}
	elig := e.EligibleRules()
	if len(elig) != 1 || elig[0].Name != "hi" {
		t.Errorf("eligible = %v", rules.Names(elig))
	}
}
