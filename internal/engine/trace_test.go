package engine

import (
	"strings"
	"testing"
)

func TestTraceSequence(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule copy on t
when inserted
if exists (select 1 from inserted where v > 0)
then insert into u select v from inserted
`)
	var events []TraceEvent
	e := New(set, db, Options{Trace: func(ev TraceEvent) { events = append(events, ev) }})
	if _, err := e.ExecUser("insert into t values (5)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(events))
	for i, ev := range events {
		kinds[i] = ev.Kind
	}
	want := "assert-begin,choose,fire,assert-end"
	if got := strings.Join(kinds, ","); got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
	if events[1].Rule != "copy" || len(events[1].Triggered) != 1 || len(events[1].Eligible) != 1 {
		t.Errorf("choose event = %+v", events[1])
	}
	if events[3].Considered != 1 || events[3].Fired != 1 {
		t.Errorf("assert-end event = %+v", events[3])
	}
}

func TestTraceSkipAndRollback(t *testing.T) {
	set, db := mkSet(t, "table t (v int)", `
create rule skipper on t
when inserted
if exists (select 1 from inserted where v > 100)
then rollback
`)
	var kinds []string
	e := New(set, db, Options{Trace: func(ev TraceEvent) { kinds = append(kinds, ev.Kind) }})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(kinds, ",") != "assert-begin,choose,skip,assert-end" {
		t.Errorf("skip trace = %v", kinds)
	}
	// Rollback path.
	kinds = nil
	if _, err := e.ExecUser("insert into t values (200)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil || !res.RolledBack {
		t.Fatalf("rollback expected: %v %v", res, err)
	}
	if strings.Join(kinds, ",") != "assert-begin,choose,rollback" {
		t.Errorf("rollback trace = %v", kinds)
	}
}

func TestTraceEventStrings(t *testing.T) {
	cases := []struct {
		ev   TraceEvent
		want string
	}{
		{TraceEvent{Kind: "assert-begin"}, "assert: begin"},
		{TraceEvent{Kind: "assert-end", Considered: 2, Fired: 1}, "assert: end (considered=2 fired=1)"},
		{TraceEvent{Kind: "choose", Rule: "r", Triggered: []string{"r", "s"}, Eligible: []string{"r"}},
			"choose r  triggered={r,s} eligible={r}"},
		{TraceEvent{Kind: "fire", Rule: "r"}, "fire r"},
		{TraceEvent{Kind: "skip", Rule: "r"}, "skip r (condition false)"},
		{TraceEvent{Kind: "rollback", Rule: "r"}, "rollback by r"},
		{TraceEvent{Kind: "custom", Rule: "r"}, "custom r"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.ev.Kind, got, c.want)
		}
	}
}

func TestTraceDisabledCostsNothing(t *testing.T) {
	// Without a trace hook, Assert must not build name slices; this is a
	// behavioral check only (no events, same results).
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule copy on t when inserted then insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Assert()
	if err != nil || res.Fired != 1 {
		t.Fatalf("untraced run broken: %+v %v", res, err)
	}
}
