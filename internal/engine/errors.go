package engine

import (
	"fmt"
	"strings"
)

// The engine's failure taxonomy. Every error Assert/AssertContext can
// return is one of:
//
//   - *ExecError — a rule's condition or action failed (or panicked).
//     The failed consideration has been fully undone: database,
//     transition log, and the rule's mark are back to their values just
//     before the rule was chosen, so processing can be resumed (the rule
//     will be re-considered) once the cause is addressed.
//   - *LivelockError — rule processing revisited an execution-graph
//     state under budget pressure: a definitive runtime witness of
//     nontermination (an infinite path exists, Section 4). Satisfies
//     errors.Is(err, ErrMaxSteps) since it subsumes budget exhaustion.
//   - ErrMaxSteps — the step budget ran out without a state recurrence:
//     possible nontermination, but the evidence is inconclusive (the
//     budget may simply be too small).
//   - *CancelledError — the AssertContext context was cancelled or its
//     deadline expired between considerations. Satisfies errors.Is for
//     the underlying context error.
//   - *DurabilityError — the configured Journal (Options.Journal, the
//     write-ahead log) failed at a transaction boundary. The in-memory
//     state is exactly what a nil-journal engine would have; only the
//     durability promise is broken, and it stays broken (the WAL's
//     errors are sticky) until the caller reopens the log.
//
// After any of these, the engine is in a well-defined state: every
// completed consideration is durable, the failed or unstarted work is
// absent, and a subsequent Assert/AssertContext resumes processing where
// it stopped (with a fresh budget) rather than re-seeing consumed
// transitions.

// ExecError reports a failure inside one rule consideration. The
// consideration has been rolled back: it is as if the rule had not been
// chosen.
type ExecError struct {
	// Rule is the rule whose consideration failed.
	Rule string
	// Statement is the action statement that failed, empty when the
	// failure was in the condition (or before any statement ran).
	Statement string
	// Cause is the underlying error; a recovered panic appears as a
	// *PanicError.
	Cause error
}

func (e *ExecError) Error() string {
	where := "condition"
	if e.Statement != "" {
		where = fmt.Sprintf("action statement %q", e.Statement)
	}
	return fmt.Sprintf("engine: rule %q %s: %v", e.Rule, where, e.Cause)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *ExecError) Unwrap() error { return e.Cause }

// PanicError is a panic recovered during rule processing, converted into
// an ordinary error so hostile rule sets cannot crash callers.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// LivelockError is a runtime nontermination witness: while under budget
// pressure the engine observed the same execution-graph state (database
// plus every rule's pending transition) twice. The considerations made
// between the two observations form a cycle that rule processing can
// repeat forever.
type LivelockError struct {
	// Cycle is the sequence of rules considered between the two
	// occurrences of the repeated state, in consideration order.
	Cycle []string
	// Period is len(Cycle): the number of steps after which the state
	// recurred.
	Period int
	// Steps is the total number of considerations performed when the
	// recurrence was detected.
	Steps int
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf(
		"engine: livelock detected after %d considerations: state recurs every %d steps through cycle [%s]",
		e.Steps, e.Period, strings.Join(e.Cycle, " -> "))
}

// Is makes a LivelockError satisfy errors.Is(err, ErrMaxSteps): it is a
// strictly stronger form of the budget-exhaustion verdict, so callers
// that only distinguish "ran out of budget" keep working.
func (e *LivelockError) Is(target error) bool { return target == ErrMaxSteps }

// CancelledError reports that rule processing stopped because the
// context passed to AssertContext was done. Processing stopped at a
// consideration boundary; the engine state is consistent and a
// subsequent Assert/AssertContext resumes it.
type CancelledError struct {
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("engine: rule processing cancelled: %v", e.Cause)
}

// Unwrap exposes the context error for errors.Is.
func (e *CancelledError) Unwrap() error { return e.Cause }

// DurabilityError reports that the configured Journal failed at a
// transaction boundary (commit, begin, or abort record). The in-memory
// engine state is unaffected — the transaction semantics already took
// effect — but the durable log can no longer honor them: callers should
// stop relying on the session's durability and recover from the WAL
// directory.
type DurabilityError struct {
	// Op is the boundary that failed: "commit", "begin", or "abort".
	Op string
	// Cause is the underlying journal error.
	Cause error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("engine: durability failure at %s: %v", e.Op, e.Cause)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *DurabilityError) Unwrap() error { return e.Cause }
