package engine

import (
	"fmt"
	"strings"

	"activerules/internal/rules"
)

// TraceEvent is one step of rule processing, emitted to Options.Trace
// when set. Traces make the §2 semantics observable for debugging and
// for the interactive environment: which rules were triggered, which
// were eligible under the priorities, which was chosen, and what its
// condition decided.
type TraceEvent struct {
	// Kind is one of "assert-begin", "choose", "fire", "skip",
	// "rollback", "assert-end".
	Kind string
	// Rule is the rule being considered (choose/fire/skip/rollback).
	Rule string
	// Triggered and Eligible are the rule names at a "choose" event.
	Triggered []string
	Eligible  []string
	// Considered and Fired are the totals at "assert-end".
	Considered int
	Fired      int
}

// String renders the event for log output.
func (ev TraceEvent) String() string {
	switch ev.Kind {
	case "assert-begin":
		return "assert: begin"
	case "assert-end":
		return fmt.Sprintf("assert: end (considered=%d fired=%d)", ev.Considered, ev.Fired)
	case "choose":
		return fmt.Sprintf("choose %s  triggered={%s} eligible={%s}",
			ev.Rule, strings.Join(ev.Triggered, ","), strings.Join(ev.Eligible, ","))
	case "fire":
		return "fire " + ev.Rule
	case "skip":
		return "skip " + ev.Rule + " (condition false)"
	case "rollback":
		return "rollback by " + ev.Rule
	default:
		return ev.Kind + " " + ev.Rule
	}
}

// trace emits an event if tracing is enabled.
func (e *Engine) trace(ev TraceEvent) {
	if e.opts.Trace != nil {
		e.opts.Trace(ev)
	}
}

func names(rs []*rules.Rule) []string { return rules.Names(rs) }
