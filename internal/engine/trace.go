package engine

import (
	"fmt"
	"strings"

	"activerules/internal/rules"
)

// TraceEvent is one step of rule processing, emitted to Options.Trace
// when set. Traces make the §2 semantics observable for debugging and
// for the interactive environment: which rules were triggered, which
// were eligible under the priorities, which was chosen, and what its
// condition decided.
type TraceEvent struct {
	// Kind is one of "assert-begin", "assert-resume", "choose", "fire",
	// "skip", "rollback", "assert-end", "assert-error",
	// "assert-cancelled". Every assertion's trace closes with a terminal
	// event: "assert-end", "rollback", "assert-error", or
	// "assert-cancelled".
	Kind string
	// Rule is the rule being considered (choose/fire/skip/rollback), or
	// the rule whose consideration failed (assert-error, when known).
	Rule string
	// Triggered and Eligible are the rule names at a "choose" event.
	Triggered []string
	Eligible  []string
	// Considered and Fired are the totals at "assert-end".
	Considered int
	Fired      int
}

// String renders the event for log output.
func (ev TraceEvent) String() string {
	switch ev.Kind {
	case "assert-begin":
		return "assert: begin"
	case "assert-resume":
		return "assert: resume"
	case "assert-end":
		return fmt.Sprintf("assert: end (considered=%d fired=%d)", ev.Considered, ev.Fired)
	case "assert-error":
		if ev.Rule != "" {
			return fmt.Sprintf("assert: error in %s (considered=%d fired=%d)", ev.Rule, ev.Considered, ev.Fired)
		}
		return fmt.Sprintf("assert: error (considered=%d fired=%d)", ev.Considered, ev.Fired)
	case "assert-cancelled":
		return fmt.Sprintf("assert: cancelled (considered=%d fired=%d)", ev.Considered, ev.Fired)
	case "choose":
		return fmt.Sprintf("choose %s  triggered={%s} eligible={%s}",
			ev.Rule, strings.Join(ev.Triggered, ","), strings.Join(ev.Eligible, ","))
	case "fire":
		return "fire " + ev.Rule
	case "skip":
		return "skip " + ev.Rule + " (condition false)"
	case "rollback":
		return "rollback by " + ev.Rule
	default:
		return ev.Kind + " " + ev.Rule
	}
}

// trace emits an event if tracing is enabled.
func (e *Engine) trace(ev TraceEvent) {
	if e.opts.Trace != nil {
		e.opts.Trace(ev)
	}
}

func names(rs []*rules.Rule) []string { return rules.Names(rs) }
