package engine

// Links the static Section 3 sets to runtime behavior: whatever a rule's
// action actually does during processing must be covered by its static
// Performs set. This is the soundness assumption every analysis builds
// on (Lemma 4.1: "There is some set of operations O' ⊆ Performs(r)...").

import (
	"math/rand"
	"testing"

	"activerules/internal/transition"
	"activerules/internal/workload"
)

func TestPerformsCoversRuntimeActions(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := workload.Generate(workload.Config{
			Seed: seed, Rules: 6, Tables: 4, Acyclic: true,
			UpdateFrac: 0.35, DeleteFrac: 0.2, ConditionFrac: 0.4,
			WriteFanout: 2, TransRefFrac: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		db := workload.SeedDatabase(g.Schema, 2)
		e := New(g.Set, db, Options{})
		rng := rand.New(rand.NewSource(seed + 1000))
		if _, err := e.ExecUser(workload.UserScript(g.Schema, rng, 2)); err != nil {
			t.Fatal(err)
		}
		e.BeginAssert()
		steps := 0
		for steps < 200 {
			eligible := e.EligibleRules()
			if len(eligible) == 0 {
				break
			}
			r := eligible[rng.Intn(len(eligible))]
			before := e.log.Mark()
			fired, _, rolled, err := e.Consider(r)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if rolled {
				break
			}
			// Every net operation of the action must be in Performs(r);
			// an unfired rule must have performed nothing.
			actionNet := transition.Compute(e.log, before, e.DB())
			for op := range actionNet.Ops() {
				if !fired {
					t.Fatalf("seed %d: rule %s did not fire but performed %s", seed, r.Name, op)
				}
				if !r.Performs().Contains(op) {
					t.Fatalf("seed %d: rule %s performed %s outside its static Performs %s",
						seed, r.Name, op, r.Performs())
				}
			}
			steps++
		}
	}
}

// TestTriggeredNeverEligibleWithHigherTriggered validates the Choose
// discipline at runtime: no considered rule ever coexists in the
// eligible set with a higher-priority triggered rule.
func TestChooseDisciplineAtRuntime(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, err := workload.Generate(workload.Config{
			Seed: seed, Rules: 6, Tables: 4, Acyclic: true,
			UpdateFrac: 0.3, PriorityDensity: 0.5, ConditionFrac: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		db := workload.SeedDatabase(g.Schema, 2)
		e := New(g.Set, db, Options{})
		rng := rand.New(rand.NewSource(seed))
		if _, err := e.ExecUser(workload.UserScript(g.Schema, rng, 2)); err != nil {
			t.Fatal(err)
		}
		e.BeginAssert()
		for steps := 0; steps < 100; steps++ {
			triggered := e.TriggeredRules()
			eligible := e.EligibleRules()
			if len(eligible) == 0 {
				break
			}
			for _, el := range eligible {
				for _, tr := range triggered {
					if tr != el && g.Set.Higher(tr, el) {
						t.Fatalf("seed %d: eligible %s has higher triggered %s", seed, el.Name, tr.Name)
					}
				}
			}
			if _, _, rolled, err := e.Consider(eligible[0]); err != nil || rolled {
				break
			}
		}
	}
}
