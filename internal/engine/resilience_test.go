package engine

// Tests for the engine's failure story: action atomicity under injected
// faults, the post-error resume contract, panic containment,
// cancellation, and runtime livelock witnesses.

import (
	"context"
	"errors"
	"testing"

	"activerules/internal/faultinject"
)

// engineState captures everything the atomicity contract promises to
// restore: the execution-graph state (db + per-rule pending transitions)
// and the raw log position.
func engineState(e *Engine) (string, [32]byte, int) {
	return e.StateFingerprint(), e.db.Fingerprint(), e.log.Mark()
}

func TestActionFailureAtomicPerStatementKind(t *testing.T) {
	const schemaSrc = "table t (v int)\ntable u (v int)"
	cases := []struct {
		name   string
		rules  string
		seed   string // committed before the transition; its mutations count
		failAt int    // 1-based mutation call that fails
	}{
		{
			name: "insert",
			rules: `create rule r on t when inserted
then insert into u select v from inserted`,
			failAt: 2, // call 1: user insert into t
		},
		{
			name: "update",
			rules: `create rule r on t when inserted
then update u set v = v + 1`,
			seed:   "insert into u values (10)",
			failAt: 3, // 1: seed, 2: user insert, 3: action update
		},
		{
			name: "delete",
			rules: `create rule r on t when inserted
then delete from u`,
			seed:   "insert into u values (10)",
			failAt: 3,
		},
		{
			name: "multi-row update fails midway",
			rules: `create rule r on t when inserted
then update u set v = v + 1`,
			seed:   "insert into u values (1), (2), (3)",
			failAt: 6, // 1-3: seed, 4: user insert, 5-7: per-row updates
		},
		{
			name: "observable before failing statement",
			rules: `create rule r on t when inserted
then select v from u; insert into u values (1); insert into u values (2)`,
			seed:   "insert into u values (9)",
			failAt: 4, // 1: seed, 2: user insert, 3: first action insert, 4: second
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set, db := mkSet(t, schemaSrc, tc.rules)
			inj := faultinject.New(faultinject.Config{FailAt: tc.failAt})
			e := New(set, db, Options{WrapMutator: inj.Wrap})
			if tc.seed != "" {
				if _, err := e.ExecUser(tc.seed); err != nil {
					t.Fatal(err)
				}
				e.Commit()
			}
			if _, err := e.ExecUser("insert into t values (1)"); err != nil {
				t.Fatal(err)
			}
			wantState, wantDB, wantMark := engineState(e)

			res, err := e.Assert()
			var xe *ExecError
			if !errors.As(err, &xe) {
				t.Fatalf("want *ExecError, got %v", err)
			}
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Errorf("cause not the injected fault: %v", err)
			}
			if xe.Rule != "r" || xe.Statement == "" {
				t.Errorf("ExecError context incomplete: rule=%q stmt=%q", xe.Rule, xe.Statement)
			}
			gotState, gotDB, gotMark := engineState(e)
			if gotDB != wantDB {
				t.Errorf("database not restored:\n%s", e.DB().String())
			}
			if gotMark != wantMark {
				t.Errorf("transition log mark = %d, want %d", gotMark, wantMark)
			}
			if gotState != wantState {
				t.Error("engine state fingerprint differs from pre-action state")
			}
			if len(res.Observables) != 0 {
				t.Errorf("observables from the aborted action leaked: %v", res.Observables)
			}
			if !e.InFlight() {
				t.Error("processing must be suspended after an ExecError")
			}

			// Resumability: a fault-free retry completes and matches a run
			// that never faulted.
			inj.Disarm()
			if _, err := e.Assert(); err != nil {
				t.Fatalf("resume: %v", err)
			}
			set2, db2 := mkSet(t, schemaSrc, tc.rules)
			e2 := New(set2, db2, Options{})
			if tc.seed != "" {
				if _, err := e2.ExecUser(tc.seed); err != nil {
					t.Fatal(err)
				}
				e2.Commit()
			}
			if _, err := e2.ExecUser("insert into t values (1)"); err != nil {
				t.Fatal(err)
			}
			if _, err := e2.Assert(); err != nil {
				t.Fatal(err)
			}
			if e.DB().Fingerprint() != e2.DB().Fingerprint() {
				t.Errorf("resumed run diverged from fault-free run:\n%s\nvs\n%s",
					e.DB().String(), e2.DB().String())
			}
		})
	}
}

func TestResumeDoesNotReseeConsumedTransition(t *testing.T) {
	// r1 fires successfully, then r2's action fails. Resuming must
	// re-consider only r2 — not replay r1 against the already-consumed
	// transition (the pre-fix behavior reset all marks to assertStart).
	set, db := mkSet(t, "table t (v int)\ntable u (v int)\ntable w (v int)", `
create rule r1 on t when inserted then insert into u select v from inserted
create rule r2 on u when inserted then insert into w select v from inserted
`)
	inj := faultinject.New(faultinject.Config{FailAt: 3}) // 1: user, 2: r1 insert, 3: r2 insert
	e := New(set, db, Options{WrapMutator: inj.Wrap})
	if _, err := e.ExecUser("insert into t values (7)"); err != nil {
		t.Fatal(err)
	}
	res1, err := e.Assert()
	var xe *ExecError
	if !errors.As(err, &xe) || xe.Rule != "r2" {
		t.Fatalf("want ExecError in r2, got %v", err)
	}
	if res1.Considered != 1 || res1.Fired != 1 {
		t.Fatalf("partial progress lost: considered=%d fired=%d", res1.Considered, res1.Fired)
	}
	inj.Disarm()
	res2, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Considered != 1 || res2.Fired != 1 {
		t.Errorf("resume must only re-consider r2: considered=%d fired=%d", res2.Considered, res2.Fired)
	}
	if got := db.Table("u").Len(); got != 1 {
		t.Errorf("u rows = %d, want 1 (r1 must not replay)", got)
	}
	if got := db.Table("w").Len(); got != 1 {
		t.Errorf("w rows = %d, want 1", got)
	}
}

func TestPanicContainment(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t when inserted then insert into u select v from inserted`)
	inj := faultinject.New(faultinject.Config{PanicAt: 2})
	e := New(set, db, Options{WrapMutator: inj.Wrap})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	wantState, _, _ := engineState(e)
	_, err := e.Assert()
	var xe *ExecError
	if !errors.As(err, &xe) || xe.Rule != "r" {
		t.Fatalf("want *ExecError, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause must be a *PanicError: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if gotState, _, _ := engineState(e); gotState != wantState {
		t.Error("state not restored after recovered panic")
	}
	inj.Disarm()
	if _, err := e.Assert(); err != nil {
		t.Fatalf("resume after panic: %v", err)
	}
	if db.Table("u").Len() != 1 {
		t.Error("resumed action did not apply")
	}
}

func TestExecUserAtomicity(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t when inserted then insert into u select v from inserted`)
	inj := faultinject.New(faultinject.Config{FailAt: 3})
	e := New(set, db, Options{WrapMutator: inj.Wrap})
	wantState, wantDB, wantMark := engineState(e)
	_, err := e.ExecUser("insert into t values (1); insert into t values (2); insert into t values (3)")
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	gotState, gotDB, gotMark := engineState(e)
	if gotDB != wantDB || gotMark != wantMark || gotState != wantState {
		t.Error("failed user script must leave no partial transition")
	}
	// Retry fault-free: identical script must replay cleanly.
	inj.Disarm()
	if _, err := e.ExecUser("insert into t values (1); insert into t values (2); insert into t values (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if db.Table("u").Len() != 3 {
		t.Errorf("u rows = %d, want 3", db.Table("u").Len())
	}
}

func TestAssertContextCancellation(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)\ntable w (v int)", `
create rule r1 on t when inserted then insert into u select v from inserted
create rule r2 on u when inserted then insert into w select v from inserted
`)
	// Pre-cancelled context: nothing runs, state stays resumable.
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.AssertContext(ctx)
	var ce *CancelledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want *CancelledError wrapping context.Canceled, got %v", err)
	}
	if res.Considered != 0 {
		t.Errorf("pre-cancelled context must not consider rules: %d", res.Considered)
	}
	if !e.InFlight() {
		t.Error("cancelled processing must be suspended, not abandoned")
	}

	// Resume with a live context completes the cascade.
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if db.Table("w").Len() != 1 {
		t.Error("resumed processing incomplete")
	}
}

func TestAssertContextMidFlightCancellation(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)\ntable w (v int)", `
create rule r1 on t when inserted then insert into u select v from inserted
create rule r2 on u when inserted then insert into w select v from inserted
`)
	ctx, cancel := context.WithCancel(context.Background())
	e := New(set, db, Options{Trace: func(ev TraceEvent) {
		if ev.Kind == "fire" && ev.Rule == "r1" {
			cancel() // cancel between considerations
		}
	}})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := e.AssertContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if res.Considered != 1 || res.Fired != 1 {
		t.Errorf("progress before cancellation lost: %+v", res)
	}
	res2, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Considered != 1 {
		t.Errorf("resume must finish the remaining rule only: %+v", res2)
	}
	if db.Table("w").Len() != 1 {
		t.Error("cascade incomplete after resume")
	}
}

func TestLivelockWitness(t *testing.T) {
	set, db := mkSet(t, "table a (v int)\ntable b (v int)", `
create rule ra on a when inserted then delete from a; insert into b values (1)
create rule rb on b when inserted then delete from b; insert into a values (1)
`)
	e := New(set, db, Options{MaxSteps: 60})
	if _, err := e.ExecUser("insert into a values (1)"); err != nil {
		t.Fatal(err)
	}
	_, err := e.Assert()
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("want *LivelockError, got %v", err)
	}
	if !errors.Is(err, ErrMaxSteps) {
		t.Error("LivelockError must satisfy errors.Is(err, ErrMaxSteps)")
	}
	if le.Period != 2 || len(le.Cycle) != 2 {
		t.Fatalf("period=%d cycle=%v, want period 2", le.Period, le.Cycle)
	}
	seen := map[string]bool{le.Cycle[0]: true, le.Cycle[1]: true}
	if !seen["ra"] || !seen["rb"] {
		t.Errorf("cycle %v must name both ping-pong rules", le.Cycle)
	}
	if le.Error() == "" || le.Steps <= 0 {
		t.Error("witness must carry diagnostics")
	}
}

func TestGrowingSetNoFalseLivelockWitness(t *testing.T) {
	// A self-triggering rule that grows the database never revisits a
	// state: the budget verdict must stay the inconclusive ErrMaxSteps.
	set, db := mkSet(t, "table t (v int)", `
create rule grow on t when inserted then insert into t select v from inserted`)
	e := New(set, db, Options{MaxSteps: 40})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	_, err := e.Assert()
	var le *LivelockError
	if errors.As(err, &le) {
		t.Fatalf("growing execution must not fabricate a livelock witness: %v", err)
	}
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("want ErrMaxSteps, got %v", err)
	}
}

func TestTraceTerminalEvents(t *testing.T) {
	terminal := func(kinds []string) string {
		if len(kinds) == 0 {
			return ""
		}
		return kinds[len(kinds)-1]
	}
	collect := func(opts Options, rulesSrc, script string, ctx context.Context) ([]string, error) {
		set, db := mkSet(t, "table t (v int)\ntable u (v int)", rulesSrc)
		var kinds []string
		opts.Trace = func(ev TraceEvent) { kinds = append(kinds, ev.Kind) }
		e := New(set, db, opts)
		if _, err := e.ExecUser(script); err != nil {
			t.Fatal(err)
		}
		_, err := e.AssertContext(ctx)
		return kinds, err
	}
	bg := context.Background()
	cascade := "create rule r on t when inserted then insert into u select v from inserted"
	loop := "create rule r on t when inserted then delete from t; insert into t values (1)"

	kinds, err := collect(Options{}, cascade, "insert into t values (1)", bg)
	if err != nil || terminal(kinds) != "assert-end" {
		t.Errorf("success must end with assert-end: %v (err %v)", kinds, err)
	}

	kinds, err = collect(Options{MaxSteps: 30}, loop, "insert into t values (1)", bg)
	if err == nil || terminal(kinds) != "assert-error" {
		t.Errorf("budget/livelock must end with assert-error: %v (err %v)", kinds, err)
	}

	cancelled, cancel := context.WithCancel(bg)
	cancel()
	kinds, err = collect(Options{}, cascade, "insert into t values (1)", cancelled)
	if err == nil || terminal(kinds) != "assert-cancelled" {
		t.Errorf("cancellation must end with assert-cancelled: %v (err %v)", kinds, err)
	}

	// Failure inside a consideration.
	inj := faultinject.New(faultinject.Config{FailAt: 2})
	kinds, err = collect(Options{WrapMutator: inj.Wrap}, cascade, "insert into t values (1)", bg)
	if err == nil || terminal(kinds) != "assert-error" {
		t.Errorf("exec error must end with assert-error: %v (err %v)", kinds, err)
	}
}

// TestNestedSavepointPanicContainment exercises panic containment while
// a caller-held savepoint is already open: the engine's per-action
// savepoint nests inside the caller's, the recovered panic rolls back
// only the action layer, and the caller's savepoint remains fully
// functional for both its rollback and release legs afterwards.
func TestNestedSavepointPanicContainment(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t when inserted then insert into u select v from inserted`)
	inj := faultinject.New(faultinject.Config{PanicAt: 4})
	e := New(set, db, Options{WrapMutator: inj.Wrap})

	// Baseline outside any savepoint: calls 1 (user insert) and 2
	// (action insert).
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	base := db.Fingerprint()

	// Rollback leg: user transaction in a savepoint; the rule action
	// (call 4) panics inside the engine's own nested savepoint.
	outer := db.Savepoint()
	if _, err := e.ExecUser("insert into t values (2)"); err != nil { // call 3
		t.Fatal(err)
	}
	wantState, _, _ := engineState(e)
	_, err := e.Assert()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("nested panic not contained as *PanicError: %v", err)
	}
	if gotState, _, _ := engineState(e); gotState != wantState {
		t.Error("state not restored after panic inside nested savepoint")
	}
	inj.Disarm()
	if _, err := e.Assert(); err != nil {
		t.Fatalf("resume after nested panic: %v", err)
	}
	if db.Table("u").Len() != 2 {
		t.Fatalf("u rows = %d, want 2 after resumed action", db.Table("u").Len())
	}
	db.RollbackTo(outer)
	if db.Fingerprint() != base {
		t.Fatal("outer savepoint rollback did not restore the pre-savepoint state exactly")
	}

	// Release leg: the same cycle fault-free, committed via Release;
	// the mutations must stick.
	outer2 := db.Savepoint()
	if _, err := e.ExecUser("insert into t values (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	db.Release(outer2)
	released := db.Fingerprint()
	if released == base {
		t.Fatal("released savepoint lost its mutations")
	}

	// Depth bookkeeping: release must have returned the db to depth
	// zero, so a fresh savepoint cycle rolls back to exactly the
	// released state — a stale undo log would drag it further back.
	sp := db.Savepoint()
	if _, err := e.ExecUser("insert into t values (4)"); err != nil {
		t.Fatal(err)
	}
	db.RollbackTo(sp)
	if db.Fingerprint() != released {
		t.Fatal("post-release savepoint cycle did not restore the released state")
	}
}
