package engine

import (
	"context"
	"errors"
	"testing"
)

// journalRecorder records the transaction-boundary calls it receives.
type journalRecorder struct {
	ops []string
	err error // returned by every call when non-nil
}

func (j *journalRecorder) Begin() error  { j.ops = append(j.ops, "begin"); return j.err }
func (j *journalRecorder) Commit() error { j.ops = append(j.ops, "commit"); return j.err }
func (j *journalRecorder) Abort() error  { j.ops = append(j.ops, "abort"); return j.err }

// TestRollbackRestoresTransactionStart pins the caller-driven Rollback:
// everything since the last Commit — committed assertion points
// included — is undone, exactly like a rule ROLLBACK action.
func TestRollbackRestoresTransactionStart(t *testing.T) {
	set, db := mkSet(t, `
table account (id int, owner string)
table audit (id int, owner string)
`, `
create rule r_audit on account
when inserted
then insert into audit select id, owner from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into account values (1, 'ann')"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	committed := e.DB().Fingerprint()

	if _, err := e.ExecUser("insert into account values (2, 'bob')"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if e.DB().Fingerprint() == committed {
		t.Fatal("second transaction had no visible effect; test is vacuous")
	}
	if err := e.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if e.DB().Fingerprint() != committed {
		t.Error("Rollback did not restore the last committed state")
	}
	if e.InFlight() {
		t.Error("Rollback left processing suspended")
	}
	// The engine must be fully usable afterwards.
	if _, err := e.ExecUser("insert into account values (3, 'cyd')"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if got := e.DB().Table("audit").Len(); got != 2 {
		t.Errorf("audit rows after rollback+new transaction = %d, want 2", got)
	}
}

// TestRollbackClearsSuspendedAssert drives processing into the
// suspended (InFlight) state via cancellation, then checks Rollback
// clears the suspension and discards the unconsumed transition — the
// serving layer's failed-request path.
func TestRollbackClearsSuspendedAssert(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then insert into u select v from inserted
`)
	e := New(set, db, Options{})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.AssertContext(ctx)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("AssertContext = %v, want *CancelledError", err)
	}
	if !e.InFlight() {
		t.Fatal("expected suspended processing")
	}
	if err := e.Rollback(); err != nil {
		t.Fatal(err)
	}
	if e.InFlight() {
		t.Error("Rollback left processing suspended")
	}
	// The transition was discarded with the transaction: a fresh assert
	// has nothing to do.
	res, err := e.Assert()
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 0 {
		t.Errorf("post-rollback assert considered %d rules, want 0 (transition discarded)", res.Considered)
	}
	if db := e.DB(); db.Table("t").Len() != 0 || db.Table("u").Len() != 0 {
		t.Error("rollback did not empty the database")
	}
}

// TestRollbackJournalsAbort checks the durable side: Rollback writes an
// abort record, and a journal failure surfaces as a *DurabilityError
// while the in-memory rollback still happened.
func TestRollbackJournalsAbort(t *testing.T) {
	set, db := mkSet(t, "table t (v int)\ntable u (v int)", `
create rule r on t
when inserted
then insert into u select v from inserted
`)
	j := &journalRecorder{}
	e := New(set, db, Options{Journal: j})
	if _, err := e.ExecUser("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(j.ops) != 1 || j.ops[0] != "abort" {
		t.Errorf("journal ops = %v, want [abort]", j.ops)
	}

	j.err = errors.New("disk gone")
	if _, err := e.ExecUser("insert into t values (2)"); err != nil {
		t.Fatal(err)
	}
	err := e.Rollback()
	var de *DurabilityError
	if !errors.As(err, &de) || de.Op != "abort" {
		t.Fatalf("Rollback with failing journal = %v, want *DurabilityError{Op: abort}", err)
	}
	if e.DB().Table("t").Len() != 0 {
		t.Error("in-memory rollback must happen even when the journal fails")
	}
}
