// Package engine executes Starburst rule processing with the exact
// semantics of Section 2 of the paper: net-effect transitions, transition
// tables, rule assertion points, priority-constrained choice among
// triggered rules, per-rule "transition since last considered"
// bookkeeping, untriggering, and rollback.
//
// The engine is the execution-time counterpart of the static analyzer: it
// is used by examples and by the execution-graph model checker
// (internal/execgraph) that provides ground truth for the analyzer's
// conservative verdicts.
package engine

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime/debug"

	"activerules/internal/compile"
	"activerules/internal/rules"
	"activerules/internal/sqlmini"
	"activerules/internal/storage"
	"activerules/internal/transition"
)

// ErrMaxSteps is returned by Assert when rule processing exceeds the
// configured step budget, the runtime symptom of a (potentially)
// nonterminating rule set.
var ErrMaxSteps = errors.New("engine: rule processing exceeded the step budget (possible nontermination)")

// ObservableEvent is one environment-visible action (Section 3:
// Observable): a data retrieval or a rollback, in execution order.
type ObservableEvent struct {
	Rule      string
	Statement string
	Rows      [][]storage.Value // SELECT results; nil for rollback
	Rollback  bool
}

// String renders the event compactly for logs and comparisons.
func (ev ObservableEvent) String() string {
	if ev.Rollback {
		return ev.Rule + ": rollback"
	}
	out := ev.Rule + ": " + ev.Statement + " ->"
	for _, row := range ev.Rows {
		out += " ("
		for i, v := range row {
			if i > 0 {
				out += ","
			}
			out += v.String()
		}
		out += ")"
	}
	return out
}

// Result summarizes one rule-processing run at an assertion point.
type Result struct {
	Considered  int  // rule considerations (condition evaluations)
	Fired       int  // actions executed (condition held)
	RolledBack  bool // a rollback action aborted the transaction
	Observables []ObservableEvent
	// FiredByRule counts action executions per rule, for profiling and
	// reports; nil when nothing fired.
	FiredByRule map[string]int
}

// Mutator receives the primitive data modifications of statement
// execution (re-exported from sqlmini so fault-injection wrappers can be
// threaded through Options without importing the SQL layer).
type Mutator = sqlmini.Mutator

// Options configure an Engine.
type Options struct {
	// MaxSteps bounds the number of rule considerations per assertion
	// point; 0 means the default of 10000.
	MaxSteps int
	// Strategy picks among eligible rules; nil means FirstByName, the
	// deterministic default.
	Strategy Strategy
	// Trace, when non-nil, receives one TraceEvent per processing step.
	Trace func(TraceEvent)
	// WrapMutator, when non-nil, wraps the engine's recording mutator for
	// every user script and rule action — the seam for deterministic
	// fault injection (internal/faultinject). The wrapper sees exactly
	// the primitive mutations statement execution performs.
	WrapMutator func(Mutator) Mutator
	// LivelockWindow is the number of final budget steps during which the
	// engine tracks state recurrence to upgrade ErrMaxSteps into a
	// *LivelockError with a concrete witness cycle; 0 means the default
	// of 256, capped at MaxSteps. Tracking costs one state fingerprint
	// per step, which is why it only runs under budget pressure.
	LivelockWindow int
	// Compiled switches the engine to the compiled hot path: rule
	// conditions and actions run as closures compiled at engine
	// construction (internal/compile), and triggered-rule discovery is
	// delta-driven — mutations mark candidate rules through a
	// per-(table, op-kind) index instead of every step rescanning all
	// rules. The interpreter remains the reference oracle; compiled
	// execution is observably identical (results, traces, errors,
	// fingerprints), which the differential test battery enforces.
	Compiled bool
	// Journal, when non-nil, receives transaction boundaries for
	// write-ahead logging (internal/wal): Commit at every quiescent
	// assertion point and from Engine.Commit (followed by Begin), Abort
	// when a rollback action fires. Mutation-level records flow
	// separately, through the database's storage.Observer hook. A
	// journal failure surfaces as a *DurabilityError; the in-memory
	// state is unaffected. Clone never propagates the journal: explorer
	// forks are speculative and must not write durable records.
	Journal Journal
}

// Journal receives transaction boundaries for durable logging. All
// methods may be called only between considerations; implementations
// need not be safe for concurrent use (the engine is single-threaded).
type Journal interface {
	// Begin marks a new engine-transaction start: the point a later
	// Abort rolls back to.
	Begin() error
	// Commit marks a durable point: everything logged since the previous
	// durable point must survive a crash.
	Commit() error
	// Abort marks a rollback action: the durable state reverts to the
	// last Begin.
	Abort() error
}

// Engine processes rules against a database. It is single-threaded.
type Engine struct {
	set  *rules.Set
	db   *storage.DB
	log  *transition.Log
	opts Options

	// marks[i] is the log position up to which rule i has processed the
	// transition (Section 2): its transition predicate is evaluated over
	// the net effect of the log suffix from marks[i].
	marks []int

	// snapshot is the database state at transaction start, restored by a
	// rollback action.
	snapshot *storage.DB

	// assertStart is the log position where the current assertion
	// point's initial transition began.
	assertStart int

	// inFlight is true while rule processing at an assertion point is
	// suspended by an error or cancellation: marks are mid-flight and the
	// next Assert/AssertContext resumes instead of re-seeing the
	// transition from assertStart.
	inFlight bool

	// prog and cand are set in compiled mode (Options.Compiled): the
	// set's compiled closures (shared, immutable) and this engine's
	// candidate bitset for delta-driven triggering.
	prog *compile.Program
	cand *compile.Candidates
}

// New creates an engine over db for the rule set. The current database
// contents become the transaction-start snapshot.
func New(set *rules.Set, db *storage.DB, opts Options) *Engine {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 10000
	}
	if opts.Strategy == nil {
		opts.Strategy = FirstByName{}
	}
	e := &Engine{
		set:      set,
		db:       db,
		log:      &transition.Log{},
		opts:     opts,
		marks:    make([]int, set.Len()),
		snapshot: db.Clone(),
	}
	if opts.Compiled {
		e.prog = compile.For(set)
		e.cand = e.prog.Matcher().NewCandidates()
	}
	return e
}

// Compiled reports whether this engine runs the compiled hot path.
func (e *Engine) Compiled() bool { return e.prog != nil }

// Program returns the compiled program, or nil in interpreted mode.
// Tests use it to assert that no unit fell back to the interpreter.
func (e *Engine) Program() *compile.Program { return e.prog }

// RebuildTriggerIndex recomputes the candidate bitset from scratch out
// of the transition log and the rule marks, discarding the
// incrementally maintained bits. The two paths are observably
// equivalent (the incremental bits are a superset that the triggered
// check filters identically); metamorphic tests drive both.
func (e *Engine) RebuildTriggerIndex() {
	if e.cand != nil {
		e.cand.Rebuild(e.log, e.marks)
	}
}

// DB returns the engine's database.
func (e *Engine) DB() *storage.DB { return e.db }

// SetStrategy replaces the choice strategy for subsequent processing.
func (e *Engine) SetStrategy(s Strategy) {
	if s == nil {
		s = FirstByName{}
	}
	e.opts.Strategy = s
}

// Set returns the engine's rule set.
func (e *Engine) Set() *rules.Set { return e.set }

// InFlight reports whether rule processing is suspended mid-assertion
// (after an error or cancellation): the next Assert/AssertContext will
// resume it rather than start fresh.
func (e *Engine) InFlight() bool { return e.inFlight }

// mutator builds the recording mutator for the current database,
// applying the fault-injection wrapper when configured.
func (e *Engine) mutator() sqlmini.Mutator {
	var m sqlmini.Mutator = recordingMutator{db: e.db, log: e.log, cand: e.cand}
	if e.opts.WrapMutator != nil {
		m = e.opts.WrapMutator(m)
	}
	return m
}

// recordingMutator applies changes to the database and records them in
// the transition log. In compiled mode it additionally marks candidate
// rules in the delta-driven trigger index — the same primitive that
// enters the log enters the discrimination network, so a recorded
// operation can never trigger a rule without also marking it.
type recordingMutator struct {
	db   *storage.DB
	log  *transition.Log
	cand *compile.Candidates // nil in interpreted mode
}

func (m recordingMutator) Insert(table string, vals []storage.Value) (storage.TupleID, error) {
	id, err := m.db.Insert(table, vals)
	if err != nil {
		return 0, err
	}
	m.log.RecordInsert(table, id)
	if m.cand != nil {
		m.cand.Note(table, transition.KindInsert)
	}
	return id, nil
}

func (m recordingMutator) Delete(table string, id storage.TupleID) error {
	tu := m.db.Table(table).Get(id)
	if tu == nil {
		return fmt.Errorf("engine: delete of missing tuple %d from %s", id, table)
	}
	old := make([]storage.Value, len(tu.Vals))
	copy(old, tu.Vals)
	m.db.Delete(table, id)
	m.log.RecordDelete(table, id, old)
	if m.cand != nil {
		m.cand.Note(table, transition.KindDelete)
	}
	return nil
}

func (m recordingMutator) Update(table string, id storage.TupleID, col string, v storage.Value) error {
	tu := m.db.Table(table).Get(id)
	if tu == nil {
		return fmt.Errorf("engine: update of missing tuple %d in %s", id, table)
	}
	old := make([]storage.Value, len(tu.Vals))
	copy(old, tu.Vals)
	if _, err := m.db.Update(table, id, col, v); err != nil {
		return err
	}
	m.log.RecordUpdate(table, id, old)
	if m.cand != nil {
		// A raw update entry does not know which columns will survive
		// net-effect composition, so it marks every rule watching any
		// update on the table; the exact transition predicate filters.
		m.cand.Note(table, transition.KindUpdate)
	}
	return nil
}

// ExecUser executes user-generated SQL (outside any rule) with recording,
// building the initial transition for the next assertion point. Source
// may contain multiple ';'-separated statements. SELECT statements return
// their rows in the results; ROLLBACK is not permitted here.
//
// ExecUser is atomic: if any statement fails (or panics), the database
// and the transition log are restored to their state at the call, so a
// failed script leaves no partial transition behind.
func (e *Engine) ExecUser(src string) (out []sqlmini.StmtResult, err error) {
	sts, err := sqlmini.ParseStatements(src)
	if err != nil {
		return nil, err
	}
	db := e.db
	sp := db.Savepoint()
	logMark := e.log.Mark()
	done := false
	restore := func() {
		if done {
			return
		}
		done = true
		db.RollbackTo(sp)
		e.log.TruncateTo(logMark)
	}
	defer func() {
		if p := recover(); p != nil {
			restore()
			out, err = nil, fmt.Errorf("engine: user script: %w",
				&PanicError{Value: p, Stack: debug.Stack()})
		}
	}()
	rc := &sqlmini.ResolveContext{Schema: e.set.Schema()}
	ev := &sqlmini.Evaluator{DB: e.db, Mut: e.mutator()}
	for _, st := range sts {
		if _, ok := st.(*sqlmini.Rollback); ok {
			restore()
			return nil, fmt.Errorf("engine: rollback is not permitted in user scripts; it is a rule action")
		}
		if err := sqlmini.ResolveStatement(st, rc); err != nil {
			restore()
			return nil, err
		}
		res, err := ev.Exec(st)
		if err != nil {
			restore()
			return nil, err
		}
		out = append(out, res)
	}
	done = true
	db.Release(sp)
	return out, nil
}

// emptyNet is the shared net effect of an untouched suffix.
var emptyNet = transition.EmptyNet()

// pendingNet computes the composite transition rule r has not yet seen,
// restricted to r's table — all that r's transition predicate and
// transition tables can depend on. When the log has no entry on r's
// table past r's mark, the shared empty net is returned without any
// computation.
func (e *Engine) pendingNet(r *rules.Rule) *transition.Net {
	mark := e.marks[r.Index()]
	if e.log.LastTouch(r.Table) < mark {
		return emptyNet
	}
	return transition.ComputeTable(e.log, mark, e.db, r.Table)
}

// TriggeredRules returns the currently triggered rules in definition
// order: those whose transition predicate holds over their pending
// transition (Section 2).
//
// In compiled mode only candidate rules are examined — rules marked by
// a recorded operation of a kind they watch on their table. Candidacy
// over-approximates triggering (DESIGN.md §11 proves a triggered rule
// is always a candidate), and the exact transition predicate is still
// evaluated per candidate, so both modes return identical slices. A
// candidate whose watched kinds have no log entry at or past its mark
// can never become triggered without a new Note, so its bit is cleared.
func (e *Engine) TriggeredRules() []*rules.Rule {
	if e.cand != nil {
		var out []*rules.Rule
		rs := e.set.Rules()
		e.cand.ForEach(func(i int) {
			if e.cand.StaleAt(i, e.log, e.marks[i]) {
				e.cand.Clear(i)
				return
			}
			r := rs[i]
			if e.pendingNet(r).Ops().Intersects(r.TriggeredBy()) {
				out = append(out, r)
			}
		})
		return out
	}
	var out []*rules.Rule
	for _, r := range e.set.Rules() {
		if e.pendingNet(r).Ops().Intersects(r.TriggeredBy()) {
			out = append(out, r)
		}
	}
	return out
}

// EligibleRules returns Choose(TriggeredRules): the triggered rules with
// no triggered rule of higher priority.
func (e *Engine) EligibleRules() []*rules.Rule {
	return e.set.Choose(e.TriggeredRules())
}

// transitionDataFor materializes the transition tables rule r sees.
func transitionDataFor(n *transition.Net, table string) *sqlmini.TransitionData {
	tn := n.Table(table)
	if tn == nil {
		return &sqlmini.TransitionData{}
	}
	td := &sqlmini.TransitionData{Inserted: tn.Inserted, Deleted: tn.Deleted}
	for _, up := range tn.Updated {
		td.OldUpdated = append(td.OldUpdated, up.Old)
		td.NewUpdated = append(td.NewUpdated, up.New)
	}
	return td
}

// Consider evaluates rule r now: it fixes r's transition tables from its
// pending transition, advances r's mark, checks the condition, and (if
// the condition holds) executes the action. It reports whether the action
// fired and any observable events, and whether a rollback occurred.
//
// Consider is atomic: if the condition or any action statement fails —
// including by panicking — the database, the transition log, and r's
// mark are restored to their values at the call, the error is returned
// as a *ExecError, and it is as if the rule had not been chosen. No
// events from the aborted consideration are reported.
//
// Consider does not check that r is eligible; Assert and the model
// checker only call it for eligible rules.
func (e *Engine) Consider(r *rules.Rule) (fired bool, events []ObservableEvent, rolledBack bool, err error) {
	prevMark := e.marks[r.Index()]
	db := e.db
	sp := db.Savepoint()
	logMark := e.log.Mark()
	done := false
	restore := func() {
		if done {
			return
		}
		done = true
		db.RollbackTo(sp)
		e.log.TruncateTo(logMark)
		e.marks[r.Index()] = prevMark
	}
	defer func() {
		if p := recover(); p != nil {
			restore()
			fired, events, rolledBack = false, nil, false
			err = &ExecError{Rule: r.Name, Cause: &PanicError{Value: p, Stack: debug.Stack()}}
		}
	}()

	net := e.pendingNet(r)
	td := transitionDataFor(net, r.Table)
	e.marks[r.Index()] = e.log.Mark()

	cond := true
	if r.Condition != nil {
		if e.prog != nil {
			cond, err = e.prog.EvalCondition(r.Index(), &compile.Env{DB: e.db, Trans: td})
		} else {
			ev := &sqlmini.Evaluator{DB: e.db, Trans: td}
			cond, err = ev.EvalPredicate(r.Condition)
		}
		if err != nil {
			restore()
			return false, nil, false, &ExecError{Rule: r.Name, Cause: err}
		}
	}
	if !cond {
		done = true
		db.Release(sp)
		return false, nil, false, nil
	}

	var execStmt func(j int) (sqlmini.StmtResult, error)
	if e.prog != nil {
		env := &compile.Env{DB: e.db, Trans: td, Mut: e.mutator()}
		ri := r.Index()
		execStmt = func(j int) (sqlmini.StmtResult, error) {
			return e.prog.ExecStatement(ri, j, env)
		}
	} else {
		ev := &sqlmini.Evaluator{DB: e.db, Trans: td, Mut: e.mutator()}
		execStmt = func(j int) (sqlmini.StmtResult, error) {
			return ev.Exec(r.Action[j])
		}
	}
	for j, st := range r.Action {
		res, err := execStmt(j)
		if err != nil {
			restore()
			return false, nil, false, &ExecError{Rule: r.Name, Statement: st.String(), Cause: err}
		}
		if res.Rolled {
			events = append(events, ObservableEvent{Rule: r.Name, Statement: st.String(), Rollback: true})
			done = true
			db.Release(sp) // db is replaced wholesale below
			e.rollback()
			return true, events, true, nil
		}
		if sqlmini.IsObservable(st) {
			events = append(events, ObservableEvent{Rule: r.Name, Statement: st.String(), Rows: res.Rows})
		}
	}
	done = true
	db.Release(sp)
	return true, events, false, nil
}

// rollback restores the transaction-start snapshot and clears all rule
// bookkeeping. The mutation observer survives the database swap (clones
// drop it): the WAL must keep seeing mutations after a rollback, which
// its abort record has already neutralized.
func (e *Engine) rollback() {
	obs := e.db.Observer()
	e.db = e.snapshot.Clone()
	e.db.SetObserver(obs)
	e.log.Truncate()
	for i := range e.marks {
		e.marks[i] = 0
	}
	e.assertStart = 0
	e.inFlight = false
	if e.cand != nil {
		e.cand.Reset() // empty log: nothing can be triggered
	}
}

// BeginAssert prepares rule processing at an assertion point without
// running it: every rule starts out seeing the transition since the last
// assertion point (or transaction start). The execution-graph explorer
// uses this to place the engine in the initial state I of Section 4 and
// then drives Consider itself.
func (e *Engine) BeginAssert() {
	for i := range e.marks {
		e.marks[i] = e.assertStart
	}
}

// Assert runs rule processing at an assertion point (Section 2): rules
// are repeatedly chosen from the eligible set and considered until no
// rule is triggered, a rollback occurs, or the step budget is exhausted
// (ErrMaxSteps, upgraded to *LivelockError when a state recurrence
// proves nontermination). It is AssertContext with a background context.
func (e *Engine) Assert() (Result, error) {
	return e.AssertContext(context.Background())
}

// AssertContext is Assert with cancellation: ctx is checked between
// considerations, so callers can bound wall-clock time with a deadline.
// On cancellation it returns a *CancelledError and leaves processing
// suspended at a consideration boundary.
//
// Error contract (see the taxonomy in errors.go): after any error the
// engine is consistent — completed considerations are durable, the
// failed or unstarted work is absent — and processing is suspended
// (InFlight). A subsequent Assert/AssertContext resumes exactly where it
// stopped with a fresh budget; it does not re-see consumed transitions.
func (e *Engine) AssertContext(ctx context.Context) (Result, error) {
	if !e.inFlight {
		e.BeginAssert()
		e.inFlight = true
		e.trace(TraceEvent{Kind: "assert-begin"})
	} else {
		e.trace(TraceEvent{Kind: "assert-resume"})
	}
	window := e.opts.LivelockWindow
	if window <= 0 {
		window = 256
	}
	if window > e.opts.MaxSteps {
		window = e.opts.MaxSteps
	}
	trackFrom := e.opts.MaxSteps - window
	var seen map[string]int // state fingerprint -> len(chosen) when observed
	var chosen []string     // rules considered since tracking began
	var res Result
	for {
		if cerr := ctx.Err(); cerr != nil {
			e.trace(TraceEvent{Kind: "assert-cancelled", Considered: res.Considered, Fired: res.Fired})
			return res, &CancelledError{Cause: cerr}
		}
		triggered := e.TriggeredRules()
		eligible := e.set.Choose(triggered)
		if len(eligible) == 0 {
			e.assertStart = e.log.Mark()
			e.inFlight = false
			e.trace(TraceEvent{Kind: "assert-end", Considered: res.Considered, Fired: res.Fired})
			return res, e.journal("commit", Journal.Commit)
		}
		// Under budget pressure, watch for a state recurrence: revisiting
		// an execution-graph state proves an infinite path exists, which
		// upgrades the inconclusive ErrMaxSteps to a concrete witness.
		if res.Considered >= trackFrom {
			fp := e.StateFingerprint()
			if first, ok := seen[fp]; ok {
				lerr := &LivelockError{
					Cycle:  append([]string(nil), chosen[first:]...),
					Period: len(chosen) - first,
					Steps:  res.Considered,
				}
				e.trace(TraceEvent{Kind: "assert-error", Considered: res.Considered, Fired: res.Fired})
				return res, lerr
			}
			if seen == nil {
				seen = make(map[string]int)
			}
			seen[fp] = len(chosen)
		}
		if res.Considered >= e.opts.MaxSteps {
			e.trace(TraceEvent{Kind: "assert-error", Considered: res.Considered, Fired: res.Fired})
			return res, ErrMaxSteps
		}
		r := e.opts.Strategy.Pick(eligible)
		e.trace(TraceEvent{Kind: "choose", Rule: r.Name,
			Triggered: names(triggered), Eligible: names(eligible)})
		if res.Considered >= trackFrom {
			chosen = append(chosen, r.Name)
		}
		fired, events, rolled, err := e.Consider(r)
		if err != nil {
			var rule string
			if xe, ok := err.(*ExecError); ok {
				rule = xe.Rule
			}
			e.trace(TraceEvent{Kind: "assert-error", Rule: rule, Considered: res.Considered, Fired: res.Fired})
			return res, err
		}
		res.Considered++
		if fired {
			res.Fired++
			if res.FiredByRule == nil {
				res.FiredByRule = make(map[string]int)
			}
			res.FiredByRule[r.Name]++
			if rolled {
				e.trace(TraceEvent{Kind: "rollback", Rule: r.Name})
			} else {
				e.trace(TraceEvent{Kind: "fire", Rule: r.Name})
			}
		} else {
			e.trace(TraceEvent{Kind: "skip", Rule: r.Name})
		}
		res.Observables = append(res.Observables, events...)
		if rolled {
			res.RolledBack = true
			return res, e.journal("abort", Journal.Abort)
		}
	}
}

// journal invokes one transaction-boundary hook on the configured
// journal, wrapping any failure as a *DurabilityError. A nil journal is
// a no-op.
func (e *Engine) journal(op string, call func(Journal) error) error {
	if e.opts.Journal == nil {
		return nil
	}
	if err := call(e.opts.Journal); err != nil {
		return &DurabilityError{Op: op, Cause: err}
	}
	return nil
}

// Rollback aborts the current engine transaction exactly as a rule
// ROLLBACK action would, but driven by the caller: the transaction-start
// snapshot is restored, all rule bookkeeping (marks, transition log,
// suspended in-flight processing) is cleared, and the journal — when
// configured — records an abort, reverting the durable state to the
// transaction's begin. The serving layer uses it to give every failed
// request "never happened" semantics: a deadline expiry or a
// quarantine-tripping fault mid-assert must not leave a half-processed
// transition for the next client to trip over.
func (e *Engine) Rollback() error {
	e.rollback()
	return e.journal("abort", Journal.Abort)
}

// Commit ends the transaction: the current state becomes the new
// rollback snapshot and the transition log is cleared. Committing while
// processing is suspended (InFlight) abandons the unprocessed remainder
// of the transition. With a journal configured, Commit writes a durable
// point followed by a new transaction start; a journal failure returns
// a *DurabilityError (the in-memory commit still happened).
func (e *Engine) Commit() error {
	e.snapshot = e.db.Clone()
	e.log.Truncate()
	for i := range e.marks {
		e.marks[i] = 0
	}
	e.assertStart = 0
	e.inFlight = false
	if e.cand != nil {
		e.cand.Reset()
	}
	if err := e.journal("commit", Journal.Commit); err != nil {
		return err
	}
	return e.journal("begin", Journal.Begin)
}

// Clone returns an independent copy of the engine (database, log, marks,
// snapshot). The model checker forks engines to explore every choice.
// The clone carries no journal: forks are speculative, and their
// mutations must never reach the durable log (db.Clone likewise drops
// the observer).
func (e *Engine) Clone() *Engine {
	opts := e.opts
	opts.Journal = nil
	ne := &Engine{
		set:         e.set,
		db:          e.db.Clone(),
		log:         e.log.Clone(),
		opts:        opts,
		marks:       make([]int, len(e.marks)),
		snapshot:    e.snapshot, // snapshot is never mutated; safe to share
		assertStart: e.assertStart,
		inFlight:    e.inFlight,
		prog:        e.prog, // immutable, shared
	}
	copy(ne.marks, e.marks)
	if e.cand != nil {
		ne.cand = e.cand.Clone()
	}
	return ne
}

// StateFingerprint identifies the execution-graph state (D, TR) of
// Section 4: the database contents plus, per rule, the net effect of its
// pending transition restricted to the rule's table. The restriction
// matches the paper's abstraction: a rule's transition predicate and
// transition tables concern only its own table, so pending changes to
// other tables cannot influence its future behaviour. Two engine states
// with equal fingerprints behave identically for all future rule
// processing.
func (e *Engine) StateFingerprint() string {
	fp := e.db.Fingerprint()
	out := make([]byte, 0, 32+len(e.marks)*33)
	out = append(out, fp[:]...)
	for _, r := range e.set.Rules() {
		nf := e.pendingNet(r).TableFingerprint(r.Table)
		out = append(out, '|')
		out = append(out, nf[:]...)
	}
	return string(out)
}

// StateHash returns a sha256 digest of exactly the material of
// StateFingerprint — the database fingerprint plus each rule's pending
// net-effect fingerprint — without materializing the intermediate
// string. The execution-graph explorers use it as a fixed-size memo key:
// the parallel explorer additionally shards its memo table by the hash's
// top bits, so the digest doubles as the shard selector.
func (e *Engine) StateHash() [32]byte {
	h := sha256.New()
	fp := e.db.Fingerprint()
	h.Write(fp[:])
	for _, r := range e.set.Rules() {
		nf := e.pendingNet(r).TableFingerprint(r.Table)
		h.Write([]byte{'|'})
		h.Write(nf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// TRStateFingerprint identifies the state exactly as the paper's Section
// 4 model does: the database contents plus the set TR of TRIGGERED rules
// with their associated transition tables. Untriggered rules contribute
// nothing, even if they carry a nonempty pending transition.
//
// This is coarser than StateFingerprint: two states equal under
// TRStateFingerprint can in rare cases evolve differently, because an
// untriggered rule's pending transition still determines how future
// operations compose into its unseen net effect (see the masking
// condition, internal/analysis condition 7). The model checker therefore
// memoizes on the finer StateFingerprint; TRStateFingerprint exists to
// validate the paper's Figure 1 commutativity diamond on the paper's own
// state abstraction.
func (e *Engine) TRStateFingerprint() string {
	fp := e.db.Fingerprint()
	out := make([]byte, 0, 64)
	out = append(out, fp[:]...)
	for _, r := range e.set.Rules() {
		net := e.pendingNet(r)
		if !net.Ops().Intersects(r.TriggeredBy()) {
			continue
		}
		nf := net.TableFingerprint(r.Table)
		out = append(out, '|')
		out = append(out, byte(r.Index()), byte(r.Index()>>8))
		out = append(out, nf[:]...)
	}
	return string(out)
}
