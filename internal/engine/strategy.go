package engine

import (
	"math/rand"

	"activerules/internal/rules"
)

// Strategy picks which eligible rule to consider next when several
// unordered rules are simultaneously eligible — the source of the
// nondeterminism that confluence analysis (Section 6) reasons about.
type Strategy interface {
	// Pick selects one rule from eligible, which is non-empty.
	Pick(eligible []*rules.Rule) *rules.Rule
}

// FirstByName deterministically picks the lexicographically smallest rule
// name. It is the engine default, making runs reproducible.
type FirstByName struct{}

// Pick returns the rule with the smallest name.
func (FirstByName) Pick(eligible []*rules.Rule) *rules.Rule {
	best := eligible[0]
	for _, r := range eligible[1:] {
		if r.Name < best.Name {
			best = r
		}
	}
	return best
}

// LastByName deterministically picks the lexicographically largest rule
// name — a second deterministic order, useful for exhibiting
// non-confluence with two runs.
type LastByName struct{}

// Pick returns the rule with the largest name.
func (LastByName) Pick(eligible []*rules.Rule) *rules.Rule {
	best := eligible[0]
	for _, r := range eligible[1:] {
		if r.Name > best.Name {
			best = r
		}
	}
	return best
}

// Seeded picks uniformly at random with a private generator, modeling an
// arbitrary scheduler while staying reproducible for a fixed seed.
type Seeded struct{ rng *rand.Rand }

// NewSeeded returns a Seeded strategy with the given seed.
func NewSeeded(seed int64) *Seeded {
	return &Seeded{rng: rand.New(rand.NewSource(seed))}
}

// Pick returns a uniformly random eligible rule.
func (s *Seeded) Pick(eligible []*rules.Rule) *rules.Rule {
	return eligible[s.rng.Intn(len(eligible))]
}

// Scripted replays a fixed sequence of choices (by index into the
// eligible slice); once the script is exhausted it falls back to
// FirstByName. The model checker uses engine forking instead, but
// Scripted is convenient for directed tests reproducing a specific
// interleaving.
type Scripted struct {
	Choices []int
	pos     int
}

// Pick returns the scripted choice, clamped to the eligible slice.
func (s *Scripted) Pick(eligible []*rules.Rule) *rules.Rule {
	if s.pos >= len(s.Choices) {
		return FirstByName{}.Pick(eligible)
	}
	i := s.Choices[s.pos]
	s.pos++
	if i < 0 || i >= len(eligible) {
		i = 0
	}
	return eligible[i]
}
