// Package storage implements the in-memory relational store that the rule
// engine executes against: typed values, tuples with stable identities,
// tables, and whole-database snapshots with canonical fingerprints.
//
// It substitutes for the Starburst DBMS substrate of the paper. Only the
// behaviour the rule semantics of Section 2 depends on is implemented:
// insert/delete/update with tuple identity (needed for net-effect
// transitions) and deterministic state comparison (needed by the execution
// graph model checker of Section 4).
package storage

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"activerules/internal/schema"
)

// ValueKind tags the dynamic type of a Value.
type ValueKind int

// Value kinds. Null is the SQL null, admitted for any column type.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase kind name.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Value is a dynamically typed SQL value. Values are comparable with ==
// (all fields are comparable), so they may be used as map keys; use Equal
// for SQL equality, which additionally identifies int and float values of
// equal magnitude.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null is the SQL null value.
var Null = Value{Kind: KindNull}

// IntV returns an integer value.
func IntV(i int64) Value { return Value{Kind: KindInt, I: i} }

// FloatV returns a floating-point value.
func FloatV(f float64) Value { return Value{Kind: KindFloat, F: f} }

// StringV returns a string value.
func StringV(s string) Value { return Value{Kind: KindString, S: s} }

// BoolV returns a boolean value.
func BoolV(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is SQL null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value as a float64. It panics for
// non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		panic("storage: AsFloat on non-numeric value " + v.String())
	}
}

// Equal reports SQL value equality: null equals nothing (not even null);
// ints and floats compare numerically; otherwise kinds and payloads must
// match. Use Compare for a three-valued result.
func (v Value) Equal(o Value) bool {
	eq, known := v.Compare(o)
	return known && eq == 0
}

// Compare performs a three-way comparison. The second result is false when
// the comparison is unknown (either operand null, or incomparable kinds);
// the first result is then meaningless. Numeric values compare across
// int/float. Strings compare lexicographically, bools false<true.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNull() || o.IsNull() {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.S, o.S), true
	case KindBool:
		switch {
		case v.B == o.B:
			return 0, true
		case !v.B:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// MatchesType reports whether the value may be stored in a column of the
// given schema type. Null matches every type, and ints are accepted for
// float columns.
func (v Value) MatchesType(t schema.Type) bool {
	switch v.Kind {
	case KindNull:
		return true
	case KindInt:
		return t == schema.Int || t == schema.Float
	case KindFloat:
		return t == schema.Float
	case KindString:
		return t == schema.String
	case KindBool:
		return t == schema.Bool
	default:
		return false
	}
}

// Coerce converts the value to the representation used for a column of
// type t (e.g. int literal stored into a float column becomes a float).
// It returns an error when the value does not match the type.
func (v Value) Coerce(t schema.Type) (Value, error) {
	if !v.MatchesType(t) {
		return Value{}, fmt.Errorf("storage: value %s does not match column type %s", v, t)
	}
	if t == schema.Float && v.Kind == KindInt {
		return FloatV(float64(v.I)), nil
	}
	return v, nil
}

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// AppendCanonical appends the canonical byte encoding of the value,
// suitable for fingerprinting (injective and kind-prefixed).
func (v Value) AppendCanonical(b []byte) []byte { return v.encode(b) }

// encode appends a canonical byte encoding of the value, used for
// fingerprints. The encoding is injective per kind and kind-prefixed.
func (v Value) encode(b []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(b, 'N')
	case KindInt:
		b = append(b, 'I')
		return strconv.AppendInt(b, v.I, 10)
	case KindFloat:
		b = append(b, 'F')
		return strconv.AppendUint(b, math.Float64bits(v.F), 16)
	case KindString:
		b = append(b, 'S')
		b = strconv.AppendInt(b, int64(len(v.S)), 10)
		b = append(b, ':')
		return append(b, v.S...)
	case KindBool:
		if v.B {
			return append(b, 'T')
		}
		return append(b, 'f')
	default:
		return append(b, '?')
	}
}
