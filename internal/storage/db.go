package storage

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"activerules/internal/schema"
)

// DB is an in-memory database instance over a fixed schema. A DB is not
// safe for concurrent mutation; the rule engine is single-threaded per
// transaction, matching Starburst's rule-processing model.
type DB struct {
	sch    *schema.Schema
	tables map[string]*Table
	nextID TupleID

	// undo records, most recent last, how to reverse every primitive
	// mutation performed while a savepoint is active. spDepth counts
	// active savepoints; while it is nonzero, tables suppress order-slice
	// compaction so undo can restore exact iteration order.
	undo    []undoEntry
	spDepth int

	// obs, when non-nil, receives every physical mutation applied to the
	// database (see Observer). Clones never carry the observer.
	obs Observer
}

// Observer receives every physical mutation applied to a DB, in
// application order — including the compensating mutations RollbackTo
// applies when reversing a savepoint. A write-ahead log attached here
// (internal/wal) is therefore a pure redo log: replaying the observed
// sequence onto the same starting state reproduces the exact contents
// and iteration order, with savepoint rollbacks appearing as mutation/
// compensation pairs that cancel out.
//
// Observers must not mutate the database from within a callback.
type Observer interface {
	// ObserveInsert reports an applied insert, with the assigned
	// identity and the coerced column values.
	ObserveInsert(table string, id TupleID, vals []Value)
	// ObserveDelete reports an applied delete.
	ObserveDelete(table string, id TupleID)
	// ObserveUpdate reports an applied single-column update with the
	// coerced new value.
	ObserveUpdate(table string, id TupleID, col string, v Value)
}

// SetObserver attaches (or, with nil, detaches) the mutation observer.
func (db *DB) SetObserver(o Observer) { db.obs = o }

// Observer returns the attached mutation observer, or nil.
func (db *DB) Observer() Observer { return db.obs }

// undoKind identifies the primitive mutation an undoEntry reverses.
type undoKind int

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
)

// undoEntry holds what RollbackTo needs to reverse one mutation.
type undoEntry struct {
	kind undoKind
	t    *Table
	id   TupleID
	col  int    // update: column index
	old  Value  // update: previous value
	row  *Tuple // delete: the removed tuple object
}

// Savepoint is a point-in-time marker in a DB's mutation history.
// RollbackTo returns the database to exactly the marked state (contents,
// iteration order, and identity allocation); Release keeps the changes
// and discards the undo records. Every Savepoint must be consumed by
// exactly one RollbackTo or Release, innermost first when nested.
type Savepoint struct {
	undoLen int
	nextID  TupleID
	depth   int
}

// Savepoint marks the current state for a cheap partial rollback. Unlike
// Clone, taking a savepoint is O(1); the cost is a small undo record per
// subsequent mutation until the savepoint is released or rolled back.
func (db *DB) Savepoint() Savepoint {
	db.spDepth++
	return Savepoint{undoLen: len(db.undo), nextID: db.nextID, depth: db.spDepth}
}

// RollbackTo reverses every mutation performed since the savepoint was
// taken, restoring contents, iteration order, and the identity counter.
// Each reversal is reported to the observer as the compensating physical
// mutation it applies (an undone insert observes as a delete, and so
// on), keeping any attached redo log replayable in sequence.
func (db *DB) RollbackTo(sp Savepoint) {
	for i := len(db.undo) - 1; i >= sp.undoLen; i-- {
		u := db.undo[i]
		switch u.kind {
		case undoInsert:
			u.t.unInsert(u.id)
			if db.obs != nil {
				db.obs.ObserveDelete(u.t.def.Name, u.id)
			}
		case undoDelete:
			u.t.unDelete(u.row)
			if db.obs != nil {
				db.obs.ObserveInsert(u.t.def.Name, u.row.ID, u.row.Vals)
			}
		case undoUpdate:
			u.t.rows[u.id].Vals[u.col] = u.old
			if db.obs != nil {
				db.obs.ObserveUpdate(u.t.def.Name, u.id, u.t.def.Columns[u.col].Name, u.old)
			}
		}
	}
	db.undo = db.undo[:sp.undoLen]
	db.nextID = sp.nextID
	db.spDepth = sp.depth - 1
}

// Release discards the savepoint, keeping all mutations made since it
// was taken. Under nesting, the kept mutations remain undoable by the
// enclosing savepoint; only releasing the outermost savepoint drops the
// accumulated undo records.
func (db *DB) Release(sp Savepoint) {
	db.spDepth = sp.depth - 1
	if db.spDepth == 0 {
		db.undo = db.undo[:0]
	}
}

// NewDB creates an empty database for the schema.
func NewDB(s *schema.Schema) *DB {
	db := &DB{sch: s, tables: make(map[string]*Table, s.NumTables()), nextID: 1}
	for _, name := range s.TableNames() {
		db.tables[name] = newTable(s.Table(name))
	}
	return db
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.sch }

// Table returns the named table, or nil if the schema has no such table.
func (db *DB) Table(name string) *Table { return db.tables[strings.ToLower(name)] }

// Insert adds a tuple with the given column values (in schema column
// order) and returns its new identity. Values are coerced to the column
// types; a type mismatch or arity mismatch is an error.
func (db *DB) Insert(table string, vals []Value) (TupleID, error) {
	t := db.Table(table)
	if t == nil {
		return 0, fmt.Errorf("storage: no table %q", table)
	}
	if len(vals) != len(t.def.Columns) {
		return 0, fmt.Errorf("storage: insert into %s: %d values for %d columns",
			t.def.Name, len(vals), len(t.def.Columns))
	}
	coerced := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := v.Coerce(t.def.Columns[i].Type)
		if err != nil {
			return 0, fmt.Errorf("storage: insert into %s.%s: %v", t.def.Name, t.def.Columns[i].Name, err)
		}
		coerced[i] = cv
	}
	id := db.nextID
	db.nextID++
	t.insert(&Tuple{ID: id, Vals: coerced})
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoInsert, t: t, id: id})
	}
	if db.obs != nil {
		db.obs.ObserveInsert(t.def.Name, id, coerced)
	}
	return id, nil
}

// NextID returns the next tuple identity the database would allocate.
func (db *DB) NextID() TupleID { return db.nextID }

// BumpNextID raises the identity allocator to at least n. Used when
// restoring a database from a snapshot, so identities allocated after
// recovery never collide with restored ones. It never lowers the
// allocator.
func (db *DB) BumpNextID(n TupleID) {
	if n > db.nextID {
		db.nextID = n
	}
}

// InsertWithID adds a tuple under an explicit identity, for restoring a
// database from a snapshot or a redo log. Values are coerced like
// Insert. If the identity still occupies a tombstoned slot of the
// table's iteration order (it was deleted earlier in the same replay),
// it is revived in place, reproducing the iteration order a savepoint
// rollback restored in the original run. The identity allocator is
// bumped past id. Inserting an identity that is currently live is an
// error.
func (db *DB) InsertWithID(table string, id TupleID, vals []Value) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("storage: no table %q", table)
	}
	if len(vals) != len(t.def.Columns) {
		return fmt.Errorf("storage: insert into %s: %d values for %d columns",
			t.def.Name, len(vals), len(t.def.Columns))
	}
	if t.Get(id) != nil {
		return fmt.Errorf("storage: insert into %s: tuple %d already exists", t.def.Name, id)
	}
	coerced := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := v.Coerce(t.def.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("storage: insert into %s.%s: %v", t.def.Name, t.def.Columns[i].Name, err)
		}
		coerced[i] = cv
	}
	t.insertPreservingOrder(&Tuple{ID: id, Vals: coerced})
	db.BumpNextID(id + 1)
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoInsert, t: t, id: id})
	}
	if db.obs != nil {
		db.obs.ObserveInsert(t.def.Name, id, coerced)
	}
	return nil
}

// MustInsert is Insert, panicking on error. Intended for tests/examples.
func (db *DB) MustInsert(table string, vals ...Value) TupleID {
	id, err := db.Insert(table, vals)
	if err != nil {
		panic(err)
	}
	return id
}

// Delete removes the tuple with the given identity from the table. It
// returns the deleted tuple, or nil if no such tuple exists.
func (db *DB) Delete(table string, id TupleID) *Tuple {
	t := db.Table(table)
	if t == nil {
		return nil
	}
	tu := t.Get(id)
	if tu == nil {
		return nil
	}
	t.delete(id, db.spDepth == 0)
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoDelete, t: t, id: id, row: tu})
	}
	if db.obs != nil {
		db.obs.ObserveDelete(t.def.Name, id)
	}
	return tu
}

// Update sets column col of the identified tuple to v (coerced to the
// column type). It returns the previous value.
func (db *DB) Update(table string, id TupleID, col string, v Value) (Value, error) {
	t := db.Table(table)
	if t == nil {
		return Value{}, fmt.Errorf("storage: no table %q", table)
	}
	ci := t.def.ColumnIndex(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("storage: table %s has no column %q", t.def.Name, col)
	}
	tu := t.Get(id)
	if tu == nil {
		return Value{}, fmt.Errorf("storage: table %s has no tuple %d", t.def.Name, id)
	}
	cv, err := v.Coerce(t.def.Columns[ci].Type)
	if err != nil {
		return Value{}, fmt.Errorf("storage: update %s.%s: %v", t.def.Name, col, err)
	}
	old := tu.Vals[ci]
	tu.Vals[ci] = cv
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoUpdate, t: t, id: id, col: ci, old: old})
	}
	if db.obs != nil {
		db.obs.ObserveUpdate(t.def.Name, id, t.def.Columns[ci].Name, cv)
	}
	return old, nil
}

// Clone returns a deep copy of the database sharing no mutable state with
// the original. Tuple identities are preserved, so transitions recorded
// against the original remain meaningful against the clone. Savepoint
// bookkeeping and any attached Observer are not carried over: the clone
// captures the current contents with no savepoints active, and mutations
// of the clone are nobody's business but the clone's (the execution-graph
// explorer forks thousands of speculative copies).
func (db *DB) Clone() *DB {
	nd := &DB{sch: db.sch, tables: make(map[string]*Table, len(db.tables)), nextID: db.nextID}
	for name, t := range db.tables {
		nd.tables[name] = t.clone()
	}
	return nd
}

// Fingerprint returns a canonical digest of the database contents. Two
// databases have equal fingerprints iff every table holds the same
// multiset of rows (tuple identities and insertion order are ignored, as
// final states in the paper are compared by content).
func (db *DB) Fingerprint() [32]byte {
	h := sha256.New()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{'('})
		for _, enc := range db.tables[name].sortedEncodings() {
			h.Write(enc)
			h.Write([]byte{';'})
		}
		h.Write([]byte{')'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// TableFingerprint returns a canonical digest of the named tables only,
// used for partial-confluence checks (identical T' contents, Section 7).
func (db *DB) TableFingerprint(tables []string) [32]byte {
	h := sha256.New()
	names := make([]string, len(tables))
	for i, n := range tables {
		names[i] = strings.ToLower(n)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{'('})
		if t := db.tables[name]; t != nil {
			for _, enc := range t.sortedEncodings() {
				h.Write(enc)
				h.Write([]byte{';'})
			}
		}
		h.Write([]byte{')'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Equal reports whether the two databases hold the same contents.
func (db *DB) Equal(other *DB) bool { return db.Fingerprint() == other.Fingerprint() }

// TotalRows returns the number of live tuples across all tables.
func (db *DB) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}

// String renders all tables in name order, for debugging and reports.
func (db *DB) String() string {
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(db.tables[name].String())
	}
	return sb.String()
}
