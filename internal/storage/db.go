package storage

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"activerules/internal/schema"
)

// DB is an in-memory database instance over a fixed schema. A DB is not
// safe for concurrent mutation; the rule engine is single-threaded per
// transaction, matching Starburst's rule-processing model.
type DB struct {
	sch    *schema.Schema
	tables map[string]*Table
	nextID TupleID

	// undo records, most recent last, how to reverse every primitive
	// mutation performed while a savepoint is active. spDepth counts
	// active savepoints; while it is nonzero, tables suppress order-slice
	// compaction so undo can restore exact iteration order.
	undo    []undoEntry
	spDepth int
}

// undoKind identifies the primitive mutation an undoEntry reverses.
type undoKind int

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
)

// undoEntry holds what RollbackTo needs to reverse one mutation.
type undoEntry struct {
	kind undoKind
	t    *Table
	id   TupleID
	col  int    // update: column index
	old  Value  // update: previous value
	row  *Tuple // delete: the removed tuple object
}

// Savepoint is a point-in-time marker in a DB's mutation history.
// RollbackTo returns the database to exactly the marked state (contents,
// iteration order, and identity allocation); Release keeps the changes
// and discards the undo records. Every Savepoint must be consumed by
// exactly one RollbackTo or Release, innermost first when nested.
type Savepoint struct {
	undoLen int
	nextID  TupleID
	depth   int
}

// Savepoint marks the current state for a cheap partial rollback. Unlike
// Clone, taking a savepoint is O(1); the cost is a small undo record per
// subsequent mutation until the savepoint is released or rolled back.
func (db *DB) Savepoint() Savepoint {
	db.spDepth++
	return Savepoint{undoLen: len(db.undo), nextID: db.nextID, depth: db.spDepth}
}

// RollbackTo reverses every mutation performed since the savepoint was
// taken, restoring contents, iteration order, and the identity counter.
func (db *DB) RollbackTo(sp Savepoint) {
	for i := len(db.undo) - 1; i >= sp.undoLen; i-- {
		u := db.undo[i]
		switch u.kind {
		case undoInsert:
			u.t.unInsert(u.id)
		case undoDelete:
			u.t.unDelete(u.row)
		case undoUpdate:
			u.t.rows[u.id].Vals[u.col] = u.old
		}
	}
	db.undo = db.undo[:sp.undoLen]
	db.nextID = sp.nextID
	db.spDepth = sp.depth - 1
}

// Release discards the savepoint, keeping all mutations made since it
// was taken. Under nesting, the kept mutations remain undoable by the
// enclosing savepoint; only releasing the outermost savepoint drops the
// accumulated undo records.
func (db *DB) Release(sp Savepoint) {
	db.spDepth = sp.depth - 1
	if db.spDepth == 0 {
		db.undo = db.undo[:0]
	}
}

// NewDB creates an empty database for the schema.
func NewDB(s *schema.Schema) *DB {
	db := &DB{sch: s, tables: make(map[string]*Table, s.NumTables()), nextID: 1}
	for _, name := range s.TableNames() {
		db.tables[name] = newTable(s.Table(name))
	}
	return db
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.sch }

// Table returns the named table, or nil if the schema has no such table.
func (db *DB) Table(name string) *Table { return db.tables[strings.ToLower(name)] }

// Insert adds a tuple with the given column values (in schema column
// order) and returns its new identity. Values are coerced to the column
// types; a type mismatch or arity mismatch is an error.
func (db *DB) Insert(table string, vals []Value) (TupleID, error) {
	t := db.Table(table)
	if t == nil {
		return 0, fmt.Errorf("storage: no table %q", table)
	}
	if len(vals) != len(t.def.Columns) {
		return 0, fmt.Errorf("storage: insert into %s: %d values for %d columns",
			t.def.Name, len(vals), len(t.def.Columns))
	}
	coerced := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := v.Coerce(t.def.Columns[i].Type)
		if err != nil {
			return 0, fmt.Errorf("storage: insert into %s.%s: %v", t.def.Name, t.def.Columns[i].Name, err)
		}
		coerced[i] = cv
	}
	id := db.nextID
	db.nextID++
	t.insert(&Tuple{ID: id, Vals: coerced})
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoInsert, t: t, id: id})
	}
	return id, nil
}

// MustInsert is Insert, panicking on error. Intended for tests/examples.
func (db *DB) MustInsert(table string, vals ...Value) TupleID {
	id, err := db.Insert(table, vals)
	if err != nil {
		panic(err)
	}
	return id
}

// Delete removes the tuple with the given identity from the table. It
// returns the deleted tuple, or nil if no such tuple exists.
func (db *DB) Delete(table string, id TupleID) *Tuple {
	t := db.Table(table)
	if t == nil {
		return nil
	}
	tu := t.Get(id)
	if tu == nil {
		return nil
	}
	t.delete(id, db.spDepth == 0)
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoDelete, t: t, id: id, row: tu})
	}
	return tu
}

// Update sets column col of the identified tuple to v (coerced to the
// column type). It returns the previous value.
func (db *DB) Update(table string, id TupleID, col string, v Value) (Value, error) {
	t := db.Table(table)
	if t == nil {
		return Value{}, fmt.Errorf("storage: no table %q", table)
	}
	ci := t.def.ColumnIndex(col)
	if ci < 0 {
		return Value{}, fmt.Errorf("storage: table %s has no column %q", t.def.Name, col)
	}
	tu := t.Get(id)
	if tu == nil {
		return Value{}, fmt.Errorf("storage: table %s has no tuple %d", t.def.Name, id)
	}
	cv, err := v.Coerce(t.def.Columns[ci].Type)
	if err != nil {
		return Value{}, fmt.Errorf("storage: update %s.%s: %v", t.def.Name, col, err)
	}
	old := tu.Vals[ci]
	tu.Vals[ci] = cv
	if db.spDepth > 0 {
		db.undo = append(db.undo, undoEntry{kind: undoUpdate, t: t, id: id, col: ci, old: old})
	}
	return old, nil
}

// Clone returns a deep copy of the database sharing no mutable state with
// the original. Tuple identities are preserved, so transitions recorded
// against the original remain meaningful against the clone. Savepoint
// bookkeeping is not carried over: the clone captures the current
// contents with no savepoints active.
func (db *DB) Clone() *DB {
	nd := &DB{sch: db.sch, tables: make(map[string]*Table, len(db.tables)), nextID: db.nextID}
	for name, t := range db.tables {
		nd.tables[name] = t.clone()
	}
	return nd
}

// Fingerprint returns a canonical digest of the database contents. Two
// databases have equal fingerprints iff every table holds the same
// multiset of rows (tuple identities and insertion order are ignored, as
// final states in the paper are compared by content).
func (db *DB) Fingerprint() [32]byte {
	h := sha256.New()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{'('})
		for _, enc := range db.tables[name].sortedEncodings() {
			h.Write(enc)
			h.Write([]byte{';'})
		}
		h.Write([]byte{')'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// TableFingerprint returns a canonical digest of the named tables only,
// used for partial-confluence checks (identical T' contents, Section 7).
func (db *DB) TableFingerprint(tables []string) [32]byte {
	h := sha256.New()
	names := make([]string, len(tables))
	for i, n := range tables {
		names[i] = strings.ToLower(n)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{'('})
		if t := db.tables[name]; t != nil {
			for _, enc := range t.sortedEncodings() {
				h.Write(enc)
				h.Write([]byte{';'})
			}
		}
		h.Write([]byte{')'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Equal reports whether the two databases hold the same contents.
func (db *DB) Equal(other *DB) bool { return db.Fingerprint() == other.Fingerprint() }

// TotalRows returns the number of live tuples across all tables.
func (db *DB) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}

// String renders all tables in name order, for debugging and reports.
func (db *DB) String() string {
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(db.tables[name].String())
	}
	return sb.String()
}
