package storage

import (
	"fmt"
	"sort"
	"strings"

	"activerules/internal/schema"
)

// TupleID is the stable identity of a tuple within a database. Identities
// are never reused; they let the transition machinery track the history of
// a single tuple across updates (Section 2's net effects are per-tuple).
type TupleID int64

// Tuple is a row: a stable identity plus one value per column.
type Tuple struct {
	ID   TupleID
	Vals []Value
}

// clone returns a deep copy of the tuple.
func (t *Tuple) clone() *Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return &Tuple{ID: t.ID, Vals: vals}
}

// encode appends a canonical encoding of the tuple's values (identity is
// deliberately excluded: database states are compared by content).
func (t *Tuple) encode(b []byte) []byte {
	for _, v := range t.Vals {
		b = v.encode(b)
		b = append(b, ',')
	}
	return b
}

// Table holds the tuples of one relation. Iteration order is insertion
// order, which keeps execution deterministic for a fixed choice strategy.
type Table struct {
	def    *schema.Table
	rows   map[TupleID]*Tuple
	order  []TupleID // insertion order; may contain IDs deleted from rows
	nlived int       // live rows, to trigger order compaction
}

func newTable(def *schema.Table) *Table {
	return &Table{def: def, rows: make(map[TupleID]*Tuple)}
}

// Def returns the schema definition of the table.
func (t *Table) Def() *schema.Table { return t.def }

// Len returns the number of live tuples.
func (t *Table) Len() int { return len(t.rows) }

// Get returns the tuple with the given identity, or nil.
func (t *Table) Get(id TupleID) *Tuple { return t.rows[id] }

// Scan calls fn for each live tuple in insertion order. fn must not
// insert or delete tuples; it may read freely. It may update values via
// the enclosing DB only if it returns immediately afterwards.
func (t *Table) Scan(fn func(*Tuple) bool) {
	for _, id := range t.order {
		if tu, ok := t.rows[id]; ok {
			if !fn(tu) {
				return
			}
		}
	}
}

// IDs returns the identities of all live tuples in insertion order.
func (t *Table) IDs() []TupleID {
	out := make([]TupleID, 0, len(t.rows))
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

func (t *Table) insert(tu *Tuple) {
	t.rows[tu.ID] = tu
	t.order = append(t.order, tu.ID)
	t.nlived++
}

// insertPreservingOrder is insert for redo-log replay: if the identity
// still has a tombstoned slot in the order slice (it was deleted earlier
// in the replay and is now being re-inserted by a savepoint-rollback
// compensation record), it is revived in place, matching what unDelete
// did in the original run. The tombstone scan only runs when tombstones
// exist at all.
func (t *Table) insertPreservingOrder(tu *Tuple) {
	if len(t.order) > t.nlived {
		for _, id := range t.order {
			if id == tu.ID {
				t.rows[tu.ID] = tu
				t.nlived++
				return
			}
		}
	}
	t.insert(tu)
}

func (t *Table) delete(id TupleID, compact bool) bool {
	if _, ok := t.rows[id]; !ok {
		return false
	}
	delete(t.rows, id)
	t.nlived--
	// Compact the order slice when it is mostly tombstones. Compaction is
	// suppressed while a savepoint is active: unDelete relies on the
	// deleted identity keeping its original position in the order slice.
	if compact && len(t.order) > 16 && t.nlived*4 < len(t.order) {
		live := t.order[:0]
		for _, oid := range t.order {
			if _, ok := t.rows[oid]; ok {
				live = append(live, oid)
			}
		}
		t.order = live
	}
	return true
}

// unInsert reverses an insert made under a savepoint. Undo records are
// applied most recent first, so the inserted identity is still the last
// element of the order slice (later inserts have already been undone and
// deletes never append).
func (t *Table) unInsert(id TupleID) {
	delete(t.rows, id)
	t.nlived--
	if n := len(t.order); n > 0 && t.order[n-1] == id {
		t.order = t.order[:n-1]
	}
}

// unDelete reverses a delete made under a savepoint. The identity kept
// its slot in the order slice (compaction is suppressed while savepoints
// are active), so restoring the rows entry restores iteration order too.
func (t *Table) unDelete(tu *Tuple) {
	t.rows[tu.ID] = tu
	t.nlived++
}

func (t *Table) clone() *Table {
	nt := &Table{
		def:    t.def,
		rows:   make(map[TupleID]*Tuple, len(t.rows)),
		nlived: t.nlived,
	}
	nt.order = make([]TupleID, 0, len(t.rows))
	for _, id := range t.order {
		if tu, ok := t.rows[id]; ok {
			nt.rows[id] = tu.clone()
			nt.order = append(nt.order, id)
		}
	}
	return nt
}

// sortedEncodings returns the canonical encodings of all live tuples,
// sorted, so two tables with the same multiset of rows encode identically
// regardless of tuple identities or insertion order.
func (t *Table) sortedEncodings() [][]byte {
	encs := make([][]byte, 0, len(t.rows))
	for _, tu := range t.rows {
		encs = append(encs, tu.encode(nil))
	}
	sort.Slice(encs, func(i, j int) bool { return string(encs[i]) < string(encs[j]) })
	return encs
}

// String renders the table contents readably, one tuple per line, rows
// sorted canonically so equal tables print identically.
func (t *Table) String() string {
	type rendered struct{ key, text string }
	rows := make([]rendered, 0, len(t.rows))
	for _, tu := range t.rows {
		parts := make([]string, len(tu.Vals))
		for i, v := range tu.Vals {
			parts[i] = v.String()
		}
		rows = append(rows, rendered{key: string(tu.encode(nil)), text: strings.Join(parts, ", ")})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := fmt.Sprintf("%s (%d rows)\n", t.def.Name, len(t.rows))
	for _, r := range rows {
		out += "  (" + r.text + ")\n"
	}
	return out
}
