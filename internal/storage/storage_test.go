package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"activerules/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustParse(`
table account (id int, owner string, balance float, frozen bool)
table audit (id int, msg string)
`)
}

func TestValueConstructorsAndPredicates(t *testing.T) {
	if !Null.IsNull() || IntV(1).IsNull() {
		t.Error("IsNull wrong")
	}
	if !IntV(1).IsNumeric() || !FloatV(1).IsNumeric() || StringV("x").IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if IntV(3).AsFloat() != 3.0 || FloatV(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("AsFloat on string should panic")
		}
	}()
	StringV("x").AsFloat()
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b  Value
		cmp   int
		known bool
	}{
		{IntV(1), IntV(2), -1, true},
		{IntV(2), IntV(2), 0, true},
		{IntV(3), FloatV(2.5), 1, true},
		{FloatV(2.0), IntV(2), 0, true},
		{StringV("a"), StringV("b"), -1, true},
		{StringV("b"), StringV("b"), 0, true},
		{BoolV(false), BoolV(true), -1, true},
		{BoolV(true), BoolV(true), 0, true},
		{Null, IntV(1), 0, false},
		{IntV(1), Null, 0, false},
		{Null, Null, 0, false},
		{IntV(1), StringV("1"), 0, false},
		{BoolV(true), IntV(1), 0, false},
	}
	for _, c := range cases {
		cmp, known := c.a.Compare(c.b)
		if known != c.known || (known && cmp != c.cmp) {
			t.Errorf("Compare(%s, %s) = %d,%v; want %d,%v", c.a, c.b, cmp, known, c.cmp, c.known)
		}
	}
	if !IntV(2).Equal(FloatV(2)) {
		t.Error("2 should Equal 2.0")
	}
	if Null.Equal(Null) {
		t.Error("null must not Equal null (SQL semantics)")
	}
}

func TestValueCoerce(t *testing.T) {
	v, err := IntV(3).Coerce(schema.Float)
	if err != nil || v.Kind != KindFloat || v.F != 3 {
		t.Errorf("int->float coerce = %v, %v", v, err)
	}
	if _, err := StringV("x").Coerce(schema.Int); err == nil {
		t.Error("string->int coerce should fail")
	}
	if _, err := FloatV(1.5).Coerce(schema.Int); err == nil {
		t.Error("float->int coerce should fail")
	}
	if v, err := Null.Coerce(schema.Bool); err != nil || !v.IsNull() {
		t.Error("null coerces to any type")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"null":    Null,
		"42":      IntV(42),
		"-7":      IntV(-7),
		"2.5":     FloatV(2.5),
		"'it''s'": StringV("it's"),
		"true":    BoolV(true),
		"false":   BoolV(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestInsertDeleteUpdate(t *testing.T) {
	db := NewDB(testSchema(t))
	id := db.MustInsert("account", IntV(1), StringV("ann"), FloatV(100), BoolV(false))
	if db.Table("account").Len() != 1 {
		t.Fatal("insert failed")
	}
	old, err := db.Update("account", id, "balance", IntV(50)) // int coerced to float column
	if err != nil {
		t.Fatal(err)
	}
	if old.F != 100 {
		t.Errorf("old balance = %v, want 100", old)
	}
	got := db.Table("account").Get(id).Vals[2]
	if got.Kind != KindFloat || got.F != 50 {
		t.Errorf("balance after update = %v", got)
	}
	tu := db.Delete("account", id)
	if tu == nil || db.Table("account").Len() != 0 {
		t.Error("delete failed")
	}
	if db.Delete("account", id) != nil {
		t.Error("double delete should return nil")
	}
}

func TestInsertErrors(t *testing.T) {
	db := NewDB(testSchema(t))
	if _, err := db.Insert("nosuch", []Value{IntV(1)}); err == nil {
		t.Error("insert into missing table should fail")
	}
	if _, err := db.Insert("audit", []Value{IntV(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := db.Insert("audit", []Value{IntV(1), IntV(2)}); err == nil {
		t.Error("type mismatch should fail")
	}
}

func TestUpdateErrors(t *testing.T) {
	db := NewDB(testSchema(t))
	id := db.MustInsert("audit", IntV(1), StringV("m"))
	if _, err := db.Update("nosuch", id, "msg", StringV("x")); err == nil {
		t.Error("update missing table should fail")
	}
	if _, err := db.Update("audit", id, "nocol", StringV("x")); err == nil {
		t.Error("update missing column should fail")
	}
	if _, err := db.Update("audit", id+100, "msg", StringV("x")); err == nil {
		t.Error("update missing tuple should fail")
	}
	if _, err := db.Update("audit", id, "msg", IntV(1)); err == nil {
		t.Error("update type mismatch should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	db := NewDB(testSchema(t))
	id := db.MustInsert("audit", IntV(1), StringV("m"))
	cl := db.Clone()
	if !db.Equal(cl) {
		t.Fatal("clone should equal original")
	}
	if _, err := cl.Update("audit", id, "msg", StringV("changed")); err != nil {
		t.Fatal(err)
	}
	if db.Equal(cl) {
		t.Error("mutating the clone changed the original")
	}
	if got := db.Table("audit").Get(id).Vals[1].S; got != "m" {
		t.Errorf("original mutated: %q", got)
	}
	// Inserts into the clone must not collide with inserts into the original.
	id2 := cl.MustInsert("audit", IntV(2), StringV("a"))
	id3 := db.MustInsert("audit", IntV(3), StringV("b"))
	if id2 != id3 {
		t.Errorf("clone and original should allocate the same next ID independently: %d vs %d", id2, id3)
	}
}

func TestFingerprintIgnoresIdentityAndOrder(t *testing.T) {
	s := testSchema(t)
	a, b := NewDB(s), NewDB(s)
	a.MustInsert("audit", IntV(1), StringV("x"))
	a.MustInsert("audit", IntV(2), StringV("y"))
	// Insert in the opposite order, with different identities (burn one).
	b.MustInsert("account", IntV(9), StringV("tmp"), FloatV(0), BoolV(false))
	b.MustInsert("audit", IntV(2), StringV("y"))
	b.MustInsert("audit", IntV(1), StringV("x"))
	b.Delete("account", 1)
	if !a.Equal(b) {
		t.Error("fingerprint should ignore tuple identity and insertion order")
	}
	b.MustInsert("audit", IntV(1), StringV("x")) // duplicate row: multiset differs
	if a.Equal(b) {
		t.Error("fingerprint must distinguish multisets")
	}
}

func TestTableFingerprint(t *testing.T) {
	s := testSchema(t)
	a, b := NewDB(s), NewDB(s)
	a.MustInsert("audit", IntV(1), StringV("x"))
	b.MustInsert("audit", IntV(1), StringV("x"))
	b.MustInsert("account", IntV(1), StringV("z"), FloatV(1), BoolV(true))
	if a.TableFingerprint([]string{"audit"}) != b.TableFingerprint([]string{"AUDIT"}) {
		t.Error("audit tables are identical; partial fingerprint should match")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("full fingerprints should differ")
	}
	if a.TableFingerprint([]string{"account"}) == b.TableFingerprint([]string{"account"}) {
		t.Error("account tables differ; partial fingerprint should differ")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := NewDB(testSchema(t))
	for i := 0; i < 5; i++ {
		db.MustInsert("audit", IntV(int64(i)), StringV("m"))
	}
	var seen []int64
	db.Table("audit").Scan(func(tu *Tuple) bool {
		seen = append(seen, tu.Vals[0].I)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Errorf("Scan order/early-stop wrong: %v", seen)
	}
}

func TestOrderCompaction(t *testing.T) {
	db := NewDB(testSchema(t))
	var ids []TupleID
	for i := 0; i < 100; i++ {
		ids = append(ids, db.MustInsert("audit", IntV(int64(i)), StringV("m")))
	}
	for _, id := range ids[:90] {
		db.Delete("audit", id)
	}
	tbl := db.Table("audit")
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if len(tbl.order) > 40 {
		t.Errorf("order not compacted: %d entries for 10 live rows", len(tbl.order))
	}
	got := tbl.IDs()
	if len(got) != 10 || got[0] != ids[90] {
		t.Errorf("IDs after compaction = %v", got)
	}
}

// Property: a random sequence of operations applied to a DB and to its
// clone-of-final-state yields equal fingerprints; and Clone+mutate never
// affects the original fingerprint.
func TestRandomOpsCloneProperty(t *testing.T) {
	s := testSchema(t)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(s)
		var live []TupleID
		for i := 0; i < int(n); i++ {
			switch rng.Intn(3) {
			case 0:
				live = append(live, db.MustInsert("audit", IntV(rng.Int63n(10)), StringV("m")))
			case 1:
				if len(live) > 0 {
					k := rng.Intn(len(live))
					db.Delete("audit", live[k])
					live = append(live[:k], live[k+1:]...)
				}
			case 2:
				if len(live) > 0 {
					id := live[rng.Intn(len(live))]
					if _, err := db.Update("audit", id, "id", IntV(rng.Int63n(10))); err != nil {
						return false
					}
				}
			}
		}
		before := db.Fingerprint()
		cl := db.Clone()
		if cl.Fingerprint() != before {
			return false
		}
		cl.MustInsert("audit", IntV(999), StringV("q"))
		return db.Fingerprint() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	db := NewDB(testSchema(t))
	db.MustInsert("audit", IntV(1), StringV("x"))
	out := db.String()
	if out == "" {
		t.Error("String should render something")
	}
	if db.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}
