package storage

import (
	"fmt"
	"testing"

	"activerules/internal/schema"
)

func savepointDB(t *testing.T) *DB {
	t.Helper()
	sch, err := schema.Parse("table t (v int, s string)\ntable u (v int)")
	if err != nil {
		t.Fatal(err)
	}
	return NewDB(sch)
}

// stateKey captures everything a savepoint must restore: contents,
// iteration order, and the identity counter.
func stateKey(db *DB, tables ...string) string {
	out := ""
	for _, name := range tables {
		tbl := db.Table(name)
		out += name + "["
		tbl.Scan(func(tu *Tuple) bool {
			out += fmt.Sprintf("%d:", tu.ID)
			for _, v := range tu.Vals {
				out += v.String() + ","
			}
			out += ";"
			return true
		})
		out += "]"
	}
	return out + fmt.Sprintf("next=%d", db.nextID)
}

func TestSavepointRollbackRestoresEverything(t *testing.T) {
	db := savepointDB(t)
	a := db.MustInsert("t", IntV(1), StringV("a"))
	b := db.MustInsert("t", IntV(2), StringV("b"))
	db.MustInsert("u", IntV(9))
	before := stateKey(db, "t", "u")
	beforeFP := db.Fingerprint()

	sp := db.Savepoint()
	db.MustInsert("t", IntV(3), StringV("c"))
	if _, err := db.Update("t", a, "v", IntV(100)); err != nil {
		t.Fatal(err)
	}
	db.Delete("t", b)
	c := db.MustInsert("u", IntV(10))
	db.Delete("u", c) // insert-then-delete inside the savepoint
	if db.Fingerprint() == beforeFP {
		t.Fatal("mutations must change the fingerprint")
	}

	db.RollbackTo(sp)
	if db.Fingerprint() != beforeFP {
		t.Errorf("fingerprint not restored:\n%s", db.String())
	}
	if got := stateKey(db, "t", "u"); got != before {
		t.Errorf("exact state not restored:\n got %s\nwant %s", got, before)
	}
}

func TestSavepointRelease(t *testing.T) {
	db := savepointDB(t)
	sp := db.Savepoint()
	db.MustInsert("t", IntV(1), StringV("x"))
	db.Release(sp)
	if db.Table("t").Len() != 1 {
		t.Error("release must keep the mutations")
	}
	if len(db.undo) != 0 || db.spDepth != 0 {
		t.Errorf("release of outermost savepoint must clear undo state: %d entries, depth %d",
			len(db.undo), db.spDepth)
	}
}

func TestSavepointNesting(t *testing.T) {
	db := savepointDB(t)
	db.MustInsert("t", IntV(1), StringV("a"))
	outer := db.Savepoint()
	db.MustInsert("t", IntV(2), StringV("b"))
	afterOuter := db.Fingerprint()

	inner := db.Savepoint()
	db.MustInsert("t", IntV(3), StringV("c"))
	db.RollbackTo(inner)
	if db.Fingerprint() != afterOuter {
		t.Error("inner rollback must restore to the inner savepoint only")
	}

	// Released inner work must remain undoable by the outer savepoint.
	inner2 := db.Savepoint()
	db.MustInsert("t", IntV(4), StringV("d"))
	db.Release(inner2)
	if db.Table("t").Len() != 3 {
		t.Fatal("released inner savepoint must keep its insert")
	}
	db.RollbackTo(outer)
	if db.Table("t").Len() != 1 {
		t.Errorf("outer rollback must undo released inner work: %d rows", db.Table("t").Len())
	}
}

func TestSavepointDeleteKeepsOrder(t *testing.T) {
	db := savepointDB(t)
	var ids []TupleID
	for i := 0; i < 40; i++ {
		ids = append(ids, db.MustInsert("t", IntV(int64(i)), StringV("x")))
	}
	before := stateKey(db, "t")
	sp := db.Savepoint()
	// Mass deletion would normally trigger order compaction; under a
	// savepoint it must not, so rollback restores iteration order.
	for _, id := range ids[:35] {
		db.Delete("t", id)
	}
	db.RollbackTo(sp)
	if got := stateKey(db, "t"); got != before {
		t.Errorf("iteration order lost across rollback:\n got %s\nwant %s", got, before)
	}
	// With no savepoint active, compaction is back on and harmless.
	for _, id := range ids[:35] {
		db.Delete("t", id)
	}
	if db.Table("t").Len() != 5 {
		t.Errorf("post-release deletes lost: %d rows", db.Table("t").Len())
	}
}

func TestSavepointRestoresNextID(t *testing.T) {
	db := savepointDB(t)
	sp := db.Savepoint()
	first := db.MustInsert("t", IntV(1), StringV("a"))
	db.RollbackTo(sp)
	again := db.MustInsert("t", IntV(1), StringV("a"))
	if first != again {
		t.Errorf("identity allocation must replay after rollback: %d vs %d", first, again)
	}
}

func TestCloneDropsSavepointState(t *testing.T) {
	db := savepointDB(t)
	sp := db.Savepoint()
	db.MustInsert("t", IntV(1), StringV("a"))
	clone := db.Clone()
	db.RollbackTo(sp)
	if clone.Table("t").Len() != 1 {
		t.Error("clone must be unaffected by the original's rollback")
	}
	if clone.spDepth != 0 || len(clone.undo) != 0 {
		t.Error("clone must not inherit savepoint bookkeeping")
	}
}
