// Package shard runs one serving engine per analysis-proven shard.
//
// The planner (internal/analysis, Section 7 of the paper) partitions
// the schema's tables into groups with pairwise-disjoint significant
// rule sets; Theorem 7.2 then guarantees that rule processing on
// different groups commutes, so each group can be served by its own
// engine — with its own write-ahead log, quarantine breaker, and
// replication stream — and every per-table outcome matches the
// unsharded system. A Group materializes that plan: it opens one
// serve.Server per effective shard and routes each request to the
// single shard owning every table the request's statements touch.
//
// Routing is static and syntactic: the tables a statement references
// are collected from its parse tree (including subqueries), before
// execution. A request whose statements span two shards is rejected
// with a typed *ShardError rather than executed — the analysis only
// proves commutativity for statements confined to one group, so a
// cross-shard statement is exactly the coordination the plan promised
// to avoid.
package shard

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"activerules/internal/analysis"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/serve"
	"activerules/internal/sqlmini"
)

// ShardError reports a request the router cannot confine to one shard:
// its statements touch tables in different shards, a table no shard
// owns, or no table at all. The request was not executed.
type ShardError struct {
	// Tables are the tables the request references, sorted.
	Tables []string
	// Shards are the distinct shard indices those tables map to,
	// sorted; -1 marks a table outside the plan.
	Shards []int
	// Reason is a one-line human explanation.
	Reason string
}

func (e *ShardError) Error() string {
	if len(e.Tables) == 0 {
		return "shard: " + e.Reason
	}
	return fmt.Sprintf("shard: %s (tables [%s])", e.Reason, strings.Join(e.Tables, " "))
}

// Group serves an analysis-proven shard plan: one serve.Server per
// effective shard, each with its own WAL directory dir/shard-NNN.
// All methods are safe for concurrent use.
type Group struct {
	sch     *schema.Schema
	plan    *analysis.ShardPlan
	servers []*serve.Server
	// tables and ruleNames describe the effective (possibly coalesced)
	// shards, parallel to servers.
	tables     [][]string
	ruleNames  [][]string
	tableShard map[string]int
}

// Open plans the maximal shard partition for the schema and rule set,
// coalesces it to at most n effective shards (n <= 0 means "as many as
// the plan allows"), and opens one serve.Server per effective shard
// under dir. Coalescing is deterministic: the plan's groups (already in
// sorted order) are dealt round-robin into the n buckets, so equal
// inputs yield equal assignments. cfg applies to every shard; its
// Tables field is overridden per shard so degraded-mode reports scope
// to the shard's own tables.
func Open(sch *schema.Schema, defs []rules.Definition, dir string, n int, cfg serve.Config) (*Group, error) {
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		return nil, err
	}
	plan := analysis.New(set, nil).ShardPlan()
	k := plan.NumShards()
	if k == 0 {
		return nil, fmt.Errorf("shard: plan has no shards (empty schema)")
	}
	if n <= 0 || n > k {
		n = k
	}

	g := &Group{
		sch:        sch,
		plan:       plan,
		tables:     make([][]string, n),
		ruleNames:  make([][]string, n),
		tableShard: make(map[string]int),
	}
	ruleBucket := make(map[string]int)
	for i, grp := range plan.Shards {
		b := i % n
		g.tables[b] = append(g.tables[b], grp.Tables...)
		g.ruleNames[b] = append(g.ruleNames[b], grp.Rules...)
		for _, t := range grp.Tables {
			g.tableShard[t] = b
		}
		for _, r := range grp.Rules {
			ruleBucket[r] = b
		}
	}
	for b := 0; b < n; b++ {
		sort.Strings(g.tables[b])
		sort.Strings(g.ruleNames[b])
	}

	// Partition the definitions by the plan's rule assignment,
	// preserving source order within each shard. The plan covers every
	// rule (each rule's footprint lives in exactly one group), so an
	// uncovered definition is a planner bug, not a routing decision.
	subDefs := make([][]rules.Definition, n)
	for _, d := range defs {
		b, ok := ruleBucket[d.Name]
		if !ok {
			return nil, fmt.Errorf("shard: rule %s not covered by the shard plan", d.Name)
		}
		subDefs[b] = append(subDefs[b], d)
	}

	for b := 0; b < n; b++ {
		sub := cfg
		sub.Tables = g.tables[b]
		sdir := fmt.Sprintf("%s%cshard-%03d", dir, os.PathSeparator, b)
		srv, err := serve.New(sch, subDefs[b], sdir, sub)
		if err != nil {
			for _, s := range g.servers {
				s.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", b, err)
		}
		g.servers = append(g.servers, srv)
	}
	return g, nil
}

// Plan returns the maximal (pre-coalescing) shard plan.
func (g *Group) Plan() *analysis.ShardPlan { return g.plan }

// NumShards returns the number of effective shards (servers).
func (g *Group) NumShards() int { return len(g.servers) }

// Tables returns the tables of effective shard i, sorted.
func (g *Group) Tables(i int) []string { return g.tables[i] }

// Rules returns the rule names of effective shard i, sorted.
func (g *Group) Rules(i int) []string { return g.ruleNames[i] }

// Server returns effective shard i's server, for direct inspection
// (health, stats, replication hookup).
func (g *Group) Server(i int) *serve.Server { return g.servers[i] }

// Route parses sql and returns the single effective shard its
// statements are confined to. A *ShardError reports statements that
// span shards, reference unplanned tables, or touch no table at all;
// parse errors are returned as-is.
func (g *Group) Route(sql string) (int, error) {
	if strings.TrimSpace(sql) == "" {
		// An empty request ("run rules on the pending transition") has
		// no table to route by, and no shard's pending transition is
		// "the" one.
		return -1, &ShardError{Reason: "request touches no table; cannot be routed"}
	}
	tables, err := statementTables(sql)
	if err != nil {
		return -1, err
	}
	if len(tables) == 0 {
		return -1, &ShardError{Reason: "request touches no table; cannot be routed"}
	}
	shards := make(map[int]bool)
	for _, t := range tables {
		shards[g.shardFor(t)] = true
	}
	idx := sortedKeys(shards)
	if shards[-1] {
		return -1, &ShardError{Tables: tables, Shards: idx,
			Reason: "statement references tables outside the shard plan"}
	}
	if len(idx) > 1 {
		return -1, &ShardError{Tables: tables, Shards: idx,
			Reason: fmt.Sprintf("statements span %d shards; the plan proves independence only within one", len(idx))}
	}
	return idx[0], nil
}

// shardFor maps a table to its effective shard, or -1. Transition
// table names are invalid in user statements; they fall through to -1
// and surface as an unplanned-table rejection.
func (g *Group) shardFor(table string) int {
	if b, ok := g.tableShard[table]; ok {
		return b
	}
	return -1
}

// Submit routes the request to its shard and executes it there. A
// request that cannot be confined to one shard fails with *ShardError
// without executing anything.
func (g *Group) Submit(ctx context.Context, req serve.Request) (*serve.Response, error) {
	b, err := g.Route(req.SQL)
	if err != nil {
		return nil, err
	}
	return g.servers[b].Submit(ctx, req)
}

// Health returns every shard's health, indexed by effective shard.
func (g *Group) Health() []serve.Health {
	hs := make([]serve.Health, len(g.servers))
	for i, s := range g.servers {
		hs[i] = s.Health()
	}
	return hs
}

// Stats returns every shard's counters, indexed by effective shard.
func (g *Group) Stats() []serve.Stats {
	st := make([]serve.Stats, len(g.servers))
	for i, s := range g.servers {
		st[i] = s.Stats()
	}
	return st
}

// Checkpoint checkpoints every shard, returning the first error.
func (g *Group) Checkpoint(ctx context.Context) error {
	for i, s := range g.servers {
		if err := s.Checkpoint(ctx); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Shutdown drains every shard gracefully, returning the first error
// but attempting all shards.
func (g *Group) Shutdown(ctx context.Context) error {
	var first error
	for i, s := range g.servers {
		if err := s.Shutdown(ctx); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// Close releases every shard immediately.
func (g *Group) Close() error {
	var first error
	for i, s := range g.servers {
		if err := s.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// statementTables parses sql and returns the sorted set of table names
// its statements reference, walking every clause and subquery of the
// raw parse tree (resolution has not run, so names are as written).
func statementTables(sql string) ([]string, error) {
	stmts, err := sqlmini.ParseStatements(sql)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, st := range stmts {
		collectStmt(st, seen)
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

func collectStmt(st sqlmini.Statement, seen map[string]bool) {
	switch s := st.(type) {
	case *sqlmini.Insert:
		seen[s.Table] = true
		if s.Query != nil {
			collectSelect(s.Query, seen)
		}
	case *sqlmini.Delete:
		seen[s.Table] = true
		collectExpr(s.Where, seen)
	case *sqlmini.Update:
		seen[s.Table] = true
		for _, set := range s.Sets {
			collectExpr(set.Expr, seen)
		}
		collectExpr(s.Where, seen)
	case *sqlmini.Select:
		collectSelect(s, seen)
	case *sqlmini.Rollback:
		// touches nothing
	}
}

func collectSelect(sel *sqlmini.Select, seen map[string]bool) {
	for _, it := range sel.Items {
		collectExpr(it.Expr, seen)
	}
	for _, tr := range sel.From {
		seen[tr.Name] = true
	}
	collectExpr(sel.Where, seen)
	for _, e := range sel.GroupBy {
		collectExpr(e, seen)
	}
	collectExpr(sel.Having, seen)
	for _, o := range sel.OrderBy {
		collectExpr(o.Expr, seen)
	}
}

func collectExpr(e sqlmini.Expr, seen map[string]bool) {
	switch x := e.(type) {
	case nil:
	case *sqlmini.Unary:
		collectExpr(x.X, seen)
	case *sqlmini.Binary:
		collectExpr(x.L, seen)
		collectExpr(x.R, seen)
	case *sqlmini.IsNull:
		collectExpr(x.X, seen)
	case *sqlmini.InList:
		collectExpr(x.X, seen)
		for _, v := range x.Vals {
			collectExpr(v, seen)
		}
	case *sqlmini.InSelect:
		collectExpr(x.X, seen)
		collectSelect(x.Sub, seen)
	case *sqlmini.Exists:
		collectSelect(x.Sub, seen)
	case *sqlmini.ScalarSubquery:
		collectSelect(x.Sub, seen)
	case *sqlmini.Aggregate:
		collectExpr(x.Arg, seen)
	}
}
