package shard

// Sharding perf baseline: the same round-robin assert stream over four
// independent table clusters, served by 1, 2, and 4 effective shards.
// Submits run concurrently (b.RunParallel) because shard parallelism
// only pays when requests for different shards are in flight together.
// Recorded results live in BENCH_shard.json at the repo root.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"activerules/internal/ruledef"
	"activerules/internal/schema"
	"activerules/internal/serve"
	"activerules/internal/wal"
)

// benchClusters builds a schema of n independent {src,dst} clusters,
// one copy rule each, so the maximal plan has n shards.
func benchClusters(b *testing.B, n int) (*schema.Schema, string) {
	b.Helper()
	var schSrc, ruleSrc string
	for i := 0; i < n; i++ {
		schSrc += fmt.Sprintf("table src%d (id int, v int)\ntable dst%d (id int, v int)\n", i, i)
		ruleSrc += fmt.Sprintf(
			"create rule copy%d on src%d\nwhen inserted\nthen insert into dst%d select id, v from inserted\n\n",
			i, i, i)
	}
	sch, err := schema.Parse(schSrc)
	if err != nil {
		b.Fatal(err)
	}
	return sch, ruleSrc
}

func BenchmarkAssertSharded(b *testing.B) {
	const clusters = 4
	sch, ruleSrc := benchClusters(b, clusters)
	defs, err := ruledef.Parse(ruleSrc)
	if err != nil {
		b.Fatal(err)
	}
	stmts := make([]string, clusters)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("insert into src%d values (1, 2)", i)
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			g, err := Open(sch, defs, "bench", n, serve.Config{
				WAL:            wal.Options{FS: wal.NewMemFS()},
				QueueDepth:     256,
				DisableProbing: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			ctx := context.Background()
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % clusters
					if _, err := g.Submit(ctx, serve.Request{SQL: stmts[i]}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
