package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"activerules/internal/ruledef"
	"activerules/internal/schema"
	"activerules/internal/serve"
	"activerules/internal/wal"
)

// twoClusterSchema has two independent table clusters {a,b} and {c,d}:
// the rules weld a to b and c to d, so the maximal plan has exactly two
// shards.
func twoClusterSchema(t *testing.T) (*schema.Schema, string) {
	t.Helper()
	sch, err := schema.Parse(`
table a (id int, v int)
table b (id int, v int)
table c (id int, v int)
table d (id int, v int)
`)
	if err != nil {
		t.Fatal(err)
	}
	return sch, `
create rule r_ab on a
when inserted
then insert into b select id, v from inserted

create rule r_cd on c
when inserted
then insert into d select id, v + 1 from inserted
`
}

func memConfig() serve.Config {
	return serve.Config{
		WAL:            wal.Options{FS: wal.NewMemFS()},
		DisableProbing: true,
	}
}

func openGroup(t *testing.T, n int) *Group {
	t.Helper()
	sch, src := twoClusterSchema(t)
	defs, err := ruledef.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Open(sch, defs, "shards", n, memConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestShardRouting(t *testing.T) {
	g := openGroup(t, 0)
	if got := g.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2 (plan: %s)", got, g.Plan())
	}

	sa, err := g.Route("insert into a values (1, 2)")
	if err != nil {
		t.Fatalf("route a: %v", err)
	}
	sc, err := g.Route("insert into c values (1, 2)")
	if err != nil {
		t.Fatalf("route c: %v", err)
	}
	if sa == sc {
		t.Fatalf("a and c routed to the same shard %d", sa)
	}
	// Statements confined to one cluster route together, subqueries
	// included.
	sb, err := g.Route("delete from b where id in (select id from a)")
	if err != nil {
		t.Fatalf("route a+b: %v", err)
	}
	if sb != sa {
		t.Fatalf("a+b statement routed to %d, a to %d", sb, sa)
	}

	var se *ShardError
	if _, err := g.Route("insert into a values (1, 1); insert into c values (2, 2)"); !errors.As(err, &se) {
		t.Fatalf("cross-shard route error = %v, want *ShardError", err)
	}
	if len(se.Shards) != 2 {
		t.Fatalf("cross-shard error shards = %v, want two", se.Shards)
	}
	if _, err := g.Route("insert into nosuch values (1)"); !errors.As(err, &se) {
		t.Fatalf("unknown-table route error = %v, want *ShardError", err)
	}
	if _, err := g.Route(""); !errors.As(err, &se) {
		t.Fatalf("empty route error = %v, want *ShardError", err)
	}
	if _, err := g.Route("insert into a values ("); err == nil || errors.As(err, &se) {
		t.Fatalf("parse error = %v, want non-ShardError", err)
	}

	// A rejected Submit executes nothing.
	if _, err := g.Submit(context.Background(), serve.Request{SQL: "insert into a values (9, 9); insert into c values (9, 9)"}); !errors.As(err, &se) {
		t.Fatalf("cross-shard submit error = %v, want *ShardError", err)
	}
	resp, err := g.Submit(context.Background(), serve.Request{SQL: "select id from a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results[0].Rows) != 0 {
		t.Fatalf("rejected request leaked rows: %v", resp.Results[0].Rows)
	}
}

// TestShardVerdictsMatchUnsharded drives the same request sequence
// through a 2-shard group and an unsharded server and checks that every
// per-table outcome — SELECT results and rule firings — is identical,
// which is exactly what Theorem 7.2 promises for disjoint-Sig shards.
func TestShardVerdictsMatchUnsharded(t *testing.T) {
	sch, src := twoClusterSchema(t)
	defs, err := ruledef.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Open(sch, defs, "shards", 2, memConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	flat, err := serve.New(sch, defs, "flat", memConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	ctx := context.Background()
	reqs := []string{
		"insert into a values (1, 10), (2, 20)",
		"insert into c values (1, 100)",
		"insert into a values (3, 30)",
		"insert into c values (2, 200), (3, 300)",
		"select id, v from b order by id",
		"select id, v from d order by id",
	}
	for _, sql := range reqs {
		req := serve.Request{SQL: sql}
		sr, err := g.Submit(ctx, req)
		if err != nil {
			t.Fatalf("sharded %q: %v", sql, err)
		}
		fr, err := flat.Submit(ctx, req)
		if err != nil {
			t.Fatalf("flat %q: %v", sql, err)
		}
		if got, want := fmt.Sprintf("%v", sr.Results), fmt.Sprintf("%v", fr.Results); got != want {
			t.Fatalf("%q results diverge:\n sharded %s\n flat    %s", sql, got, want)
		}
		if !reflect.DeepEqual(sr.FiredByRule, fr.FiredByRule) {
			t.Fatalf("%q firings diverge: sharded %v, flat %v", sql, sr.FiredByRule, fr.FiredByRule)
		}
	}
}

func TestShardCoalesceAndDeterminism(t *testing.T) {
	g1 := openGroup(t, 1)
	if got := g1.NumShards(); got != 1 {
		t.Fatalf("coalesced NumShards = %d, want 1", got)
	}
	// With one effective shard, a statement pair that spans the maximal
	// plan's groups is still confined to one server and must execute.
	resp, err := g1.Submit(context.Background(), serve.Request{SQL: "insert into a values (1, 1); insert into c values (2, 2)"})
	if err != nil {
		t.Fatalf("coalesced cross-cluster submit: %v", err)
	}
	if resp.Fired != 2 {
		t.Fatalf("coalesced Fired = %d, want 2 (r_ab and r_cd)", resp.Fired)
	}
	// Plan is still the maximal one, for reporting.
	if got := g1.Plan().NumShards(); got != 2 {
		t.Fatalf("maximal plan NumShards = %d, want 2", got)
	}

	// Requesting more shards than the plan allows clamps to the plan.
	g9 := openGroup(t, 9)
	if got := g9.NumShards(); got != 2 {
		t.Fatalf("over-requested NumShards = %d, want 2", got)
	}

	// Coalescing assignment is deterministic: equal inputs, equal
	// table sets per effective shard.
	ga, gb := openGroup(t, 1), openGroup(t, 1)
	for i := 0; i < ga.NumShards(); i++ {
		if !reflect.DeepEqual(ga.Tables(i), gb.Tables(i)) {
			t.Fatalf("shard %d tables diverge across runs: %v vs %v", i, ga.Tables(i), gb.Tables(i))
		}
		if !reflect.DeepEqual(ga.Rules(i), gb.Rules(i)) {
			t.Fatalf("shard %d rules diverge across runs: %v vs %v", i, ga.Rules(i), gb.Rules(i))
		}
	}
}
