package wal

import (
	"fmt"
	"io/fs"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with simulated crash semantics, the
// substrate of the crash-recovery harness (internal/crashtest). Each
// file tracks how much of its content has been fsynced; Crash throws
// away a random amount of the unsynced tail of every file — including
// none or all of it — producing exactly the torn-tail states a real
// power loss can leave behind.
//
// Durability model (matching the FS contract): written bytes are
// volatile until Sync; Truncate is immediately durable (an inode
// operation); directory ENTRIES — a created file's name, a rename's
// name swap, a removal — are volatile until SyncDir on their directory.
// A crash before the directory sync can revert any suffix of the
// pending entry operations, exactly as a real power loss can drop
// buffered directory blocks: a created file vanishes, a rename reverts
// (restoring any file it overwrote), a removed file returns. Rename is
// never durable for unsynced CONTENT either — a renamed-but-unsynced
// file can still lose its tail, which is why the snapshot protocol
// syncs before renaming.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	pending map[string][]dirOp // directory -> entry ops awaiting SyncDir
}

type memFile struct {
	data   []byte
	synced int // prefix of data known durable
}

// dirOp is one volatile directory-entry operation, with enough state to
// undo it when a crash drops it.
type dirOp struct {
	kind dirOpKind
	name string   // the entry written (create/rename target/remove)
	old  string   // rename only: the source name
	prev *memFile // rename/remove: the file the op displaced, if any
}

type dirOpKind int

const (
	dirCreate dirOpKind = iota
	dirRename
	dirRemove
)

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   make(map[string]*memFile),
		dirs:    make(map[string]bool),
		pending: make(map[string][]dirOp),
	}
}

// dirOf returns the directory of a flat WAL path ("" for a bare name).
func dirOf(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return ""
}

// note records a volatile directory-entry operation.
func (m *MemFS) note(op dirOp) {
	d := dirOf(op.name)
	m.pending[d] = append(m.pending[d], op)
}

// Crash simulates a power loss, in two steps matching the two buffered
// layers of a real filesystem. First, directory entries: for each
// directory (sorted), an rng-chosen PREFIX of its pending entry ops
// survives and the rest are undone in reverse order — a created name
// vanishes, a rename reverts (restoring the overwritten file), a
// removed file reappears. Then file contents: every surviving file
// keeps its synced prefix plus an rng-chosen prefix of its unsynced
// tail. Everything is processed in sorted name order so a seeded rng
// yields a deterministic post-crash state; the fault injector freezes
// open handles at the crash point.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dirs := make([]string, 0, len(m.pending))
	for d := range m.pending {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		ops := m.pending[d]
		keep := rng.Intn(len(ops) + 1)
		for i := len(ops) - 1; i >= keep; i-- {
			m.undo(ops[i])
		}
	}
	m.pending = make(map[string][]dirOp)

	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		keep := f.synced + rng.Intn(len(f.data)-f.synced+1)
		f.data = f.data[:keep]
		f.synced = keep
	}
}

// undo reverts one dropped directory-entry operation.
func (m *MemFS) undo(op dirOp) {
	switch op.kind {
	case dirCreate:
		delete(m.files, op.name)
	case dirRename:
		if f, ok := m.files[op.name]; ok {
			m.files[op.old] = f
		}
		if op.prev != nil {
			m.files[op.name] = op.prev
		} else {
			delete(m.files, op.name)
		}
	case dirRemove:
		m.files[op.name] = op.prev
	}
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// Create implements FS. The truncation of an EXISTING file is treated
// as immediately durable (like Truncate — an inode operation on an
// entry that is already stable); creating a NEW name is a volatile
// directory entry until SyncDir.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, existed := m.files[name]
	f := &memFile{}
	m.files[name] = f
	if !existed {
		m.note(dirOp{kind: dirCreate, name: name})
	}
	return &memHandle{fs: m, f: f}, nil
}

// OpenAppend implements FS. Creating a missing file is a volatile
// directory entry until SyncDir.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
		m.note(dirOp{kind: dirCreate, name: name})
	}
	return &memHandle{fs: m, f: f}, nil
}

// ReadFile implements FS, returning the live (not just synced) content.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements FS: the name swap is a volatile directory entry
// until SyncDir (a crash before it reverts the swap, restoring any
// overwritten target), and the content keeps whatever synced state it
// had either way.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.note(dirOp{kind: dirRename, name: newname, old: oldname, prev: m.files[newname]})
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

// Remove implements FS; the removal is a volatile directory entry until
// SyncDir — a crash before it can bring the file back.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	m.note(dirOp{kind: dirRemove, name: name, prev: f})
	delete(m.files, name)
	return nil
}

// Truncate implements FS; the truncation is durable.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d: out of range (size %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// SyncDir implements FS: every pending directory-entry operation of dir
// (create, rename, remove) becomes durable. Until this call, a
// simulated crash may revert any suffix of them — so the crash harness
// catches not only failures AT SyncDir call sites but protocols that
// are missing a SyncDir call altogether.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pending, dir)
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is a write handle on a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

// Write implements File, appending (both Create and OpenAppend hand out
// append-positioned handles; the WAL never seeks).
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// ShortWrite appends only n of the len(p) bytes and reports failure —
// the fault injector uses it to model a partial write reaching the disk
// before an error.
func (h *memHandle) ShortWrite(p []byte, n int) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if n > len(p) {
		n = len(p)
	}
	h.f.data = append(h.f.data, p[:n]...)
	return n, fmt.Errorf("memfs: short write (%d of %d bytes)", n, len(p))
}

// Sync implements File, promoting all written bytes to durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
