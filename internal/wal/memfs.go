package wal

import (
	"fmt"
	"io/fs"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with simulated crash semantics, the
// substrate of the crash-recovery harness (internal/crashtest). Each
// file tracks how much of its content has been fsynced; Crash throws
// away a random amount of the unsynced tail of every file — including
// none or all of it — producing exactly the torn-tail states a real
// power loss can leave behind.
//
// Durability model (matching the FS contract): written bytes are
// volatile until Sync; Truncate and Remove are immediately durable;
// Rename is durable for the name but NOT for unsynced content — a
// renamed-but-unsynced file can still lose its tail, which is why the
// snapshot protocol syncs before renaming.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data   []byte
	synced int // prefix of data known durable
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// Crash simulates a power loss: every file keeps its synced prefix plus
// an rng-chosen prefix of its unsynced tail (possibly empty, possibly
// all of it). Files are processed in sorted name order so a seeded rng
// yields a deterministic post-crash state. Open handles remain usable
// afterwards only in the sense that the harness reopens everything; the
// fault injector freezes them at the crash point.
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		keep := f.synced + rng.Intn(len(f.data)-f.synced+1)
		f.data = f.data[:keep]
		f.synced = keep
	}
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// Create implements FS. The truncation of an existing file is treated
// as immediately durable (like Truncate).
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

// ReadFile implements FS, returning the live (not just synced) content.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements FS: the name change is durable, the content keeps
// whatever synced state it had.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

// Remove implements FS; the removal is durable.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS; the truncation is durable.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d: out of range (size %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// SyncDir implements FS as a no-op: MemFS models directory entries
// (create, rename, remove) as immediately durable, so the crash harness
// exercises SyncDir call sites as injection points (failures, crashes)
// but cannot detect a *missing* SyncDir call — that gap in the model is
// why osFS must supply the real directory fsync.
func (m *MemFS) SyncDir(dir string) error { return nil }

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is a write handle on a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

// Write implements File, appending (both Create and OpenAppend hand out
// append-positioned handles; the WAL never seeks).
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// ShortWrite appends only n of the len(p) bytes and reports failure —
// the fault injector uses it to model a partial write reaching the disk
// before an error.
func (h *memHandle) ShortWrite(p []byte, n int) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if n > len(p) {
		n = len(p)
	}
	h.f.data = append(h.f.data, p[:n]...)
	return n, fmt.Errorf("memfs: short write (%d of %d bytes)", n, len(p))
}

// Sync implements File, promoting all written bytes to durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
