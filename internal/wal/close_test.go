package wal

import (
	"errors"
	"testing"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

// TestCloseIdempotent pins the drain-path contract: the first Close
// flushes and syncs, the second returns nil, and journal or observer
// writes after Close surface ErrClosed instead of panicking on a
// released handle.
func TestCloseIdempotent(t *testing.T) {
	sch := schema.MustParse("table t (v int)")
	fsys := NewMemFS()
	d, err := Open("wal", sch, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}

	// Journal writes after Close: typed sticky error, no panic.
	if err := d.Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("Commit after Close = %v, want ErrClosed", err)
	}
	if err := d.Begin(); !errors.Is(err, ErrClosed) {
		t.Errorf("Begin after Close = %v, want ErrClosed", err)
	}
	if err := d.Abort(); !errors.Is(err, ErrClosed) {
		t.Errorf("Abort after Close = %v, want ErrClosed", err)
	}
	// Observer writes after Close must not panic either; the sticky
	// error reports them.
	d.ObserveInsert("t", 1, nil)
	if err := d.Err(); !errors.Is(err, ErrClosed) {
		t.Errorf("Err after post-Close observe = %v, want ErrClosed", err)
	}

	// And a third Close still returns nil: ErrClosed is a liveness
	// diagnostic, not a close failure.
	if err := d.Close(); err != nil {
		t.Errorf("third Close = %v, want nil", err)
	}
}

// TestCloseAfterCloseDoesNotLoseDurability reopens the directory after
// a double Close and checks the committed state survived intact.
func TestCloseAfterCloseDoesNotLoseDurability(t *testing.T) {
	sch := schema.MustParse("table t (v int)")
	fsys := NewMemFS()
	d, err := Open("wal", sch, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	db := d.State()
	db.SetObserver(d)
	if _, err := db.Insert("t", []storage.Value{storage.IntV(7)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	want := db.Fingerprint()
	d.Close()
	d.Close()

	rdb, _, err := Recover("wal", sch, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if rdb.Fingerprint() != want {
		t.Error("recovered state differs after idempotent double Close")
	}
}
