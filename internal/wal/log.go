package wal

import (
	"errors"
	"fmt"
	"sync/atomic"

	"activerules/internal/storage"
)

// ErrFenced marks a log that has durably observed a higher leadership
// epoch: a promoted follower owns the history now, and every append
// this log would make could fork it. Fencing is sticky like any other
// log error — journal and observer writes fail with it from the fence
// on — but it is an orderly refusal, not a durability fault: every byte
// the log accepted before the fence is safely on disk.
var ErrFenced = errors.New("wal: fenced by higher epoch")

// FencedError carries the epoch that fenced the log (or refused an
// Open). It unwraps to ErrFenced.
type FencedError struct {
	// Epoch is the higher epoch that was observed.
	Epoch uint64
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("wal: fenced by epoch %d", e.Epoch)
}

func (e *FencedError) Unwrap() error { return ErrFenced }

// SyncPolicy selects when the log calls fsync.
type SyncPolicy int

const (
	// SyncCommit (the default) fsyncs at commit and abort records —
	// every durable point is on stable storage before the engine
	// proceeds. With Options.GroupCommit > 1, the fsync is amortized
	// over that many commits (group commit): the durability window
	// widens to the unsynced commits, but prefix consistency is
	// unaffected because recovery only trusts what reached the disk in
	// order.
	SyncCommit SyncPolicy = iota
	// SyncAlways fsyncs after every record append. Slowest, smallest
	// loss window.
	SyncAlways
	// SyncNever never fsyncs; the OS decides when bytes hit the disk.
	// Fastest, and still crash-consistent (never corrupt) — a crash just
	// loses a longer committed suffix.
	SyncNever
)

// String renders the policy as its ruleexec -fsync spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncCommit:
		return "commit"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configure a durable session.
type Options struct {
	// FS is the filesystem to use; nil means the real one (OS).
	FS FS
	// Sync is the fsync policy; the zero value is SyncCommit.
	Sync SyncPolicy
	// GroupCommit batches fsyncs under SyncCommit: the log fsyncs every
	// Nth commit point (and always at abort, checkpoint, and close).
	// Values below 2 mean every commit syncs.
	GroupCommit int
	// BufferBytes is the in-memory append buffer threshold; a pending
	// batch larger than this is written out (without fsync) even before
	// the next commit point. 0 means 256 KiB.
	BufferBytes int
	// Epoch is the leadership epoch this session claims. 0 (the
	// default) adopts whatever epoch the directory already records —
	// single-node operation never sees epochs at all. A non-zero epoch
	// is stamped into the log at Open when it exceeds the recovered
	// epoch; an epoch BELOW the recovered one means the directory has
	// been fenced by a newer leader, and Open refuses with a
	// *FencedError — the durable half of split-brain safety.
	Epoch uint64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS
	}
	if o.GroupCommit < 2 {
		o.GroupCommit = 1
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = 256 << 10
	}
	return o
}

// Log is the append side of the write-ahead log. It implements
// storage.Observer (mutation records arrive from the database's
// physical-mutation hook) and the engine's Journal interface
// (begin/commit/abort records arrive from transaction boundaries).
//
// Errors are sticky: after any filesystem failure the log stops
// appending and every subsequent durable point returns the original
// error, so a fault can never split a transaction across a gap. The
// bytes already buffered or partially written form an uncommitted tail
// that recovery discards.
type Log struct {
	fs   FS
	path string
	f    File
	opts Options

	buf     []byte
	err     error
	closed  bool
	commits int // commits since the last fsync (group commit)

	// appended counts records accepted since open, by rough class, for
	// stats and tests.
	mutations int
	records   int

	// written and durable track the log file's byte positions: written
	// is how many bytes have reached the file (flushed), durable how
	// many an fsync has made stable. Atomics because the replication
	// source reads them from outside the worker goroutine; everything
	// else about the Log stays single-threaded.
	written atomic.Int64
	durable atomic.Int64
}

// openLog opens (creating if needed) the log file for appending. base
// is the file's current length — the recovered consistent prefix — so
// position tracking starts true.
func openLog(fsys FS, path string, opts Options, base int64) (*Log, error) {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	l := &Log{fs: fsys, path: path, f: f, opts: opts}
	l.written.Store(base)
	l.durable.Store(base)
	return l, nil
}

// DurableOffset returns the byte offset of the log file known to be on
// stable storage: the prefix a crash cannot take away, and therefore
// the prefix the replication source may ship to followers. Under
// SyncNever the caller has opted out of crash durability, so flushed
// bytes count. Safe for concurrent use.
func (l *Log) DurableOffset() int64 {
	if l.opts.Sync == SyncNever {
		return l.written.Load()
	}
	return l.durable.Load()
}

// Err returns the sticky error, if any.
func (l *Log) Err() error { return l.err }

// Mutations returns the number of mutation records accepted since open.
func (l *Log) Mutations() int { return l.mutations }

// append frames rec into the buffer, spilling to the file when the
// buffer outgrows the threshold (without fsync — an uncommitted tail on
// disk is harmless, recovery discards it). Appending to a closed log is
// a sticky ErrClosed, never a nil-handle panic: the drain path closes
// the log while an engine may still hold a journal reference to it.
func (l *Log) append(rec Record) {
	if l.closed && l.err == nil {
		l.err = ErrClosed
	}
	if l.err != nil {
		return
	}
	l.buf = AppendRecord(l.buf, rec)
	l.records++
	if len(l.buf) >= l.opts.BufferBytes {
		l.flush()
	}
}

// flush writes the buffered bytes to the file.
func (l *Log) flush() {
	if l.err != nil || len(l.buf) == 0 {
		return
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return
	}
	l.written.Add(int64(len(l.buf)))
	l.buf = l.buf[:0]
	if l.opts.Sync == SyncAlways {
		l.sync()
	}
}

func (l *Log) sync() {
	if l.closed && l.err == nil {
		l.err = ErrClosed
	}
	if l.err != nil {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return
	}
	l.durable.Store(l.written.Load())
	l.commits = 0
}

// durablePoint appends rec, flushes, and applies the fsync policy.
// force bypasses group-commit batching (aborts, checkpoints, close).
func (l *Log) durablePoint(rec Record, force bool) error {
	l.append(rec)
	l.flush()
	switch l.opts.Sync {
	case SyncNever, SyncAlways: // SyncAlways already synced in flush
	default:
		l.commits++
		if force || l.commits >= l.opts.GroupCommit {
			l.sync()
		}
	}
	return l.err
}

// Begin writes a begin record: the point a later abort rolls back to.
// Part of the engine Journal interface.
func (l *Log) Begin() error {
	l.append(Record{Kind: RecBegin})
	l.flush()
	return l.err
}

// Commit writes a commit record and makes it durable per the sync
// policy. Part of the engine Journal interface.
func (l *Log) Commit() error {
	return l.durablePoint(Record{Kind: RecCommit}, false)
}

// Abort writes an abort record (a rule-level ROLLBACK fired) and forces
// it to stable storage: the rollback's observable "nothing happened"
// promise must survive a crash. Part of the engine Journal interface.
func (l *Log) Abort() error {
	return l.durablePoint(Record{Kind: RecAbort}, true)
}

// Fence durably records that epoch has been observed and refuses every
// later append: the epoch record is written and fsynced (regardless of
// the sync policy — a fence that is not on disk fences nothing), then
// ErrFenced becomes the log's sticky error. Begin/Commit/Abort and the
// observer hooks all fail with it afterwards, so a deposed leader
// cannot extend its history even if its process keeps running. Fencing
// an already-failed or closed log returns that error unchanged.
func (l *Log) Fence(epoch uint64) error {
	if l.closed && l.err == nil {
		l.err = ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.append(Record{Kind: RecEpoch, Epoch: epoch})
	l.flush()
	l.sync()
	if l.err != nil {
		return l.err
	}
	l.err = &FencedError{Epoch: epoch}
	return nil
}

// ObserveInsert implements storage.Observer.
func (l *Log) ObserveInsert(table string, id storage.TupleID, vals []storage.Value) {
	l.mutations++
	l.append(Record{Kind: RecInsert, Table: table, ID: id, Vals: vals})
}

// ObserveDelete implements storage.Observer.
func (l *Log) ObserveDelete(table string, id storage.TupleID) {
	l.mutations++
	l.append(Record{Kind: RecDelete, Table: table, ID: id})
}

// ObserveUpdate implements storage.Observer.
func (l *Log) ObserveUpdate(table string, id storage.TupleID, col string, v storage.Value) {
	l.mutations++
	l.append(Record{Kind: RecUpdate, Table: table, ID: id, Col: col, Val: v})
}

// close flushes, syncs, and closes the file. The first error wins.
// Closing twice is a no-op returning nil: the drain path may race a
// deferred cleanup close, and the second caller has nothing left to
// lose durability over.
func (l *Log) close() error {
	if l.closed {
		return nil
	}
	l.flush()
	if l.opts.Sync != SyncNever {
		l.sync()
	}
	l.closed = true
	if cerr := l.f.Close(); cerr != nil && l.err == nil {
		l.err = fmt.Errorf("wal: close: %w", cerr)
	}
	if errors.Is(l.err, ErrFenced) {
		// A fence is an orderly refusal, not a durability fault: the
		// fenced log's bytes — epoch record included — are all on disk.
		return nil
	}
	return l.err
}
