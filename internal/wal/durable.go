package wal

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

// ErrUnrecoverable marks a WAL directory whose durable state cannot be
// reconstructed: a corrupt snapshot file, a log whose opening snapshot
// marker does not match the snapshot it sits next to, or a committed
// record that fails to replay. Mid-log corruption is NOT unrecoverable
// — the torn-tail rule truncates it away — this error means the trusted
// foundation itself is bad. ruleexec maps it to exit code 7.
var ErrUnrecoverable = errors.New("wal: unrecoverable log")

// ErrClosed is the sticky error of every journal or observer write that
// reaches a closed log: Close is a durability boundary, and anything
// after it must fail loudly (as a typed error, never a panic) instead
// of silently dropping records.
var ErrClosed = errors.New("wal: log is closed")

const snapName = "snapshot.db"

func logName(gen uint64) string { return fmt.Sprintf("wal-%06d.log", gen) }

// RecoveryInfo summarizes what Open (or Recover) found and did.
type RecoveryInfo struct {
	// Gen is the active generation after recovery.
	Gen uint64
	// SnapshotLoaded reports whether a snapshot file was restored (false
	// means the directory was fresh or pre-first-checkpoint).
	SnapshotLoaded bool
	// Fresh reports that the directory held no durable state at all.
	Fresh bool
	// RecordsScanned counts well-formed log records read.
	RecordsScanned int
	// TxCommitted counts commit records honored.
	TxCommitted int
	// MutationsReplayed counts mutation records applied to the state.
	MutationsReplayed int
	// Aborts counts abort records honored (each rolled the replay back
	// to its transaction's begin record).
	Aborts int
	// TailDiscarded counts well-formed mutation records discarded
	// because no commit record followed them (the uncommitted tail).
	TailDiscarded int
	// TruncatedBytes is how many trailing log bytes were cut at the
	// first torn or corrupt record (0 for a clean log).
	TruncatedBytes int64
	// Epoch is the highest leadership epoch recorded in the log (0 when
	// the directory has never seen an epoch record — the single-node
	// case). A promoting follower reads this to claim Epoch+1.
	Epoch uint64
}

// DurableDB binds an in-memory database to a WAL directory. It is both
// the storage.Observer that turns applied mutations into log records
// and the engine Journal that turns transaction boundaries into
// begin/commit/abort records — attach it with SetObserver on the
// recovered database and Options.Journal on the engine. Routing both
// through DurableDB (rather than the underlying *Log) keeps them valid
// across checkpoint rotation, which swaps the log generation.
type DurableDB struct {
	fsys FS
	dir  string
	opts Options
	sch  *schema.Schema
	st   *storage.DB
	info RecoveryInfo

	// posMu guards gen and log for the replication read path, which
	// runs off the worker goroutine while Checkpoint rotates them. All
	// mutation of gen/log happens on the worker; posMu makes the
	// (gen, log) pair readable as a consistent snapshot elsewhere.
	posMu sync.Mutex
	gen   uint64
	log   *Log

	// epoch is the highest epoch durably stamped into this directory;
	// pendingFence is the highest epoch observed from outside (a
	// replication handshake or lease carrying a newer leader's claim).
	// Both are atomics because observation arrives on network
	// goroutines while the worker owns all appends: the worker applies
	// a pending fence at the next journal boundary, before any record
	// that boundary would make durable.
	epoch        atomic.Uint64
	pendingFence atomic.Uint64
}

// Open recovers the durable state in dir (creating it if needed) and
// opens the log for appending. The recovered database is available via
// State; the engine takes ownership of it. Mid-log torn or corrupt
// records truncate the log; a corrupt snapshot or mismatched
// marker/snapshot pair returns ErrUnrecoverable.
func Open(dir string, sch *schema.Schema, opts Options) (*DurableDB, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	rec, err := recoverState(fsys, dir, sch)
	if err != nil {
		return nil, err
	}
	if opts.Epoch != 0 && opts.Epoch < rec.info.Epoch {
		// The directory has been claimed by a newer leader; opening at
		// a stale epoch would let a deposed leader extend a forked
		// history. Refuse durably-informed.
		return nil, &FencedError{Epoch: rec.info.Epoch}
	}
	logPath := join(dir, logName(rec.info.Gen))
	if rec.info.TruncatedBytes > 0 || (rec.needMarker && rec.logLen > 0) {
		if err := fsys.Truncate(logPath, int64(rec.goodLen)); err != nil {
			return nil, err
		}
		if err := fsys.SyncDir(dir); err != nil {
			return nil, err
		}
	}
	l, err := openLog(fsys, logPath, opts, int64(rec.goodLen))
	if err != nil {
		return nil, err
	}
	if rec.needMarker {
		l.append(Record{Kind: RecSnapshot, Gen: rec.info.Gen, FP: rec.db.Fingerprint()})
	}
	// Every open starts a new engine transaction.
	l.append(Record{Kind: RecBegin})
	if opts.Epoch > rec.info.Epoch {
		// Stamp the claimed epoch: from this record on, any observer of
		// the log — recovery, a follower, a rival leader's handshake —
		// knows this epoch exists and anything lower is fenced out.
		rec.info.Epoch = opts.Epoch
		l.append(Record{Kind: RecEpoch, Epoch: opts.Epoch})
	}
	l.flush()
	if opts.Sync != SyncNever {
		l.sync()
	}
	if l.err != nil {
		l.f.Close()
		return nil, l.err
	}
	// OpenAppend may have just created the log file: its directory entry
	// must be durable before any commit this session reports as durable.
	if err := fsys.SyncDir(dir); err != nil {
		l.f.Close()
		return nil, err
	}
	d := &DurableDB{fsys: fsys, dir: dir, opts: opts, sch: sch, gen: rec.info.Gen, log: l, st: rec.db, info: rec.info}
	d.epoch.Store(rec.info.Epoch)
	d.removeStale()
	return d, nil
}

// Recover reconstructs the durable state in dir without modifying
// anything — no truncation, no log writes. fsys may be nil for the real
// filesystem. The returned RecoveryInfo reports what a subsequent Open
// would do (TruncatedBytes counts bytes Open would cut).
func Recover(dir string, sch *schema.Schema, fsys FS) (*storage.DB, RecoveryInfo, error) {
	if fsys == nil {
		fsys = OS
	}
	rec, err := recoverState(fsys, dir, sch)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	return rec.db, rec.info, nil
}

// State returns the recovered database. Valid immediately after Open;
// the caller attaches it to an engine (with SetObserver(d)) and owns it
// from then on.
func (d *DurableDB) State() *storage.DB { return d.st }

// Info returns the recovery summary from Open.
func (d *DurableDB) Info() RecoveryInfo { return d.info }

// Gen returns the active log generation.
func (d *DurableDB) Gen() uint64 {
	d.posMu.Lock()
	defer d.posMu.Unlock()
	return d.gen
}

// DurablePos returns the active generation and the byte offset of its
// log that is known durable: the exact prefix a crash preserves and a
// replication source may ship. Safe for concurrent use with the worker.
func (d *DurableDB) DurablePos() (gen uint64, off int64) {
	d.posMu.Lock()
	defer d.posMu.Unlock()
	return d.gen, d.log.DurableOffset()
}

// ErrGenRotated reports a replication read against a generation that is
// no longer active: a checkpoint rotated the log, and the reader must
// restart from the new snapshot.
var ErrGenRotated = errors.New("wal: log generation rotated")

// ReadLog returns up to max bytes of the active log starting at byte
// off, clipped to the durable prefix (never shipping bytes a crash
// could take away). It returns ErrGenRotated when gen is no longer the
// active generation, and an empty slice when off is already at the
// durable frontier. Safe for concurrent use with the worker: the log
// file is append-only within a generation, so a plain ReadFile of the
// directory is consistent for any prefix below the durable offset.
func (d *DurableDB) ReadLog(gen uint64, off int64, max int) ([]byte, error) {
	d.posMu.Lock()
	curGen, l := d.gen, d.log
	d.posMu.Unlock()
	if gen != curGen {
		return nil, ErrGenRotated
	}
	durable := l.DurableOffset()
	if off < 0 || off >= durable {
		return nil, nil
	}
	data, err := d.fsys.ReadFile(join(d.dir, logName(gen)))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < durable {
		// Cannot happen within a generation; guard against a racing
		// rotation that already truncated.
		return nil, ErrGenRotated
	}
	end := durable
	if max > 0 && off+int64(max) < end {
		end = off + int64(max)
	}
	return append([]byte(nil), data[off:end]...), nil
}

// ReadSnapshot returns the current snapshot file's bytes and the
// generation recorded in its header, with ok=false when no snapshot
// exists yet (a pre-first-checkpoint directory). The caller verifies
// integrity by decoding; this method only peeks at the header.
func (d *DurableDB) ReadSnapshot() (data []byte, gen uint64, ok bool, err error) {
	data, err = d.fsys.ReadFile(join(d.dir, snapName))
	if err != nil {
		if IsNotExist(err) {
			return nil, 0, false, nil
		}
		return nil, 0, false, err
	}
	gen, err = SnapshotGen(data)
	if err != nil {
		return nil, 0, false, err
	}
	return data, gen, true, nil
}

// Err returns the log's sticky error, if any.
func (d *DurableDB) Err() error { return d.log.Err() }

// Epoch returns the directory's durable leadership epoch: the highest
// epoch stamped into the log (0 when epochs have never been used).
// Safe for concurrent use.
func (d *DurableDB) Epoch() uint64 { return d.epoch.Load() }

// RequestFence records that a higher epoch has been observed (from a
// replication handshake or a peer's lease). Safe to call from any
// goroutine: the worker applies the fence durably at its next journal
// boundary — BEFORE that boundary's record — so no durable point can
// postdate the observation. Requests at or below the current epoch are
// no-ops. Use Fence for the synchronous, worker-context form.
func (d *DurableDB) RequestFence(epoch uint64) {
	for {
		cur := d.pendingFence.Load()
		if epoch <= cur || d.pendingFence.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Fence durably stamps an observed higher epoch and puts the log into
// the fenced state (sticky ErrFenced on every later append). Worker
// context only — it appends to the log. Returns nil when the fence is
// durably applied (or epoch does not exceed the current one); an I/O
// failure while writing the fence surfaces as the log's sticky error,
// which refuses appends just as hard.
func (d *DurableDB) Fence(epoch uint64) error {
	d.RequestFence(epoch)
	if err := d.applyFence(); err != nil && !errors.Is(err, ErrFenced) {
		return err
	}
	return nil
}

// applyFence applies any pending observed epoch: it durably writes the
// epoch record and fences the log. It returns the *FencedError to
// surface at the journal boundary that applied it (nil when no fence
// is pending).
func (d *DurableDB) applyFence() error {
	p := d.pendingFence.Load()
	if p <= d.epoch.Load() {
		return nil
	}
	if err := d.log.Fence(p); err != nil {
		return err
	}
	d.epoch.Store(p)
	return &FencedError{Epoch: p}
}

// Begin implements the engine Journal interface.
func (d *DurableDB) Begin() error {
	if err := d.applyFence(); err != nil {
		return err
	}
	return d.log.Begin()
}

// Commit implements the engine Journal interface.
func (d *DurableDB) Commit() error {
	if err := d.applyFence(); err != nil {
		return err
	}
	return d.log.Commit()
}

// Abort implements the engine Journal interface.
func (d *DurableDB) Abort() error {
	if err := d.applyFence(); err != nil {
		return err
	}
	return d.log.Abort()
}

// ObserveInsert implements storage.Observer.
func (d *DurableDB) ObserveInsert(table string, id storage.TupleID, vals []storage.Value) {
	d.log.ObserveInsert(table, id, vals)
}

// ObserveDelete implements storage.Observer.
func (d *DurableDB) ObserveDelete(table string, id storage.TupleID) {
	d.log.ObserveDelete(table, id)
}

// ObserveUpdate implements storage.Observer.
func (d *DurableDB) ObserveUpdate(table string, id storage.TupleID, col string, v storage.Value) {
	d.log.ObserveUpdate(table, id, col, v)
}

// Close flushes and syncs the log and releases the file handle. Close
// is idempotent — a second Close returns nil — and terminal: journal
// or observer writes after Close fail with ErrClosed.
func (d *DurableDB) Close() error {
	// A requested-but-unapplied fence must not die with the handle: make
	// it durable now, so a deposed leader that closes without reaching
	// another journal boundary still refuses resurrection at its old
	// epoch. The resulting sticky fence error is orderly (close returns
	// nil for it).
	if err := d.applyFence(); err != nil && !errors.Is(err, ErrFenced) {
		d.log.close()
		return err
	}
	return d.log.close()
}

// Checkpoint rotates to a new generation: it makes the current log
// durable, atomically installs a snapshot of cur (which must be the
// engine's database at a committed, quiescent point — the facade
// commits before calling), starts the next log generation, and retires
// the old log. On a crash at any step, recovery lands on either the old
// chain or the new snapshot, both of which are committed states.
//
// An error after the snapshot rename (the commit point) poisons the
// log: later commits must not report durability that recovery — which
// will prefer the new snapshot and ignore the old log — cannot honor.
func (d *DurableDB) Checkpoint(cur *storage.DB) error {
	if err := d.applyFence(); err != nil {
		return err
	}
	if err := d.log.Err(); err != nil {
		return err
	}
	d.log.flush()
	if d.opts.Sync != SyncNever {
		d.log.sync()
	}
	if err := d.log.Err(); err != nil {
		return err
	}
	newGen := d.gen + 1
	if err := writeSnapshot(d.fsys, d.dir, cur, newGen); err != nil {
		// The rename may or may not have happened; fail-stop either way.
		d.log.err = err
		return err
	}
	// Create (truncating any stale leftover), never append: a dead
	// wal-<newGen>.log from an older crash must not contribute records.
	nf, err := d.fsys.Create(join(d.dir, logName(newGen)))
	if err != nil {
		d.log.err = err
		return err
	}
	nl := &Log{fs: d.fsys, path: join(d.dir, logName(newGen)), f: nf, opts: d.opts}
	nl.append(Record{Kind: RecSnapshot, Gen: newGen, FP: cur.Fingerprint()})
	nl.append(Record{Kind: RecBegin})
	if e := d.epoch.Load(); e > 0 {
		// The epoch must survive rotation: recovery only reads the
		// active generation's log, so the new log re-stamps it.
		nl.append(Record{Kind: RecEpoch, Epoch: e})
	}
	nl.flush()
	if d.opts.Sync != SyncNever {
		nl.sync()
	}
	if nl.err != nil {
		nf.Close()
		d.log.err = nl.err
		return nl.err
	}
	// Make the new log's directory entry durable before retiring the old
	// log: otherwise a power loss could keep the old-log Remove while
	// dropping the wal-<newGen>.log creation, silently discarding every
	// commit this session makes after Checkpoint returns.
	if err := d.fsys.SyncDir(d.dir); err != nil {
		nf.Close()
		d.log.err = err
		return err
	}
	old := d.log
	oldGen := d.gen
	d.posMu.Lock()
	d.log = nl
	d.gen = newGen
	d.posMu.Unlock()
	d.info.Gen = newGen
	old.f.Close()
	// Best effort: a stale log is ignored by recovery and re-deleted by
	// the next successful Open.
	_ = d.fsys.Remove(join(d.dir, logName(oldGen)))
	return nil
}

// removeStale deletes leftovers from interrupted checkpoints: the temp
// snapshot and any log file of a non-active generation. Best effort.
func (d *DurableDB) removeStale() {
	names, err := d.fsys.ReadDir(d.dir)
	if err != nil {
		return
	}
	active := logName(d.gen)
	for _, name := range names {
		stale := name == "snapshot.tmp" ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") && name != active)
		if stale {
			_ = d.fsys.Remove(join(d.dir, name))
		}
	}
}

// recovered is the outcome of reading a WAL directory.
type recovered struct {
	db         *storage.DB
	info       RecoveryInfo
	logLen     int  // bytes present in the active log file
	goodLen    int  // consistent prefix length (truncation point)
	needMarker bool // log absent/empty/cut to zero: rewrite the marker
}

// recoverState loads the snapshot (if any) and replays the committed
// ranges of the active log. Read-only.
func recoverState(fsys FS, dir string, sch *schema.Schema) (*recovered, error) {
	r := &recovered{}
	snapData, serr := fsys.ReadFile(join(dir, snapName))
	switch {
	case serr == nil:
		db, gen, err := decodeSnapshot(snapData, sch)
		if err != nil {
			return nil, fmt.Errorf("%w: snapshot: %v", ErrUnrecoverable, err)
		}
		r.db, r.info.Gen, r.info.SnapshotLoaded = db, gen, true
	case IsNotExist(serr):
		r.db, r.info.Gen = storage.NewDB(sch), 1
	default:
		return nil, serr
	}
	logPath := join(dir, logName(r.info.Gen))
	data, lerr := fsys.ReadFile(logPath)
	if lerr != nil {
		if !IsNotExist(lerr) {
			return nil, lerr
		}
		r.info.Fresh = !r.info.SnapshotLoaded
		r.needMarker = true
		return r, nil
	}
	r.logLen = len(data)
	sc, err := scanLog(data, r.info.Gen, r.db.Fingerprint())
	if err != nil {
		return nil, err
	}
	r.goodLen = sc.goodLen
	r.needMarker = sc.goodLen == 0
	r.info.RecordsScanned = sc.records
	r.info.TxCommitted = sc.commits
	r.info.Aborts = sc.aborts
	r.info.TailDiscarded = sc.discarded
	r.info.TruncatedBytes = int64(len(data) - sc.goodLen)
	r.info.Epoch = sc.epoch
	for _, sp := range sc.ranges {
		for _, rec := range sc.muts[sp.start:sp.end] {
			if err := applyRecord(r.db, rec); err != nil {
				return nil, fmt.Errorf("%w: replay: %v", ErrUnrecoverable, err)
			}
			r.info.MutationsReplayed++
		}
	}
	return r, nil
}

// Apply redoes one committed mutation record against db: the exported
// face of the recovery replay step, used by replication followers
// applying fenced commit ranges incrementally.
func Apply(db *storage.DB, rec Record) error { return applyRecord(db, rec) }

// applyRecord redoes one committed mutation record against db.
func applyRecord(db *storage.DB, rec Record) error {
	switch rec.Kind {
	case RecInsert:
		return db.InsertWithID(rec.Table, rec.ID, rec.Vals)
	case RecDelete:
		if db.Delete(rec.Table, rec.ID) == nil {
			return fmt.Errorf("delete %s #%d: no such tuple", rec.Table, rec.ID)
		}
		return nil
	case RecUpdate:
		_, err := db.Update(rec.Table, rec.ID, rec.Col, rec.Val)
		return err
	default:
		return fmt.Errorf("unexpected %s record in committed range", rec)
	}
}

// span is a half-open range into logScan.muts.
type span struct{ start, end int }

// logScan is the structural reading of one log file: which mutation
// records belong to committed, un-aborted transaction ranges.
type logScan struct {
	muts      []Record
	ranges    []span
	records   int
	commits   int
	aborts    int
	discarded int
	goodLen   int
	epoch     uint64 // highest epoch record seen
}

// scanLog walks the framed records of data, stopping (and marking the
// truncation point) at the first torn or corrupt record or at an
// unexpected mid-log snapshot marker. The first record must be the
// snapshot marker matching wantGen/wantFP — anything else means the log
// belongs to a different snapshot and the pair is unrecoverable.
//
// Range bookkeeping: mutations accumulate as pending; a commit record
// promotes the pending run to a committed range; a begin record marks
// where a later abort rolls back to AND discards any pending run in
// front of it (a stale uncommitted tail from a previous session — see
// the case comment); an abort discards every range back to its begin
// (a rule-level ROLLBACK undoes even the assertion-point commits
// inside its engine transaction, matching Engine semantics); end of
// log discards the pending run (the uncommitted tail).
func scanLog(data []byte, wantGen uint64, wantFP [32]byte) (*logScan, error) {
	s := &logScan{}
	off := 0
	first := true
	pendingStart := 0
	txMark := 0
	for off < len(data) {
		rec, n, err := ReadRecord(data[off:])
		if err != nil {
			break // torn-tail rule: truncate here
		}
		if first {
			if rec.Kind != RecSnapshot || rec.Gen != wantGen || rec.FP != wantFP {
				return nil, fmt.Errorf("%w: log opens with %s, want snapshot marker for gen %d", ErrUnrecoverable, rec, wantGen)
			}
			first = false
		} else {
			switch rec.Kind {
			case RecSnapshot:
				// A marker mid-log means interleaved generations; trust
				// only the prefix.
				s.discarded += len(s.muts) - pendingStart
				s.goodLen = off
				return s, nil
			case RecInsert, RecDelete, RecUpdate:
				s.muts = append(s.muts, rec)
			case RecCommit:
				s.ranges = append(s.ranges, span{pendingStart, len(s.muts)})
				pendingStart = len(s.muts)
				s.commits++
			case RecBegin:
				// A legitimately-written begin always sits at a durable
				// point with no mutations pending. Anything pending here is
				// the well-formed uncommitted tail of an earlier session:
				// Open truncates only torn bytes, so a buffer spill or an
				// unclean end can leave such a tail in the file, and the
				// next session appends its begin right after it. Discard it
				// — otherwise that session's first commit would adopt
				// mutations every earlier recovery already discarded.
				s.discarded += len(s.muts) - pendingStart
				pendingStart = len(s.muts)
				txMark = len(s.ranges)
			case RecAbort:
				s.ranges = s.ranges[:txMark]
				pendingStart = len(s.muts)
				s.aborts++
			case RecEpoch:
				// A control record, not a mutation: it neither joins nor
				// disturbs any transaction range (a fence may land
				// mid-transaction — the pending run around it simply
				// never commits, because the log refused appends after
				// it).
				if rec.Epoch > s.epoch {
					s.epoch = rec.Epoch
				}
			}
		}
		off += n
		s.records++
		s.goodLen = off
	}
	s.discarded += len(s.muts) - pendingStart
	return s, nil
}
