package wal

import (
	"bytes"
	"errors"
	"testing"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustParse(`
table acct (owner string, balance int)
table audit (what string, ok bool)
`)
}

func allKinds() []Record {
	return []Record{
		{Kind: RecBegin},
		{Kind: RecCommit},
		{Kind: RecAbort},
		{Kind: RecInsert, Table: "acct", ID: 7, Vals: []storage.Value{
			storage.StringV("ann"), storage.IntV(100),
		}},
		{Kind: RecInsert, Table: "audit", ID: 8, Vals: []storage.Value{
			storage.StringV(""), storage.BoolV(true),
		}},
		{Kind: RecDelete, Table: "acct", ID: 7},
		{Kind: RecUpdate, Table: "acct", ID: 9, Col: "balance", Val: storage.IntV(-3)},
		{Kind: RecUpdate, Table: "acct", ID: 9, Col: "owner", Val: storage.Null},
		{Kind: RecUpdate, Table: "x", ID: 1, Col: "f", Val: storage.FloatV(2.5)},
		{Kind: RecSnapshot, Gen: 42, FP: [32]byte{1, 2, 3}},
		{Kind: RecEpoch, Epoch: 12345},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := allKinds()
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	for i, want := range recs {
		got, n, err := ReadRecord(buf)
		if err != nil {
			t.Fatalf("record %d (%s): %v", i, want, err)
		}
		if got.String() != want.String() {
			t.Errorf("record %d: got %s, want %s", i, got, want)
		}
		// Structural comparison (Value.Equal is SQL equality, where null
		// never equals null).
		if got.Kind == RecUpdate && (got.Val.Kind != want.Val.Kind || got.Val.String() != want.Val.String()) {
			t.Errorf("record %d: value %v, want %v", i, got.Val, want.Val)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d bytes left over", len(buf))
	}
}

func TestReadRecordRejectsDamage(t *testing.T) {
	whole := AppendRecord(nil, Record{Kind: RecInsert, Table: "acct", ID: 3,
		Vals: []storage.Value{storage.StringV("bo"), storage.IntV(1)}})

	// Every proper prefix is torn, never corrupt and never a panic.
	for n := 0; n < len(whole); n++ {
		if _, _, err := ReadRecord(whole[:n]); !errors.Is(err, ErrTorn) {
			t.Errorf("prefix %d/%d: got %v, want ErrTorn", n, len(whole), err)
		}
	}
	// Any single flipped byte is detected (header corruption may also
	// read as torn when the length field grows past the buffer).
	for i := range whole {
		bad := append([]byte(nil), whole...)
		bad[i] ^= 0x41
		if _, _, err := ReadRecord(bad); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
			t.Errorf("flip at %d: got %v, want ErrCorrupt or ErrTorn", i, err)
		}
	}
	// A zero length field is implausible, not torn.
	if _, _, err := ReadRecord(make([]byte, headerSize)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero length: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	sch := testSchema(t)
	db := storage.NewDB(sch)
	a := db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	db.MustInsert("acct", storage.StringV("bob"), storage.IntV(20))
	db.MustInsert("audit", storage.StringV("hi"), storage.BoolV(false))
	db.Delete("acct", a)

	data := encodeSnapshot(db, 9)
	got, gen, err := decodeSnapshot(data, sch)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 9 {
		t.Errorf("gen = %d, want 9", gen)
	}
	if got.Fingerprint() != db.Fingerprint() {
		t.Errorf("contents differ:\ngot:\n%s\nwant:\n%s", got, db)
	}
	if got.NextID() != db.NextID() {
		t.Errorf("nextID = %d, want %d", got.NextID(), db.NextID())
	}

	// Every single-byte flip is caught by the digest.
	for _, i := range []int{0, 3, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x41
		if _, _, err := decodeSnapshot(bad, sch); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: got %v, want ErrCorrupt", i, err)
		}
	}
}

// session opens a DurableDB and returns it with its state, failing the
// test on error.
func session(t *testing.T, fsys FS, dir string) (*DurableDB, *storage.DB) {
	t.Helper()
	d, err := Open(dir, testSchema(t), Options{FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db := d.State()
	db.SetObserver(d)
	return d, db
}

func TestOpenFreshThenReopen(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	if !d.Info().Fresh || d.Info().Gen != 1 {
		t.Fatalf("fresh open: info = %+v", d.Info())
	}
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	id := db.MustInsert("acct", storage.StringV("bob"), storage.IntV(20))
	if _, err := db.Update("acct", id, "balance", storage.IntV(25)); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	want := db.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, db2 := session(t, fsys, "w")
	if d2.Info().Fresh {
		t.Error("reopen reported fresh")
	}
	if d2.Info().TxCommitted != 1 || d2.Info().MutationsReplayed != 3 {
		t.Errorf("reopen info = %+v", d2.Info())
	}
	if db2.Fingerprint() != want {
		t.Errorf("recovered contents differ:\n%s", db2)
	}
}

func TestUncommittedTailDiscarded(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	committed := db.Fingerprint()
	db.MustInsert("acct", storage.StringV("eve"), storage.IntV(666))
	// Neither Commit nor Close: the insert is an uncommitted tail. Force
	// the buffered bytes out so they are really in the file.
	d.log.flush()

	_, db2 := session(t, fsys, "w")
	if db2.Fingerprint() != committed {
		t.Errorf("uncommitted insert replayed:\n%s", db2)
	}
}

// A well-formed uncommitted tail survives in the log file across Open
// (only torn bytes are truncated). When the next session commits, its
// begin record must fence that stale tail off: the new commit adopts
// only the new session's mutations, never the discarded ones — and
// replay must not trip over the tuple IDs the new session reuses
// (the discarded inserts never bumped the recovered allocator).
func TestStaleTailNotAdoptedByNextSessionCommit(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("acct", storage.StringV("eve"), storage.IntV(666))
	// Spill the uncommitted insert into the file, then end the session
	// uncleanly: no Commit, no Close.
	d.log.flush()

	// Session 2 discards eve on recovery, then commits fresh work whose
	// tuple ID collides with eve's.
	d2, db2 := session(t, fsys, "w")
	db2.MustInsert("acct", storage.StringV("bob"), storage.IntV(20))
	if err := d2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := db2.Fingerprint()
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 3 must see ann+bob — eve's stale record must not have been
	// folded into session 2's commit range.
	_, db3 := session(t, fsys, "w")
	if db3.Fingerprint() != want {
		t.Errorf("stale uncommitted tail folded into the next session's commit:\ngot:\n%s\nwant:\n%s", db3, db2)
	}
	if info := mustRecoverInfo(t, fsys, "w"); info.TailDiscarded != 1 {
		t.Errorf("info = %+v, want TailDiscarded=1", info)
	}
}

// engineCommit models what Engine.Commit does with a journal attached:
// a durable point followed by a new transaction start.
func engineCommit(t *testing.T, d *DurableDB) {
	t.Helper()
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Begin(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRollsBackToBegin(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	engineCommit(t, d)
	floor := db.Fingerprint()
	db.MustInsert("acct", storage.StringV("bob"), storage.IntV(20))
	engineCommit(t, d)
	db.MustInsert("acct", storage.StringV("eve"), storage.IntV(30))
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}
	// The abort rolls back to the latest begin record — the one after
	// bob's engine commit: bob survives, eve does not.
	_, db2 := session(t, fsys, "w")
	if got := db2.Table("acct").Len(); got != 2 {
		t.Errorf("acct has %d rows after abort recovery, want 2:\n%s", got, db2)
	}
	if db2.Fingerprint() == floor {
		t.Error("abort rolled back past its begin record")
	}
	if info := mustRecoverInfo(t, fsys, "w"); info.Aborts != 1 {
		t.Errorf("info = %+v, want Aborts=1", info)
	}
}

func TestAbortUndoesAssertPointCommitsWithinTransaction(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	engineCommit(t, d)
	floor := db.Fingerprint()
	// Two assertion-point commits (durable points) WITHOUT a new begin,
	// then an abort: the rollback action undoes the whole engine
	// transaction, durable points included.
	db.MustInsert("acct", storage.StringV("bob"), storage.IntV(20))
	if err := d.log.Commit(); err != nil {
		t.Fatal(err)
	}
	db.MustInsert("acct", storage.StringV("cyd"), storage.IntV(30))
	if err := d.log.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}
	_, db2 := session(t, fsys, "w")
	if db2.Fingerprint() != floor {
		t.Errorf("recovered state is not the transaction floor:\n%s", db2)
	}
}

func mustRecoverInfo(t *testing.T, fsys FS, dir string) RecoveryInfo {
	t.Helper()
	_, info, err := Recover(dir, testSchema(t), fsys)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestCheckpointRotation(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	for i := 0; i < 5; i++ {
		db.MustInsert("acct", storage.StringV("u"), storage.IntV(int64(i)))
		if err := d.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if d.Gen() != 2 {
		t.Fatalf("gen = %d, want 2", d.Gen())
	}
	db.MustInsert("audit", storage.StringV("post"), storage.BoolV(true))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	want := db.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	names, _ := fsys.ReadDir("w")
	if len(names) != 2 || names[0] != "snapshot.db" || names[1] != "wal-000002.log" {
		t.Fatalf("directory after checkpoint: %v", names)
	}
	d2, db2 := session(t, fsys, "w")
	if !d2.Info().SnapshotLoaded || d2.Info().Gen != 2 {
		t.Errorf("info = %+v", d2.Info())
	}
	if d2.Info().MutationsReplayed != 1 {
		t.Errorf("replayed %d mutations from gen-2 log, want 1", d2.Info().MutationsReplayed)
	}
	if db2.Fingerprint() != want {
		t.Errorf("recovered contents differ:\n%s", db2)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	goodState := db.Fingerprint()
	goodLen := len(mustRead(t, fsys, "w/wal-000001.log"))
	db.MustInsert("acct", storage.StringV("bob"), storage.IntV(20))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside bob's records: the CRC catches it and the
	// log is cut back to ann's committed prefix, not replayed past it.
	data := mustRead(t, fsys, "w/wal-000001.log")
	data[goodLen+9] ^= 0xFF
	rewrite(t, fsys, "w/wal-000001.log", data)

	d2, db2 := session(t, fsys, "w")
	if db2.Fingerprint() != goodState {
		t.Errorf("corrupt tail was replayed:\n%s", db2)
	}
	if d2.Info().TruncatedBytes == 0 {
		t.Errorf("info = %+v, want TruncatedBytes > 0", d2.Info())
	}
	// The truncation is durable: a second recovery sees a clean log.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, db3 := session(t, fsys, "w")
	if db3.Fingerprint() != goodState {
		t.Errorf("second recovery diverged:\n%s", db3)
	}
	if d3.Info().TruncatedBytes != 0 {
		t.Errorf("second recovery still truncating: %+v", d3.Info())
	}
}

func TestCorruptSnapshotUnrecoverable(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	data := mustRead(t, fsys, "w/snapshot.db")
	data[len(data)/2] ^= 0x01
	rewrite(t, fsys, "w/snapshot.db", data)

	if _, err := Open("w", testSchema(t), Options{FS: fsys}); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("Open on corrupt snapshot: %v, want ErrUnrecoverable", err)
	}
}

func TestMismatchedMarkerUnrecoverable(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Replace the log with one whose marker claims a different state.
	buf := AppendRecord(nil, Record{Kind: RecSnapshot, Gen: 1, FP: [32]byte{0xde, 0xad}})
	buf = AppendRecord(buf, Record{Kind: RecBegin})
	rewrite(t, fsys, "w/wal-000001.log", buf)

	if _, err := Open("w", testSchema(t), Options{FS: fsys}); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("Open with mismatched marker: %v, want ErrUnrecoverable", err)
	}
}

func TestSavepointCompensationsReplay(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	a := db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	sp := db.Savepoint()
	db.MustInsert("acct", storage.StringV("tmp"), storage.IntV(1))
	db.Delete("acct", a)
	if _, err := db.Update("acct", db.MustInsert("acct", storage.StringV("t2"), storage.IntV(2)), "balance", storage.IntV(3)); err != nil {
		t.Fatal(err)
	}
	db.RollbackTo(sp)
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	want := db.Fingerprint()
	_, db2 := session(t, fsys, "w")
	if db2.Fingerprint() != want {
		t.Errorf("replay through savepoint compensations diverged:\ngot:\n%s\nwant:\n%s", db2, db)
	}
}

func TestSyncPoliciesAndGroupCommit(t *testing.T) {
	for _, opt := range []Options{
		{Sync: SyncAlways},
		{Sync: SyncNever},
		{Sync: SyncCommit, GroupCommit: 3},
		{BufferBytes: 1}, // spill on every record
	} {
		fsys := NewMemFS()
		opt.FS = fsys
		d, err := Open("w", testSchema(t), opt)
		if err != nil {
			t.Fatal(err)
		}
		db := d.State()
		db.SetObserver(d)
		for i := 0; i < 7; i++ {
			db.MustInsert("acct", storage.StringV("u"), storage.IntV(int64(i)))
			if err := d.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		want := db.Fingerprint()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		_, db2 := session(t, fsys, "w")
		if db2.Fingerprint() != want {
			t.Errorf("opts %+v: clean-shutdown recovery diverged", opt)
		}
	}
}

func mustRead(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	data, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func rewrite(t *testing.T, fsys FS, name string, data []byte) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	fsys := NewMemFS()
	d, err := Open("w", testSchema(b), Options{FS: fsys, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	db := d.State()
	db.SetObserver(d)
	vals := []storage.Value{storage.StringV("benchmark-owner"), storage.IntV(42)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("acct", vals); err != nil {
			b.Fatal(err)
		}
		if i%16 == 15 {
			if err := d.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	fsys := NewMemFS()
	d, err := Open("w", testSchema(b), Options{FS: fsys, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	db := d.State()
	db.SetObserver(d)
	for i := 0; i < 2000; i++ {
		db.MustInsert("acct", storage.StringV("u"), storage.IntV(int64(i)))
		if i%8 == 7 {
			if err := d.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Recover("w", testSchema(b), fsys); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard against accidental format drift: the framed encoding of a fixed
// record sequence is pinned byte-for-byte.
func TestRecordEncodingPinned(t *testing.T) {
	buf := AppendRecord(nil, Record{Kind: RecBegin})
	buf = AppendRecord(buf, Record{Kind: RecInsert, Table: "t", ID: 1,
		Vals: []storage.Value{storage.IntV(5)}})
	buf = AppendRecord(buf, Record{Kind: RecCommit})
	want := []byte{
		0x01, 0x00, 0x00, 0x00, 0x52, 0xd0, 0x16, 0xa0, 0x01,
		0x07, 0x00, 0x00, 0x00, 0xb6, 0x4c, 0x34, 0xb2, 0x04, 0x01, 't', 0x01, 0x01, 0x01, 0x0a,
		0x01, 0x00, 0x00, 0x00, 0xa6, 0x23, 0x46, 0xb3, 0x02,
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("encoding drifted:\ngot  %#v\nwant %#v", buf, want)
	}
}
