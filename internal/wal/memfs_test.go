package wal

import (
	"errors"
	"io/fs"
	"math/rand"
	"sort"
	"testing"
)

// crashDroppingAll crashes m with a seed chosen so every pending
// directory-entry op is undone (each per-dir keep draw Intn(n+1) comes
// up 0). The seed is found by replaying the draw order Crash uses —
// sorted dirs first — against candidate seeds; the search is
// deterministic, so the test is too.
func crashDroppingAll(m *MemFS, t *testing.T) {
	t.Helper()
	m.mu.Lock()
	dirs := make([]string, 0, len(m.pending))
	for d := range m.pending {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	counts := make([]int, len(dirs))
	for i, d := range dirs {
		counts[i] = len(m.pending[d])
	}
	m.mu.Unlock()
	for seed := int64(0); seed < 1<<16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ok := true
		for _, c := range counts {
			if rng.Intn(c+1) != 0 {
				ok = false
				break
			}
		}
		if ok {
			m.Crash(rand.New(rand.NewSource(seed)))
			return
		}
	}
	t.Fatal("no seed drops all pending ops")
}

// TestMemFSCrashDropsUnsyncedCreate: a file created and content-synced
// but whose DIRECTORY was never synced vanishes at a crash that drops
// the pending entry — the failure mode SyncDir exists to prevent.
func TestMemFSCrashDropsUnsyncedCreate(t *testing.T) {
	m := NewMemFS()
	f, err := m.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.Sync() // content durable, entry not
	f.Close()
	crashDroppingAll(m, t)
	if _, err := m.ReadFile("d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced-dir create survived crash: err=%v", err)
	}
}

// TestMemFSSyncDirMakesCreateDurable: after SyncDir, no crash can take
// the entry away; the synced content survives too.
func TestMemFSSyncDirMakesCreateDurable(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("d/a")
	f.Write([]byte("hello"))
	f.Sync()
	f.Close()
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		m.Crash(rand.New(rand.NewSource(seed)))
		got, err := m.ReadFile("d/a")
		if err != nil || string(got) != "hello" {
			t.Fatalf("seed %d: durable create lost: %q err=%v", seed, got, err)
		}
	}
}

// TestMemFSCrashRevertsUnsyncedRename: a rename over an existing target
// without SyncDir reverts at a crash, restoring the overwritten file —
// exactly the state a snapshot-install protocol must tolerate.
func TestMemFSCrashRevertsUnsyncedRename(t *testing.T) {
	m := NewMemFS()
	old, _ := m.Create("d/old")
	old.Write([]byte("old"))
	old.Sync()
	old.Close()
	tmp, _ := m.Create("d/tmp")
	tmp.Write([]byte("new"))
	tmp.Sync()
	tmp.Close()
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("d/tmp", "d/old"); err != nil {
		t.Fatal(err)
	}
	crashDroppingAll(m, t)
	got, err := m.ReadFile("d/old")
	if err != nil || string(got) != "old" {
		t.Fatalf("rename did not revert: %q err=%v", got, err)
	}
	got, err = m.ReadFile("d/tmp")
	if err != nil || string(got) != "new" {
		t.Fatalf("rename source not restored: %q err=%v", got, err)
	}
}

// TestMemFSCrashRestoresUnsyncedRemove: a removed file whose directory
// was not synced comes back after a crash.
func TestMemFSCrashRestoresUnsyncedRemove(t *testing.T) {
	m := NewMemFS()
	f, _ := m.Create("d/a")
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	crashDroppingAll(m, t)
	got, err := m.ReadFile("d/a")
	if err != nil || string(got) != "x" {
		t.Fatalf("removed file did not return: %q err=%v", got, err)
	}
}

// TestMemFSCrashKeepsPrefixOfPendingOps: Crash never reorders pending
// entry ops — it keeps a PREFIX. If op2 survived, op1 must have too.
func TestMemFSCrashKeepsPrefixOfPendingOps(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		m := NewMemFS()
		a, _ := m.Create("d/a")
		a.Write([]byte("a"))
		a.Sync()
		a.Close()
		b, _ := m.Create("d/b")
		b.Write([]byte("b"))
		b.Sync()
		b.Close()
		m.Crash(rand.New(rand.NewSource(seed)))
		_, errA := m.ReadFile("d/a")
		_, errB := m.ReadFile("d/b")
		if errB == nil && errA != nil {
			t.Fatalf("seed %d: later create survived while earlier dropped", seed)
		}
	}
}
