// Package wal gives the in-memory database of internal/storage a
// durable life: a checksummed, length-prefixed write-ahead record log
// with group-commit batching, atomic snapshots (write-temp + fsync +
// rename), and a recovery path that replays committed transactions,
// discards uncommitted tails, and truncates the log at the first torn
// or corrupt record.
//
// The log is a physical redo log fed by storage.Observer: every applied
// primitive mutation — including the compensations a savepoint rollback
// applies — becomes one mutation record, so replay is strictly
// sequential and needs no undo machinery. Transaction boundaries come
// from the engine's Journal hooks (engine.Options.Journal): an
// assertion point that quiesces writes a commit record, a rule-level
// ROLLBACK action writes an abort record, and Engine.Commit writes a
// commit followed by a begin. Recovery replays exactly the mutation
// ranges that a crash-free reader of the commit/abort structure would
// consider durable, which yields the prefix-consistency invariant the
// crash harness (internal/crashtest) enforces: the recovered state is
// byte-identical in content to some committed prefix of the original
// run.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"activerules/internal/storage"
)

// RecordKind identifies one log record type.
type RecordKind byte

// Record kinds. The numeric values are the on-disk encoding and must
// never be reordered.
const (
	// RecBegin marks an engine-transaction start: the point an abort
	// record rolls back to. Written at session open and by
	// Engine.Commit.
	RecBegin RecordKind = 1
	// RecCommit marks a durable point: every mutation record since the
	// previous durable point becomes part of the recovered state.
	// Written at each quiescent assertion point and by Engine.Commit.
	RecCommit RecordKind = 2
	// RecAbort marks a rule-level ROLLBACK action: recovery discards
	// every mutation range back to the last RecBegin.
	RecAbort RecordKind = 3
	// RecInsert is an applied insert with its assigned tuple identity.
	RecInsert RecordKind = 4
	// RecDelete is an applied delete.
	RecDelete RecordKind = 5
	// RecUpdate is an applied single-column update.
	RecUpdate RecordKind = 6
	// RecSnapshot is the snapshot marker opening every log generation:
	// it names the snapshot generation this log continues from and the
	// content fingerprint of that snapshot, cross-checking that log and
	// snapshot belong together.
	RecSnapshot RecordKind = 7
	// RecEpoch stamps a leadership epoch into the log. It is a control
	// record, not a mutation: recovery tracks the highest epoch seen
	// (RecoveryInfo.Epoch) and replay ignores it. A leader writes one at
	// open to claim its epoch; Fence writes one to durably record that a
	// higher epoch exists, after which the log refuses appends — the
	// fencing record that keeps a deposed leader from extending a
	// history a promoted follower has already forked past.
	RecEpoch RecordKind = 8
)

// Record is one decoded log record. Which fields are meaningful depends
// on Kind.
type Record struct {
	Kind  RecordKind
	Table string          // insert/delete/update
	ID    storage.TupleID // insert/delete/update
	Col   string          // update: column name
	Val   storage.Value   // update: new value
	Vals  []storage.Value // insert: row values
	Gen   uint64          // snapshot marker: generation
	FP    [32]byte        // snapshot marker: db content fingerprint
	Epoch uint64          // epoch record: leadership epoch
}

// String renders the record compactly for diagnostics.
func (r Record) String() string {
	switch r.Kind {
	case RecBegin:
		return "begin"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecInsert:
		return fmt.Sprintf("insert %s #%d (%d cols)", r.Table, r.ID, len(r.Vals))
	case RecDelete:
		return fmt.Sprintf("delete %s #%d", r.Table, r.ID)
	case RecUpdate:
		return fmt.Sprintf("update %s #%d .%s", r.Table, r.ID, r.Col)
	case RecSnapshot:
		return fmt.Sprintf("snapshot gen=%d", r.Gen)
	case RecEpoch:
		return fmt.Sprintf("epoch %d", r.Epoch)
	default:
		return fmt.Sprintf("record(kind=%d)", byte(r.Kind))
	}
}

// Framing: every record is [len uint32le][crc32c uint32le][payload],
// crc over the payload bytes. A record whose frame extends past the end
// of the log, whose length field is implausible, or whose CRC does not
// match is "bad"; recovery truncates the log at the first bad record
// (the torn-tail rule).
const (
	headerSize = 8
	// maxRecordSize bounds the length field so a torn length prefix
	// cannot make the reader skip gigabytes of garbage.
	maxRecordSize = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record decoding errors. ErrTorn marks an incomplete frame at the end
// of the byte stream; ErrCorrupt marks a frame that is structurally
// present but unreadable (CRC mismatch, implausible length, or a
// payload that does not decode). Both are truncation points for
// recovery; fuzzing guarantees neither path panics.
var (
	ErrTorn    = errors.New("wal: torn record (incomplete frame)")
	ErrCorrupt = errors.New("wal: corrupt record")
)

// AppendRecord appends the framed encoding of rec to b.
func AppendRecord(b []byte, rec Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b = appendPayload(b, rec)
	payload := b[start+headerSize:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

func appendPayload(b []byte, rec Record) []byte {
	b = append(b, byte(rec.Kind))
	switch rec.Kind {
	case RecInsert:
		b = appendString(b, rec.Table)
		b = binary.AppendUvarint(b, uint64(rec.ID))
		b = binary.AppendUvarint(b, uint64(len(rec.Vals)))
		for _, v := range rec.Vals {
			b = appendValue(b, v)
		}
	case RecDelete:
		b = appendString(b, rec.Table)
		b = binary.AppendUvarint(b, uint64(rec.ID))
	case RecUpdate:
		b = appendString(b, rec.Table)
		b = binary.AppendUvarint(b, uint64(rec.ID))
		b = appendString(b, rec.Col)
		b = appendValue(b, rec.Val)
	case RecSnapshot:
		b = binary.AppendUvarint(b, rec.Gen)
		b = append(b, rec.FP[:]...)
	case RecEpoch:
		b = binary.AppendUvarint(b, rec.Epoch)
	}
	return b
}

// ReadRecord decodes the record framed at the start of b. It returns
// the record and the number of bytes consumed. The error is ErrTorn for
// an incomplete trailing frame and wraps ErrCorrupt for a present but
// unreadable one; in both cases a recovering reader stops and truncates
// here. ReadRecord never panics, whatever bytes it is fed.
func ReadRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	if uint64(len(b)-headerSize) < uint64(n) {
		return Record{}, 0, ErrTorn
	}
	payload := b[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, headerSize + int(n), nil
}

func decodePayload(p []byte) (Record, error) {
	var rec Record
	rec.Kind = RecordKind(p[0])
	d := decoder{b: p[1:]}
	switch rec.Kind {
	case RecBegin, RecCommit, RecAbort:
		// no body
	case RecInsert:
		rec.Table = d.str()
		rec.ID = storage.TupleID(d.uvarint())
		ncols := d.uvarint()
		if ncols > uint64(len(d.b)) { // each value takes at least 1 byte
			return rec, fmt.Errorf("%w: implausible column count %d", ErrCorrupt, ncols)
		}
		rec.Vals = make([]storage.Value, 0, ncols)
		for i := uint64(0); i < ncols; i++ {
			rec.Vals = append(rec.Vals, d.value())
		}
	case RecDelete:
		rec.Table = d.str()
		rec.ID = storage.TupleID(d.uvarint())
	case RecUpdate:
		rec.Table = d.str()
		rec.ID = storage.TupleID(d.uvarint())
		rec.Col = d.str()
		rec.Val = d.value()
	case RecSnapshot:
		rec.Gen = d.uvarint()
		copy(rec.FP[:], d.take(32))
	case RecEpoch:
		rec.Epoch = d.uvarint()
	default:
		return rec, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, byte(rec.Kind))
	}
	if d.err != nil {
		return rec, d.err
	}
	if len(d.b) != 0 {
		return rec, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b))
	}
	return rec, nil
}

// Value encoding: a kind byte, then the kind's payload. Shared by
// mutation records and snapshot rows.

func appendValue(b []byte, v storage.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case storage.KindInt:
		b = binary.AppendVarint(b, v.I)
	case storage.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case storage.KindString:
		b = appendString(b, v.S)
	case storage.KindBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder is a bounds-checked payload reader with a sticky error, so
// decode paths stay linear instead of threading errors everywhere.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < n {
		d.fail("short payload: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds payload", n)
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) value() storage.Value {
	kb := d.take(1)
	if d.err != nil {
		return storage.Value{}
	}
	switch storage.ValueKind(kb[0]) {
	case storage.KindNull:
		return storage.Null
	case storage.KindInt:
		return storage.IntV(d.varint())
	case storage.KindFloat:
		bits := d.take(8)
		if d.err != nil {
			return storage.Value{}
		}
		return storage.FloatV(math.Float64frombits(binary.LittleEndian.Uint64(bits)))
	case storage.KindString:
		return storage.StringV(d.str())
	case storage.KindBool:
		vb := d.take(1)
		if d.err != nil {
			return storage.Value{}
		}
		return storage.BoolV(vb[0] != 0)
	default:
		d.fail("unknown value kind %d", kb[0])
		return storage.Value{}
	}
}
