package wal

import (
	"errors"
	"io/fs"
	"os"
	"sort"
)

// FS is the narrow filesystem surface the WAL uses, injectable so the
// crash-test harness (internal/faultinject, internal/crashtest) can
// substitute an in-memory filesystem with fault injection and simulated
// crash semantics. The production implementation is OS.
//
// Durability contract the WAL relies on (and the fault layer models):
// bytes written to a File may be lost on crash until Sync returns;
// Rename is atomic but does NOT sync file contents (callers must Sync
// first); Remove and Truncate are treated as immediately durable.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// Create opens the named file for writing, creating it if absent and
	// truncating it if present.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it if
	// absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the file's full contents (a missing file returns
	// an error satisfying errors.Is(err, fs.ErrNotExist)).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate cuts the named file to the given size.
	Truncate(name string, size int64) error
	// SyncDir forces the directory's entries to stable storage. On a
	// POSIX filesystem Create, Rename, and Remove alter the parent
	// directory, and those alterations are volatile until the directory
	// itself is fsynced — a crash can otherwise keep a renamed
	// snapshot's old name or lose a freshly created log file. Callers
	// invoke it after the name-changing steps of checkpoint and open.
	SyncDir(dir string) error
	// ReadDir returns the sorted base names of the directory's entries.
	ReadDir(dir string) ([]string, error)
}

// File is a writable log or snapshot file.
type File interface {
	// Write appends len(p) bytes; a short write must return an error.
	Write(p []byte) (int, error)
	// Sync forces written bytes to stable storage.
	Sync() error
	// Close releases the handle (without syncing).
	Close() error
}

// OS is the production FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// IsNotExist reports whether err indicates a missing file, for FS
// implementations built on io/fs errors.
func IsNotExist(err error) bool { return err != nil && errors.Is(err, fs.ErrNotExist) }
