package wal

import (
	"errors"
	"testing"

	"activerules/internal/storage"
)

// TestFenceRefusesAppends pins the core fencing contract: Fence writes
// a durable epoch record, every later journal or observer write fails
// with ErrFenced, and recovery sees both the fence epoch and every
// durable point from before it.
func TestFenceRefusesAppends(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	committed := db.Fingerprint()

	if err := d.Fence(5); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	if got := d.Epoch(); got != 5 {
		t.Errorf("Epoch after fence = %d, want 5", got)
	}
	if err := d.Commit(); !errors.Is(err, ErrFenced) {
		t.Errorf("Commit after fence = %v, want ErrFenced", err)
	}
	var fe *FencedError
	if err := d.Begin(); !errors.As(err, &fe) || fe.Epoch != 5 {
		t.Errorf("Begin after fence = %v, want *FencedError{5}", err)
	}
	// A fence is orderly: Close reports no durability fault.
	if err := d.Close(); err != nil {
		t.Errorf("Close of fenced log = %v, want nil", err)
	}

	db2, info, err := Recover("w", testSchema(t), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 5 {
		t.Errorf("recovered epoch = %d, want 5", info.Epoch)
	}
	if db2.Fingerprint() != committed {
		t.Errorf("recovered state differs from the pre-fence commit:\n%s", db2)
	}
}

// TestFenceOpenEpochDiscipline: Open stamps a higher claimed epoch,
// adopts an equal one without rewriting it, and refuses a stale one
// with *FencedError — the reconnecting-deposed-leader case.
func TestFenceOpenEpochDiscipline(t *testing.T) {
	fsys := NewMemFS()
	d, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 3 {
		t.Errorf("Epoch = %d, want 3", d.Epoch())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 2}); !errors.Is(err, ErrFenced) {
		t.Errorf("Open at stale epoch 2 = %v, want ErrFenced", err)
	}
	var fe *FencedError
	if _, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 2}); !errors.As(err, &fe) || fe.Epoch != 3 {
		t.Errorf("stale Open error = %v, want *FencedError{3}", err)
	}

	// Equal epoch: adopt, serve normally.
	d2, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 3})
	if err != nil {
		t.Fatalf("Open at equal epoch: %v", err)
	}
	if d2.Epoch() != 3 {
		t.Errorf("Epoch = %d, want 3", d2.Epoch())
	}
	d2.Close()

	// Higher epoch: stamp and carry forward. Epoch 0 (legacy) adopts.
	d3, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Epoch() != 7 {
		t.Errorf("Epoch = %d, want 7", d3.Epoch())
	}
	d3.Close()
	d4, err := Open("w", testSchema(t), Options{FS: fsys})
	if err != nil {
		t.Fatalf("epoch-less Open of an epoch-stamped dir: %v", err)
	}
	if d4.Epoch() != 7 {
		t.Errorf("adopted epoch = %d, want 7", d4.Epoch())
	}
	d4.Close()
}

// TestFenceSurvivesCheckpoint: rotation re-stamps the epoch into the
// new generation's log, so recovery — which reads only the active
// generation — still refuses a stale claimant after any number of
// checkpoints.
func TestFenceSurvivesCheckpoint(t *testing.T) {
	fsys := NewMemFS()
	d, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	db := d.State()
	db.SetObserver(d)
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	_, info, err := Recover("w", testSchema(t), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 || info.Epoch != 4 {
		t.Errorf("after checkpoint: gen=%d epoch=%d, want gen=2 epoch=4", info.Gen, info.Epoch)
	}
	if _, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 3}); !errors.Is(err, ErrFenced) {
		t.Errorf("stale Open after checkpoint = %v, want ErrFenced", err)
	}
}

// TestFenceRequestAppliedAtBoundary: RequestFence from another
// goroutine takes effect at the next journal boundary, BEFORE its
// record — the commit that would have extended the deposed history is
// refused and its mutations never become durable.
func TestFenceRequestAppliedAtBoundary(t *testing.T) {
	fsys := NewMemFS()
	d, db := session(t, fsys, "w")
	db.MustInsert("acct", storage.StringV("ann"), storage.IntV(10))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	committed := db.Fingerprint()

	db.MustInsert("acct", storage.StringV("eve"), storage.IntV(666))
	done := make(chan struct{})
	go func() {
		d.RequestFence(9)
		close(done)
	}()
	<-done
	if err := d.Commit(); !errors.Is(err, ErrFenced) {
		t.Fatalf("Commit with pending fence = %v, want ErrFenced", err)
	}
	if err := d.Checkpoint(db); !errors.Is(err, ErrFenced) {
		t.Errorf("Checkpoint of fenced log = %v, want ErrFenced", err)
	}
	d.Close()

	db2, info, err := Recover("w", testSchema(t), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 9 {
		t.Errorf("recovered epoch = %d, want 9", info.Epoch)
	}
	if db2.Fingerprint() != committed {
		t.Errorf("post-fence mutation became durable:\n%s", db2)
	}

	// The fence monotone: re-requesting a lower epoch is a no-op.
	d2, err := Open("w", testSchema(t), Options{FS: fsys, Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	d2.RequestFence(3)
	if err := d2.Commit(); err != nil {
		t.Errorf("Commit after lower-epoch request = %v, want nil", err)
	}
	d2.Close()
}
