package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

// Snapshot format: a full serialization of the database contents,
// written atomically (temp file + fsync + rename) at every checkpoint.
//
//	magic "ARSNAP1\n"
//	uvarint generation
//	uvarint nextID (the identity allocator)
//	uvarint table count, then per table in sorted name order:
//	  string  table name
//	  uvarint row count, then per row in iteration order:
//	    uvarint tuple id
//	    uvarint column count
//	    values  (same codec as log records)
//	sha256 of everything above (32-byte trailer)
//
// Rows are written in iteration order and restored with InsertWithID,
// so a database round-trips through a snapshot with identical contents
// AND identical iteration order — replaying the following log
// generation on top stays deterministic.

var snapMagic = []byte("ARSNAP1\n")

// DecodeSnapshot rebuilds a database from snapshot bytes against the
// schema, returning the generation the snapshot was taken at. It is the
// exported face of the recovery decoder, used by replication followers
// bootstrapping from a streamed snapshot; any structural problem wraps
// ErrCorrupt.
func DecodeSnapshot(data []byte, sch *schema.Schema) (*storage.DB, uint64, error) {
	return decodeSnapshot(data, sch)
}

// SnapshotGen peeks at a snapshot's header and returns the generation
// it records, without decoding or verifying the body. Used to label
// snapshot bytes being shipped; the receiver still fully decodes.
func SnapshotGen(data []byte) (uint64, error) {
	if len(data) < len(snapMagic)+1 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	gen, n := binary.Uvarint(data[len(snapMagic):])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad snapshot generation", ErrCorrupt)
	}
	return gen, nil
}

// EncodeSnapshot serializes db at the given generation, in the same
// format written at checkpoints (including the sha256 trailer). Used by
// replication followers persisting a streamed bootstrap snapshot.
func EncodeSnapshot(db *storage.DB, gen uint64) []byte {
	return encodeSnapshot(db, gen)
}

// encodeSnapshot serializes db at the given generation.
func encodeSnapshot(db *storage.DB, gen uint64) []byte {
	b := append([]byte(nil), snapMagic...)
	b = binary.AppendUvarint(b, gen)
	b = binary.AppendUvarint(b, uint64(db.NextID()))
	names := append([]string(nil), db.Schema().TableNames()...)
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		t := db.Table(name)
		b = appendString(b, name)
		b = binary.AppendUvarint(b, uint64(t.Len()))
		t.Scan(func(tu *storage.Tuple) bool {
			b = binary.AppendUvarint(b, uint64(tu.ID))
			b = binary.AppendUvarint(b, uint64(len(tu.Vals)))
			for _, v := range tu.Vals {
				b = appendValue(b, v)
			}
			return true
		})
	}
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

// decodeSnapshot rebuilds a database from snapshot bytes against the
// schema. Any structural problem — bad magic, digest mismatch, a table
// the schema does not know, undecodable rows — wraps ErrCorrupt.
func decodeSnapshot(data []byte, sch *schema.Schema) (*storage.DB, uint64, error) {
	if len(data) < len(snapMagic)+sha256.Size {
		return nil, 0, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, 0, fmt.Errorf("%w: snapshot digest mismatch", ErrCorrupt)
	}
	if string(body[:len(snapMagic)]) != string(snapMagic) {
		return nil, 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	d := decoder{b: body[len(snapMagic):]}
	gen := d.uvarint()
	nextID := d.uvarint()
	ntables := d.uvarint()
	if ntables > uint64(sch.NumTables()) {
		return nil, 0, fmt.Errorf("%w: snapshot names %d tables, schema has %d", ErrCorrupt, ntables, sch.NumTables())
	}
	db := storage.NewDB(sch)
	for ti := uint64(0); ti < ntables && d.err == nil; ti++ {
		name := d.str()
		nrows := d.uvarint()
		if nrows > uint64(len(d.b)) { // each row takes at least 1 byte
			return nil, 0, fmt.Errorf("%w: implausible row count %d for table %q", ErrCorrupt, nrows, name)
		}
		for ri := uint64(0); ri < nrows && d.err == nil; ri++ {
			id := storage.TupleID(d.uvarint())
			ncols := d.uvarint()
			if ncols > uint64(len(d.b)) {
				return nil, 0, fmt.Errorf("%w: implausible column count %d in table %q", ErrCorrupt, ncols, name)
			}
			vals := make([]storage.Value, 0, ncols)
			for ci := uint64(0); ci < ncols; ci++ {
				vals = append(vals, d.value())
			}
			if d.err != nil {
				break
			}
			if err := db.InsertWithID(name, id, vals); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	if d.err != nil {
		return nil, 0, fmt.Errorf("snapshot: %w", d.err)
	}
	if len(d.b) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(d.b))
	}
	db.BumpNextID(storage.TupleID(nextID))
	return db, gen, nil
}

// writeSnapshot atomically installs the snapshot file: write to a temp
// name, fsync, rename over the final name, then fsync the directory so
// the rename itself is durable. The rename is the commit point; a crash
// anywhere before it leaves the previous snapshot untouched, the fsync
// before it guarantees the renamed file has its contents, and the
// directory fsync after it guarantees a later power loss cannot revert
// the name swap (which would pair the old snapshot with the new,
// already-started log generation).
func writeSnapshot(fsys FS, dir string, db *storage.DB, gen uint64) error {
	data := encodeSnapshot(db, gen)
	tmp := join(dir, "snapshot.tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, join(dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return nil
}

// join concatenates a directory and base name with a slash. The WAL
// manages flat directories only, so this is all the path logic needed —
// and it keeps FS implementations trivially portable.
func join(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}
