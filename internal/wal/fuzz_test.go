package wal

import (
	"errors"
	"testing"
)

// FuzzReadRecord feeds ReadRecord arbitrary bytes. The contract under
// fuzz: never panic, never accept a damaged frame silently — every
// outcome is a decoded record, ErrTorn, or ErrCorrupt — and anything it
// does decode must survive a re-encode/re-decode round trip.
func FuzzReadRecord(f *testing.F) {
	// Seed with every record kind, valid multi-record streams, torn
	// prefixes, and single-byte corruptions of each.
	var stream []byte
	for _, rec := range allKinds() {
		one := AppendRecord(nil, rec)
		f.Add(one)
		f.Add(one[:len(one)/2])
		flipped := append([]byte(nil), one...)
		flipped[len(flipped)/2] ^= 0x20
		f.Add(flipped)
		stream = AppendRecord(stream, rec)
	}
	f.Add(stream)
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := ReadRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if n != 0 {
				t.Fatalf("n = %d alongside error %v", n, err)
			}
			return
		}
		if n < headerSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		reenc := AppendRecord(nil, rec)
		rec2, n2, err := ReadRecord(reenc)
		if err != nil {
			t.Fatalf("re-decode of %s: %v", rec, err)
		}
		if n2 != len(reenc) || rec2.String() != rec.String() {
			t.Fatalf("round trip drifted: %s -> %s", rec, rec2)
		}
	})
}
