// Package par provides the shared worker-pool primitives behind every
// parallel pass in the system: the execution-graph explorer's frontier
// workers and the analysis package's pairwise sweeps. Centralizing the
// pool keeps the Parallelism contract uniform — 0 means one worker per
// available CPU (GOMAXPROCS), 1 means the exact sequential legacy path
// (no goroutines, deterministic iteration order), and n > 1 means n
// workers.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option to an effective worker count:
// 0 (or negative) resolves to runtime.GOMAXPROCS(0); anything else is
// returned unchanged.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// ForEach runs fn(i) for every i in [0, n), distributed over workers
// (a Parallelism value, resolved via Workers). With an effective worker
// count of 1 — or with n < 2 — it runs inline in index order,
// byte-for-byte the sequential legacy path. fn must be safe to call
// concurrently when more than one worker runs.
func ForEach(parallelism, n int, fn func(i int)) {
	workers := Workers(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Queue is the dynamic work queue handed to RunQueue callbacks for
// parallel graph exploration: workers pop tasks and may push new ones
// while processing, and the pool drains when every pushed task has been
// processed. Tasks are handed out in LIFO order, which keeps the
// frontier DFS-like and the live task set small on deep graphs. Queues
// are only created by RunQueue.
type Queue[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []T
	pending int // tasks pushed but not yet fully processed
	stopped bool
}

// RunQueue processes the seed tasks and everything subsequently pushed,
// with the given Parallelism (resolved via Workers). process receives
// the worker index (0 ≤ worker < Workers(parallelism)) — so callers can
// keep per-worker accumulators without locking — plus the task and the
// queue, on which it may Push follow-up work. With an effective worker
// count of 1 the whole run executes on the calling goroutine, in
// deterministic LIFO order. RunQueue returns when all tasks have been
// processed, or early after Stop.
func RunQueue[T any](parallelism int, seed []T, process func(worker int, task T, q *Queue[T])) {
	q := &Queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	q.items = append(q.items, seed...)
	q.pending = len(seed)
	workers := Workers(parallelism)
	if workers <= 1 {
		for {
			t, ok := q.popInline()
			if !ok {
				return
			}
			process(0, t, q)
			q.done()
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				t, ok := q.pop()
				if !ok {
					return
				}
				process(worker, t, q)
				q.done()
			}
		}(w)
	}
	wg.Wait()
}

// Push adds a task to the queue. It may only be called from process
// callbacks.
func (q *Queue[T]) Push(t T) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// Stop makes the pool drain without processing the tasks still queued:
// workers finish their current task and exit. Used for cancellation and
// error propagation.
func (q *Queue[T]) Stop() {
	q.mu.Lock()
	q.stopped = true
	q.pending -= len(q.items)
	q.items = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a task is available, or reports false once the queue
// has drained (no items and no task still in flight) or was stopped.
func (q *Queue[T]) pop() (t T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.stopped || (len(q.items) == 0 && q.pending == 0) {
			return t, false
		}
		if n := len(q.items); n > 0 {
			t = q.items[n-1]
			q.items = q.items[:n-1]
			return t, true
		}
		q.cond.Wait()
	}
}

// popInline is the single-worker pop: no waiting is ever needed because
// every push happens on the calling goroutine.
func (q *Queue[T]) popInline() (t T, ok bool) {
	if q.stopped || len(q.items) == 0 {
		return t, false
	}
	n := len(q.items)
	t = q.items[n-1]
	q.items = q.items[:n-1]
	return t, true
}

// done marks one task as fully processed and wakes waiters when the
// queue may have drained.
func (q *Queue[T]) done() {
	q.mu.Lock()
	q.pending--
	drained := q.pending == 0
	q.mu.Unlock()
	if drained {
		q.cond.Broadcast()
	}
}
