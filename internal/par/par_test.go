package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("ForEach(1, 5) ran %d calls, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach(1, 5) order = %v, want %v", got, want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	ForEach(8, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, c)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(8, 0, func(int) { called = true })
	if called {
		t.Error("ForEach with n=0 invoked fn")
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	var count atomic.Int32
	ForEach(64, 3, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("ran %d calls, want 3", count.Load())
	}
}

// TestRunQueueDrains expands a complete binary tree of tasks and checks
// that every node is processed exactly once at several worker counts.
func TestRunQueueDrains(t *testing.T) {
	const depth = 10 // 2^11 - 1 nodes
	for _, workers := range []int{1, 2, 8} {
		var count atomic.Int64
		RunQueue(workers, []int{0}, func(_ int, d int, q *Queue[int]) {
			count.Add(1)
			if d < depth {
				q.Push(d + 1)
				q.Push(d + 1)
			}
		})
		want := int64(1<<(depth+1)) - 1
		if count.Load() != want {
			t.Errorf("workers=%d: processed %d tasks, want %d", workers, count.Load(), want)
		}
	}
}

// TestRunQueueSequentialLIFO pins the single-worker contract: everything
// runs on the calling goroutine, worker index 0, strict LIFO order.
func TestRunQueueSequentialLIFO(t *testing.T) {
	var order []string
	RunQueue(1, []string{"a", "b"}, func(worker int, s string, q *Queue[string]) {
		if worker != 0 {
			t.Errorf("sequential worker index = %d, want 0", worker)
		}
		order = append(order, s)
		if s == "b" {
			q.Push("b1")
			q.Push("b2")
		}
	})
	want := []string{"b", "b2", "b1", "a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunQueueWorkerIndexInRange(t *testing.T) {
	const workers = 4
	var bad atomic.Int32
	RunQueue(workers, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(w int, d int, q *Queue[int]) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
		if d < 64 {
			q.Push(d + 8)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d tasks saw an out-of-range worker index", bad.Load())
	}
}

// TestRunQueueStop checks that Stop abandons queued work: a tree that
// would expand to millions of tasks finishes promptly once a worker
// stops the queue.
func TestRunQueueStop(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var count atomic.Int64
		RunQueue(workers, []int{0}, func(_ int, d int, q *Queue[int]) {
			if count.Add(1) >= 100 {
				q.Stop()
				return
			}
			if d < 40 {
				q.Push(d + 1)
				q.Push(d + 1)
			}
		})
		// In-flight tasks may still finish after Stop; the bound is the
		// stop threshold plus one per worker.
		if c := count.Load(); c > 100+int64(workers) {
			t.Errorf("workers=%d: processed %d tasks after Stop, want <= %d", workers, c, 100+workers)
		}
	}
}

// TestRunQueueConcurrentPushers stresses the drain condition: many
// workers pushing and finishing simultaneously must not lose a wakeup
// (a lost wakeup shows up as a hang, caught by the test timeout).
func TestRunQueueConcurrentPushers(t *testing.T) {
	var count atomic.Int64
	var mu sync.Mutex
	seen := map[int]bool{}
	RunQueue(8, []int{0, 1000000, 2000000, 3000000}, func(_ int, d int, q *Queue[int]) {
		count.Add(1)
		mu.Lock()
		seen[d] = true
		mu.Unlock()
		if d%1000000 < 500 {
			q.Push(d + 1)
		}
	})
	if count.Load() != 4*501 {
		t.Errorf("processed %d tasks, want %d", count.Load(), 4*501)
	}
	for base := 0; base < 4000000; base += 1000000 {
		for i := 0; i <= 500; i++ {
			if !seen[base+i] {
				t.Fatalf("task %d never processed", base+i)
			}
		}
	}
}
