// Package cluster turns the leader/follower replication pair
// (internal/replica) into an automatically failing-over two-node
// system, safe against split brain.
//
// The safety story has three interlocking mechanisms, argued in
// DESIGN.md §14:
//
//   - Fencing epochs. Leadership is numbered. A leader durably stamps
//     its epoch into the WAL at open (wal.Options.Epoch); observing a
//     strictly higher epoch — in a handshake, an ack, or a probe —
//     durably fences the log (wal.Log.Fence) so no transaction extends
//     the deposed history, even across restarts (wal.Open refuses a
//     stale claim). Epochs bump in exactly one place, follower
//     promotion, and epoch records replicate through the log bytes, so
//     claims are unique and monotone.
//
//   - Leases. The leader grants time-bounded leases over the
//     replication stream; the follower acknowledges every frame. A
//     leader that stops hearing acks for a lease suspends itself
//     (refuses writes); a follower that stops receiving leases for a
//     lease plus a margin promotes. With Margin >= Lease/3 (renewals
//     come every Lease/3) the old leader is suspended before the new
//     one can serve, so a symmetric partition never yields two
//     acknowledging leaders.
//
//   - Synchronous acknowledgment. Submit reports success only after
//     the follower has durably persisted the commit's log bytes.
//     "No committed transaction lost" therefore means: every
//     acknowledged transaction is on both disks, so it survives the
//     failure of either node; a commit whose ack never arrived is
//     reported indeterminate (UnackedError), never successful.
//
// Liveness is the usual CP trade: with the peer unreachable, a node
// with history waits rather than risk serving a stale line of history.
// A fresh bootstrap node self-elects; cold restarts resolve leadership
// by probing the peer's epoch and tie-breaking on the configured
// bootstrap node.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"activerules/internal/replica"
	"activerules/internal/retry"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/serve"
	"activerules/internal/wal"
)

// Role is a node's current position in the pair.
type Role int32

const (
	RoleFollower Role = iota
	RoleLeader
	RoleStopped
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	default:
		return "stopped"
	}
}

// Config assembles a cluster node.
type Config struct {
	// Schema and Defs are the served rule system.
	Schema *schema.Schema
	Defs   []rules.Definition
	// Dir is the node's WAL directory — leader log and follower
	// replica alike; roles hand it to each other on transition.
	Dir string
	// Serve is the base serving configuration for the leader role.
	// WAL.FS names the node's filesystem (nil: the real one); WAL.Epoch
	// is managed by the node and must be left zero.
	Serve serve.Config
	// ReplAddr is the node's replication listen address (the leader's
	// source and the follower's probe responder both bind it).
	ReplAddr string
	// Peer returns the peer's current replication address. It is a
	// function because test clusters bind ephemeral ports that change
	// across restarts.
	Peer func() string
	// Advertise is this node's client-facing address, carried in lease
	// frames so the follower can redirect clients to the leader.
	Advertise string
	// Bootstrap marks the configured initial leader: the node that
	// self-elects on a completely fresh start and wins cold-start epoch
	// ties. Exactly one node of the pair sets it.
	Bootstrap bool
	// Lease is the leadership lease duration; 0 means 1s.
	Lease time.Duration
	// Margin is how long past lease expiry a follower waits before
	// promoting; values below Lease/3 (including 0) mean Lease/2 — the
	// suspension-before-promotion argument needs at least Lease/3.
	Margin time.Duration
	// Tick is the supervisor poll interval; 0 means Lease/8.
	Tick time.Duration
	// AckTimeout bounds Submit's wait for the follower ack; 0 means
	// 2*Lease.
	AckTimeout time.Duration
	// Retry shapes the follower's reconnect backoff.
	Retry retry.Policy
	// Seed feeds the backoff schedules.
	Seed int64
	// Dial connects to the peer (stream and probes); nil means TCP
	// with a 2s timeout. The network fault injector hooks in here.
	Dial func(addr string) (net.Conn, error)
	// WrapConn wraps accepted connections (source and responder) — the
	// fault injector's server-side hook.
	WrapConn func(net.Conn) net.Conn
	// SourcePoll is the replication source's frontier poll interval
	// (0: the replica default).
	SourcePoll time.Duration
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = time.Second
	}
	if c.Margin < c.Lease/3 {
		c.Margin = c.Lease / 2
	}
	if c.Tick <= 0 {
		c.Tick = c.Lease / 8
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * c.Lease
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
	if c.Peer == nil {
		c.Peer = func() string { return "" }
	}
	return c
}

// Health is the node's failover-level view, layered over the serving
// or follower health of the active role.
type Health struct {
	Role      string `json:"role"`
	Epoch     uint64 `json:"epoch"`
	Suspended bool   `json:"suspended,omitempty"`
	Leader    string `json:"leader,omitempty"` // believed leader's client address
	Failovers int    `json:"failovers"`
	LastErr   string `json:"last_err,omitempty"`
}

// Node supervises one member of the pair, transitioning it between
// leader (serve.Server + replica.Source) and follower
// (replica.Follower + probe responder) as epochs and leases dictate.
type Node struct {
	cfg Config
	fs  wal.FS

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	wake   chan struct{}

	// claim is the epoch this node serves at while leading; depose is
	// the highest epoch observed from the peer — strictly above claim,
	// it means this leader must fence and step down.
	claim  atomic.Uint64
	depose atomic.Uint64

	mu        sync.Mutex
	role      Role
	srv       *serve.Server
	src       *replica.Source
	fol       *replica.Follower
	resp      *responder
	sawLease  bool
	leaseExp  time.Time
	coldSince time.Time
	failovers int
	lastErr   error

	ack ackState
}

// ackState tracks the follower's durable position as reported by acks,
// waking Submit waiters on every advance.
type ackState struct {
	mu  sync.Mutex
	gen uint64
	off int64
	at  time.Time
	ch  chan struct{}
}

func (a *ackState) reset() {
	a.mu.Lock()
	a.gen, a.off, a.at = 0, 0, time.Time{}
	if a.ch != nil {
		close(a.ch)
	}
	a.ch = make(chan struct{})
	a.mu.Unlock()
}

func (a *ackState) update(gen uint64, off int64, now time.Time) {
	a.mu.Lock()
	if gen > a.gen || (gen == a.gen && off > a.off) {
		a.gen, a.off = gen, off
	}
	a.at = now
	close(a.ch)
	a.ch = make(chan struct{})
	a.mu.Unlock()
}

// age reports how long since the last ack; a never-acked state is
// infinitely old.
func (a *ackState) age(now time.Time) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.at.IsZero() {
		return time.Duration(1<<62 - 1)
	}
	return now.Sub(a.at)
}

// wait blocks until the acked position reaches (gen, off), the context
// ends, or timeout elapses.
func (a *ackState) wait(ctx context.Context, gen uint64, off int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		a.mu.Lock()
		ok := a.gen > gen || (a.gen == gen && a.off >= off)
		ch := a.ch
		a.mu.Unlock()
		if ok {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return errors.New("ack timeout")
		}
		t := time.NewTimer(remain)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
			return errors.New("ack timeout")
		case <-ch:
			t.Stop()
		}
	}
}

// New starts a node. The initial role: a fresh bootstrap node with no
// live peer self-elects as leader at epoch 1; everything else starts
// as follower and lets the supervisor's probes settle leadership.
func New(cfg Config) (*Node, error) {
	if cfg.Schema == nil || cfg.Dir == "" {
		return nil, errors.New("cluster: Schema and Dir are required")
	}
	if cfg.Serve.WAL.Epoch != 0 {
		return nil, errors.New("cluster: Serve.WAL.Epoch is managed by the node")
	}
	cfg = cfg.withDefaults()
	fs := cfg.Serve.WAL.FS
	if fs == nil {
		fs = wal.OS
	}
	n := &Node{cfg: cfg, fs: fs, wake: make(chan struct{}, 1)}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.ack.reset()

	local := n.peekEpoch()
	lead := false
	if cfg.Bootstrap && local == 0 {
		// Fresh bootstrap node: lead unless the peer is already ahead.
		res, err := n.probePeer()
		lead = err != nil || (res.Epoch == 0 && res.Lease == 0)
	}
	var err error
	if lead {
		err = n.startLeader(1)
	} else {
		err = n.startFollower()
	}
	if err != nil {
		n.cancel()
		return nil, err
	}
	n.wg.Add(1)
	go n.supervise()
	return n, nil
}

// peekEpoch reads the directory's durable epoch without modifying
// anything; 0 for a fresh (or unreadable) directory.
func (n *Node) peekEpoch() uint64 {
	_, info, err := wal.Recover(n.cfg.Dir, n.cfg.Schema, n.fs)
	if err != nil {
		return 0
	}
	return info.Epoch
}

// Epoch returns the highest leadership epoch this node has observed —
// its own claim while leading, plus anything seen in probes, acks, or
// the replicated log.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	fol := n.fol
	n.mu.Unlock()
	e := n.claim.Load()
	if d := n.depose.Load(); d > e {
		e = d
	}
	if fol != nil {
		if fe := fol.Epoch(); fe > e {
			e = fe
		}
	}
	return e
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// ReplAddr returns the node's current replication listen address (the
// source's while leading, the probe responder's otherwise; "" in
// transition).
func (n *Node) ReplAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.src != nil {
		return n.src.Addr()
	}
	if n.resp != nil {
		return n.resp.addr()
	}
	return ""
}

// Server returns the serving layer while leading, nil otherwise.
func (n *Node) Server() *serve.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Follower returns the replication follower while following, nil
// otherwise.
func (n *Node) Follower() *replica.Follower {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fol
}

// LeaderAddr returns the believed leader's client address: our own
// while leading, the last lease's advertisement while following.
func (n *Node) LeaderAddr() string {
	n.mu.Lock()
	role, fol := n.role, n.fol
	n.mu.Unlock()
	if role == RoleLeader {
		return n.cfg.Advertise
	}
	if fol != nil {
		return fol.LeaderAddr()
	}
	return ""
}

// Health returns the failover-level health view.
func (n *Node) Health() Health {
	n.mu.Lock()
	h := Health{Role: n.role.String(), Failovers: n.failovers}
	if n.lastErr != nil {
		h.LastErr = n.lastErr.Error()
	}
	role := n.role
	n.mu.Unlock()
	h.Epoch = n.Epoch()
	h.Leader = n.LeaderAddr()
	if role == RoleLeader && n.ack.age(time.Now()) > n.cfg.Lease {
		h.Suspended = true
	}
	return h
}

// Failovers returns how many role transitions this node has performed.
func (n *Node) Failovers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failovers
}

// Submit runs one request through the leader with synchronous
// follower acknowledgment. On a follower — or a suspended leader — it
// refuses with *NotLeaderError; a commit the follower does not
// acknowledge in time returns *UnackedError (outcome indeterminate)
// ALONGSIDE the response, since the transaction is durable locally and
// may yet survive — callers treating the outcome as unknown can still
// observe what it would have been.
func (n *Node) Submit(ctx context.Context, req serve.Request) (*serve.Response, error) {
	n.mu.Lock()
	role, srv, fol := n.role, n.srv, n.fol
	n.mu.Unlock()
	if role != RoleLeader || srv == nil {
		addr := ""
		if fol != nil {
			addr = fol.LeaderAddr()
		}
		return nil, &NotLeaderError{Leader: addr}
	}
	if n.ack.age(time.Now()) > n.cfg.Lease {
		return nil, &NotLeaderError{Suspended: true}
	}
	resp, err := srv.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	gen, off := srv.DurablePos()
	if aerr := n.ack.wait(ctx, gen, off, n.cfg.AckTimeout); aerr != nil {
		return resp, &UnackedError{Gen: gen, Off: off, Cause: aerr}
	}
	return resp, nil
}

// Checkpoint rotates the leader's WAL generation; *NotLeaderError
// elsewhere.
func (n *Node) Checkpoint(ctx context.Context) error {
	n.mu.Lock()
	role, srv := n.role, n.srv
	n.mu.Unlock()
	if role != RoleLeader || srv == nil {
		return &NotLeaderError{Leader: n.LeaderAddr()}
	}
	return srv.Checkpoint(ctx)
}

// Close stops the node: the supervisor exits, then whatever role is
// active shuts down (a leader writes its final durable point unless
// already fenced or crashed). Idempotent.
func (n *Node) Close() error {
	n.cancel()
	n.wg.Wait()
	n.mu.Lock()
	srv, src, fol, resp := n.srv, n.src, n.fol, n.resp
	n.srv, n.src, n.fol, n.resp = nil, nil, nil, nil
	n.role = RoleStopped
	n.mu.Unlock()
	if src != nil {
		src.Close()
	}
	if resp != nil {
		resp.close()
	}
	if fol != nil {
		fol.Close()
	}
	if srv != nil {
		if err := srv.Close(); err != nil && !errors.Is(err, wal.ErrFenced) {
			return err
		}
	}
	return nil
}

func (n *Node) setErr(err error) {
	n.mu.Lock()
	n.lastErr = err
	n.mu.Unlock()
}

// observeEpoch records a peer-reported epoch and wakes the supervisor;
// called from source stream goroutines, so it must not block or
// transition roles itself (stepping down closes the very goroutines
// this is called from).
func (n *Node) observeEpoch(e uint64) {
	for {
		cur := n.depose.Load()
		if e <= cur || n.depose.CompareAndSwap(cur, e) {
			break
		}
	}
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

func (n *Node) onAck(gen uint64, off int64) {
	n.ack.update(gen, off, time.Now())
}

func (n *Node) onLease(epoch uint64, lease time.Duration, addr string) {
	n.mu.Lock()
	n.sawLease = true
	n.leaseExp = time.Now().Add(lease)
	n.mu.Unlock()
}

func (n *Node) dial(addr string) (net.Conn, error) {
	if addr == "" {
		return nil, errors.New("cluster: no peer address")
	}
	return n.cfg.Dial(addr)
}

// probePeer asks the peer for its epoch, carrying ours — which is
// itself the fencing side-channel: a stale leader answering the probe
// observes our higher epoch and deposes itself.
func (n *Node) probePeer() (replica.ProbeResult, error) {
	c, err := n.dial(n.cfg.Peer())
	if err != nil {
		return replica.ProbeResult{}, err
	}
	defer c.Close()
	return replica.Probe(c, n.Epoch(), n.cfg.Lease)
}

// supervise is the node's only role-transition goroutine: it reacts to
// observed epochs (step down) and lease expiry (promote). Serializing
// transitions here avoids the deadlock of a stream goroutine closing
// the source that is joining on it.
func (n *Node) supervise() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-n.wake:
		case <-ticker.C:
		}
		if n.ctx.Err() != nil {
			return
		}
		n.step()
	}
}

func (n *Node) step() {
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	switch role {
	case RoleLeader:
		claim := n.claim.Load()
		if e := n.depose.Load(); e > claim {
			n.stepDown(e)
			return
		}
		// Suspended: no acks for a lease. Probe the peer — if it has
		// promoted, our probe both tells us (step down) and tells it
		// nothing it doesn't know; if it is merely unreachable, keep
		// waiting, suspended. An equal-epoch answer that itself claims
		// a live lease means a dual claim (or a one-way partition where
		// our grants arrive but acks don't); either way this leader
		// cannot acknowledge anything, so the non-bootstrap side yields
		// deterministically rather than livelock.
		if n.ack.age(time.Now()) > n.cfg.Lease {
			if res, err := n.probePeer(); err == nil {
				switch {
				case res.Epoch > claim:
					n.stepDown(res.Epoch)
				case res.Epoch == claim && res.Lease > 0 && !n.cfg.Bootstrap:
					// Fencing at our own epoch is a no-op, so this is a
					// CLEAN leader close: it checkpoints (rotating the
					// local generation) before refollowing. Harmless —
					// the winner's log is untouched, and the first
					// snapshot reset from it wipes the rotation.
					n.stepDown(claim)
				}
			}
		}
	case RoleFollower:
		n.maybePromote()
	}
}

// maybePromote decides whether the follower should take over: on lease
// expiry past the margin (the live-failover path), or — when it has
// never held a lease — by cold-start election against the peer's
// probed epoch.
func (n *Node) maybePromote() {
	n.mu.Lock()
	fol, saw, exp := n.fol, n.sawLease, n.leaseExp
	n.mu.Unlock()
	if fol == nil {
		return
	}
	if saw {
		if time.Now().After(exp.Add(n.cfg.Margin)) {
			n.promote(n.Epoch() + 1)
		}
		return
	}
	// Cold start: never leased in this incarnation. First wait out a
	// full lease window plus two margins: if the peer is a follower
	// about to promote through the live path (its lease just expired),
	// it will have done so before we act, and our probe will then see
	// its strictly-higher epoch — closing the race where both sides
	// promote to the same epoch. Probe answers carry the peer's own
	// remaining lease belief, so a peer that still thinks someone leads
	// defers us too.
	//
	// Past the wait: a fresh bootstrap node with no reachable peer
	// self-elects; with history, promote only when the probe proves the
	// peer's history is strictly behind ours (it then also can't be
	// serving: holding an epoch implies having stamped it). Ties — both
	// directories saw the same epoch — go to the bootstrap node, at a
	// strictly higher epoch, which is safe either way: synchronous acks
	// mean either directory contains every acknowledged transaction.
	n.mu.Lock()
	cold := n.coldSince
	n.mu.Unlock()
	wait := n.cfg.Lease + 2*n.cfg.Margin
	if time.Since(cold) < wait {
		return
	}
	// local is everything this node has ever observed OR advertised —
	// including an epoch it claimed in a failed promotion attempt, so a
	// re-election can never reuse a number a peer may have fenced at.
	local := n.Epoch()
	res, err := n.probePeer()
	if err != nil {
		// Peer unreachable. A fresh bootstrap node self-elects. A node
		// with history promotes blind after a second full cold wait:
		// that is safe even against an unseen claimant across a
		// partition — alone it can acknowledge nothing (synchronous
		// replication needs the peer's disk), and if both sides claimed
		// the same epoch, the suspended-leader tie-break resolves it
		// when the network heals, before either could ack.
		if n.cfg.Bootstrap && local == 0 {
			n.promote(1)
		} else if local > 0 && time.Since(cold) >= 2*wait {
			n.promote(local + 1)
		}
		return
	}
	if res.Lease > 0 {
		return // someone, somewhere, still holds a live lease
	}
	switch {
	case res.Epoch < local:
		n.promote(local + 1)
	case res.Epoch == local && n.cfg.Bootstrap:
		n.promote(local + 1)
	}
}

// promote turns the follower into the leader at the given epoch: stop
// the responder, recover the replica directory into a full server
// (adopting the unfenced committed tail), stamp the epoch, and start
// the replication source for the deposed peer to follow.
func (n *Node) promote(epoch uint64) {
	// Claim the epoch BEFORE dismantling the follower: n.Epoch() must
	// never dip while the responder answers a final probe mid-takeover,
	// or the peer would read 0, conclude it is ahead, and promote too.
	n.claim.Store(epoch)
	n.ack.reset()
	n.mu.Lock()
	fol, resp := n.fol, n.resp
	n.fol, n.resp = nil, nil
	n.mu.Unlock()
	if resp != nil {
		resp.close()
	}
	scfg := n.cfg.Serve
	scfg.WAL.Epoch = epoch
	srv, err := fol.Promote(n.cfg.Defs, scfg)
	if err != nil {
		// A fence here means the peer got ahead while we decided; fall
		// back to following it. Anything else is a real fault.
		n.setErr(err)
		if ferr := n.startFollower(); ferr != nil {
			n.setErr(ferr)
			n.mu.Lock()
			n.role = RoleStopped
			n.mu.Unlock()
		}
		return
	}
	if err := n.startSource(srv); err != nil {
		n.setErr(err)
		srv.Close()
		n.mu.Lock()
		n.role = RoleStopped
		n.mu.Unlock()
	}
}

// stepDown fences the leader at the observed epoch and demotes it to
// follower over the same directory. The fence is durable before the
// server closes, so a crash-restart cannot resurrect the old claim.
func (n *Node) stepDown(epoch uint64) {
	n.mu.Lock()
	srv, src := n.srv, n.src
	n.srv, n.src = nil, nil
	n.mu.Unlock()
	if srv != nil {
		srv.RequestFence(epoch)
	}
	if src != nil {
		src.Close()
	}
	if srv != nil {
		if err := srv.Close(); err != nil && !errors.Is(err, wal.ErrFenced) {
			n.setErr(err)
		}
	}
	n.mu.Lock()
	n.failovers++
	n.mu.Unlock()
	if err := n.startFollower(); err != nil {
		n.setErr(err)
		n.mu.Lock()
		n.role = RoleStopped
		n.mu.Unlock()
	}
}

// startLeader opens the serving layer at the claimed epoch and its
// replication source.
func (n *Node) startLeader(epoch uint64) error {
	n.claim.Store(epoch)
	n.ack.reset()
	scfg := n.cfg.Serve
	scfg.WAL.FS = n.fs
	scfg.WAL.Epoch = epoch
	srv, err := serve.New(n.cfg.Schema, n.cfg.Defs, n.cfg.Dir, scfg)
	if err != nil {
		return err
	}
	if err := n.startSource(srv); err != nil {
		srv.Close()
		return err
	}
	return nil
}

func (n *Node) startSource(srv *serve.Server) error {
	src, err := replica.NewSource(srv, n.cfg.ReplAddr, replica.SourceConfig{
		Poll:         n.cfg.SourcePoll,
		WrapConn:     n.cfg.WrapConn,
		Epoch:        n.claim.Load,
		ObserveEpoch: n.observeEpoch,
		Lease:        n.cfg.Lease,
		Advertise:    n.cfg.Advertise,
		OnAck:        n.onAck,
	})
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.role = RoleLeader
	n.srv, n.src = srv, src
	n.sawLease, n.leaseExp = false, time.Time{}
	n.mu.Unlock()
	return nil
}

// startFollower hands the directory to the replication follower and
// opens the probe responder.
func (n *Node) startFollower() error {
	fol, err := replica.NewFollower(n.cfg.Schema, n.cfg.Dir, "peer", replica.FollowerConfig{
		FS:    n.fs,
		Retry: n.cfg.Retry,
		Seed:  n.cfg.Seed,
		Dial: func(string) (net.Conn, error) {
			return n.dial(n.cfg.Peer())
		},
		OnLease: n.onLease,
		Ack:     true,
	})
	if err != nil {
		return fmt.Errorf("cluster: follower over %s: %w", n.cfg.Dir, err)
	}
	resp, err := newResponder(n.cfg.ReplAddr, n.probeState, n.cfg.WrapConn)
	if err != nil {
		fol.Close()
		return err
	}
	n.mu.Lock()
	n.role = RoleFollower
	n.fol, n.resp = fol, resp
	n.sawLease, n.leaseExp = false, time.Time{}
	n.coldSince = time.Now()
	n.mu.Unlock()
	return nil
}

// probeState is what the probe responder reports: the node's highest
// observed epoch, and how much of a lease (plus promotion margin) it
// still believes a leader holds over it — a peer running a cold-start
// election defers while that is non-zero.
func (n *Node) probeState() (uint64, time.Duration) {
	n.mu.Lock()
	saw, exp := n.sawLease, n.leaseExp
	n.mu.Unlock()
	var lease time.Duration
	if saw {
		if rem := time.Until(exp.Add(n.cfg.Margin)); rem > 0 {
			lease = rem
		}
	}
	return n.Epoch(), lease
}
