package cluster

import (
	"net"
	"sync"
	"time"

	"activerules/internal/replica"
)

// responder is the probe listener a node runs while it is NOT the
// leader. It answers epoch probes (so a peer deciding whether to
// promote — or whether it is stale — can learn this node's highest
// observed epoch) and refuses stream handshakes (only a leader's
// replication source serves those). When the node promotes, the
// responder is closed and the source takes over the address.
type responder struct {
	ln    net.Listener
	state func() (epoch uint64, lease time.Duration)
	wrap  func(net.Conn) net.Conn
	wg    sync.WaitGroup
	once  sync.Once
}

func newResponder(addr string, state func() (uint64, time.Duration), wrap func(net.Conn) net.Conn) (*responder, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &responder{ln: ln, state: state, wrap: wrap}
	r.wg.Add(1)
	go r.accept()
	return r, nil
}

func (r *responder) addr() string { return r.ln.Addr().String() }

func (r *responder) accept() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return // closed
		}
		if r.wrap != nil {
			c = r.wrap(c)
		}
		r.wg.Add(1)
		go r.answer(c)
	}
}

// answer handles one connection: a probe handshake gets a lease frame
// reporting this node's highest observed epoch and — crucially for
// cold-start elections — how much of a lease it still believes some
// leader holds over it (zero: no live leadership anywhere it knows
// of). Anything else is refused by closing.
func (r *responder) answer(c net.Conn) {
	defer r.wg.Done()
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if hs, err := replica.ReadProbe(c); err == nil && hs {
		epoch, lease := r.state()
		c.Write(replica.AnswerProbe(epoch, lease, ""))
	}
}

func (r *responder) close() {
	r.once.Do(func() { r.ln.Close() })
	r.wg.Wait()
}
