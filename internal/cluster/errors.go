package cluster

import "fmt"

// NotLeaderError refuses a request on a node that cannot currently
// acknowledge writes: a follower (Leader carries the advertised
// address from its lease, for client redirects), or a nominal leader
// whose follower-ack lease has lapsed (Suspended — it may be on the
// minority side of a partition, and accepting writes it could never
// get acknowledged would only manufacture indeterminate outcomes).
type NotLeaderError struct {
	// Leader is the advertised client address of the believed leader,
	// "" when unknown.
	Leader string
	// Suspended marks a leader refusing writes because its follower
	// has not acknowledged within the lease.
	Suspended bool
}

func (e *NotLeaderError) Error() string {
	switch {
	case e.Suspended:
		return "cluster: leadership suspended (no follower ack within the lease)"
	case e.Leader != "":
		return fmt.Sprintf("cluster: not the leader (leader at %s)", e.Leader)
	default:
		return "cluster: not the leader"
	}
}

// UnackedError reports an indeterminate commit: the transaction is
// durable on this leader but the follower did not acknowledge it
// within AckTimeout. If the leader survives, the commit stands; if the
// follower promotes instead, the commit may be discarded. Clients must
// treat the outcome as unknown — exactly the semantics of a timed-out
// write to any synchronously replicated store.
type UnackedError struct {
	Gen   uint64
	Off   int64
	Cause error
}

func (e *UnackedError) Error() string {
	return fmt.Sprintf("cluster: commit at (%d, %d) not acknowledged by follower: %v", e.Gen, e.Off, e.Cause)
}

func (e *UnackedError) Unwrap() error { return e.Cause }
