package cluster

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"activerules/internal/faultinject"
	"activerules/internal/retry"
	"activerules/internal/schema"
	"activerules/internal/serve"
	"activerules/internal/storage"
	"activerules/internal/wal"
	"activerules/internal/workload"
)

const nodeDir = "node"

func freshHex(sch *schema.Schema) string {
	fp := storage.NewDB(sch).Fingerprint()
	return hex.EncodeToString(fp[:])
}

func seedSQL(sch *schema.Schema, n int) string {
	script := ""
	for _, t := range sch.TableNames() {
		for i := 0; i < n; i++ {
			if script != "" {
				script += "; "
			}
			script += fmt.Sprintf("insert into %s values (%d, %d)", t, i, i)
		}
	}
	return script
}

// member is one node of the test pair: its (crash-survivable) memory
// filesystem outlives node incarnations, which come and go as the
// harness kills and restarts it.
type member struct {
	fs   *wal.MemFS
	inj  *faultinject.Injector // fs-crash injector armed on this incarnation; nil if none
	node *Node
}

// pair runs a two-node cluster over a shared network fault injector.
// Only the test goroutine mutates member.node; mu guards the reads the
// nodes' own goroutines perform through the Peer closures.
type pair struct {
	t    *testing.T
	g    *workload.Generated
	seed int64
	net  *faultinject.Injector
	mu   sync.Mutex
	m    [2]*member
}

func newPair(t *testing.T, g *workload.Generated, seed int64) *pair {
	p := &pair{t: t, g: g, seed: seed}
	p.net = faultinject.New(faultinject.Config{Seed: seed})
	p.m[0] = &member{fs: wal.NewMemFS()}
	p.m[1] = &member{fs: wal.NewMemFS()}
	return p
}

func (p *pair) node(i int) *Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m[i].node
}

func (p *pair) peerAddr(i int) func() string {
	return func() string {
		if n := p.node(1 - i); n != nil {
			return n.ReplAddr()
		}
		return ""
	}
}

// dial is every node's outbound path — refusing while the network is
// partitioned, and wrapping the client side of each connection so a
// symmetric partition severs both directions.
func (p *pair) dial(addr string) (net.Conn, error) {
	if p.net.NetPartitioned() {
		return nil, errors.New("cluster test: network partitioned")
	}
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	return p.net.WrapNetConn(c), nil
}

// start brings up member i. crashAt > 0 arms a filesystem power-loss
// crash at that injected-call count — the kill primitive: once it
// fires, every later write fails and unsynced bytes are gone, exactly
// a machine dying mid-operation.
func (p *pair) start(i int, crashAt int) {
	p.t.Helper()
	m := p.m[i]
	var fs wal.FS = m.fs
	m.inj = nil
	if crashAt > 0 {
		m.inj = faultinject.New(faultinject.Config{FSCrashAt: crashAt, Seed: p.seed + int64(i)})
		fs = m.inj.WrapFS(m.fs)
	}
	n, err := New(Config{
		Schema: p.g.Schema,
		Defs:   p.g.Defs,
		Dir:    nodeDir,
		Serve: serve.Config{
			WAL:            wal.Options{FS: fs},
			DisableProbing: true,
			DurableRetry:   retry.Policy{Initial: time.Millisecond, Max: 5 * time.Millisecond, MaxAttempts: 2},
			Seed:           p.seed + int64(i),
		},
		ReplAddr:   "127.0.0.1:0",
		Peer:       p.peerAddr(i),
		Advertise:  [2]string{"node-a", "node-b"}[i],
		Bootstrap:  i == 0,
		Lease:      200 * time.Millisecond,
		Tick:       20 * time.Millisecond,
		AckTimeout: 500 * time.Millisecond,
		Retry:      retry.Policy{Initial: time.Millisecond, Max: 10 * time.Millisecond, MaxAttempts: 1},
		Seed:       p.seed*17 + int64(i),
		Dial:       p.dial,
		WrapConn:   p.net.WrapNetConn,
		SourcePoll: time.Millisecond,
	})
	if err != nil {
		p.t.Fatalf("start member %d: %v", i, err)
	}
	p.mu.Lock()
	m.node = n
	p.mu.Unlock()
}

// stop takes member i down (popping it first so Peer closures stop
// advertising it) and returns the node for error inspection.
func (p *pair) stop(i int) {
	p.t.Helper()
	p.mu.Lock()
	n := p.m[i].node
	p.m[i].node = nil
	p.mu.Unlock()
	if n != nil {
		n.Close()
	}
}

func (p *pair) closeAll() {
	p.stop(0)
	p.stop(1)
}

// ackedSubmit keeps generating workload scripts and offering them to
// whichever node will take them until one is acknowledged, tolerating
// failover windows. An UnackedError abandons that script (indeterminate
// — it may or may not survive, and either is consistent) and moves on
// to a fresh one.
func (p *pair) ackedSubmit(rng *rand.Rand, timeout time.Duration) (string, bool) {
	p.t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		sql := workload.UserScript(p.g.Schema, rng, 1+rng.Intn(2))
		for i := 0; i < 2; i++ {
			n := p.node(i)
			if n == nil {
				continue
			}
			resp, err := n.Submit(ctx, serve.Request{SQL: sql})
			if err == nil {
				return resp.StateHash, true
			}
			var nl *NotLeaderError
			if errors.As(err, &nl) {
				continue // not this node; the script was not executed
			}
			break // executed (or failed) here; never reuse the script
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "", false
}

// mustSubmit retries one fixed script on node i while it reports
// NotLeaderError (a leader is suspended until its follower's first
// ack; refused scripts were never executed, so retrying is safe) and
// fails the test on anything else.
func (p *pair) mustSubmit(i int, sql string, timeout time.Duration) *serve.Response {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := p.node(i).Submit(context.Background(), serve.Request{SQL: sql})
		if err == nil {
			return resp
		}
		var nl *NotLeaderError
		if !errors.As(err, &nl) {
			p.t.Fatalf("submit on member %d: %v", i, err)
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("submit on member %d never acknowledged: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// await polls cond until it holds or the deadline passes.
func (p *pair) await(what string, timeout time.Duration, cond func() bool) {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("timed out awaiting %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// soleLeader reports whether exactly one member currently leads, and
// which.
func (p *pair) soleLeader() (int, bool) {
	lead := -1
	for i := 0; i < 2; i++ {
		n := p.node(i)
		if n != nil && n.Role() == RoleLeader {
			if lead >= 0 {
				return -1, false
			}
			lead = i
		}
	}
	return lead, lead >= 0
}

type crange struct{ start, end int }

// orderedStates is the soak's independent oracle: a fence-based replay
// of a node's generation-1 log returning the ordered sequence of state
// hashes the history passes through — every durable point, ending with
// recovery semantics (unfenced committed tail adopted). The soak never
// rotates a generation, so the log is the complete history from
// genesis; the oracle verifies that and fails on a snapshot.
func orderedStates(t *testing.T, fsys wal.FS, sch *schema.Schema) []string {
	t.Helper()
	if _, err := fsys.ReadFile(nodeDir + "/snapshot.db"); err == nil {
		t.Fatalf("oracle: unexpected snapshot — a generation rotated mid-soak")
	} else if !wal.IsNotExist(err) {
		t.Fatalf("oracle: %v", err)
	}
	db := storage.NewDB(sch)
	var seq []string
	note := func() {
		fp := db.Fingerprint()
		seq = append(seq, hex.EncodeToString(fp[:]))
	}
	note()
	data, err := fsys.ReadFile(fmt.Sprintf("%s/wal-%06d.log", nodeDir, 1))
	if err != nil {
		if wal.IsNotExist(err) {
			return seq
		}
		t.Fatalf("oracle: %v", err)
	}
	var muts []wal.Record
	var ranges []crange
	pendingStart, first := 0, true
	apply := func(rs []crange) {
		for _, sp := range rs {
			for _, m := range muts[sp.start:sp.end] {
				if err := wal.Apply(db, m); err != nil {
					t.Fatalf("oracle replay: %v", err)
				}
			}
		}
	}
	for len(data) > 0 {
		rec, n, err := wal.ReadRecord(data)
		if err != nil {
			break // torn tail
		}
		data = data[n:]
		if first {
			first = false
			continue // open marker
		}
		switch rec.Kind {
		case wal.RecInsert, wal.RecDelete, wal.RecUpdate:
			muts = append(muts, rec)
		case wal.RecCommit:
			ranges = append(ranges, crange{pendingStart, len(muts)})
			pendingStart = len(muts)
		case wal.RecBegin:
			apply(ranges)
			muts, ranges, pendingStart = muts[:0], ranges[:0], 0
			note()
		case wal.RecAbort:
			muts, ranges, pendingStart = muts[:0], ranges[:0], 0
		}
	}
	apply(ranges)
	note()
	return seq
}

// assertSubsequence fails unless want appears, in order, within seq.
func assertSubsequence(t *testing.T, want, seq []string) {
	t.Helper()
	j := 0
	for _, s := range seq {
		if j < len(want) && want[j] == s {
			j++
		}
	}
	if j != len(want) {
		t.Fatalf("acknowledged state %d of %d (%s) lost: not in the winner's epoch-ordered history (%d states)",
			j, len(want), want[j], len(seq))
	}
}

// TestClusterBootstrapLeadsAndRedirects is the deterministic happy
// path: the bootstrap node self-elects, serves acknowledged writes,
// and the follower refuses writes with a redirect to the leader's
// advertised address.
func TestClusterBootstrapLeadsAndRedirects(t *testing.T) {
	g, err := workload.Generate(workload.Config{
		Seed: 3, Rules: 5, Tables: 4, Acyclic: true,
		UpdateFrac: 0.3, DeleteFrac: 0.15, ConditionFrac: 0.3, WriteFanout: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newPair(t, g, 3)
	p.start(0, 0)
	p.start(1, 0)
	defer p.closeAll()

	if got := p.node(0).Role(); got != RoleLeader {
		t.Fatalf("bootstrap node role = %v, want leader", got)
	}
	if got := p.node(0).Epoch(); got != 1 {
		t.Fatalf("bootstrap epoch = %d, want 1", got)
	}
	rng := rand.New(rand.NewSource(3))
	resp := p.mustSubmit(0, seedSQL(g.Schema, 2), 15*time.Second)
	if resp.StateHash == "" || resp.StateHash == freshHex(g.Schema) {
		t.Fatalf("acked submit returned hash %q", resp.StateHash)
	}
	for i := 0; i < 5; i++ {
		if _, ok := p.ackedSubmit(rng, 10*time.Second); !ok {
			t.Fatalf("acked submit %d never succeeded", i)
		}
	}

	// The follower redirects, naming the leader's advertised address.
	p.await("follower lease", 10*time.Second, func() bool {
		return p.node(1).LeaderAddr() == "node-a"
	})
	_, err = p.node(1).Submit(context.Background(), serve.Request{SQL: "insert into t0 values (99, 99)"})
	var nl *NotLeaderError
	if !errors.As(err, &nl) {
		t.Fatalf("follower submit error = %v, want NotLeaderError", err)
	}
	if nl.Leader != "node-a" {
		t.Fatalf("redirect leader = %q, want node-a", nl.Leader)
	}
	h := p.node(1).Health()
	if h.Role != "follower" || h.Epoch != 1 || h.Leader != "node-a" {
		t.Fatalf("follower health = %+v", h)
	}
}

// TestClusterColdStartElection restarts a whole pair from disk: no
// node holds a lease, so leadership is resolved by probing epochs,
// with the tie going to the bootstrap node at a strictly higher epoch.
func TestClusterColdStartElection(t *testing.T) {
	g, err := workload.Generate(workload.Config{
		Seed: 11, Rules: 5, Tables: 4, Acyclic: true,
		UpdateFrac: 0.3, DeleteFrac: 0.15, ConditionFrac: 0.3, WriteFanout: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := newPair(t, g, 11)
	p.start(0, 0)
	p.start(1, 0)
	defer p.closeAll()

	rng := rand.New(rand.NewSource(11))
	p.mustSubmit(0, seedSQL(g.Schema, 2), 15*time.Second)
	var last string
	for i := 0; i < 4; i++ {
		h, ok := p.ackedSubmit(rng, 10*time.Second)
		if !ok {
			t.Fatalf("acked submit %d never succeeded", i)
		}
		last = h
	}

	// Orderly shutdown of the whole pair, follower first.
	p.stop(1)
	p.stop(0)

	p.start(0, 0)
	p.start(1, 0)
	p.await("cold-start election", 20*time.Second, func() bool {
		i, ok := p.soleLeader()
		return ok && i == 0 && p.node(0).Epoch() > 1
	})
	// The elected leader's recovered history contains the last
	// acknowledged state, and the pair serves again.
	db, _, err := wal.Recover(nodeDir, g.Schema, p.m[0].fs)
	if err != nil {
		t.Fatalf("recover elected leader: %v", err)
	}
	fp := db.Fingerprint()
	if got := hex.EncodeToString(fp[:]); got != last {
		t.Fatalf("elected leader state %s != last acknowledged %s", got, last)
	}
	if _, ok := p.ackedSubmit(rng, 20*time.Second); !ok {
		t.Fatal("pair never served after cold-start election")
	}
}

// TestClusterSoakFailover drives the pair through leader power loss,
// restart and rejoin, a symmetric network partition (split brain), and
// a follower restart — under 20 seeds of workload and timing jitter,
// with mild frame loss throughout. Invariants, per seed:
//
//  1. Split-brain safety: while the partition is symmetric, NO submit
//     is ever acknowledged by either side — the stale leader suspends
//     (its acks stopped) and the newly promoted leader cannot ack
//     either (its only possible acker is unreachable).
//  2. No acknowledged transaction is lost: the full ordered list of
//     acknowledged state hashes — across every failover — is a
//     subsequence of the final winner's single epoch-ordered history.
//  3. The loser converges: its recovered state is a durable point of
//     the winner's history, at an epoch no higher than the winner's.
func TestClusterSoakFailover(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			soakClusterSeed(t, seed)
		})
	}
}

func soakClusterSeed(t *testing.T, seed int64) {
	g, err := workload.Generate(workload.Config{
		Seed: seed, Rules: 6, Tables: 4, Acyclic: true,
		UpdateFrac: 0.3, DeleteFrac: 0.15, ConditionFrac: 0.3, WriteFanout: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 131))
	p := newPair(t, g, seed)
	p.net.ConfigureNet(faultinject.NetConfig{DropP: 0.003, Seed: seed})
	p.start(0, 120+rng.Intn(200)) // member 0 is armed to die of power loss
	p.start(1, 0)
	defer p.closeAll()

	ctx := context.Background()
	acked := []string{freshHex(g.Schema)}
	record := func(h string) { acked = append(acked, h) }

	// Phase 0: establish service, then submit until member 0's crash
	// fires (as initial leader it burns filesystem calls fastest, but
	// the schedule is role-agnostic — dying as follower is a valid kill
	// too).
	record(p.mustSubmit(0, seedSQL(g.Schema, 2), 15*time.Second).StateHash)
	crashed := false
	for i := 0; i < 1500; i++ {
		if p.m[0].inj.Crashed() {
			crashed = true
			break
		}
		if h, ok := p.ackedSubmit(rng, 5*time.Second); ok {
			record(h)
		}
	}
	if !crashed {
		t.Fatalf("member 0 never hit its crash point (fs calls: %d)", p.m[0].inj.FSCalls())
	}
	p.stop(0)

	// The survivor takes over (or already led), but alone it can
	// acknowledge nothing: synchronous replication needs both disks.
	p.await("survivor promotion", 20*time.Second, func() bool {
		n := p.node(1)
		return n != nil && n.Role() == RoleLeader
	})
	if _, err := p.node(1).Submit(ctx, serve.Request{SQL: "insert into t0 values (7, 7)"}); err == nil {
		t.Fatal("lone survivor acknowledged a write with no follower to replicate to")
	}

	// Member 0 rejoins from its crashed disk and service resumes.
	p.start(0, 0)
	for i := 0; i < 6; i++ {
		h, ok := p.ackedSubmit(rng, 20*time.Second)
		if !ok {
			t.Fatalf("service never resumed after member 0 rejoined (round %d)", i)
		}
		record(h)
	}

	// Phase 1: symmetric partition — split brain. The follower's lease
	// expires and it promotes; the old leader suspends. Both refuse.
	epochBefore := p.node(0).Epoch()
	if e := p.node(1).Epoch(); e > epochBefore {
		epochBefore = e
	}
	p.net.PartitionNet(true)
	p.await("split brain (both sides claiming)", 20*time.Second, func() bool {
		a, b := p.node(0), p.node(1)
		return a != nil && b != nil && a.Role() == RoleLeader && b.Role() == RoleLeader
	})
	for i := 0; i < 4; i++ {
		for m := 0; m < 2; m++ {
			cctx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
			_, err := p.node(m).Submit(cctx, serve.Request{SQL: fmt.Sprintf("insert into t0 values (%d, %d)", 500+i*2+m, seed)})
			cancel()
			if err == nil {
				t.Fatalf("member %d acknowledged a write across a symmetric partition", m)
			}
		}
		time.Sleep(30 * time.Millisecond)
	}

	// Heal: the claimant with the lower epoch fences and demotes; the
	// pair converges on one strictly higher epoch and serves again.
	p.net.PartitionNet(false)
	p.await("post-partition convergence", 20*time.Second, func() bool {
		i, ok := p.soleLeader()
		return ok && p.node(i).Epoch() > epochBefore
	})
	for i := 0; i < 6; i++ {
		h, ok := p.ackedSubmit(rng, 20*time.Second)
		if !ok {
			t.Fatalf("service never resumed after partition healed (round %d)", i)
		}
		record(h)
	}

	// Phase 2: orderly restart of the current follower.
	fol := 0
	if lead, ok := p.soleLeader(); ok && lead == 0 {
		fol = 1
	}
	p.stop(fol)
	p.start(fol, 0)
	for i := 0; i < 4; i++ {
		h, ok := p.ackedSubmit(rng, 20*time.Second)
		if !ok {
			t.Fatalf("service never resumed after follower restart (round %d)", i)
		}
		record(h)
	}

	// Settle: a run of consecutive acks, then a quiescent pair.
	streak := 0
	p.await("settled service", 30*time.Second, func() bool {
		if h, ok := p.ackedSubmit(rng, 2*time.Second); ok {
			record(h)
			streak++
		} else {
			streak = 0
		}
		return streak >= 5
	})
	lead, ok := p.soleLeader()
	if !ok {
		t.Fatal("no sole leader after settling")
	}
	winner, loser := p.m[lead], p.m[1-lead]
	p.await("loser caught up", 20*time.Second, func() bool {
		srv, f := p.node(lead).Server(), p.node(1-lead).Follower()
		if srv == nil || f == nil {
			return false
		}
		lg, lo := srv.DurablePos()
		fg, fo := f.Pos()
		return lg == fg && lo == fo
	})

	// Oracle: replay the winner's complete history (reads only; the
	// pair is quiescent). Every acknowledged state, in order, must be a
	// durable point of it, and its final state is the last ack.
	seq := orderedStates(t, winner.fs, g.Schema)
	assertSubsequence(t, acked, seq)
	if last := acked[len(acked)-1]; last != seq[len(seq)-1] {
		t.Fatalf("winner's final state %s != last acknowledged %s", seq[len(seq)-1], last)
	}

	// The loser's disk is a durable point of the same history, fenced
	// at or below the winner's epoch.
	inSeq := make(map[string]bool, len(seq))
	for _, s := range seq {
		inSeq[s] = true
	}
	db, info, err := wal.Recover(nodeDir, g.Schema, loser.fs)
	if err != nil {
		t.Fatalf("recover loser: %v", err)
	}
	fp := db.Fingerprint()
	if got := hex.EncodeToString(fp[:]); !inSeq[got] {
		t.Fatalf("loser recovered to %s — not a durable point of the winner's history", got)
	}
	if we := p.node(lead).Epoch(); info.Epoch > we {
		t.Fatalf("loser epoch %d exceeds winner epoch %d", info.Epoch, we)
	}
}
