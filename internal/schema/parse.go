package schema

import (
	"fmt"
	"strings"
)

// Parse reads a schema from its textual definition format, one table per
// declaration:
//
//	table account (id int, owner string, balance float)
//	table audit   (id int, msg string)
//
// Lines starting with "--" or "#" are comments. Declarations may span
// multiple lines; they are terminated by the closing parenthesis.
func Parse(src string) (*Schema, error) {
	b := NewBuilder()
	toks, err := tokenizeSchema(src)
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(toks) {
		if !strings.EqualFold(toks[i], "table") {
			return nil, fmt.Errorf("schema: expected 'table', found %q", toks[i])
		}
		i++
		if i >= len(toks) {
			return nil, fmt.Errorf("schema: expected table name after 'table'")
		}
		name := toks[i]
		i++
		if i >= len(toks) || toks[i] != "(" {
			return nil, fmt.Errorf("schema: expected '(' after table name %q", name)
		}
		i++
		var cols []Column
		for {
			if i >= len(toks) {
				return nil, fmt.Errorf("schema: unterminated column list for table %q", name)
			}
			if toks[i] == ")" {
				i++
				break
			}
			colName := toks[i]
			i++
			if i >= len(toks) {
				return nil, fmt.Errorf("schema: missing type for column %q of table %q", colName, name)
			}
			typ, err := ParseType(toks[i])
			if err != nil {
				return nil, fmt.Errorf("schema: table %q column %q: %v", name, colName, err)
			}
			i++
			cols = append(cols, Col(colName, typ))
			if i < len(toks) && toks[i] == "," {
				i++
			}
		}
		b.Table(name, cols...)
	}
	return b.Build()
}

// MustParse is Parse, panicking on error. Intended for tests and examples.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// tokenizeSchema splits schema source into identifiers and punctuation,
// dropping comments.
func tokenizeSchema(src string) ([]string, error) {
	var toks []string
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if idx := strings.Index(line, "--"); idx >= 0 {
			line = line[:idx]
		}
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		rest := line
		for rest != "" {
			r := rest[0]
			switch {
			case r == ' ' || r == '\t':
				rest = rest[1:]
			case r == '(' || r == ')' || r == ',':
				toks = append(toks, string(r))
				rest = rest[1:]
			case isIdentByte(r):
				j := 1
				for j < len(rest) && isIdentByte(rest[j]) {
					j++
				}
				toks = append(toks, rest[:j])
				rest = rest[j:]
			default:
				return nil, fmt.Errorf("schema: unexpected character %q", r)
			}
		}
	}
	return toks, nil
}

func isIdentByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}
