// Package schema defines database schemas for the rule analyzer: tables,
// typed columns, and the universe of database modification operations
// O = {(I,t), (D,t), (U,t.c)} from Section 3 of Aiken, Widom, and
// Hellerstein (SIGMOD 1992).
//
// A Schema is immutable once built; all analysis and execution components
// share one Schema value. Names are case-insensitive and canonicalized to
// lower case.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the data type of a column.
type Type int

// Column types supported by the SQL subset.
const (
	Int Type = iota
	Float
	String
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses a type name as written in schema definition files.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "int", "integer":
		return Int, nil
	case "float", "real", "double":
		return Float, nil
	case "string", "text", "char", "varchar":
		return String, nil
	case "bool", "boolean":
		return Bool, nil
	default:
		return 0, fmt.Errorf("unknown column type %q", s)
	}
}

// Column is a named, typed column of a table.
type Column struct {
	Name string
	Type Type
}

// Table is a named relation with an ordered list of columns.
type Table struct {
	Name    string
	Columns []Column

	index map[string]int // column name -> position
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.index[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool { return t.ColumnIndex(name) >= 0 }

// Column returns the column at position i.
func (t *Table) Column(i int) Column { return t.Columns[i] }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Schema is an immutable set of tables.
type Schema struct {
	tables map[string]*Table
	order  []string // table names in declaration order
}

// Builder incrementally constructs a Schema.
type Builder struct {
	s   *Schema
	err error
}

// NewBuilder returns an empty schema builder.
func NewBuilder() *Builder {
	return &Builder{s: &Schema{tables: make(map[string]*Table)}}
}

// Table adds a table with the given columns, specified as alternating
// name/type pairs via Col values.
func (b *Builder) Table(name string, cols ...Column) *Builder {
	if b.err != nil {
		return b
	}
	name = strings.ToLower(name)
	if name == "" {
		b.err = fmt.Errorf("schema: empty table name")
		return b
	}
	if _, dup := b.s.tables[name]; dup {
		b.err = fmt.Errorf("schema: duplicate table %q", name)
		return b
	}
	if len(cols) == 0 {
		b.err = fmt.Errorf("schema: table %q has no columns", name)
		return b
	}
	t := &Table{Name: name, index: make(map[string]int)}
	for _, c := range cols {
		cn := strings.ToLower(c.Name)
		if cn == "" {
			b.err = fmt.Errorf("schema: table %q has a column with an empty name", name)
			return b
		}
		if _, dup := t.index[cn]; dup {
			b.err = fmt.Errorf("schema: table %q has duplicate column %q", name, cn)
			return b
		}
		t.index[cn] = len(t.Columns)
		t.Columns = append(t.Columns, Column{Name: cn, Type: c.Type})
	}
	b.s.tables[name] = t
	b.s.order = append(b.s.order, name)
	return b
}

// Build finalizes the schema. The builder must not be reused afterwards.
func (b *Builder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.s, nil
}

// MustBuild is Build, panicking on error. Intended for tests and examples.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Col is a convenience constructor for a Column.
func Col(name string, typ Type) Column { return Column{Name: name, Type: typ} }

// Table returns the named table, or nil if it does not exist.
func (s *Schema) Table(name string) *Table { return s.tables[strings.ToLower(name)] }

// HasTable reports whether the schema contains the named table.
func (s *Schema) HasTable(name string) bool { return s.Table(name) != nil }

// TableNames returns all table names in declaration order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// NumTables returns the number of tables.
func (s *Schema) NumTables() int { return len(s.order) }

// Extend returns a new schema containing all tables of s plus the given
// extra tables. It is used to add the fictional Obs table for observable
// determinism analysis (Section 8) without mutating the original schema.
func (s *Schema) Extend(extra ...*Table) (*Schema, error) {
	b := NewBuilder()
	for _, name := range s.order {
		t := s.tables[name]
		b.Table(t.Name, t.Columns...)
	}
	for _, t := range extra {
		b.Table(t.Name, t.Columns...)
	}
	return b.Build()
}

// String renders the schema in the definition-file syntax.
func (s *Schema) String() string {
	var sb strings.Builder
	for _, name := range s.order {
		t := s.tables[name]
		sb.WriteString("table ")
		sb.WriteString(t.Name)
		sb.WriteString(" (")
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			sb.WriteByte(' ')
			sb.WriteString(c.Type.String())
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}

// SortedTables returns the tables sorted by name, for deterministic output.
func (s *Schema) SortedTables() []*Table {
	names := s.TableNames()
	sort.Strings(names)
	out := make([]*Table, len(names))
	for i, n := range names {
		out[i] = s.tables[n]
	}
	return out
}
