package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	s, err := NewBuilder().
		Table("Account", Col("ID", Int), Col("Owner", String), Col("Balance", Float)).
		Table("audit", Col("id", Int), Col("msg", String)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 2 {
		t.Fatalf("NumTables = %d, want 2", s.NumTables())
	}
	acct := s.Table("ACCOUNT") // case-insensitive lookup
	if acct == nil {
		t.Fatal("Table(ACCOUNT) = nil")
	}
	if acct.Name != "account" {
		t.Errorf("name not canonicalized: %q", acct.Name)
	}
	if got := acct.ColumnIndex("Balance"); got != 2 {
		t.Errorf("ColumnIndex(Balance) = %d, want 2", got)
	}
	if acct.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex(missing) should be -1")
	}
	if !acct.HasColumn("owner") || acct.HasColumn("nope") {
		t.Error("HasColumn wrong")
	}
	if got := s.TableNames(); got[0] != "account" || got[1] != "audit" {
		t.Errorf("TableNames = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Schema, error)
	}{
		{"duplicate table", func() (*Schema, error) {
			return NewBuilder().Table("t", Col("a", Int)).Table("T", Col("a", Int)).Build()
		}},
		{"duplicate column", func() (*Schema, error) {
			return NewBuilder().Table("t", Col("a", Int), Col("A", Int)).Build()
		}},
		{"no columns", func() (*Schema, error) {
			return NewBuilder().Table("t").Build()
		}},
		{"empty table name", func() (*Schema, error) {
			return NewBuilder().Table("", Col("a", Int)).Build()
		}},
		{"empty column name", func() (*Schema, error) {
			return NewBuilder().Table("t", Col("", Int)).Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
-- accounts and their audit trail
table account (id int, owner string, balance float, frozen bool)
# hash comments work too
table audit (
  id int,
  msg string
)
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 2 {
		t.Fatalf("NumTables = %d, want 2", s.NumTables())
	}
	if s.Table("account").Columns[3].Type != Bool {
		t.Error("frozen should be bool")
	}
	// The printed form must reparse to an equal schema.
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s.String() != s2.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", s, s2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"tabel t (a int)",
		"table t a int)",
		"table t (a int",
		"table t (a blob)",
		"table t (a)",
		"table",
		"table t (a int) garbage",
		"table t (a int, a int)",
		"table t (a int) table t (b int)",
		"table t (a int); -- semicolon unsupported",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseTypeAliases(t *testing.T) {
	for name, want := range map[string]Type{
		"int": Int, "INTEGER": Int, "float": Float, "REAL": Float,
		"double": Float, "string": String, "text": String, "varchar": String,
		"bool": Bool, "Boolean": Bool,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
}

func TestExtend(t *testing.T) {
	s := MustParse("table t (a int)")
	obs := &Table{Name: "obs", Columns: []Column{{Name: "c", Type: String}}}
	ext, err := s.Extend(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.HasTable("obs") || !ext.HasTable("t") {
		t.Error("extended schema missing tables")
	}
	if s.HasTable("obs") {
		t.Error("Extend mutated the original schema")
	}
	if _, err := s.Extend(&Table{Name: "t", Columns: []Column{{Name: "x", Type: Int}}}); err == nil {
		t.Error("Extend with duplicate table should fail")
	}
}

func TestOpConstructorsAndString(t *testing.T) {
	if got := Insert("T").String(); got != "(I,t)" {
		t.Errorf("Insert = %s", got)
	}
	if got := Delete("t").String(); got != "(D,t)" {
		t.Errorf("Delete = %s", got)
	}
	if got := Update("T", "C").String(); got != "(U,t.c)" {
		t.Errorf("Update = %s", got)
	}
}

func TestOpSetOperations(t *testing.T) {
	s := NewOpSet(Insert("a"), Delete("b"))
	if !s.Contains(Insert("a")) || s.Contains(Insert("b")) {
		t.Error("Contains wrong")
	}
	other := NewOpSet(Update("b", "x"), Delete("b"))
	if !s.Intersects(other) {
		t.Error("sets share (D,b), Intersects should be true")
	}
	if s.Intersects(NewOpSet(Update("a", "x"))) {
		t.Error("no shared op, Intersects should be false")
	}
	if !s.TouchesTable("A") || s.TouchesTable("c") {
		t.Error("TouchesTable wrong")
	}
	clone := s.Clone()
	clone.Add(Insert("z"))
	if s.Contains(Insert("z")) {
		t.Error("Clone is not independent")
	}
	s.AddAll(other)
	if s.Len() != 3 { // {(I,a), (D,b), (U,b.x)}
		t.Errorf("Len after AddAll = %d, want 3", s.Len())
	}
	if got := NewOpSet(Update("t", "c"), Insert("t")).String(); got != "{(I,t), (U,t.c)}" {
		t.Errorf("String = %s", got)
	}
	if !NewOpSet().IsEmpty() || s.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestColSetOperations(t *testing.T) {
	s := NewColSet(ColRef("T", "A"), ColRef("t", "b"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d (case canonicalization broken?)", s.Len())
	}
	if !s.Contains(ColRef("t", "a")) {
		t.Error("Contains(t.a) = false")
	}
	clone := s.Clone()
	clone.Add(ColRef("u", "x"))
	if s.Contains(ColRef("u", "x")) {
		t.Error("Clone is not independent")
	}
	s.AddAll(clone)
	if s.Len() != 3 {
		t.Errorf("Len after AddAll = %d, want 3", s.Len())
	}
	if got := s.String(); got != "{t.a, t.b, u.x}" {
		t.Errorf("String = %s", got)
	}
}

func TestUniverse(t *testing.T) {
	s := MustParse("table t (a int, b int)\ntable u (c string)")
	o := Universe(s)
	want := 2 + 2 + 2 + 1 // I/D per table + one update op per column
	if o.Len() != want {
		t.Errorf("Universe has %d ops, want %d: %s", o.Len(), want, o)
	}
	for _, op := range []Op{Insert("t"), Delete("u"), Update("t", "b"), Update("u", "c")} {
		if !o.Contains(op) {
			t.Errorf("Universe missing %s", op)
		}
	}
}

// Property: Intersects is symmetric and consistent with an explicit scan.
func TestOpSetIntersectsProperty(t *testing.T) {
	mk := func(bits uint8) OpSet {
		all := []Op{Insert("t"), Delete("t"), Update("t", "a"), Insert("u"), Delete("u"), Update("u", "b")}
		s := NewOpSet()
		for i, o := range all {
			if bits&(1<<i) != 0 {
				s.Add(o)
			}
		}
		return s
	}
	f := func(a, b uint8) bool {
		sa, sb := mk(a), mk(b)
		want := false
		for o := range sa {
			if sb.Contains(o) {
				want = true
			}
		}
		return sa.Intersects(sb) == want && sb.Intersects(sa) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sorted output is deterministic and sorted.
func TestOpSetSortedProperty(t *testing.T) {
	f := func(tables []bool) bool {
		s := NewOpSet()
		for i, ins := range tables {
			name := strings.Repeat("t", i%3+1)
			if ins {
				s.Add(Insert(name))
			} else {
				s.Add(Update(name, "c"))
			}
		}
		got := s.Sorted()
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.Table > b.Table {
				return false
			}
			if a.Table == b.Table && a.Kind > b.Kind {
				return false
			}
		}
		return len(got) == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
