package schema

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind distinguishes the three database modification operations of the
// operation universe O (Section 3): insert, delete, and column update.
type OpKind int

// The three operation kinds.
const (
	OpInsert OpKind = iota // (I, t)
	OpDelete               // (D, t)
	OpUpdate               // (U, t.c)
)

// String returns "insert", "delete", or "update".
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one element of the operation universe O: (I,t), (D,t), or (U,t.c).
// Column is empty unless Kind is OpUpdate. Ops are comparable and may be
// used as map keys.
type Op struct {
	Kind   OpKind
	Table  string
	Column string // only for OpUpdate
}

// Insert returns the operation (I, t).
func Insert(table string) Op { return Op{Kind: OpInsert, Table: strings.ToLower(table)} }

// Delete returns the operation (D, t).
func Delete(table string) Op { return Op{Kind: OpDelete, Table: strings.ToLower(table)} }

// Update returns the operation (U, t.c).
func Update(table, column string) Op {
	return Op{Kind: OpUpdate, Table: strings.ToLower(table), Column: strings.ToLower(column)}
}

// String renders the op as in the paper: "(I,t)", "(D,t)", or "(U,t.c)".
func (o Op) String() string {
	switch o.Kind {
	case OpInsert:
		return "(I," + o.Table + ")"
	case OpDelete:
		return "(D," + o.Table + ")"
	case OpUpdate:
		return "(U," + o.Table + "." + o.Column + ")"
	default:
		return fmt.Sprintf("(?%d,%s)", int(o.Kind), o.Table)
	}
}

// OpSet is a set of operations. The zero value is an empty, usable set for
// reads; use NewOpSet or Add for writes.
type OpSet map[Op]struct{}

// NewOpSet returns a set containing the given operations.
func NewOpSet(ops ...Op) OpSet {
	s := make(OpSet, len(ops))
	for _, o := range ops {
		s[o] = struct{}{}
	}
	return s
}

// Add inserts op into the set.
func (s OpSet) Add(op Op) { s[op] = struct{}{} }

// AddAll inserts every operation of other into the set.
func (s OpSet) AddAll(other OpSet) {
	for o := range other {
		s[o] = struct{}{}
	}
}

// Contains reports whether op is in the set.
func (s OpSet) Contains(op Op) bool {
	_, ok := s[op]
	return ok
}

// Intersects reports whether the two sets share any operation.
func (s OpSet) Intersects(other OpSet) bool {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	for o := range small {
		if _, ok := large[o]; ok {
			return true
		}
	}
	return false
}

// TouchesTable reports whether any operation in the set refers to table t.
func (s OpSet) TouchesTable(t string) bool {
	t = strings.ToLower(t)
	for o := range s {
		if o.Table == t {
			return true
		}
	}
	return false
}

// Len returns the number of operations in the set.
func (s OpSet) Len() int { return len(s) }

// IsEmpty reports whether the set has no operations.
func (s OpSet) IsEmpty() bool { return len(s) == 0 }

// Clone returns an independent copy of the set.
func (s OpSet) Clone() OpSet {
	out := make(OpSet, len(s))
	for o := range s {
		out[o] = struct{}{}
	}
	return out
}

// Sorted returns the operations in a deterministic order (by table, kind,
// column), for stable reports and tests.
func (s OpSet) Sorted() []Op {
	out := make([]Op, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Column < b.Column
	})
	return out
}

// String renders the set as "{(I,t), (U,t.c)}" in deterministic order.
func (s OpSet) String() string {
	ops := s.Sorted()
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ColumnRef identifies a column t.c in the set C of Section 3. ColumnRefs
// are comparable and may be used as map keys.
type ColumnRef struct {
	Table  string
	Column string
}

// ColRef constructs a ColumnRef with canonicalized names.
func ColRef(table, column string) ColumnRef {
	return ColumnRef{Table: strings.ToLower(table), Column: strings.ToLower(column)}
}

// String renders the reference as "t.c".
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// ColSet is a set of column references (the Reads sets of Section 3).
type ColSet map[ColumnRef]struct{}

// NewColSet returns a set containing the given column references.
func NewColSet(refs ...ColumnRef) ColSet {
	s := make(ColSet, len(refs))
	for _, r := range refs {
		s[r] = struct{}{}
	}
	return s
}

// Add inserts ref into the set.
func (s ColSet) Add(ref ColumnRef) { s[ref] = struct{}{} }

// AddAll inserts every reference of other into the set.
func (s ColSet) AddAll(other ColSet) {
	for r := range other {
		s[r] = struct{}{}
	}
}

// Contains reports whether ref is in the set.
func (s ColSet) Contains(ref ColumnRef) bool {
	_, ok := s[ref]
	return ok
}

// Len returns the number of references in the set.
func (s ColSet) Len() int { return len(s) }

// Clone returns an independent copy of the set.
func (s ColSet) Clone() ColSet {
	out := make(ColSet, len(s))
	for r := range s {
		out[r] = struct{}{}
	}
	return out
}

// Sorted returns the references sorted by table then column.
func (s ColSet) Sorted() []ColumnRef {
	out := make([]ColumnRef, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// String renders the set as "{t.a, t.b}" in deterministic order.
func (s ColSet) String() string {
	refs := s.Sorted()
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Universe returns the full operation universe O for the schema:
// insertions and deletions for every table and updates for every column.
func Universe(s *Schema) OpSet {
	out := NewOpSet()
	for _, name := range s.TableNames() {
		out.Add(Insert(name))
		out.Add(Delete(name))
		for _, c := range s.Table(name).Columns {
			out.Add(Update(name, c.Name))
		}
	}
	return out
}
