package compile

import (
	"math/bits"
	"strings"

	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/transition"
)

// Delta-driven triggering (the RETE/discrimination-network idea,
// specialized to Starburst's set-oriented transitions): instead of
// re-asking every rule "has your table changed since your mark?" on
// every step, the engine maintains a candidate bitset that a mutation
// updates directly. The index is keyed on (table, op kind) — exactly
// the granularity at which transition.Log records primitives — and a
// rule appears under every key that could contribute an operation in
// its Triggered-By set. Candidate bits over-approximate triggering:
// the engine still evaluates the exact transition predicate against
// the net effect before considering a rule, so a stale bit costs one
// (cheap, table-restricted) net computation and is then cleared; a
// missing bit would be a soundness bug, which DESIGN.md §11 argues
// cannot happen and the differential battery cross-checks.

// tableKind is one discrimination-network key.
type tableKind struct {
	table string
	kind  transition.Kind
}

// Matcher is the immutable discrimination network for one rule set:
// which rules watch which (table, kind) keys. It is shared by every
// engine (and engine clone) running that set.
type Matcher struct {
	n     int                 // number of rules
	watch map[tableKind][]int // key -> watching rule indices, ascending
	kinds [][]transition.Kind // per rule: watched kinds, deduplicated
	table []string            // per rule: its (lowercased) table
}

// NewMatcher builds the discrimination network for a rule set.
func NewMatcher(set *rules.Set) *Matcher {
	rs := set.Rules()
	m := &Matcher{
		n:     len(rs),
		watch: make(map[tableKind][]int),
		kinds: make([][]transition.Kind, len(rs)),
		table: make([]string, len(rs)),
	}
	for i, r := range rs {
		var seen [3]bool
		for _, op := range r.TriggeredBy().Sorted() {
			k := opKindToKind(op.Kind)
			if seen[k] {
				continue
			}
			seen[k] = true
			m.kinds[i] = append(m.kinds[i], k)
			key := tableKind{table: op.Table, kind: k}
			m.watch[key] = append(m.watch[key], i)
			m.table[i] = op.Table
		}
	}
	return m
}

func opKindToKind(k schema.OpKind) transition.Kind {
	switch k {
	case schema.OpInsert:
		return transition.KindInsert
	case schema.OpDelete:
		return transition.KindDelete
	default:
		return transition.KindUpdate
	}
}

// Candidates is one engine's mutable candidate bitset over the rules of
// a Matcher. The engine sets bits through Note as mutations are
// recorded, scans them in rule-definition order, and clears a bit once
// the log proves the rule cannot be triggered at its current mark.
type Candidates struct {
	m    *Matcher
	bits []uint64
}

// NewCandidates returns an all-clear candidate set for the matcher.
func (m *Matcher) NewCandidates() *Candidates {
	return &Candidates{m: m, bits: make([]uint64, (m.n+63)/64)}
}

// Note marks every rule watching (table, kind) as a trigger candidate.
func (c *Candidates) Note(table string, kind transition.Kind) {
	// ToLower returns its argument unchanged (no allocation) for the
	// already-lowercase names rule text normally uses.
	key := tableKind{table: strings.ToLower(table), kind: kind}
	for _, i := range c.m.watch[key] {
		c.bits[i>>6] |= 1 << (uint(i) & 63)
	}
}

// Has reports whether rule i is a candidate.
func (c *Candidates) Has(i int) bool {
	return c.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Clear drops rule i from the candidate set.
func (c *Candidates) Clear(i int) {
	c.bits[i>>6] &^= 1 << (uint(i) & 63)
}

// Reset drops every candidate (assertion boundaries: commit, rollback).
func (c *Candidates) Reset() {
	for i := range c.bits {
		c.bits[i] = 0
	}
}

// ForEach visits the candidate rules in ascending index order — the
// rule-definition order TriggeredRules must preserve. fn may Clear the
// index it is visiting.
func (c *Candidates) ForEach(fn func(i int)) {
	for w, word := range c.bits {
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(base + b)
		}
	}
}

// Clone returns an independent copy sharing the immutable matcher; the
// execution-graph explorer forks engines this way.
func (c *Candidates) Clone() *Candidates {
	nc := &Candidates{m: c.m, bits: make([]uint64, len(c.bits))}
	copy(nc.bits, c.bits)
	return nc
}

// StaleAt reports whether candidate rule i is provably stale: no entry
// of a kind it watches remains in the log at or after mark, so its
// transition predicate cannot hold and the bit may be cleared. This is
// the per-kind refinement of the engine's LastTouch short-circuit.
func (c *Candidates) StaleAt(i int, log *transition.Log, mark int) bool {
	for _, k := range c.m.kinds[i] {
		if log.LastTouchKind(c.m.table[i], k) >= mark {
			return false
		}
	}
	return true
}

// Rebuild recomputes the candidate set from scratch as the exact
// fixpoint of the lazy-clearing rule: rule i is a candidate iff some
// watched kind touched its table at or after marks[i]. The incremental
// path maintains a superset of this (bits are cleared lazily); tests
// drive both paths and compare observable behavior.
func (c *Candidates) Rebuild(log *transition.Log, marks []int) {
	c.Reset()
	for i := 0; i < c.m.n; i++ {
		if !c.StaleAt(i, log, marks[i]) {
			c.bits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}
