package compile

// FuzzCompileEval is the differential fuzzer for the compiled hot
// path: any input the parser, resolver, and typechecker all accept must
// evaluate identically — result, error message, and resulting database
// state — under the interpreter and the compiler. The corpus under
// testdata/fuzz/FuzzCompileEval seeds both bare expressions (adapted
// from sqlmini's FuzzEvalExpr corpus) and full statements, including
// transition-table references.

import (
	"reflect"
	"testing"

	"activerules/internal/sqlmini"
)

func FuzzCompileEval(f *testing.F) {
	for _, seed := range []string{
		// Bare expressions (wrapped in a FROM-less select below).
		"1 + 2 * 3", "null and true", "not (1 = 2)", "1 / 0",
		"'a' < 'b'", "3 in (1, null, 3)", "-(-(-1))", "true or null",
		"1 is null", "2 % 0", "null < null",
		// Full statements over the fuzz schema (tables t and u).
		"select a, b from t where b > 5 order by a desc limit 2",
		"select distinct s from t where bl or b is null",
		"select s, count(*), sum(b) from t group by s having count(*) > 0 order by s",
		"select a from t where exists (select 1 from u where u.a = t.a)",
		"select (select v from u where u.a = t.a) from t order by a",
		"select * from t x, u y where x.a = y.a",
		"insert into u select a, b from t where b is not null",
		"update u set v = v + 1 where a in (select a from t where bl)",
		"delete from u where v / a > 10",
		"select a from inserted where b > (select min(v) from u)",
		"select n.b - o.b from new-updated n, old-updated o where n.a = o.a",
		"rollback",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := parseForFuzz(src)
		if err != nil {
			return
		}
		sch := testSchema(t)
		rc := &sqlmini.ResolveContext{Schema: sch, RuleTable: "t"}
		if err := sqlmini.ResolveStatement(st, rc); err != nil {
			return
		}
		if err := sqlmini.CheckStatement(st, sch); err != nil {
			return
		}

		// Interpreter run (the oracle) on its own database copy.
		idb := seedDB(t, sch)
		ev := &sqlmini.Evaluator{DB: idb, Trans: testTrans(), Mut: sqlmini.DirectMutator(idb)}
		ir, ierr := ev.Exec(st)

		// Compiled run; the AST must be re-parsed because resolution
		// annotates it in place and both runs must start equal.
		st2, err := parseForFuzz(src)
		if err != nil {
			t.Fatalf("re-parse of accepted input failed: %v", err)
		}
		if err := sqlmini.ResolveStatement(st2, rc); err != nil {
			t.Fatalf("re-resolve of accepted input failed: %v", err)
		}
		c := &compiler{sch: sch}
		fn, err := c.compileStatement(st2)
		if err != nil {
			// Unsupported unit: Program falls back to the interpreter
			// wholesale, so there is nothing to diverge. (The shipped
			// examples pin zero fallbacks separately.)
			return
		}
		cdb := seedDB(t, sch)
		env := &Env{DB: cdb, Trans: testTrans(), Mut: sqlmini.DirectMutator(cdb)}
		env.ensure(c.nSlots)
		cr, cerr := fn(env)

		switch {
		case ierr != nil && cerr != nil:
			if ierr.Error() != cerr.Error() {
				t.Fatalf("%q: error mismatch\n interp:   %v\n compiled: %v", src, ierr, cerr)
			}
		case ierr != nil || cerr != nil:
			t.Fatalf("%q: error disagreement\n interp:   %v\n compiled: %v", src, ierr, cerr)
		default:
			if !reflect.DeepEqual(ir, cr) {
				t.Fatalf("%q: result mismatch\n interp:   %+v\n compiled: %+v", src, ir, cr)
			}
		}
		if idb.String() != cdb.String() {
			t.Fatalf("%q: database mismatch\n interp:\n%s compiled:\n%s", src, idb.String(), cdb.String())
		}
	})
}

// parseForFuzz accepts either a full statement or a bare expression
// (wrapped into a FROM-less single-item select), mirroring the two seed
// populations of the corpus.
func parseForFuzz(src string) (sqlmini.Statement, error) {
	st, serr := sqlmini.ParseStatement(src)
	if serr == nil {
		return st, nil
	}
	e, eerr := sqlmini.ParseExpr(src)
	if eerr != nil {
		return nil, serr
	}
	return &sqlmini.Select{Items: []sqlmini.SelectItem{{Expr: e}}}, nil
}
