package compile

// White-box unit tests for the compiled hot path. The differential
// battery at the repo root (compile_differential_test.go) is the
// system-level equivalence check; these tests pin the pieces in
// isolation: the discrimination network's bookkeeping, the statement
// compiler's value-level agreement with the interpreter, and the
// zero-fallback guarantee on the shipped example rule sets.

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/sqlmini"
	"activerules/internal/storage"
	"activerules/internal/transition"
)

// testSchema builds the schema the statement-equivalence cases run
// against: one table exercising every column type, one companion table
// for joins and subqueries.
func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.Parse(`
table t (a int, b int, s string, f float, bl bool)
table u (a int, v int)
`)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// seedDB returns a freshly populated database; each mode of a
// differential case gets its own copy so mutations cannot leak.
func seedDB(t testing.TB, sch *schema.Schema) *storage.DB {
	t.Helper()
	db := storage.NewDB(sch)
	null := storage.Value{Kind: storage.KindNull}
	rows := [][]storage.Value{
		{storage.IntV(1), storage.IntV(10), storage.StringV("x"), storage.FloatV(1.5), storage.BoolV(true)},
		{storage.IntV(2), storage.IntV(20), storage.StringV("y"), storage.FloatV(2.5), storage.BoolV(false)},
		{storage.IntV(3), null, storage.StringV("x"), null, storage.BoolV(true)},
		{storage.IntV(4), storage.IntV(20), null, storage.FloatV(0), null},
	}
	for _, r := range rows {
		db.MustInsert("t", r...)
	}
	db.MustInsert("u", storage.IntV(1), storage.IntV(100))
	db.MustInsert("u", storage.IntV(2), storage.IntV(200))
	db.MustInsert("u", storage.IntV(3), storage.IntV(100))
	return db
}

// testTrans is the transition the rule-context cases see.
func testTrans() *sqlmini.TransitionData {
	return &sqlmini.TransitionData{
		Inserted: [][]storage.Value{
			{storage.IntV(9), storage.IntV(90), storage.StringV("n"), storage.FloatV(9.5), storage.BoolV(true)},
		},
		Deleted: [][]storage.Value{
			{storage.IntV(8), storage.IntV(80), storage.StringV("d"), storage.FloatV(8.5), storage.BoolV(false)},
		},
		OldUpdated: [][]storage.Value{
			{storage.IntV(7), storage.IntV(70), storage.StringV("o"), storage.FloatV(7.5), storage.BoolV(true)},
		},
		NewUpdated: [][]storage.Value{
			{storage.IntV(7), storage.IntV(71), storage.StringV("o"), storage.FloatV(7.6), storage.BoolV(true)},
		},
	}
}

// runBoth executes src through the interpreter and the compiler against
// independent copies of the seeded database and reports both outcomes.
func runBoth(t *testing.T, src string, inRule bool) (ir, cr sqlmini.StmtResult, ierr, cerr error, idb, cdb *storage.DB) {
	t.Helper()
	sch := testSchema(t)
	rc := &sqlmini.ResolveContext{Schema: sch}
	if inRule {
		rc.RuleTable = "t"
	}

	parse := func() sqlmini.Statement {
		st, err := sqlmini.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := sqlmini.ResolveStatement(st, rc); err != nil {
			t.Fatalf("resolve %q: %v", src, err)
		}
		if err := sqlmini.CheckStatement(st, sch); err != nil {
			t.Fatalf("check %q: %v", src, err)
		}
		return st
	}

	idb = seedDB(t, sch)
	ev := &sqlmini.Evaluator{DB: idb, Trans: testTrans(), Mut: sqlmini.DirectMutator(idb)}
	ir, ierr = ev.Exec(parse())

	cdb = seedDB(t, sch)
	c := &compiler{sch: sch}
	fn, err := c.compileStatement(parse())
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	env := &Env{DB: cdb, Trans: testTrans(), Mut: sqlmini.DirectMutator(cdb)}
	env.ensure(c.nSlots)
	cr, cerr = fn(env)
	return
}

// assertAgree requires the two modes to agree on result, error, and
// final database state.
func assertAgree(t *testing.T, src string, ir, cr sqlmini.StmtResult, ierr, cerr error, idb, cdb *storage.DB) {
	t.Helper()
	switch {
	case ierr != nil && cerr != nil:
		if ierr.Error() != cerr.Error() {
			t.Errorf("%q: error mismatch\n interp:   %v\n compiled: %v", src, ierr, cerr)
		}
	case ierr != nil || cerr != nil:
		t.Errorf("%q: error disagreement\n interp:   %v\n compiled: %v", src, ierr, cerr)
	default:
		if !reflect.DeepEqual(ir, cr) {
			t.Errorf("%q: result mismatch\n interp:   %+v\n compiled: %+v", src, ir, cr)
		}
	}
	if idb.String() != cdb.String() {
		t.Errorf("%q: final database mismatch\n interp:\n%s compiled:\n%s", src, idb.String(), cdb.String())
	}
}

func TestStatementEquivalence(t *testing.T) {
	cases := []string{
		// Plain selects: projection, WHERE, ORDER BY, LIMIT, DISTINCT.
		"select a, b from t",
		"select a from t where b = 20",
		"select a, b from t order by b desc, a",
		"select a from t order by a desc limit 2",
		"select distinct s from t",
		"select distinct b from t order by b",
		"select 1 + 2, 'k'", // no FROM
		// Star expansion, multi-table FROM, aliases.
		"select * from t where a = 1",
		"select t.a, u.v from t, u where t.a = u.a order by t.a",
		"select * from t x, u y where x.a = y.a and y.v = 100 order by x.a",
		// Subqueries: EXISTS, IN, scalar, correlation.
		"select a from t where exists (select 1 from u where u.a = t.a and u.v > 150)",
		"select a from t where a in (select a from u where v = 100) order by a",
		"select a from t where b in (10, 20) order by a",
		"select a from t where b not in (10, 30) order by a",
		"select a, (select v from u where u.a = t.a) from t order by a",
		"select (select v from u where v > 50 and a < 3) from t where a = 1", // scalar: 2 rows -> error
		"select (select v from u where v > 999) from t where a = 1",          // scalar: 0 rows -> null
		// Aggregates and grouping.
		"select count(*) from t",
		"select count(b), sum(b), min(b), max(b) from t",
		"select avg(b) from t",
		"select avg(f) from t",
		"select s, count(*) from t group by s order by s",
		"select s, sum(b) from t group by s having count(*) > 1 order by s",
		"select b, count(*) from t group by b order by b",
		"select min(s), max(s) from t",
		"select sum(b) from t where a > 99", // empty input
		"select count(*) from t where bl",
		// Arithmetic, three-valued logic, errors.
		"select a + b, a - b, a * 2 from t where a = 1",
		"select b / a from t order by a",
		"select a / 0 from t where a = 1",
		"select a % 3 from t order by a",
		"select f / 2.0 from t where a = 2",
		"select a from t where b + 1 > 10 order by a",
		"select a from t where not (bl)",
		"select a from t where bl and b > 5 order by a",
		"select a from t where bl or b > 15 order by a",
		"select a from t where b is null",
		"select a from t where s is not null order by a",
		"select a from t where s = 'x' order by a",
		"select -a, -f from t where a = 1",
		// ORDER BY across an incomparable pair errors.
		"select a from t order by s", // null s vs strings: nulls sort, fine
		"select s from t order by s desc",
		// Mutations.
		"insert into u values (9, 900)",
		"insert into u (a) values (5)",
		"insert into u select a, b from t where b is not null",
		"delete from u where v = 100",
		"delete from u where a in (select a from t where bl)",
		"update u set v = v + 1 where a > 1",
		"update u set v = (select b from t where t.a = u.a) where a < 3",
		"update t set b = 0, s = 'z' where a = 4",
		"rollback",
	}
	for _, src := range cases {
		src := src
		t.Run(src, func(t *testing.T) {
			ir, cr, ierr, cerr, idb, cdb := runBoth(t, src, false)
			assertAgree(t, src, ir, cr, ierr, cerr, idb, cdb)
		})
	}
}

func TestStatementEquivalenceTransitionTables(t *testing.T) {
	cases := []string{
		"select a, b from inserted",
		"select a from deleted",
		"select n.b - o.b from new-updated n, old-updated o where n.a = o.a",
		"select a from t where exists (select 1 from inserted where inserted.b > t.b)",
		"insert into u select a, b from inserted",
		"delete from u where a in (select a from deleted)",
		"update u set v = 0 where a in (select a from new-updated)",
		"select count(*) from inserted",
	}
	for _, src := range cases {
		src := src
		t.Run(src, func(t *testing.T) {
			ir, cr, ierr, cerr, idb, cdb := runBoth(t, src, true)
			assertAgree(t, src, ir, cr, ierr, cerr, idb, cdb)
		})
	}
}

// TestShortCircuitLegality pins the static-totality rule: AND/OR may
// skip their right operand only when it provably cannot error. The
// interpreter always evaluates both operands, so any case where the
// compiled path skipped an erroring operand would diverge here.
func TestShortCircuitLegality(t *testing.T) {
	cases := []string{
		// Right side errors (division by zero): the interpreter errors
		// even though the left side already decides the truth value, so
		// the compiled path must not short-circuit.
		"select a from t where a = 99 and b / 0 > 1",
		"select a from t where a = 1 or b / 0 > 1",
		// Right side is total: short-circuiting is legal and must agree.
		"select a from t where a = 99 and b > 5",
		"select a from t where a = 1 or b > 5 order by a",
		// Null operands drive the Kleene cases.
		"select a from t where b is null and bl",
		"select a from t where bl or b is null order by a",
	}
	for _, src := range cases {
		src := src
		t.Run(src, func(t *testing.T) {
			ir, cr, ierr, cerr, idb, cdb := runBoth(t, src, false)
			assertAgree(t, src, ir, cr, ierr, cerr, idb, cdb)
		})
	}
}

// loadExample compiles one shipped example rule set.
func loadExample(t *testing.T, dir string) *rules.Set {
	t.Helper()
	schemaSrc, err := os.ReadFile("../../testdata/" + dir + "/schema.sdl")
	if err != nil {
		t.Fatal(err)
	}
	rulesSrc, err := os.ReadFile("../../testdata/" + dir + "/rules.srl")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := schema.Parse(string(schemaSrc))
	if err != nil {
		t.Fatal(err)
	}
	defs, err := ruledef.Parse(string(rulesSrc))
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestExamplesCompileWithoutFallback: every shipped example rule set
// must compile every condition and statement natively — zero
// interpreter fallbacks — so the benchmark numbers measure the compiled
// path, not a silent interpreter detour.
func TestExamplesCompileWithoutFallback(t *testing.T) {
	for _, dir := range []string{"bank", "powernet", "lintdemo"} {
		t.Run(dir, func(t *testing.T) {
			set := loadExample(t, dir)
			p := Compile(set)
			if n := p.Fallbacks(); n != 0 {
				t.Errorf("%s: %d interpreter fallbacks, want 0", dir, n)
			}
		})
	}
}

// TestProgramMemoized: For returns the same Program for the same set.
func TestProgramMemoized(t *testing.T) {
	set := loadExample(t, "bank")
	if For(set) != For(set) {
		t.Error("For(set) not memoized")
	}
}

func TestMatcherWatchKeys(t *testing.T) {
	set := loadExample(t, "bank")
	m := NewMatcher(set)
	c := m.NewCandidates()

	// r_audit (inserted on account), r_hold (updated on account),
	// r_purge (deleted on account) — rule order is definition order.
	c.Note("account", transition.KindInsert)
	if !c.Has(0) || c.Has(1) || c.Has(2) {
		t.Errorf("insert on account: got bits %v %v %v, want only rule 0", c.Has(0), c.Has(1), c.Has(2))
	}
	c.Note("ACCOUNT", transition.KindUpdate) // case-insensitive
	if !c.Has(1) {
		t.Error("update on ACCOUNT did not mark r_hold")
	}
	c.Note("account", transition.KindDelete)
	if !c.Has(2) {
		t.Error("delete on account did not mark r_purge")
	}
	c.Note("holds", transition.KindInsert) // nobody watches holds
	var got []int
	c.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("ForEach order = %v, want [0 1 2]", got)
	}

	c.Clear(1)
	if c.Has(1) {
		t.Error("Clear(1) left the bit set")
	}
	cl := c.Clone()
	c.Reset()
	if c.Has(0) || !cl.Has(0) {
		t.Error("Reset leaked into the clone (or failed)")
	}
}

// TestCandidatesWideSet crosses the 64-bit word boundary.
func TestCandidatesWideSet(t *testing.T) {
	sch, err := schema.Parse("table a (v int)\ntable b (v int)")
	if err != nil {
		t.Fatal(err)
	}
	var defs []rules.Definition
	for i := 0; i < 130; i++ {
		tbl := "a"
		if i%2 == 1 {
			tbl = "b"
		}
		defs = append(defs, rules.Definition{
			Name:     fmt.Sprintf("r%03d", i),
			Table:    tbl,
			Triggers: []rules.TriggerSpec{{Kind: schema.OpInsert}},
			Action:   []string{"select v from " + tbl},
		})
	}
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewMatcher(set).NewCandidates()
	c.Note("a", transition.KindInsert)
	var got []int
	c.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 65 {
		t.Fatalf("%d candidates, want 65 (every even rule of 130)", len(got))
	}
	for k, i := range got {
		if i != 2*k {
			t.Fatalf("candidate %d = rule %d, want %d (ascending evens)", k, i, 2*k)
		}
	}
}

// TestStaleAtAndRebuild drives a transition log and checks that lazy
// clearing (StaleAt) and the from-scratch Rebuild agree on the fixpoint.
func TestStaleAtAndRebuild(t *testing.T) {
	set := loadExample(t, "bank")
	m := NewMatcher(set)
	c := m.NewCandidates()
	sch := set.Schema()
	db := storage.NewDB(sch)
	log := &transition.Log{}

	// An insert into account at position 0.
	id := db.MustInsert("account", storage.IntV(1), storage.StringV("ann"), storage.IntV(5))
	log.RecordInsert("account", id)
	c.Note("account", transition.KindInsert)

	marks := []int{0, 0, 0}
	if c.StaleAt(0, log, 0) {
		t.Error("r_audit stale at mark 0 despite a live insert")
	}
	if !c.StaleAt(0, log, log.Mark()) {
		t.Error("r_audit not stale past the end of the log")
	}
	// r_hold watches updates only; the insert must leave it stale.
	if !c.StaleAt(1, log, 0) {
		t.Error("r_hold (update-only) not stale after an insert")
	}

	// Rebuild must equal the tight fixpoint: only rule 0 at marks 0.
	r := m.NewCandidates()
	r.Rebuild(log, marks)
	for i := 0; i < 3; i++ {
		want := i == 0
		if r.Has(i) != want {
			t.Errorf("Rebuild bit %d = %v, want %v", i, r.Has(i), want)
		}
	}
	// And the incremental set is a superset of the rebuilt one.
	r.ForEach(func(i int) {
		if !c.Has(i) {
			t.Errorf("incremental set missing rebuilt candidate %d", i)
		}
	})
}

// TestConditionEquivalence compares Program.EvalCondition against the
// interpreter's EvalPredicate on rule conditions over a live transition.
func TestConditionEquivalence(t *testing.T) {
	sch := testSchema(t)
	conds := []string{
		"exists (select 1 from inserted where b > 50)",
		"exists (select 1 from t where b is null)",
		"(select count(*) from inserted) > 0",
		"(select max(b) from t) >= 20",
		"not exists (select 1 from deleted where a = 99)",
		"1 = 1 and exists (select 1 from new-updated)",
	}
	db := seedDB(t, sch)
	td := testTrans()
	for _, cond := range conds {
		cond := cond
		t.Run(cond, func(t *testing.T) {
			defs := []rules.Definition{{
				Name:      "r0",
				Table:     "t",
				Triggers:  []rules.TriggerSpec{{Kind: schema.OpInsert}, {Kind: schema.OpDelete}, {Kind: schema.OpUpdate}},
				Condition: cond,
				Action:    []string{"select a from t"},
			}}
			set, err := rules.NewSet(sch, defs)
			if err != nil {
				t.Fatal(err)
			}
			p := Compile(set)
			if p.Fallbacks() != 0 {
				t.Fatalf("condition %q fell back to the interpreter", cond)
			}
			got, gerr := p.EvalCondition(0, &Env{DB: db, Trans: td})
			ev := &sqlmini.Evaluator{DB: db, Trans: td}
			want, werr := ev.EvalPredicate(set.Rules()[0].Condition)
			if (gerr == nil) != (werr == nil) || got != want {
				t.Errorf("condition %q: compiled (%v, %v) vs interpreted (%v, %v)", cond, got, gerr, want, werr)
			}
		})
	}
}
