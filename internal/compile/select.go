package compile

import (
	"fmt"
	"sort"

	"activerules/internal/sqlmini"
	"activerules/internal/storage"
)

// The compiled query machinery mirrors the interpreter's evalSelect /
// exec* structure statement-for-statement: materialize sources once,
// nested-loop join with the WHERE applied at the innermost level,
// then grouping / aggregates / ORDER BY / DISTINCT / LIMIT in the
// same order, with every value-level decision delegated to sqlmini's
// shared semantics helpers. The difference is purely in binding: a
// match is a snapshot of the block's statically assigned slots
// instead of a linked frame chain.

// matchSnap is one join match: the row bound to each FROM item of the
// block, in FROM order. A nil snapshot (the no-FROM query form) leaves
// the outer bindings untouched.
type matchSnap [][]storage.Value

// srcFn materializes the rows of one FROM item.
type srcFn func(env *Env) ([][]storage.Value, error)

func (c *compiler) compileSource(tr *sqlmini.TableRef) srcFn {
	if tr.Trans != sqlmini.TransNone {
		kind := tr.Trans
		return func(env *Env) ([][]storage.Value, error) {
			return env.Trans.Rows(kind), nil
		}
	}
	table := tr.RTable
	return func(env *Env) ([][]storage.Value, error) {
		t := env.DB.Table(table)
		if t == nil {
			return nil, fmt.Errorf("sql: missing table %q", table)
		}
		rows := make([][]storage.Value, 0, t.Len())
		t.Scan(func(tu *storage.Tuple) bool {
			row := make([]storage.Value, len(tu.Vals))
			copy(row, tu.Vals)
			rows = append(rows, row)
			return true
		})
		return rows, nil
	}
}

// compiledSelect carries the pieces of one compiled query block.
type compiledSelect struct {
	srcs    []srcFn
	base    int // first slot of this block's FROM bindings
	where   *exprC
	star    bool
	items   []exprFn
	orderBy []exprFn
	desc    []bool
	groupBy []exprFn
	// Grouped/aggregate forms evaluate items, HAVING, and ORDER BY
	// keys in group context.
	gItems   []groupFn
	gHaving  groupFn
	gOrder   []groupFn
	aggs     []aggFn // non-grouped aggregate query form
	distinct bool
	limit    int
}

// groupFn evaluates an expression in group context (aggregates over
// the members, everything else over the representative match).
type groupFn func(env *Env, rep matchSnap, members []matchSnap) (storage.Value, error)

// aggFn evaluates one aggregate over a set of matches.
type aggFn func(env *Env, matches []matchSnap) (storage.Value, error)

// restore rebinds a block's slots to one match.
func (cs *compiledSelect) restore(env *Env, m matchSnap) {
	for j, row := range m {
		env.Slots[cs.base+j] = row
	}
}

func (c *compiler) compileSelect(s *sqlmini.Select) (selFn, error) {
	cs := &compiledSelect{
		base:     len(c.stack),
		star:     len(s.Items) == 1 && s.Items[0].Expr == nil,
		distinct: s.Distinct,
		limit:    s.Limit,
		desc:     make([]bool, len(s.OrderBy)),
	}
	cs.srcs = make([]srcFn, len(s.From))
	for i, tr := range s.From {
		cs.srcs[i] = c.compileSource(tr)
		c.push(tr.EffectiveAlias())
	}
	defer c.pop(len(s.From))

	if s.Where != nil {
		w, err := c.compileExpr(s.Where)
		if err != nil {
			return nil, err
		}
		cs.where = &w
	}
	for i, o := range s.OrderBy {
		cs.desc[i] = o.Desc
	}

	switch {
	case len(s.GroupBy) > 0:
		for _, g := range s.GroupBy {
			gc, err := c.compileExpr(g)
			if err != nil {
				return nil, err
			}
			cs.groupBy = append(cs.groupBy, gc.fn)
		}
		for _, it := range s.Items {
			gf, err := c.compileGroupExpr(cs, it.Expr)
			if err != nil {
				return nil, err
			}
			cs.gItems = append(cs.gItems, gf)
		}
		if s.Having != nil {
			gf, err := c.compileGroupExpr(cs, s.Having)
			if err != nil {
				return nil, err
			}
			cs.gHaving = gf
		}
		for _, o := range s.OrderBy {
			gf, err := c.compileGroupExpr(cs, o.Expr)
			if err != nil {
				return nil, err
			}
			cs.gOrder = append(cs.gOrder, gf)
		}
		return cs.runGrouped, nil

	case sqlmini.HasAggregateItems(s):
		for _, it := range s.Items {
			agg, ok := it.Expr.(*sqlmini.Aggregate)
			if !ok {
				return nil, errUnsupported{what: "mixed aggregate select list"}
			}
			af, err := c.compileAggregate(cs, agg)
			if err != nil {
				return nil, err
			}
			cs.aggs = append(cs.aggs, af)
		}
		return cs.runAggregate, nil

	default:
		if !cs.star {
			for _, it := range s.Items {
				ic, err := c.compileExpr(it.Expr)
				if err != nil {
					return nil, err
				}
				cs.items = append(cs.items, ic.fn)
			}
		}
		for _, o := range s.OrderBy {
			oc, err := c.compileExpr(o.Expr)
			if err != nil {
				return nil, err
			}
			cs.orderBy = append(cs.orderBy, oc.fn)
		}
		return cs.runPlain, nil
	}
}

func (c *compiler) compileAggregate(cs *compiledSelect, agg *sqlmini.Aggregate) (aggFn, error) {
	if agg.Func == "count" && agg.Arg == nil {
		return func(_ *Env, matches []matchSnap) (storage.Value, error) {
			return storage.IntV(int64(len(matches))), nil
		}, nil
	}
	ac, err := c.compileExpr(agg.Arg)
	if err != nil {
		return nil, err
	}
	fn := agg.Func
	argFn := ac.fn
	return func(env *Env, matches []matchSnap) (storage.Value, error) {
		var vals []storage.Value
		for _, m := range matches {
			cs.restore(env, m)
			v, err := argFn(env)
			if err != nil {
				return storage.Value{}, err
			}
			if !v.IsNull() {
				vals = append(vals, v)
			}
		}
		return sqlmini.FoldAggregate(fn, vals)
	}, nil
}

// compileGroupExpr mirrors the interpreter's evalGroupExpr: aggregates
// go over the group's members, composite nodes recurse, and leaves are
// evaluated over the representative match.
func (c *compiler) compileGroupExpr(cs *compiledSelect, e sqlmini.Expr) (groupFn, error) {
	switch x := e.(type) {
	case *sqlmini.Aggregate:
		af, err := c.compileAggregate(cs, x)
		if err != nil {
			return nil, err
		}
		return func(env *Env, _ matchSnap, members []matchSnap) (storage.Value, error) {
			return af(env, members)
		}, nil
	case *sqlmini.Unary:
		sub, err := c.compileGroupExpr(cs, x.X)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(env *Env, rep matchSnap, members []matchSnap) (storage.Value, error) {
			v, err := sub(env, rep, members)
			if err != nil {
				return storage.Value{}, err
			}
			return sqlmini.ApplyUnary(op, v)
		}, nil
	case *sqlmini.Binary:
		lf, err := c.compileGroupExpr(cs, x.L)
		if err != nil {
			return nil, err
		}
		rf, err := c.compileGroupExpr(cs, x.R)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(env *Env, rep matchSnap, members []matchSnap) (storage.Value, error) {
			l, err := lf(env, rep, members)
			if err != nil {
				return storage.Value{}, err
			}
			r, err := rf(env, rep, members)
			if err != nil {
				return storage.Value{}, err
			}
			return sqlmini.ApplyBinary(op, l, r)
		}, nil
	case *sqlmini.IsNull:
		sub, err := c.compileGroupExpr(cs, x.X)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return func(env *Env, rep matchSnap, members []matchSnap) (storage.Value, error) {
			v, err := sub(env, rep, members)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.BoolV(v.IsNull() != neg), nil
		}, nil
	case *sqlmini.InList:
		sub, err := c.compileGroupExpr(cs, x.X)
		if err != nil {
			return nil, err
		}
		members := make([]groupFn, len(x.Vals))
		for i, ve := range x.Vals {
			m, err := c.compileGroupExpr(cs, ve)
			if err != nil {
				return nil, err
			}
			members[i] = m
		}
		neg := x.Negate
		return func(env *Env, rep matchSnap, mem []matchSnap) (storage.Value, error) {
			v, err := sub(env, rep, mem)
			if err != nil {
				return storage.Value{}, err
			}
			vals := make([]storage.Value, len(members))
			for i, m := range members {
				vv, err := m(env, rep, mem)
				if err != nil {
					return storage.Value{}, err
				}
				vals[i] = vv
			}
			return sqlmini.InResult(v, vals, neg), nil
		}, nil
	default:
		ec, err := c.compileExpr(e)
		if err != nil {
			return nil, err
		}
		fn := ec.fn
		return func(env *Env, rep matchSnap, _ []matchSnap) (storage.Value, error) {
			cs.restore(env, rep)
			return fn(env)
		}, nil
	}
}

// collect runs the nested-loop join, returning the match snapshots.
func (cs *compiledSelect) collect(env *Env) ([]matchSnap, error) {
	n := len(cs.srcs)
	if n == 0 {
		// A query with no FROM evaluates its items once against the
		// enclosing bindings.
		return []matchSnap{nil}, nil
	}
	sources := make([][][]storage.Value, n)
	for i, src := range cs.srcs {
		rows, err := src(env)
		if err != nil {
			return nil, err
		}
		sources[i] = rows
	}
	var matches []matchSnap
	var walk func(i int) error
	walk = func(i int) error {
		if i == n {
			if cs.where != nil {
				v, err := cs.where.fn(env)
				if err != nil {
					return err
				}
				ok, err := sqlmini.PredTruth(v)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			snap := make(matchSnap, n)
			copy(snap, env.Slots[cs.base:cs.base+n])
			matches = append(matches, snap)
			return nil
		}
		for _, row := range sources[i] {
			env.Slots[cs.base+i] = row
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return matches, nil
}

// runPlain is the non-grouped, non-aggregate query form.
func (cs *compiledSelect) runPlain(env *Env) ([][]storage.Value, error) {
	matches, err := cs.collect(env)
	if err != nil {
		return nil, err
	}

	if len(cs.orderBy) > 0 {
		keys := make([][]storage.Value, len(matches))
		for i, m := range matches {
			cs.restore(env, m)
			keys[i] = make([]storage.Value, len(cs.orderBy))
			for k, of := range cs.orderBy {
				v, err := of(env)
				if err != nil {
					return nil, err
				}
				keys[i][k] = v
			}
		}
		var sortErr error
		idx := make([]int, len(matches))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return sqlmini.OrderLess(keys[idx[a]], keys[idx[b]], cs.desc, &sortErr)
		})
		if sortErr != nil {
			return nil, sortErr
		}
		sorted := make([]matchSnap, len(matches))
		for i, j := range idx {
			sorted[i] = matches[j]
		}
		matches = sorted
	}

	results := make([][]storage.Value, 0, len(matches))
	for _, m := range matches {
		if cs.star {
			var row []storage.Value
			for j := range m {
				row = append(row, m[j]...)
			}
			results = append(results, row)
			continue
		}
		cs.restore(env, m)
		row := make([]storage.Value, len(cs.items))
		for i, it := range cs.items {
			v, err := it(env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		results = append(results, row)
	}
	if cs.distinct {
		results = sqlmini.DedupRows(results)
	}
	if cs.limit >= 0 && len(results) > cs.limit {
		results = results[:cs.limit]
	}
	return results, nil
}

// runAggregate is the non-grouped aggregate query form: one row.
func (cs *compiledSelect) runAggregate(env *Env) ([][]storage.Value, error) {
	matches, err := cs.collect(env)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Value, len(cs.aggs))
	for i, af := range cs.aggs {
		v, err := af(env, matches)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return [][]storage.Value{out}, nil
}

// runGrouped is the GROUP BY / HAVING query form.
func (cs *compiledSelect) runGrouped(env *Env) ([][]storage.Value, error) {
	matches, err := cs.collect(env)
	if err != nil {
		return nil, err
	}
	type group struct {
		rep     matchSnap
		members []matchSnap
	}
	var order []string
	groups := map[string]*group{}
	for _, m := range matches {
		cs.restore(env, m)
		var key []byte
		for _, gf := range cs.groupBy {
			v, err := gf(env)
			if err != nil {
				return nil, err
			}
			key = v.AppendCanonical(key)
			key = append(key, ',')
		}
		k := string(key)
		gr, ok := groups[k]
		if !ok {
			gr = &group{rep: m}
			groups[k] = gr
			order = append(order, k)
		}
		gr.members = append(gr.members, m)
	}

	type projected struct {
		row  []storage.Value
		keys []storage.Value
	}
	var rows []projected
	for _, k := range order {
		gr := groups[k]
		if cs.gHaving != nil {
			hv, err := cs.gHaving(env, gr.rep, gr.members)
			if err != nil {
				return nil, err
			}
			ok, err := sqlmini.PredTruth(hv)
			if err != nil {
				return nil, fmt.Errorf("sql: HAVING: %w", err)
			}
			if !ok {
				continue
			}
		}
		row := make([]storage.Value, len(cs.gItems))
		for i, gf := range cs.gItems {
			v, err := gf(env, gr.rep, gr.members)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		p := projected{row: row}
		for _, gf := range cs.gOrder {
			v, err := gf(env, gr.rep, gr.members)
			if err != nil {
				return nil, err
			}
			p.keys = append(p.keys, v)
		}
		rows = append(rows, p)
	}

	if len(cs.gOrder) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(a, b int) bool {
			return sqlmini.OrderLess(rows[a].keys, rows[b].keys, cs.desc, &sortErr)
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	out := make([][]storage.Value, 0, len(rows))
	for _, p := range rows {
		out = append(out, p.row)
	}
	if cs.distinct {
		out = sqlmini.DedupRows(out)
	}
	if cs.limit >= 0 && len(out) > cs.limit {
		out = out[:cs.limit]
	}
	return out, nil
}

// compileStatement compiles one resolved action statement.
func (c *compiler) compileStatement(st sqlmini.Statement) (stmtFn, error) {
	switch s := st.(type) {
	case *sqlmini.Select:
		sel, err := c.compileSelect(s)
		if err != nil {
			return nil, err
		}
		return func(env *Env) (sqlmini.StmtResult, error) {
			rows, err := sel(env)
			return sqlmini.StmtResult{Rows: rows}, err
		}, nil
	case *sqlmini.Insert:
		return c.compileInsert(s)
	case *sqlmini.Delete:
		return c.compileDelete(s)
	case *sqlmini.Update:
		return c.compileUpdate(s)
	case *sqlmini.Rollback:
		return func(*Env) (sqlmini.StmtResult, error) {
			return sqlmini.StmtResult{Rolled: true}, nil
		}, nil
	default:
		return nil, errUnsupported{what: fmt.Sprintf("statement %T", st)}
	}
}

func requireMut(env *Env) error {
	if env.Mut == nil {
		return fmt.Errorf("sql: mutating statement in read-only context")
	}
	return nil
}

func (c *compiler) compileInsert(s *sqlmini.Insert) (stmtFn, error) {
	def := c.sch.Table(s.Table)
	if def == nil {
		return nil, errUnsupported{what: fmt.Sprintf("insert into unknown table %q", s.Table)}
	}
	table := s.Table
	var colPos []int
	if len(s.Columns) > 0 {
		colPos = make([]int, len(s.Columns))
		for i, col := range s.Columns {
			colPos[i] = def.ColumnIndex(col)
		}
	}
	nCols := len(def.Columns)

	var queryFn selFn
	var rowFns [][]exprFn
	if s.Query != nil {
		sel, err := c.compileSelect(s.Query)
		if err != nil {
			return nil, err
		}
		queryFn = sel
	} else {
		for _, row := range s.Rows {
			fns := make([]exprFn, len(row))
			for i, e := range row {
				ec, err := c.compileExpr(e)
				if err != nil {
					return nil, err
				}
				fns[i] = ec.fn
			}
			rowFns = append(rowFns, fns)
		}
	}

	return func(env *Env) (sqlmini.StmtResult, error) {
		if err := requireMut(env); err != nil {
			return sqlmini.StmtResult{}, err
		}
		var srcRows [][]storage.Value
		if queryFn != nil {
			rows, err := queryFn(env)
			if err != nil {
				return sqlmini.StmtResult{}, err
			}
			srcRows = rows
		} else {
			for _, fns := range rowFns {
				vals := make([]storage.Value, len(fns))
				for i, fn := range fns {
					v, err := fn(env)
					if err != nil {
						return sqlmini.StmtResult{}, err
					}
					vals[i] = v
				}
				srcRows = append(srcRows, vals)
			}
		}
		n := 0
		for _, src := range srcRows {
			full := src
			if colPos != nil {
				full = make([]storage.Value, nCols)
				for i := range full {
					full[i] = storage.Null
				}
				for i, pos := range colPos {
					full[pos] = src[i]
				}
			}
			if _, err := env.Mut.Insert(table, full); err != nil {
				return sqlmini.StmtResult{}, err
			}
			n++
		}
		return sqlmini.StmtResult{Affected: n}, nil
	}, nil
}

func (c *compiler) compileDelete(s *sqlmini.Delete) (stmtFn, error) {
	table := s.Table
	slot := c.push(s.Table)
	defer c.pop(1)
	var whereFn exprFn
	if s.Where != nil {
		wc, err := c.compileExpr(s.Where)
		if err != nil {
			return nil, err
		}
		whereFn = wc.fn
	}
	return func(env *Env) (sqlmini.StmtResult, error) {
		if err := requireMut(env); err != nil {
			return sqlmini.StmtResult{}, err
		}
		env.ensure(slot + 1)
		t := env.DB.Table(table)
		var ids []storage.TupleID
		var scanErr error
		t.Scan(func(tu *storage.Tuple) bool {
			if whereFn != nil {
				env.Slots[slot] = tu.Vals
				v, err := whereFn(env)
				if err != nil {
					scanErr = err
					return false
				}
				ok, err := sqlmini.PredTruth(v)
				if err != nil {
					scanErr = err
					return false
				}
				if !ok {
					return true
				}
			}
			ids = append(ids, tu.ID)
			return true
		})
		if scanErr != nil {
			return sqlmini.StmtResult{}, scanErr
		}
		for _, id := range ids {
			if err := env.Mut.Delete(table, id); err != nil {
				return sqlmini.StmtResult{}, err
			}
		}
		return sqlmini.StmtResult{Affected: len(ids)}, nil
	}, nil
}

func (c *compiler) compileUpdate(s *sqlmini.Update) (stmtFn, error) {
	table := s.Table
	slot := c.push(s.Table)
	defer c.pop(1)
	var whereFn exprFn
	if s.Where != nil {
		wc, err := c.compileExpr(s.Where)
		if err != nil {
			return nil, err
		}
		whereFn = wc.fn
	}
	setCols := make([]string, len(s.Sets))
	setFns := make([]exprFn, len(s.Sets))
	for i, sc := range s.Sets {
		setCols[i] = sc.Column
		ec, err := c.compileExpr(sc.Expr)
		if err != nil {
			return nil, err
		}
		setFns[i] = ec.fn
	}
	return func(env *Env) (sqlmini.StmtResult, error) {
		if err := requireMut(env); err != nil {
			return sqlmini.StmtResult{}, err
		}
		env.ensure(slot + 1)
		t := env.DB.Table(table)
		type change struct {
			id   storage.TupleID
			vals []storage.Value
		}
		var changes []change
		var scanErr error
		// All right-hand sides are evaluated against the pre-update
		// state; apply only afterwards.
		t.Scan(func(tu *storage.Tuple) bool {
			env.Slots[slot] = tu.Vals
			if whereFn != nil {
				v, err := whereFn(env)
				if err != nil {
					scanErr = err
					return false
				}
				ok, err := sqlmini.PredTruth(v)
				if err != nil {
					scanErr = err
					return false
				}
				if !ok {
					return true
				}
			}
			ch := change{id: tu.ID, vals: make([]storage.Value, len(setFns))}
			for i, fn := range setFns {
				v, err := fn(env)
				if err != nil {
					scanErr = err
					return false
				}
				ch.vals[i] = v
			}
			changes = append(changes, ch)
			return true
		})
		if scanErr != nil {
			return sqlmini.StmtResult{}, scanErr
		}
		for _, ch := range changes {
			for i, col := range setCols {
				if err := env.Mut.Update(table, ch.id, col, ch.vals[i]); err != nil {
					return sqlmini.StmtResult{}, err
				}
			}
		}
		return sqlmini.StmtResult{Affected: len(changes)}, nil
	}, nil
}
