package compile

import (
	"sync"

	"activerules/internal/rules"
	"activerules/internal/sqlmini"
	"activerules/internal/storage"
)

// condFn decides a compiled condition with the interpreter's
// EvalPredicate semantics: only a definite true satisfies.
type condFn func(env *Env) (bool, error)

// compiledRule is one rule's compiled units.
type compiledRule struct {
	cond   condFn // nil when the rule has no condition
	action []stmtFn
	nSlots int
}

// Program holds the compiled conditions and actions of a rule set plus
// its discrimination network. It is immutable after Compile and shared
// by every engine (and engine clone) running the set.
type Program struct {
	rules     []compiledRule
	matcher   *Matcher
	fallbacks int
}

// Compile compiles every rule of the set. Units the compiler cannot
// handle fall back to interpreter closures (counted by Fallbacks), so
// Compile never fails and compiled semantics never diverge.
func Compile(set *rules.Set) *Program {
	rs := set.Rules()
	p := &Program{
		rules:   make([]compiledRule, len(rs)),
		matcher: NewMatcher(set),
	}
	for i, r := range rs {
		c := &compiler{sch: set.Schema()}
		cr := &p.rules[i]
		if r.Condition != nil {
			if ec, err := c.compileExpr(r.Condition); err == nil {
				fn := ec.fn
				cr.cond = func(env *Env) (bool, error) {
					v, err := fn(env)
					if err != nil {
						return false, err
					}
					return v.Kind == storage.KindBool && v.B, nil
				}
			} else {
				p.fallbacks++
				cond := r.Condition
				cr.cond = func(env *Env) (bool, error) {
					ev := &sqlmini.Evaluator{DB: env.DB, Trans: env.Trans}
					return ev.EvalPredicate(cond)
				}
			}
		}
		cr.action = make([]stmtFn, len(r.Action))
		for j, st := range r.Action {
			if fn, err := c.compileStatement(st); err == nil {
				cr.action[j] = fn
			} else {
				p.fallbacks++
				stc := st
				cr.action[j] = func(env *Env) (sqlmini.StmtResult, error) {
					ev := &sqlmini.Evaluator{DB: env.DB, Trans: env.Trans, Mut: env.Mut}
					return ev.Exec(stc)
				}
			}
		}
		cr.nSlots = c.nSlots
	}
	return p
}

// programCache memoizes Compile per rule set: engines are created
// freely (per request, per explorer fork, per test), but a set's
// closures are compiled once. Sets are long-lived and few, so the map
// stays small.
var programCache sync.Map // *rules.Set -> *Program

// For returns the (memoized) compiled program for a rule set.
func For(set *rules.Set) *Program {
	if p, ok := programCache.Load(set); ok {
		return p.(*Program)
	}
	p := Compile(set)
	actual, _ := programCache.LoadOrStore(set, p)
	return actual.(*Program)
}

// Matcher returns the set's discrimination network.
func (p *Program) Matcher() *Matcher { return p.matcher }

// Fallbacks returns how many units (conditions or action statements)
// fell back to the interpreter.
func (p *Program) Fallbacks() int { return p.fallbacks }

// HasCondition reports whether rule i has a compiled condition.
func (p *Program) HasCondition(i int) bool { return p.rules[i].cond != nil }

// EvalCondition evaluates rule i's condition; rules without a
// condition are trivially satisfied.
func (p *Program) EvalCondition(i int, env *Env) (bool, error) {
	cr := &p.rules[i]
	if cr.cond == nil {
		return true, nil
	}
	env.ensure(cr.nSlots)
	return cr.cond(env)
}

// ActionLen returns the number of statements in rule i's action.
func (p *Program) ActionLen(i int) int { return len(p.rules[i].action) }

// ExecStatement executes statement j of rule i's action.
func (p *Program) ExecStatement(i, j int, env *Env) (sqlmini.StmtResult, error) {
	cr := &p.rules[i]
	env.ensure(cr.nSlots)
	return cr.action[j](env)
}
