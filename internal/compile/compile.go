// Package compile turns resolved rule conditions and actions into
// closures evaluated against statically assigned row slots, and builds
// the delta-driven trigger index the engine's compiled mode runs on.
//
// The compiled path must be observably indistinguishable from the
// interpreter in internal/sqlmini — same results, same errors (down to
// the message), same trace streams — because the paper's guarantees
// are stated over rule semantics, not over an implementation. Three
// design rules follow:
//
//  1. All value-level semantics (three-valued logic, comparison
//     errors, aggregate folding, null ordering) go through the same
//     helpers the interpreter uses (sqlmini's exported semantics
//     layer), so the two paths cannot drift at the value level.
//  2. Short-circuiting is applied only when the skipped operand
//     provably cannot error: the interpreter always evaluates both
//     AND/OR operands, so skipping an operand that could raise (say)
//     a division by zero would change the error taxonomy.
//  3. Anything the compiler cannot handle falls back to an
//     interpreter closure for that unit — never a divergent
//     approximation. Fallbacks() exposes the count so tests can pin
//     it to zero for the rule sets they care about.
package compile

import (
	"fmt"

	"activerules/internal/schema"
	"activerules/internal/sqlmini"
	"activerules/internal/storage"
)

// Env is the runtime context a compiled closure executes in. Slots
// holds the row bound to each statically assigned binding index; the
// engine reuses one Env per rule consideration.
type Env struct {
	DB    *storage.DB
	Trans *sqlmini.TransitionData
	Mut   sqlmini.Mutator
	Slots [][]storage.Value
}

// ensure grows the slot array to at least n entries.
func (env *Env) ensure(n int) {
	if len(env.Slots) < n {
		s := make([][]storage.Value, n)
		copy(s, env.Slots)
		env.Slots = s
	}
}

// exprFn is a compiled expression.
type exprFn func(env *Env) (storage.Value, error)

// stmtFn is a compiled statement.
type stmtFn func(env *Env) (sqlmini.StmtResult, error)

// selFn is a compiled query block.
type selFn func(env *Env) ([][]storage.Value, error)

// kindMask is a conservative superset of the non-null value kinds an
// expression can produce (null is always admitted).
type kindMask uint8

const (
	kInt kindMask = 1 << iota
	kFloat
	kString
	kBool
	kNumeric = kInt | kFloat
	kAny     = kInt | kFloat | kString | kBool
)

func (m kindMask) subset(of kindMask) bool { return m&^of == 0 }

// comparableMasks reports whether two value sets are statically
// comparable under storage.Value.Compare: numerics compare across
// kinds, strings and bools only with themselves. Nulls always compare
// to unknown without error, so an empty mask is comparable to anything.
func comparableMasks(a, b kindMask) bool {
	switch {
	case a == 0 || b == 0:
		return true
	case a.subset(kNumeric) && b.subset(kNumeric):
		return true
	case a.subset(kString) && b.subset(kString):
		return true
	case a.subset(kBool) && b.subset(kBool):
		return true
	}
	return false
}

// exprC is a compiled expression with its static analysis: total means
// evaluation can never return an error (the license to skip it when
// short-circuiting); con is non-nil when the subtree constant-folded.
type exprC struct {
	fn    exprFn
	total bool
	kinds kindMask
	con   *storage.Value
}

// boolTotal reports that evaluation cannot error and yields only
// boolean or null — the condition for skipping an AND/OR operand.
func (e exprC) boolTotal() bool { return e.total && e.kinds.subset(kBool) }

// binding is one compile-time alias-to-slot assignment.
type binding struct {
	alias string
	slot  int
}

// compiler compiles the units of one rule. Slot indices are the depth
// of the binding stack at push time, so sibling subqueries reuse the
// same slots (they are never live simultaneously) and nSlots is the
// maximum nesting depth.
type compiler struct {
	sch    *schema.Schema
	stack  []binding
	nSlots int
}

func (c *compiler) push(alias string) int {
	slot := len(c.stack)
	c.stack = append(c.stack, binding{alias: alias, slot: slot})
	if slot+1 > c.nSlots {
		c.nSlots = slot + 1
	}
	return slot
}

func (c *compiler) pop(n int) { c.stack = c.stack[:len(c.stack)-n] }

// lookup finds the innermost binding for an alias, mirroring the
// interpreter's frame-chain search.
func (c *compiler) lookup(alias string) (int, bool) {
	for i := len(c.stack) - 1; i >= 0; i-- {
		if c.stack[i].alias == alias {
			return c.stack[i].slot, true
		}
	}
	return 0, false
}

// errUnsupported aborts compilation of the current unit; the caller
// installs an interpreter fallback for it.
type errUnsupported struct{ what string }

func (e errUnsupported) Error() string { return "compile: unsupported " + e.what }

func constExpr(v storage.Value) exprC {
	vv := v
	return exprC{
		fn:    func(*Env) (storage.Value, error) { return vv, nil },
		total: true,
		kinds: kindOfValue(v),
		con:   &vv,
	}
}

func kindOfValue(v storage.Value) kindMask {
	switch v.Kind {
	case storage.KindInt:
		return kInt
	case storage.KindFloat:
		return kFloat
	case storage.KindString:
		return kString
	case storage.KindBool:
		return kBool
	default:
		return 0
	}
}

// compileExpr compiles a resolved expression.
func (c *compiler) compileExpr(e sqlmini.Expr) (exprC, error) {
	switch x := e.(type) {
	case *sqlmini.Literal:
		return constExpr(x.Val), nil

	case *sqlmini.ColRef:
		slot, ok := c.lookup(x.RSource)
		if !ok {
			return exprC{}, errUnsupported{what: fmt.Sprintf("unbound column source %q", x.RSource)}
		}
		idx := x.RIndex
		kinds := kAny
		if t := c.sch.Table(x.RTable); t != nil && idx < len(t.Columns) {
			kinds = typeMask(t.Columns[idx].Type)
		}
		ref := x
		fn := func(env *Env) (storage.Value, error) {
			row := env.Slots[slot]
			if idx >= len(row) {
				// Defensive parity with the interpreter; resolution
				// guarantees this cannot fire for well-formed rows.
				return storage.Value{}, fmt.Errorf("sql: column index %d out of range for %s", idx, ref)
			}
			return row[idx], nil
		}
		return exprC{fn: fn, total: true, kinds: kinds}, nil

	case *sqlmini.Unary:
		sub, err := c.compileExpr(x.X)
		if err != nil {
			return exprC{}, err
		}
		op := x.Op
		if sub.con != nil {
			if v, err := sqlmini.ApplyUnary(op, *sub.con); err == nil {
				return constExpr(v), nil
			}
		}
		fn := func(env *Env) (storage.Value, error) {
			v, err := sub.fn(env)
			if err != nil {
				return storage.Value{}, err
			}
			return sqlmini.ApplyUnary(op, v)
		}
		var total bool
		var kinds kindMask
		if op == sqlmini.UnaryNeg {
			total = sub.total && sub.kinds.subset(kNumeric)
			kinds = sub.kinds & kNumeric
		} else { // NOT
			total = sub.total && sub.kinds.subset(kBool)
			kinds = kBool
		}
		return exprC{fn: fn, total: total, kinds: kinds}, nil

	case *sqlmini.Binary:
		return c.compileBinary(x)

	case *sqlmini.IsNull:
		sub, err := c.compileExpr(x.X)
		if err != nil {
			return exprC{}, err
		}
		neg := x.Negate
		if sub.con != nil {
			return constExpr(storage.BoolV(sub.con.IsNull() != neg)), nil
		}
		fn := func(env *Env) (storage.Value, error) {
			v, err := sub.fn(env)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.BoolV(v.IsNull() != neg), nil
		}
		return exprC{fn: fn, total: sub.total, kinds: kBool}, nil

	case *sqlmini.InList:
		sub, err := c.compileExpr(x.X)
		if err != nil {
			return exprC{}, err
		}
		members := make([]exprC, len(x.Vals))
		allConst := sub.con != nil
		total := sub.total
		for i, ve := range x.Vals {
			m, err := c.compileExpr(ve)
			if err != nil {
				return exprC{}, err
			}
			members[i] = m
			allConst = allConst && m.con != nil
			total = total && m.total && comparableMasks(sub.kinds, m.kinds)
		}
		neg := x.Negate
		if allConst {
			vals := make([]storage.Value, len(members))
			for i, m := range members {
				vals[i] = *m.con
			}
			return constExpr(sqlmini.InResult(*sub.con, vals, neg)), nil
		}
		fn := func(env *Env) (storage.Value, error) {
			v, err := sub.fn(env)
			if err != nil {
				return storage.Value{}, err
			}
			vals := make([]storage.Value, len(members))
			for i, m := range members {
				vv, err := m.fn(env)
				if err != nil {
					return storage.Value{}, err
				}
				vals[i] = vv
			}
			return sqlmini.InResult(v, vals, neg), nil
		}
		return exprC{fn: fn, total: total, kinds: kBool}, nil

	case *sqlmini.InSelect:
		sub, err := c.compileExpr(x.X)
		if err != nil {
			return exprC{}, err
		}
		sel, err := c.compileSelect(x.Sub)
		if err != nil {
			return exprC{}, err
		}
		neg := x.Negate
		fn := func(env *Env) (storage.Value, error) {
			v, err := sub.fn(env)
			if err != nil {
				return storage.Value{}, err
			}
			rows, err := sel(env)
			if err != nil {
				return storage.Value{}, err
			}
			vals := make([]storage.Value, len(rows))
			for i, r := range rows {
				vals[i] = r[0]
			}
			return sqlmini.InResult(v, vals, neg), nil
		}
		return exprC{fn: fn, kinds: kBool}, nil

	case *sqlmini.Exists:
		sel, err := c.compileSelect(x.Sub)
		if err != nil {
			return exprC{}, err
		}
		neg := x.Negate
		fn := func(env *Env) (storage.Value, error) {
			rows, err := sel(env)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.BoolV((len(rows) > 0) != neg), nil
		}
		return exprC{fn: fn, kinds: kBool}, nil

	case *sqlmini.ScalarSubquery:
		sel, err := c.compileSelect(x.Sub)
		if err != nil {
			return exprC{}, err
		}
		fn := func(env *Env) (storage.Value, error) {
			rows, err := sel(env)
			if err != nil {
				return storage.Value{}, err
			}
			return sqlmini.ScalarResult(rows)
		}
		return exprC{fn: fn, kinds: kAny}, nil

	case *sqlmini.Aggregate:
		// Resolution confines aggregates to select lists; mirror the
		// interpreter's error for defensive parity.
		name := x.Func
		fn := func(*Env) (storage.Value, error) {
			return storage.Value{}, fmt.Errorf("sql: aggregate %s outside select list", name)
		}
		return exprC{fn: fn, kinds: kAny}, nil

	default:
		return exprC{}, errUnsupported{what: fmt.Sprintf("expression %T", e)}
	}
}

func typeMask(t schema.Type) kindMask {
	switch t {
	case schema.Int:
		return kInt
	case schema.Float:
		return kFloat
	case schema.String:
		return kString
	case schema.Bool:
		return kBool
	default:
		return kAny
	}
}

func (c *compiler) compileBinary(x *sqlmini.Binary) (exprC, error) {
	lc, err := c.compileExpr(x.L)
	if err != nil {
		return exprC{}, err
	}
	rc, err := c.compileExpr(x.R)
	if err != nil {
		return exprC{}, err
	}
	op := x.Op

	if lc.con != nil && rc.con != nil {
		if v, err := sqlmini.ApplyBinary(op, *lc.con, *rc.con); err == nil {
			return constExpr(v), nil
		}
	}

	both := func(env *Env) (storage.Value, error) {
		l, err := lc.fn(env)
		if err != nil {
			return storage.Value{}, err
		}
		r, err := rc.fn(env)
		if err != nil {
			return storage.Value{}, err
		}
		return sqlmini.ApplyBinary(op, l, r)
	}

	switch op {
	case sqlmini.OpAnd, sqlmini.OpOr:
		total := lc.boolTotal() && rc.boolTotal()
		fn := both
		if rc.boolTotal() {
			// The skipped operand provably cannot error, so skipping
			// it is invisible: the interpreter would evaluate it and
			// discard the value.
			isAnd := op == sqlmini.OpAnd
			fn = func(env *Env) (storage.Value, error) {
				l, err := lc.fn(env)
				if err != nil {
					return storage.Value{}, err
				}
				lb, lNull, err := sqlmini.BoolOrNull(l)
				if err != nil {
					return storage.Value{}, err
				}
				if !lNull && lb != isAnd {
					// AND with definite false / OR with definite true
					// is decided regardless of the right value.
					return storage.BoolV(lb), nil
				}
				r, err := rc.fn(env)
				if err != nil {
					return storage.Value{}, err
				}
				return sqlmini.ApplyBinary(op, l, r)
			}
		}
		return exprC{fn: fn, total: total, kinds: kBool}, nil

	case sqlmini.OpEq, sqlmini.OpNe, sqlmini.OpLt, sqlmini.OpLe, sqlmini.OpGt, sqlmini.OpGe:
		total := lc.total && rc.total && comparableMasks(lc.kinds, rc.kinds)
		return exprC{fn: both, total: total, kinds: kBool}, nil

	case sqlmini.OpAdd, sqlmini.OpSub, sqlmini.OpMul:
		total := lc.total && rc.total && lc.kinds.subset(kNumeric) && rc.kinds.subset(kNumeric)
		kinds := kindMask(kNumeric)
		if lc.kinds.subset(kInt) && rc.kinds.subset(kInt) {
			kinds = kInt
		}
		return exprC{fn: both, total: total, kinds: kinds}, nil

	case sqlmini.OpDiv:
		return exprC{fn: both, kinds: kNumeric}, nil // division by zero: never total
	case sqlmini.OpMod:
		return exprC{fn: both, kinds: kInt}, nil
	default:
		return exprC{}, errUnsupported{what: fmt.Sprintf("binary op %d", op)}
	}
}
