package workload

import (
	"math/rand"
	"testing"

	"activerules/internal/analysis"
)

func TestGenerateCompiles(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, err := Generate(Config{
			Seed: seed, Rules: 10, Tables: 5,
			UpdateFrac: 0.3, DeleteFrac: 0.2,
			ConditionFrac: 0.5, PriorityDensity: 0.2, ObservableFrac: 0.2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.Set.Len() != 10 {
			t.Fatalf("seed %d: %d rules", seed, g.Set.Len())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rules: 8, Tables: 4, UpdateFrac: 0.4, PriorityDensity: 0.3}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i, r := range a.Set.Rules() {
		if r.String() != b.Set.Rules()[i].String() {
			t.Fatalf("rule %d differs across identical seeds", i)
		}
	}
}

func TestAcyclicTopologyIsAcyclic(t *testing.T) {
	// Acyclic generation must always yield an acyclic triggering graph
	// (Theorem 5.1 then applies with no discharges).
	for seed := int64(0); seed < 30; seed++ {
		g := MustGenerate(Config{
			Seed: seed, Rules: 12, Tables: 6, Acyclic: true,
			UpdateFrac: 0.3, DeleteFrac: 0.2, WriteFanout: 2,
		})
		v := analysis.New(g.Set, nil).Termination()
		// The delete-only heuristic must not even be needed.
		if len(v.CyclicSCCs) != 0 || len(v.AutoDischarged) != 0 {
			t.Fatalf("seed %d: acyclic generation produced cycles: %v (auto %v)",
				seed, v.CyclicSCCs, v.AutoDischarged)
		}
	}
}

func TestCyclicTopologyProducesCyclesSometimes(t *testing.T) {
	sawCycle := false
	for seed := int64(0); seed < 30 && !sawCycle; seed++ {
		g := MustGenerate(Config{Seed: seed, Rules: 12, Tables: 3, UpdateFrac: 0.3})
		if !analysis.New(g.Set, nil).Termination().Guaranteed {
			sawCycle = true
		}
	}
	if !sawCycle {
		t.Error("unconstrained generation should produce some cyclic sets")
	}
}

func TestObservableFraction(t *testing.T) {
	g := MustGenerate(Config{Seed: 1, Rules: 40, Tables: 8, ObservableFrac: 1.0})
	if n := len(g.Set.ObservableRules()); n != 40 {
		t.Errorf("all rules should be observable, got %d", n)
	}
	g2 := MustGenerate(Config{Seed: 1, Rules: 40, Tables: 8, ObservableFrac: 0})
	if n := len(g2.Set.ObservableRules()); n != 0 {
		t.Errorf("no rules should be observable, got %d", n)
	}
}

func TestSeedDatabase(t *testing.T) {
	g := MustGenerate(Config{Seed: 3, Rules: 4, Tables: 3})
	db := SeedDatabase(g.Schema, 5)
	for _, tn := range g.Schema.TableNames() {
		if db.Table(tn).Len() != 5 {
			t.Errorf("table %s has %d rows", tn, db.Table(tn).Len())
		}
	}
}

func TestUserScriptExecutes(t *testing.T) {
	g := MustGenerate(Config{Seed: 5, Rules: 4, Tables: 3})
	rng := rand.New(rand.NewSource(9))
	script := UserScript(g.Schema, rng, 3)
	if script == "" {
		t.Fatal("empty script")
	}
	// The script must parse and run against a seeded database via the
	// engine (validated in the root experiments; here just structure).
	if len(script) < 10 {
		t.Errorf("script suspiciously short: %q", script)
	}
}

func TestPriorityDensityOne(t *testing.T) {
	// Full priority density yields a total order: no unordered pairs.
	g := MustGenerate(Config{Seed: 7, Rules: 10, Tables: 4, PriorityDensity: 1.0})
	if n := len(g.Set.UnorderedPairs()); n != 0 {
		t.Errorf("total order expected, %d unordered pairs", n)
	}
}

func TestTransRefGeneration(t *testing.T) {
	g := MustGenerate(Config{
		Seed: 4, Rules: 30, Tables: 6, TransRefFrac: 1.0, ConditionFrac: 1.0,
	})
	sawTrans := 0
	for _, r := range g.Set.Rules() {
		if len(r.Reads()) > 0 {
			sawTrans++
		}
	}
	if sawTrans == 0 {
		t.Error("TransRefFrac=1 should produce transition-table reads")
	}
}

func TestCyclicShapesLeaveRandomPartIdentical(t *testing.T) {
	base := Config{Seed: 42, Rules: 8, Tables: 4, UpdateFrac: 0.4, PriorityDensity: 0.3}
	withShapes := base
	withShapes.CyclicShapes = []string{"countdown", "drain", "converge"}
	a := MustGenerate(base)
	b := MustGenerate(withShapes)
	if b.Set.Len() != a.Set.Len()+4 {
		t.Fatalf("shapes added %d rules, want 4", b.Set.Len()-a.Set.Len())
	}
	for i, r := range a.Set.Rules() {
		if got := b.Set.Rules()[i].String(); got != r.String() {
			t.Fatalf("random rule %d changed under CyclicShapes:\n%s\nvs\n%s", i, got, r.String())
		}
	}
	// Duplicates collapse; unknown shapes error.
	dup := base
	dup.CyclicShapes = []string{"countdown", "countdown"}
	if g := MustGenerate(dup); g.Set.Len() != base.Rules+1 {
		t.Errorf("duplicate shape emitted twice: %d rules", g.Set.Len())
	}
	bad := base
	bad.CyclicShapes = []string{"bogus"}
	if _, err := Generate(bad); err == nil {
		t.Error("unknown shape should error")
	}
}

func TestCyclicShapesDischargedByTier2(t *testing.T) {
	// Every shape must come out of the analyzer with a certificate: the
	// whole point is generating cyclic-but-terminating corpora.
	g := MustGenerate(Config{Seed: 9, Rules: 6, Tables: 4, Acyclic: true,
		UpdateFrac: 0.3, CyclicShapes: []string{"countdown", "drain", "converge"}})
	v := analysis.New(g.Set, nil).Termination()
	if v.Status != analysis.TermCycleDischarged {
		t.Fatalf("status = %s, want cycle-discharged: %+v", v.Status, v.SCCs)
	}
	kinds := map[string]string{}
	for _, sv := range v.SCCs {
		if !sv.Discharged {
			t.Errorf("SCC %v not discharged: %+v", sv.Members, sv.Failures)
		}
		for _, step := range sv.Certificate {
			kinds[step.Rule] = step.Kind
		}
	}
	want := map[string]string{"cd_dec": "ranking", "dr_drain": "delete-only", "cv_set": "convergent-update"}
	for rule, kind := range want {
		if kinds[rule] != kind {
			t.Errorf("%s discharged by %q, want %q", rule, kinds[rule], kind)
		}
	}
	// The seeded database satisfies the padded-column convention.
	db := SeedDatabase(g.Schema, 3)
	if db.Table("cd_cnt").Len() != 3 {
		t.Errorf("cd_cnt rows = %d", db.Table("cd_cnt").Len())
	}
}
