// Package workload generates synthetic schemas, rule sets, databases,
// and user operation scripts for the experiments of EXPERIMENTS.md. The
// paper has no public rule corpus (its authors analyzed internal
// applications by hand, Section 6.4), so parameterized random generation
// stands in: rule count, trigger-graph topology (acyclic or not), write
// conflict rate, priority density, and observable fraction are all
// controlled, and every generator is deterministic for a fixed seed.
package workload

import (
	"fmt"
	"math/rand"

	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
)

// Config parameterizes generation.
type Config struct {
	Seed int64

	// Tables is the number of tables (each has columns id, v). At least
	// 2; defaults to max(2, Rules/2).
	Tables int

	// Rules is the number of rules to generate.
	Rules int

	// Acyclic forces an acyclic triggering graph: a rule on table ti
	// only writes tables with a strictly larger index. With Acyclic
	// false, writes may target any table, so triggering cycles appear as
	// density allows.
	Acyclic bool

	// WriteFanout is the number of statements per rule action (1..n);
	// defaults to 1.
	WriteFanout int

	// UpdateFrac / DeleteFrac set the probability that an action
	// statement is an update / delete (remainder: insert).
	UpdateFrac, DeleteFrac float64

	// ConditionFrac is the probability a rule has a condition.
	ConditionFrac float64

	// PriorityDensity is the probability that a pair of rules (i < j)
	// receives an ordering i-precedes-j. Orientation by index keeps P
	// acyclic.
	PriorityDensity float64

	// ObservableFrac is the probability a rule's action ends with an
	// observable SELECT.
	ObservableFrac float64

	// TransRefFrac is the probability that a rule's condition and first
	// action statement reference its transition tables (inserted /
	// deleted / new-updated), exercising the set-oriented semantics.
	TransRefFrac float64

	// CyclicShapes appends, after the random rules, one hand-shaped
	// cyclic-but-terminating pattern per entry — "countdown" (a
	// column-stepped monotone countdown, discharged by the tier-2
	// ranking argument), "drain" (a delete-only cycle with a provably
	// out-of-scope refill), "converge" (an idempotent key-bounded
	// update). Each shape lives on its own fresh tables, so it never
	// perturbs the random part, and the knob consumes no randomness:
	// generation with it unset stays byte-identical.
	CyclicShapes []string

	// ValueFloor, when positive, lifts every constant written by the
	// generated insert and update statements by that amount. Generated
	// condition bounds live in [40, 60), so a floor of 60 or more makes
	// every written constant provably violate every condition — food
	// for condition-aware refinement. Zero (the default) leaves
	// generation byte-identical to earlier releases; the knob consumes
	// no randomness either way.
	ValueFloor int
}

func (c Config) withDefaults() Config {
	if c.Tables < 2 {
		c.Tables = c.Rules / 2
		if c.Tables < 2 {
			c.Tables = 2
		}
	}
	if c.WriteFanout < 1 {
		c.WriteFanout = 1
	}
	return c
}

// Generated bundles a generated workload.
type Generated struct {
	Schema *schema.Schema
	Defs   []rules.Definition
	Set    *rules.Set
}

// Generate produces a compiled random rule set. It panics only on
// internal generator bugs (generated definitions must always compile).
func Generate(cfg Config) (*Generated, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := schema.NewBuilder()
	for i := 0; i < cfg.Tables; i++ {
		b.Table(tableName(i), schema.Col("id", schema.Int), schema.Col("v", schema.Int))
	}
	shapes := map[string]bool{}
	for _, shape := range cfg.CyclicShapes {
		if shapes[shape] {
			continue
		}
		shapes[shape] = true
		switch shape {
		case "countdown":
			b.Table("cd_cnt", schema.Col("id", schema.Int), schema.Col("v", schema.Int), schema.Col("step", schema.Int))
		case "drain":
			b.Table("dr_pool", schema.Col("id", schema.Int), schema.Col("v", schema.Int))
		case "converge":
			b.Table("cv_keyd", schema.Col("id", schema.Int), schema.Col("v", schema.Int))
		default:
			return nil, fmt.Errorf("workload: unknown cyclic shape %q (want countdown, drain, or converge)", shape)
		}
	}
	sch, err := b.Build()
	if err != nil {
		return nil, err
	}

	defs := make([]rules.Definition, 0, cfg.Rules)
	for k := 0; k < cfg.Rules; k++ {
		defs = append(defs, genRule(cfg, rng, k))
	}
	// Priorities: orient from lower to higher rule index (always
	// acyclic).
	for i := 0; i < cfg.Rules; i++ {
		for j := i + 1; j < cfg.Rules; j++ {
			if rng.Float64() < cfg.PriorityDensity {
				defs[i].Precedes = append(defs[i].Precedes, ruleName(j))
			}
		}
	}
	// The cyclic shapes go AFTER every random draw above, so a config
	// with the knob unset generates byte-identical output (the
	// ValueFloor convention).
	for _, shape := range cfg.CyclicShapes {
		if shapes[shape] {
			shapes[shape] = false // emit each shape once
			defs = append(defs, shapeDefs(shape)...)
		}
	}
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		return nil, fmt.Errorf("workload: generated defs failed to compile: %w", err)
	}
	return &Generated{Schema: sch, Defs: defs, Set: set}, nil
}

// MustGenerate is Generate, panicking on error.
func MustGenerate(cfg Config) *Generated {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func tableName(i int) string { return fmt.Sprintf("t%d", i) }
func ruleName(k int) string  { return fmt.Sprintf("r%d", k) }

// shapeDefs returns the hand-shaped cyclic-but-terminating rules for
// one CyclicShapes entry. Each shape is rejected by acyclicity alone
// (it self-triggers) but carries a tier-2 discharge certificate; see
// the testdata fixtures of the same names.
func shapeDefs(shape string) []rules.Definition {
	updV := []rules.TriggerSpec{{Kind: schema.OpUpdate, Columns: []string{"v"}}}
	del := []rules.TriggerSpec{{Kind: schema.OpDelete}}
	switch shape {
	case "countdown":
		return []rules.Definition{{
			Name: "cd_dec", Table: "cd_cnt", Triggers: updV,
			Action: []string{"update cd_cnt set v = v - step where v > 0 and step >= 1"},
		}}
	case "drain":
		return []rules.Definition{{
			Name: "dr_drain", Table: "dr_pool", Triggers: del,
			Action: []string{"delete from dr_pool where v >= 0"},
		}, {
			Name: "dr_echo", Table: "dr_pool", Triggers: del,
			Action: []string{"insert into dr_pool values (9, -5)"},
		}}
	case "converge":
		return []rules.Definition{{
			Name: "cv_set", Table: "cv_keyd", Triggers: updV,
			Action: []string{"update cv_keyd set v = 1 where v = 0"},
		}}
	}
	return nil
}

// genRule produces one rule definition. The rule watches a home table
// and writes 1..WriteFanout target tables.
func genRule(cfg Config, rng *rand.Rand, k int) rules.Definition {
	home := rng.Intn(cfg.Tables)
	if cfg.Acyclic && home == cfg.Tables-1 {
		home = rng.Intn(cfg.Tables - 1) // leave at least one higher table
	}
	def := rules.Definition{
		Name:  ruleName(k),
		Table: tableName(home),
	}
	// Trigger: one random operation kind, remembering which transition
	// table it makes legal.
	var transTable string
	switch rng.Intn(3) {
	case 0:
		def.Triggers = []rules.TriggerSpec{{Kind: schema.OpInsert}}
		transTable = "inserted"
	case 1:
		def.Triggers = []rules.TriggerSpec{{Kind: schema.OpDelete}}
		transTable = "deleted"
	default:
		def.Triggers = []rules.TriggerSpec{{Kind: schema.OpUpdate, Columns: []string{"v"}}}
		transTable = "new-updated"
	}
	useTrans := rng.Float64() < cfg.TransRefFrac

	if rng.Float64() < cfg.ConditionFrac {
		if useTrans {
			def.Condition = fmt.Sprintf("exists (select 1 from %s where v < %d)", transTable, 40+rng.Intn(20))
		} else {
			def.Condition = fmt.Sprintf("exists (select 1 from %s where v < %d)", tableName(home), 40+rng.Intn(20))
		}
	}

	nStmts := 1 + rng.Intn(cfg.WriteFanout)
	var action string
	for s := 0; s < nStmts; s++ {
		target := rng.Intn(cfg.Tables)
		if cfg.Acyclic {
			// Only write strictly higher tables to keep TG_R acyclic.
			target = home + 1 + rng.Intn(cfg.Tables-home-1)
		}
		if s > 0 {
			action += "; "
		}
		if s == 0 && useTrans {
			// A set-oriented statement over the triggering transition.
			action += fmt.Sprintf("insert into %s select id, v from %s where v < %d",
				tableName(target), transTable, 60+rng.Intn(40))
			continue
		}
		p := rng.Float64()
		switch {
		case p < cfg.DeleteFrac:
			action += fmt.Sprintf("delete from %s where v < %d", tableName(target), rng.Intn(3)-3)
		case p < cfg.DeleteFrac+cfg.UpdateFrac:
			action += fmt.Sprintf("update %s set v = %d where id = %d",
				tableName(target), cfg.ValueFloor+rng.Intn(100), rng.Intn(5))
		default:
			action += fmt.Sprintf("insert into %s values (%d, %d)",
				tableName(target), rng.Intn(5), cfg.ValueFloor+rng.Intn(100))
		}
	}
	if rng.Float64() < cfg.ObservableFrac {
		action += fmt.Sprintf("; select v from %s where id = %d", tableName(home), rng.Intn(5))
	}
	def.Action = []string{action}
	return def
}

// SeedDatabase populates a database with n rows per table (ids 0..n-1,
// v = id), deterministically. Columns beyond the first two are padded
// with 1 — in particular cd_cnt.step = 1 satisfies the countdown
// shape's step >= 1 scope.
func SeedDatabase(sch *schema.Schema, n int) *storage.DB {
	db := storage.NewDB(sch)
	for _, t := range sch.TableNames() {
		cols := len(sch.Table(t).Columns)
		for i := 0; i < n; i++ {
			vals := []storage.Value{storage.IntV(int64(i)), storage.IntV(int64(i))}
			for len(vals) < cols {
				vals = append(vals, storage.IntV(1))
			}
			db.MustInsert(t, vals...)
		}
	}
	return db
}

// UserScript produces a small deterministic user transition touching the
// first nOps tables (one insert or update each), suitable as the initial
// transition for model checking.
func UserScript(sch *schema.Schema, rng *rand.Rand, nOps int) string {
	tables := sch.TableNames()
	script := ""
	for i := 0; i < nOps; i++ {
		t := tables[rng.Intn(len(tables))]
		if script != "" {
			script += "; "
		}
		switch rng.Intn(3) {
		case 0:
			script += fmt.Sprintf("insert into %s values (%d, %d)", t, 100+i, rng.Intn(50))
		case 1:
			script += fmt.Sprintf("update %s set v = %d where id = %d", t, rng.Intn(50), rng.Intn(3))
		default:
			script += fmt.Sprintf("delete from %s where id = %d", t, rng.Intn(3))
		}
	}
	return script
}
