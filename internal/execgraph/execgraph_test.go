package execgraph

import (
	"testing"

	"activerules/internal/engine"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
)

// prep compiles a schema + rule set, seeds the database via seed, runs
// the user script, and returns the ready engine.
func prep(t *testing.T, schemaSrc, rulesSrc, userOps string, seed func(*storage.DB)) *engine.Engine {
	t.Helper()
	sch := schema.MustParse(schemaSrc)
	defs, err := ruledef.Parse(rulesSrc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := rules.NewSet(sch, defs)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB(sch)
	if seed != nil {
		seed(db)
	}
	e := engine.New(set, db, engine.Options{})
	if userOps != "" {
		if _, err := e.ExecUser(userOps); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestConfluentDisjointRules(t *testing.T) {
	// Two unordered rules writing disjoint tables commute: many
	// interleavings, one final state (Figure 1's diamond).
	e := prep(t, "table t (v int)\ntable a (v int)\ntable b (v int)", `
create rule ra on t when inserted then insert into a select v from inserted
create rule rb on t when inserted then insert into b select v from inserted
`, "insert into t values (1)", nil)
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Branching {
		t.Error("two unordered eligible rules should branch (Observation 6.2)")
	}
	if !res.Confluent() {
		t.Errorf("expected confluence: %d final states, cycle=%v bound=%v",
			len(res.FinalDBs), res.CycleDetected, res.BoundExceeded)
	}
	db := res.FinalDBs[res.FinalFingerprints()[0]]
	if db.Table("a").Len() != 1 || db.Table("b").Len() != 1 {
		t.Error("both rules should have fired on every path")
	}
}

func TestNonConfluentRace(t *testing.T) {
	// Two unordered rules both set t.v; last writer wins, so the final
	// state depends on the order: exactly two final states.
	e := prep(t, "table t (v int)\ntable trig (x int)", `
create rule ra on trig when inserted then update t set v = 1
create rule rb on trig when inserted then update t set v = 2
`, "insert into trig values (0)", func(db *storage.DB) {
		db.MustInsert("t", storage.IntV(0))
	})
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confluent() {
		t.Error("race should not be confluent")
	}
	if len(res.FinalDBs) != 2 {
		t.Errorf("final states = %d, want 2", len(res.FinalDBs))
	}
	if !res.Terminates() {
		t.Error("the race still terminates")
	}
}

func TestWitnessPaths(t *testing.T) {
	// Non-confluent race: each final state carries a concrete schedule,
	// and replaying that schedule reproduces the state.
	e := prep(t, "table t (v int)\ntable trig (x int)", `
create rule ra on trig when inserted then update t set v = 1
create rule rb on trig when inserted then update t set v = 2
`, "insert into trig values (0)", func(db *storage.DB) {
		db.MustInsert("t", storage.IntV(0))
	})
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Witnesses) != 2 {
		t.Fatalf("witnesses = %d, want 2", len(res.Witnesses))
	}
	for fp, path := range res.Witnesses {
		if len(path) != 2 {
			t.Fatalf("witness path = %v", path)
		}
		// Replay the schedule on a fresh clone.
		replay := e.Clone()
		replay.BeginAssert()
		for _, name := range path {
			if _, _, _, err := replay.Consider(replay.Set().Rule(name)); err != nil {
				t.Fatal(err)
			}
		}
		if len(replay.EligibleRules()) != 0 {
			t.Error("witness should be a complete schedule")
		}
		if replay.DB().Fingerprint() != fp {
			t.Errorf("replaying %v did not reproduce its final state", path)
		}
	}
}

func TestOrderingRestoresConfluence(t *testing.T) {
	// The same race with a priority is a single path: confluent.
	e := prep(t, "table t (v int)\ntable trig (x int)", `
create rule ra on trig when inserted then update t set v = 1 precedes rb
create rule rb on trig when inserted then update t set v = 2
`, "insert into trig values (0)", func(db *storage.DB) {
		db.MustInsert("t", storage.IntV(0))
	})
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Branching {
		t.Error("a totally ordered pair should not branch")
	}
	if !res.Confluent() {
		t.Error("ordered race should be confluent")
	}
	// Final value is rb's (the lower-priority rule runs second).
	db := res.FinalDBs[res.FinalFingerprints()[0]]
	var v int64
	db.Table("t").Scan(func(tu *storage.Tuple) bool { v = tu.Vals[0].I; return true })
	if v != 2 {
		t.Errorf("final v = %d, want 2", v)
	}
}

func TestInsertDeleteLoopAnnihilates(t *testing.T) {
	// a deletes what the user inserted; b would re-insert on deletions.
	// Net effects make this terminate: a's delete annihilates the
	// insertion it is paired with, so b sees an empty composite
	// transition and never triggers (net-effect rule 4).
	e := prep(t, "table t (v int)", `
create rule a on t when inserted then delete from t
create rule b on t when deleted then insert into t values (1)
`, "insert into t values (1)", nil)
	res, err := Explore(e, Options{MaxStates: 5000, MaxDepth: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminates() {
		t.Error("net effects should annihilate the insert/delete pair")
	}
	db := res.FinalDBs[res.FinalFingerprints()[0]]
	if db.Table("t").Len() != 0 {
		t.Error("t should end empty")
	}
}

func TestCycleDetection(t *testing.T) {
	// A value-flipping rule revisits the same (D, TR) state forever: the
	// execution graph has a genuine cycle.
	e := prep(t, "table t (v int)", `
create rule flip on t when updated(v) then update t set v = 1 - v
`, "update t set v = 1", func(db *storage.DB) {
		db.MustInsert("t", storage.IntV(0))
	})
	res, err := Explore(e, Options{MaxStates: 5000, MaxDepth: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminates() {
		t.Error("flip rule should not terminate")
	}
	if !res.CycleDetected {
		t.Errorf("expected a detected cycle, got bound=%v", res.BoundExceeded)
	}
}

func TestGrowingNonterminationHitsBound(t *testing.T) {
	// A self-triggering inserter grows the database forever: no state
	// repeats, so the bound is the signal.
	e := prep(t, "table t (v int)", `
create rule r on t when inserted then insert into t values (1)
`, "insert into t values (0)", nil)
	res, err := Explore(e, Options{MaxStates: 200, MaxDepth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminates() {
		t.Error("self-inserter should not terminate")
	}
}

func TestPartialConfluenceOnDataTable(t *testing.T) {
	// The rules race on scratch but agree on data: partially confluent
	// with respect to {data}, not confluent overall (Section 7).
	e := prep(t, "table trig (x int)\ntable scratch (v int)\ntable data (v int)", `
create rule ra on trig when inserted then update scratch set v = 1; insert into data values (1)
create rule rb on trig when inserted then update scratch set v = 2; insert into data values (2)
`, "insert into trig values (0)", func(db *storage.DB) {
		db.MustInsert("scratch", storage.IntV(0))
	})
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confluent() {
		t.Error("scratch race should break full confluence")
	}
	if !res.PartiallyConfluentOn([]string{"data"}) {
		t.Error("data table should be order-independent")
	}
	if res.PartiallyConfluentOn([]string{"scratch"}) {
		t.Error("scratch table is order-dependent")
	}
}

func TestObservableStreams(t *testing.T) {
	// Two unordered observable rules: the order of their SELECT actions
	// differs across paths, so two streams exist even though the final
	// database state is identical (observable determinism and confluence
	// are orthogonal, Section 8).
	e := prep(t, "table t (v int)", `
create rule ra on t when inserted then select v from inserted
create rule rb on t when inserted then select v + 1 from inserted
`, "insert into t values (5)", nil)
	res, err := Explore(e, Options{TrackObservables: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confluent() {
		t.Error("pure selects are confluent")
	}
	if res.ObservablyDeterministic() {
		t.Error("unordered observables should yield two streams")
	}
	if len(res.Streams) != 2 {
		t.Errorf("streams = %d, want 2", len(res.Streams))
	}
}

func TestOrderedObservablesDeterministic(t *testing.T) {
	e := prep(t, "table t (v int)", `
create rule ra on t when inserted then select v from inserted precedes rb
create rule rb on t when inserted then select v + 1 from inserted
`, "insert into t values (5)", nil)
	res, err := Explore(e, Options{TrackObservables: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ObservablyDeterministic() {
		t.Errorf("ordered observables should be deterministic: %d streams", len(res.Streams))
	}
	if len(res.StreamRenderings()) != 1 {
		t.Errorf("renderings = %v", res.StreamRenderings())
	}
}

func TestRollbackPaths(t *testing.T) {
	// One of two unordered rules rolls back; the other, if it runs first,
	// deletes the triggering tuple and untriggers the guard. The outcome
	// (rollback or not) depends on the order.
	e := prep(t, "table t (v int)\ntable u (v int)", `
create rule guard on t when inserted then rollback
create rule work on t when inserted then delete from t; insert into u values (1)
`, "insert into t values (1)", nil)
	res, err := Explore(e, Options{TrackObservables: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AnyRollback {
		t.Error("some path should roll back")
	}
	if res.Confluent() {
		t.Error("rollback race should not be confluent")
	}
	if res.ObservablyDeterministic() {
		t.Error("rollback timing differs across paths")
	}
}

func TestUntriggeringDuringExploration(t *testing.T) {
	// sweep (higher priority) deletes the inserted tuple; keep becomes
	// untriggered on every path: single final state with empty log.
	e := prep(t, "table t (v int)\ntable log (v int)", `
create rule sweep on t when inserted then delete from t precedes keep
create rule keep on t when inserted then insert into log select v from inserted
`, "insert into t values (1)", nil)
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confluent() {
		t.Error("should be confluent (single path)")
	}
	db := res.FinalDBs[res.FinalFingerprints()[0]]
	if db.Table("log").Len() != 0 {
		t.Error("keep should have been untriggered")
	}
}

func TestExploreDoesNotMutateEngine(t *testing.T) {
	e := prep(t, "table t (v int)\ntable u (v int)", `
create rule r on t when inserted then insert into u select v from inserted
`, "insert into t values (1)", nil)
	before := e.StateFingerprint()
	if _, err := Explore(e, Options{}); err != nil {
		t.Fatal(err)
	}
	if e.StateFingerprint() != before {
		t.Error("Explore mutated the engine")
	}
	// The engine still runs normally afterwards.
	if _, err := e.Assert(); err != nil {
		t.Fatal(err)
	}
	if e.DB().Table("u").Len() != 1 {
		t.Error("post-exploration Assert failed")
	}
}

func TestConditionFalseFinalState(t *testing.T) {
	// A triggered rule whose condition is false is still considered; the
	// final state records that consideration consumed the transition.
	e := prep(t, "table t (v int)\ntable u (v int)", `
create rule r on t when inserted if exists (select 1 from inserted where v > 10) then insert into u values (1)
`, "insert into t values (1)", nil)
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confluent() {
		t.Error("single rule should be confluent")
	}
	db := res.FinalDBs[res.FinalFingerprints()[0]]
	if db.Table("u").Len() != 0 {
		t.Error("condition was false; no action expected")
	}
}

func TestDisableMemoSameOutcomes(t *testing.T) {
	// Memoization is a pure optimization: the reachable final states and
	// streams are identical with and without it; only the work differs.
	e := prep(t, "table t (v int)\ntable a (v int)\ntable b (v int)", `
create rule ra on t when inserted then insert into a select v from inserted
create rule rb on t when inserted then update b set v = 1
create rule rc on t when inserted then update b set v = 2
`, "insert into t values (1)", func(db *storage.DB) {
		db.MustInsert("b", storage.IntV(0))
	})
	memo, err := Explore(e, Options{TrackObservables: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Explore(e, Options{TrackObservables: true, DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(memo.FinalDBs) != len(raw.FinalDBs) {
		t.Errorf("final states differ: memo=%d raw=%d", len(memo.FinalDBs), len(raw.FinalDBs))
	}
	for fp := range memo.FinalDBs {
		if _, ok := raw.FinalDBs[fp]; !ok {
			t.Error("memoized exploration found a state the raw one missed")
		}
	}
	if raw.StatesExplored < memo.StatesExplored {
		t.Errorf("raw exploration should do at least as much work: %d vs %d",
			raw.StatesExplored, memo.StatesExplored)
	}
}

func TestThreeWayBranchCount(t *testing.T) {
	e := prep(t, "table t (v int)\ntable a (v int)\ntable b (v int)\ntable c (v int)", `
create rule ra on t when inserted then insert into a values (1)
create rule rb on t when inserted then insert into b values (1)
create rule rc on t when inserted then insert into c values (1)
`, "insert into t values (1)", nil)
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxEligible != 3 {
		t.Errorf("MaxEligible = %d, want 3", res.MaxEligible)
	}
	if !res.Confluent() {
		t.Error("disjoint inserters are confluent")
	}
	// 3! = 6 paths but states merge; all 8 subsets of fired rules are
	// distinct states: explored states should be well below 16.
	if res.StatesExplored > 16 {
		t.Errorf("memoization ineffective: %d states", res.StatesExplored)
	}
}
