// Parallel frontier-based exploration. ExploreParallel expands states
// concurrently with a worker pool against a sharded claim-based memo
// table and merges the per-worker partial results deterministically:
// every field of Result except Witnesses is a function of the explored
// state graph alone (not of worker scheduling), and Witnesses are
// re-derived from the recorded edge set as shortest-then-lexicographic-
// least schedules, so a completed exploration is bit-identical from run
// to run and to the sequential explorer's verdicts.
//
// Cycle detection is adapted to concurrent visitation in two layers:
// each task carries a path-local ancestor chain (the moral equivalent of
// the sequential explorer's onstack set), and — because two workers can
// claim the states of one cycle concurrently, each seeing the other's
// half only as "already claimed" — the merged edge graph is re-checked
// for cycles after the frontier drains. The post-pass is authoritative;
// the ancestor chain only flags cycles early.
package execgraph

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"activerules/internal/engine"
	"activerules/internal/par"
	"activerules/internal/rules"
	"activerules/internal/storage"
)

// pkey is a memoization key: the sha256 state hash, with the observable
// history folded in when streams are tracked.
type pkey = [32]byte

// shardedMemo is the claim table: N shards, each a mutex-guarded set of
// visited state keys. A state belongs to the shard selected by the top
// bits of its hash, so concurrent claims of unrelated states almost
// never contend on the same lock.
type shardedMemo struct {
	shift  uint
	shards []memoShard
}

type memoShard struct {
	mu sync.Mutex
	m  map[pkey]struct{}
	// pad shards apart so neighboring locks do not share a cache line.
	_ [40]byte
}

func newShardedMemo(n int) *shardedMemo {
	if n <= 0 {
		n = 64
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	n = 1 << uint(bits.Len(uint(n-1))) // round up to a power of two
	m := &shardedMemo{shift: uint(32 - bits.TrailingZeros(uint(n))), shards: make([]memoShard, n)}
	for i := range m.shards {
		m.shards[i].m = make(map[pkey]struct{})
	}
	return m
}

// claim inserts the key and reports whether it was absent — the caller
// then owns expanding that state; every later arrival sees a duplicate.
func (s *shardedMemo) claim(k pkey) bool {
	sh := &s.shards[binary.BigEndian.Uint32(k[:4])>>s.shift]
	sh.mu.Lock()
	_, dup := sh.m[k]
	if !dup {
		sh.m[k] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// pnode is one entry of a task's path-local ancestor chain. Chains share
// structure (each child prepends one node), so spawning a task is O(1)
// and membership checks are O(path length).
type pnode struct {
	key    pkey
	parent *pnode
}

func (n *pnode) has(k pkey) bool {
	for c := n; c != nil; c = c.parent {
		if c.key == k {
			return true
		}
	}
	return false
}

// onode is one link of a task's observable-history chain, materialized
// only when a final state records its stream.
type onode struct {
	events []engine.ObservableEvent
	parent *onode
}

func (o *onode) materialize() []engine.ObservableEvent {
	var chain []*onode
	for c := o; c != nil; c = c.parent {
		chain = append(chain, c)
	}
	var out []engine.ObservableEvent
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].events...)
	}
	return out
}

// ptask is one unit of frontier work: consider rule from the state held
// by eng (a parent engine the task clones, never mutates), then claim
// and possibly expand the resulting state. The root task has rule nil
// and eng already positioned at the initial state.
type ptask struct {
	parent  *pnode
	rule    *rules.Rule
	eng     *engine.Engine
	obs     *onode
	obsHash pkey
	hasObs  bool
	depth   int
}

// pedge is one recorded transition of the state graph, feeding the
// witness reconstruction and the cross-path cycle confirmation.
type pedge struct {
	from pkey
	rule string
	to   pkey
}

// pfinal is a recorded final state.
type pfinal struct {
	fp     [32]byte
	db     *storage.DB
	stream string
	events []engine.ObservableEvent
}

// pacc accumulates one worker's partial results without locking; the
// slices and maps are merged after the frontier drains.
type pacc struct {
	edges       []pedge
	finals      map[pkey]*pfinal
	branching   bool
	anyRollback bool
	cycle       bool
	maxEligible int
}

type pexplorer struct {
	opts    Options
	ctx     context.Context
	memo    *shardedMemo
	states  atomic.Int64
	bound   atomic.Bool
	failed  atomic.Bool
	rootKey pkey

	mu  sync.Mutex
	err error
}

// ExploreParallel is Explore with a worker pool: states are expanded
// concurrently (Options.Parallelism workers, default one per CPU)
// against a sharded memo table (Options.MemoShards). On a completed
// exploration the Result is bit-identical to the sequential explorer's
// in every field except Witnesses, which are the shortest-then-
// lexicographically-least schedules instead of the first path DFS
// happened to walk — a deterministic choice, so parallel output is
// run-to-run stable. When a bound is exceeded the exploration is
// inconclusive (exactly as with Explore) and the partial counts may
// differ between runs.
func ExploreParallel(e *engine.Engine, opts Options) (*Result, error) {
	return ExploreParallelContext(context.Background(), e, opts)
}

// ExploreParallelContext is ExploreParallel with cancellation: ctx is
// checked at every task, and on cancellation the pool drains and ctx's
// error is returned (wrapped, so errors.Is works) with no result.
func ExploreParallelContext(ctx context.Context, e *engine.Engine, opts Options) (*Result, error) {
	if opts.MaxStates <= 0 {
		opts.MaxStates = 200000
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 10000
	}
	workers := par.Workers(opts.Parallelism)
	x := &pexplorer{opts: opts, ctx: ctx, memo: newShardedMemo(opts.MemoShards)}
	accs := make([]pacc, workers)
	for i := range accs {
		accs[i].finals = make(map[pkey]*pfinal)
	}
	root := e.Clone()
	root.BeginAssert()
	par.RunQueue(workers, []ptask{{eng: root}}, func(worker int, t ptask, q *par.Queue[ptask]) {
		x.process(&accs[worker], t, q)
	})
	if x.err != nil {
		return nil, x.err
	}
	return x.merge(accs), nil
}

// fail records the first error and drains the pool.
func (x *pexplorer) fail(err error, q *par.Queue[ptask]) {
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	x.failed.Store(true)
	q.Stop()
}

// process handles one task: derive the child state, record its edge,
// then claim and expand it. The checks mirror the sequential explorer's
// visit (rollback, depth bound, cycle, memo, state bound, final) so
// that in-bounds explorations produce identical verdicts.
func (x *pexplorer) process(acc *pacc, t ptask, q *par.Queue[ptask]) {
	if x.failed.Load() {
		return
	}
	if err := x.ctx.Err(); err != nil {
		x.fail(fmt.Errorf("execgraph: exploration cancelled: %w", err), q)
		return
	}
	eng := t.eng
	obs, obsHash, hasObs := t.obs, t.obsHash, t.hasObs
	rolled := false
	if t.rule != nil {
		fork := eng.Clone()
		_, events, r, err := fork.Consider(t.rule)
		if err != nil {
			x.fail(fmt.Errorf("execgraph: considering %q: %w", t.rule.Name, err), q)
			return
		}
		rolled = r
		if x.opts.TrackObservables && len(events) > 0 {
			obs = &onode{events: events, parent: obs}
			obsHash = foldObsHash(obsHash, hasObs, events)
			hasObs = true
		}
		eng = fork
	}
	key := stateKey(eng, obsHash, hasObs)
	if t.parent != nil {
		acc.edges = append(acc.edges, pedge{from: t.parent.key, rule: t.rule.Name, to: key})
	} else {
		x.rootKey = key
	}
	if rolled {
		// A rollback terminates rule processing immediately: the rolled
		// state is final regardless of depth, and is never expanded.
		acc.anyRollback = true
		x.recordFinal(acc, key, eng, obs)
		return
	}
	if t.parent != nil && t.parent.has(key) {
		// Path-local ancestor hit: this edge closes a cycle along the
		// current path. The state itself was claimed by the ancestor, so
		// there is nothing further to expand here.
		acc.cycle = true
		return
	}
	if t.depth > x.opts.MaxDepth {
		x.bound.Store(true)
		return
	}
	if !x.memo.claim(key) {
		return
	}
	if x.states.Add(1) > int64(x.opts.MaxStates) {
		x.bound.Store(true)
		return
	}
	eligible := eng.EligibleRules()
	if len(eligible) == 0 {
		x.recordFinal(acc, key, eng, obs)
		return
	}
	if len(eligible) > 1 {
		acc.branching = true
	}
	if len(eligible) > acc.maxEligible {
		acc.maxEligible = len(eligible)
	}
	node := &pnode{key: key, parent: t.parent}
	for _, r := range eligible {
		q.Push(ptask{parent: node, rule: r, eng: eng, obs: obs, obsHash: obsHash, hasObs: hasObs, depth: t.depth + 1})
	}
}

func (x *pexplorer) recordFinal(acc *pacc, key pkey, eng *engine.Engine, obs *onode) {
	if _, ok := acc.finals[key]; ok {
		return
	}
	f := &pfinal{fp: eng.DB().Fingerprint(), db: eng.DB().Clone()}
	if x.opts.TrackObservables {
		f.events = obs.materialize()
		f.stream = renderStream(f.events)
	}
	acc.finals[key] = f
}

// stateKey derives the memo key from the engine's state hash, folding in
// the observable-history hash when streams are tracked (so paths with
// different pasts are both explored, exactly as in the sequential key).
func stateKey(e *engine.Engine, obsHash pkey, hasObs bool) pkey {
	sh := e.StateHash()
	if !hasObs {
		return sh
	}
	h := sha256.New()
	h.Write(sh[:])
	h.Write([]byte{'#'})
	h.Write(obsHash[:])
	var out pkey
	h.Sum(out[:0])
	return out
}

// foldObsHash extends the rolling observable-history hash with newly
// produced events, one chain link per event. Per-event chaining makes
// the hash a function of the event sequence alone — not of how the
// events were batched into considerations — so it induces the same
// state equivalence as the sequential explorer's whole-stream hash
// while costing O(new events) per step instead of O(history).
func foldObsHash(prev pkey, has bool, events []engine.ObservableEvent) pkey {
	for _, ev := range events {
		h := sha256.New()
		if has {
			h.Write(prev[:])
		}
		h.Write([]byte(ev.String()))
		h.Write([]byte{'\n'})
		h.Sum(prev[:0])
		has = true
	}
	return prev
}

// merge combines the per-worker accumulators into the final Result and
// runs the two deterministic post-passes over the recorded state graph:
// cross-path cycle confirmation and witness reconstruction.
func (x *pexplorer) merge(accs []pacc) *Result {
	res := &Result{
		StatesExplored: int(x.states.Load()),
		FinalDBs:       make(map[[32]byte]*storage.DB),
		Streams:        make(map[string][]engine.ObservableEvent),
		Witnesses:      make(map[[32]byte][]string),
		BoundExceeded:  x.bound.Load(),
	}
	if res.StatesExplored > x.opts.MaxStates {
		res.StatesExplored = x.opts.MaxStates
	}
	finals := make(map[pkey]*pfinal)
	nedges := 0
	for i := range accs {
		nedges += len(accs[i].edges)
	}
	edges := make([]pedge, 0, nedges)
	cycle := false
	for i := range accs {
		a := &accs[i]
		edges = append(edges, a.edges...)
		res.Branching = res.Branching || a.branching
		res.AnyRollback = res.AnyRollback || a.anyRollback
		cycle = cycle || a.cycle
		if a.maxEligible > res.MaxEligible {
			res.MaxEligible = a.maxEligible
		}
		for k, f := range a.finals {
			if _, ok := finals[k]; !ok {
				finals[k] = f
			}
		}
	}
	adj := make(map[pkey][]pedge)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for k := range adj {
		es := adj[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].rule != es[j].rule {
				return es[i].rule < es[j].rule
			}
			return string(es[i].to[:]) < string(es[j].to[:])
		})
	}
	if !cycle {
		cycle = hasCycle(adj, x.rootKey)
	}
	res.CycleDetected = cycle
	best := bestPaths(adj, x.rootKey)
	for k, f := range finals {
		if _, ok := res.FinalDBs[f.fp]; !ok {
			res.FinalDBs[f.fp] = f.db
		}
		if x.opts.TrackObservables {
			if _, ok := res.Streams[f.stream]; !ok {
				res.Streams[f.stream] = f.events
			}
		}
		p, reachable := best[k]
		if !reachable {
			continue // only possible when the exploration was cut short
		}
		if cur, ok := res.Witnesses[f.fp]; !ok || shortlexLess(p, cur) {
			res.Witnesses[f.fp] = p
		}
	}
	return res
}

// hasCycle reports whether the recorded state graph contains a cycle
// reachable from root — the cross-path confirmation: two workers can
// claim the states of one cycle concurrently, so neither sees the other
// on its ancestor chain, but every closing edge was recorded and a
// plain iterative DFS finds the back edge here.
func hasCycle(adj map[pkey][]pedge, root pkey) bool {
	const (
		gray  = 1
		black = 2
	)
	color := make(map[pkey]int, len(adj))
	type frame struct {
		key pkey
		ei  int
	}
	stack := []frame{{key: root}}
	color[root] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		es := adj[f.key]
		advanced := false
		for f.ei < len(es) {
			w := es[f.ei].to
			f.ei++
			switch color[w] {
			case gray:
				return true
			case black:
			default:
				color[w] = gray
				stack = append(stack, frame{key: w})
				advanced = true
			}
			if advanced {
				break
			}
		}
		if !advanced {
			color[f.key] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// bestPaths returns, for every node reachable from root in the recorded
// state graph, the shortest-then-lexicographically-least schedule (rule
// name sequence) reaching it. The choice is a function of the explored
// graph alone — never of worker scheduling — which is what makes the
// parallel explorer's Witnesses run-to-run stable.
func bestPaths(adj map[pkey][]pedge, root pkey) map[pkey][]string {
	dist := map[pkey]int{root: 0}
	level := []pkey{root}
	var levels [][]pkey
	for len(level) > 0 {
		levels = append(levels, level)
		var next []pkey
		for _, u := range level {
			for _, e := range adj[u] {
				if _, seen := dist[e.to]; !seen {
					dist[e.to] = dist[u] + 1
					next = append(next, e.to)
				}
			}
		}
		level = next
	}
	best := map[pkey][]string{root: {}}
	for d := 0; d < len(levels); d++ {
		for _, u := range levels[d] {
			pu := best[u]
			for _, e := range adj[u] {
				if dist[e.to] != d+1 {
					continue
				}
				cand := append(append(make([]string, 0, len(pu)+1), pu...), e.rule)
				if cur, ok := best[e.to]; !ok || lexLess(cand, cur) {
					best[e.to] = cand
				}
			}
		}
	}
	return best
}

// lexLess compares equal-length schedules elementwise.
func lexLess(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// shortlexLess orders schedules by length first, then lexicographically
// — the total order used to pick one witness per final fingerprint.
func shortlexLess(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return lexLess(a, b)
}
