package execgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"activerules/internal/engine"
	"activerules/internal/rules"
	"activerules/internal/storage"
	"activerules/internal/workload"
)

// workloadEngine builds a ready-to-explore engine from a generated
// workload: seeded database, user transition executed, assertion point
// not yet begun (the explorers do that on their internal clone).
func workloadEngine(t *testing.T, cfg workload.Config, rows, ops int) (*engine.Engine, *rules.Set) {
	t.Helper()
	g, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	db := workload.SeedDatabase(g.Schema, rows)
	e := engine.New(g.Set, db, engine.Options{})
	script := workload.UserScript(g.Schema, rand.New(rand.NewSource(cfg.Seed+1)), ops)
	if _, err := e.ExecUser(script); err != nil {
		t.Fatalf("seed %d: user script: %v", cfg.Seed, err)
	}
	return e, g.Set
}

// compareResults asserts that two explorations agree on every
// schedule-independent field. Witnesses are deliberately excluded: the
// sequential explorer keeps the first DFS path, the parallel one the
// shortlex-least path; witness validity is checked separately by replay.
func compareResults(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	if seq.BoundExceeded || par.BoundExceeded {
		// A bounded exploration is incomplete: the explored subset is
		// order-dependent, so only the inconclusive verdict must agree.
		if seq.BoundExceeded != par.BoundExceeded {
			t.Errorf("%s: BoundExceeded: seq=%v par=%v", label, seq.BoundExceeded, par.BoundExceeded)
		}
		return
	}
	if seq.StatesExplored != par.StatesExplored {
		t.Errorf("%s: StatesExplored: seq=%d par=%d", label, seq.StatesExplored, par.StatesExplored)
	}
	if seq.Branching != par.Branching {
		t.Errorf("%s: Branching: seq=%v par=%v", label, seq.Branching, par.Branching)
	}
	if seq.CycleDetected != par.CycleDetected {
		t.Errorf("%s: CycleDetected: seq=%v par=%v", label, seq.CycleDetected, par.CycleDetected)
	}
	if seq.AnyRollback != par.AnyRollback {
		t.Errorf("%s: AnyRollback: seq=%v par=%v", label, seq.AnyRollback, par.AnyRollback)
	}
	if seq.MaxEligible != par.MaxEligible {
		t.Errorf("%s: MaxEligible: seq=%d par=%d", label, seq.MaxEligible, par.MaxEligible)
	}
	if seq.Terminates() != par.Terminates() {
		t.Errorf("%s: Terminates: seq=%v par=%v", label, seq.Terminates(), par.Terminates())
	}
	if seq.Confluent() != par.Confluent() {
		t.Errorf("%s: Confluent: seq=%v par=%v", label, seq.Confluent(), par.Confluent())
	}
	sf, pf := seq.FinalFingerprints(), par.FinalFingerprints()
	if len(sf) != len(pf) {
		t.Errorf("%s: final states: seq=%d par=%d", label, len(sf), len(pf))
	} else {
		for i := range sf {
			if sf[i] != pf[i] {
				t.Errorf("%s: final fingerprint %d differs", label, i)
			}
		}
	}
	ss, ps := seq.StreamRenderings(), par.StreamRenderings()
	if len(ss) != len(ps) {
		t.Errorf("%s: streams: seq=%d par=%d", label, len(ss), len(ps))
	} else {
		for i := range ss {
			if ss[i] != ps[i] {
				t.Errorf("%s: stream %d differs:\nseq: %q\npar: %q", label, i, ss[i], ps[i])
			}
		}
	}
}

// replayWitness re-executes a witness schedule from the engine's initial
// state and returns the final database fingerprint it reaches.
func replayWitness(t *testing.T, e *engine.Engine, set *rules.Set, path []string) [32]byte {
	t.Helper()
	run := e.Clone()
	run.BeginAssert()
	for _, name := range path {
		r := set.Rule(name)
		if r == nil {
			t.Fatalf("witness names unknown rule %q", name)
		}
		if _, _, rolled, err := run.Consider(r); err != nil {
			t.Fatalf("witness replay: considering %q: %v", name, err)
		} else if rolled {
			break
		}
	}
	return run.DB().Fingerprint()
}

// diffConfigs are the generated workloads the differential and
// metamorphic suites run on: a spread over triggering topology (acyclic
// and cyclic), fanout, conditions, priorities, observables, and
// transition-table references. Seeds vary within each shape.
func diffConfigs() []workload.Config {
	var cfgs []workload.Config
	// Acyclic topologies, unordered rules: guaranteed-finite graphs with
	// heavy branching (every eligible set is explored in full).
	for seed := int64(1); seed <= 8; seed++ {
		cfgs = append(cfgs, workload.Config{
			Seed: seed, Rules: 7, Tables: 3, Acyclic: true,
			WriteFanout: 2, UpdateFrac: 0.4, DeleteFrac: 0.1,
			ConditionFrac: 0.2, TransRefFrac: 0.4,
		})
	}
	// Acyclic with observables: state identity folds in the stream.
	for seed := int64(20); seed <= 27; seed++ {
		cfgs = append(cfgs, workload.Config{
			Seed: seed, Rules: 6, Tables: 3, Acyclic: true,
			WriteFanout: 2, UpdateFrac: 0.5, ConditionFrac: 0.2,
			PriorityDensity: 0.1, ObservableFrac: 0.6, TransRefFrac: 0.3,
		})
	}
	// Cyclic topologies: triggering cycles appear, exercising cycle
	// detection (path-local and cross-path).
	for seed := int64(40); seed <= 47; seed++ {
		cfgs = append(cfgs, workload.Config{
			Seed: seed, Rules: 5, Tables: 2,
			WriteFanout: 1, UpdateFrac: 0.6, DeleteFrac: 0.2,
			ConditionFrac: 0.3, PriorityDensity: 0.1, TransRefFrac: 0.3,
		})
	}
	return cfgs
}

// TestDifferentialHandwritten runs the differential comparison on
// handcrafted scenarios covering the shapes random generation rarely
// hits: genuine state-space cycles, rollback races, untriggering, and
// unbounded growth.
func TestDifferentialHandwritten(t *testing.T) {
	cases := []struct {
		name    string
		schema  string
		rules   string
		userOps string
		seed    func(*storage.DB)
		opts    Options
	}{
		{
			name:   "confluent-diamond",
			schema: "table t (v int)\ntable a (v int)\ntable b (v int)",
			rules: `
create rule ra on t when inserted then insert into a select v from inserted
create rule rb on t when inserted then insert into b select v from inserted
`,
			userOps: "insert into t values (1)",
		},
		{
			name:   "nonconfluent-race",
			schema: "table t (v int)\ntable trig (x int)",
			rules: `
create rule ra on trig when inserted then update t set v = 1
create rule rb on trig when inserted then update t set v = 2
`,
			userOps: "insert into trig values (0)",
			seed:    func(db *storage.DB) { db.MustInsert("t", storage.IntV(0)) },
		},
		{
			name:   "flip-cycle",
			schema: "table t (v int)",
			rules: `
create rule flip on t when updated(v) then update t set v = 1 - v
`,
			userOps: "update t set v = 1",
			seed:    func(db *storage.DB) { db.MustInsert("t", storage.IntV(0)) },
			opts:    Options{MaxStates: 5000, MaxDepth: 500},
		},
		{
			name:   "rollback-race",
			schema: "table t (v int)\ntable u (v int)",
			rules: `
create rule guard on t when inserted then rollback
create rule work on t when inserted then delete from t; insert into u values (1)
`,
			userOps: "insert into t values (1)",
			opts:    Options{TrackObservables: true},
		},
		{
			name:   "untriggering",
			schema: "table t (v int)\ntable log (v int)",
			rules: `
create rule sweep on t when inserted then delete from t precedes keep
create rule keep on t when inserted then insert into log select v from inserted
`,
			userOps: "insert into t values (1)",
		},
		{
			name:   "observable-race",
			schema: "table t (v int)",
			rules: `
create rule ra on t when inserted then select v from t where v >= 0
create rule rb on t when inserted then update t set v = v + 10
`,
			userOps: "insert into t values (1)",
			opts:    Options{TrackObservables: true},
		},
		{
			name:   "growing-bound",
			schema: "table t (v int)",
			rules: `
create rule r on t when inserted then insert into t values (1)
`,
			userOps: "insert into t values (0)",
			opts:    Options{MaxStates: 200, MaxDepth: 100},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := prep(t, tc.schema, tc.rules, tc.userOps, tc.seed)
			seq, err := Explore(e, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			popts := tc.opts
			popts.Parallelism = 4
			par, err := ExploreParallel(e, popts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, tc.name, seq, par)
		})
	}
}

// TestDifferentialGeneratedWorkloads is the core differential harness:
// on every generated workload, Explore and ExploreParallel must agree on
// every schedule-independent Result field, and the parallel witnesses
// must replay to their fingerprints.
func TestDifferentialGeneratedWorkloads(t *testing.T) {
	completed := 0
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d", cfg.Seed), func(t *testing.T) {
			e, set := workloadEngine(t, cfg, 3, 6)
			opts := Options{TrackObservables: true, MaxStates: 1500}
			seq, err := Explore(e, opts)
			if err != nil {
				t.Fatal(err)
			}
			popts := opts
			popts.Parallelism = 4
			par, err := ExploreParallel(e, popts)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, fmt.Sprintf("seed %d", cfg.Seed), seq, par)
			if !seq.BoundExceeded {
				completed++
				for fp, path := range par.Witnesses {
					if got := replayWitness(t, e, set, path); got != fp {
						t.Errorf("seed %d: witness %v replays to a different final state", cfg.Seed, path)
					}
				}
			}
		})
	}
	if completed < 12 {
		t.Errorf("only %d workloads completed in-bounds; the differential corpus is too thin", completed)
	}
}

// TestDifferentialNoObservables covers the untracked-stream mode, where
// state identity is the bare (D, TR) fingerprint.
func TestDifferentialNoObservables(t *testing.T) {
	for _, cfg := range diffConfigs()[:8] {
		e, _ := workloadEngine(t, cfg, 3, 6)
		seq, err := Explore(e, Options{MaxStates: 1500})
		if err != nil {
			t.Fatal(err)
		}
		par, err := ExploreParallel(e, Options{MaxStates: 1500, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, fmt.Sprintf("seed %d", cfg.Seed), seq, par)
	}
}

// TestParallelWitnessStability pins the determinism guarantee: repeated
// parallel explorations — whose worker interleavings differ — must
// produce byte-identical witnesses, because witnesses are re-derived
// from the explored graph as shortlex-least schedules.
func TestParallelWitnessStability(t *testing.T) {
	cfg := diffConfigs()[4] // 127 states, 17 distinct final fingerprints
	e, _ := workloadEngine(t, cfg, 3, 6)
	base, err := ExploreParallel(e, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		got, err := ExploreParallel(e, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Witnesses) != len(base.Witnesses) {
			t.Fatalf("round %d: %d witnesses, want %d", round, len(got.Witnesses), len(base.Witnesses))
		}
		for fp, want := range base.Witnesses {
			path, ok := got.Witnesses[fp]
			if !ok {
				t.Fatalf("round %d: missing witness for a base fingerprint", round)
			}
			if len(path) != len(want) {
				t.Fatalf("round %d: witness %v, want %v", round, path, want)
			}
			for i := range want {
				if path[i] != want[i] {
					t.Fatalf("round %d: witness %v, want %v", round, path, want)
				}
			}
		}
	}
}
