// Package execgraph explores the execution graphs of Section 4
// exhaustively: from an initial state (a database plus an initial
// transition), it follows every possible choice among eligible rules,
// memoizing states (D, TR), and reports the set of reachable final
// states, branching, cycles (potential nontermination), and — optionally
// — the set of distinct observable action streams.
//
// The explorer provides exact ground truth on small instances for the
// conservative static analyses of Sections 5–8: a rule set the analyzer
// declares terminating must never produce a cycle or exhaust the bound;
// one declared confluent must reach exactly one final database state; one
// declared observably deterministic must produce exactly one observable
// stream.
package execgraph

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"

	"activerules/internal/engine"
	"activerules/internal/storage"
)

// Options bound the exploration.
type Options struct {
	// MaxStates bounds the number of distinct states explored; 0 means
	// 200000.
	MaxStates int
	// MaxDepth bounds the recursion (path length); 0 means 10000.
	MaxDepth int
	// TrackObservables augments state identity with the observable
	// history and records the distinct observable streams reaching final
	// states. Required for ObservablyDeterministic.
	TrackObservables bool
	// DisableMemo turns off cross-path state memoization (cycle
	// detection along the current path is kept). Exists only for the
	// ablation benchmarks; exploration is exponential without it.
	// ExploreParallel ignores it: claim-based deduplication on the
	// shared memo table is what makes concurrent expansion sound.
	DisableMemo bool
	// Parallelism is the worker count for ExploreParallel: 0 means one
	// worker per CPU (GOMAXPROCS), 1 a single worker, n > 1 exactly n.
	// Explore (the sequential explorer) ignores it.
	Parallelism int
	// MemoShards is the number of shards of ExploreParallel's memo
	// table, rounded up to a power of two; 0 means 64. States map to
	// shards by the top bits of their sha256 state hash. Explore
	// ignores it.
	MemoShards int
}

// Result is the outcome of an exploration.
type Result struct {
	// StatesExplored counts distinct states visited.
	StatesExplored int
	// FinalDBs maps each distinct final database fingerprint to a
	// representative database (a clone, safe to inspect).
	FinalDBs map[[32]byte]*storage.DB
	// Streams maps each distinct observable stream (canonical rendering)
	// to its events, populated when TrackObservables is set.
	Streams map[string][]engine.ObservableEvent
	// Branching reports whether any state had more than one eligible
	// rule (the premise of Observation 6.2).
	Branching bool
	// CycleDetected reports a cycle in the execution graph: an infinite
	// path exists, so rule processing may not terminate.
	CycleDetected bool
	// BoundExceeded reports that MaxStates or MaxDepth was hit; the
	// exploration is then incomplete and verdicts are inconclusive.
	BoundExceeded bool
	// AnyRollback reports whether some path ended in a rollback.
	AnyRollback bool
	// MaxEligible is the largest eligible-set size seen at any state.
	MaxEligible int
	// Witnesses maps each final database fingerprint to the sequence of
	// rule considerations of the first path that reached it — the
	// counterexample material for the interactive environment: two
	// entries with different fingerprints are two concrete schedules
	// proving non-confluence.
	Witnesses map[[32]byte][]string
}

// Terminates reports whether every execution path is finite. It is only
// meaningful when the exploration completed (no bound exceeded).
func (r *Result) Terminates() bool { return !r.CycleDetected && !r.BoundExceeded }

// Confluent reports whether the exploration proves a unique final
// database state: it terminated, completed, and reached exactly one
// final fingerprint.
func (r *Result) Confluent() bool {
	return r.Terminates() && len(r.FinalDBs) == 1
}

// PartiallyConfluentOn reports whether all final states agree on the
// contents of the given tables (Section 7).
func (r *Result) PartiallyConfluentOn(tables []string) bool {
	if !r.Terminates() {
		return false
	}
	seen := make(map[[32]byte]bool)
	for _, db := range r.FinalDBs {
		seen[db.TableFingerprint(tables)] = true
	}
	return len(seen) == 1
}

// ObservablyDeterministic reports whether every path produced the same
// observable stream (Section 8). Requires TrackObservables.
func (r *Result) ObservablyDeterministic() bool {
	return r.Terminates() && len(r.Streams) <= 1
}

type explorer struct {
	opts Options
	ctx  context.Context
	res  *Result
	// done marks fully explored state keys; onstack marks keys on the
	// current DFS path (a revisit is a cycle).
	done    map[string]bool
	onstack map[string]bool
}

// Explore runs the exhaustive exploration from the engine's current
// state. The engine is cloned internally and never mutated. Typical use:
//
//	e := engine.New(set, db, engine.Options{})
//	e.ExecUser("insert into t values (1)")
//	res, err := execgraph.Explore(e, execgraph.Options{})
func Explore(e *engine.Engine, opts Options) (*Result, error) {
	return ExploreContext(context.Background(), e, opts)
}

// ExploreContext is Explore with cancellation: ctx is checked at every
// state visit, so callers can bound the wall-clock time of an
// exploration whose state space turns out to be huge. On cancellation it
// returns ctx's error (wrapped, so errors.Is works) and no result.
func ExploreContext(ctx context.Context, e *engine.Engine, opts Options) (*Result, error) {
	if opts.MaxStates <= 0 {
		opts.MaxStates = 200000
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 10000
	}
	x := &explorer{
		opts: opts,
		ctx:  ctx,
		res: &Result{
			FinalDBs:  make(map[[32]byte]*storage.DB),
			Streams:   make(map[string][]engine.ObservableEvent),
			Witnesses: make(map[[32]byte][]string),
		},
		done:    make(map[string]bool),
		onstack: make(map[string]bool),
	}
	root := e.Clone()
	root.BeginAssert()
	if err := x.visit(root, nil, nil, 0); err != nil {
		return nil, err
	}
	return x.res, nil
}

// key derives the state identity, optionally folding in the observable
// history (needed so that paths with different pasts are both explored
// when streams matter).
func (x *explorer) key(e *engine.Engine, obs []engine.ObservableEvent) string {
	k := e.StateFingerprint()
	if !x.opts.TrackObservables || len(obs) == 0 {
		return k
	}
	h := sha256.Sum256([]byte(renderStream(obs)))
	return k + "#" + string(h[:])
}

// renderStream canonicalizes an observable stream for set membership.
func renderStream(obs []engine.ObservableEvent) string {
	out := ""
	for _, ev := range obs {
		out += ev.String() + "\n"
	}
	return out
}

func (x *explorer) visit(e *engine.Engine, obs []engine.ObservableEvent, path []string, depth int) error {
	if err := x.ctx.Err(); err != nil {
		return fmt.Errorf("execgraph: exploration cancelled: %w", err)
	}
	if depth > x.opts.MaxDepth {
		x.res.BoundExceeded = true
		return nil
	}
	k := x.key(e, obs)
	if x.onstack[k] {
		x.res.CycleDetected = true
		return nil
	}
	if !x.opts.DisableMemo && x.done[k] {
		return nil
	}
	if x.res.StatesExplored >= x.opts.MaxStates {
		x.res.BoundExceeded = true
		return nil
	}
	x.res.StatesExplored++
	x.onstack[k] = true
	defer func() {
		delete(x.onstack, k)
		if !x.opts.DisableMemo {
			x.done[k] = true
		}
	}()

	eligible := e.EligibleRules()
	if len(eligible) == 0 {
		x.recordFinal(e, obs, path)
		return nil
	}
	if len(eligible) > 1 {
		x.res.Branching = true
	}
	if len(eligible) > x.res.MaxEligible {
		x.res.MaxEligible = len(eligible)
	}
	for _, r := range eligible {
		fork := e.Clone()
		_, events, rolled, err := fork.Consider(r)
		if err != nil {
			return fmt.Errorf("execgraph: considering %q: %w", r.Name, err)
		}
		nextObs := obs
		if len(events) > 0 {
			nextObs = append(append([]engine.ObservableEvent{}, obs...), events...)
		}
		nextPath := append(append([]string{}, path...), r.Name)
		if rolled {
			// A rollback terminates rule processing immediately.
			x.res.AnyRollback = true
			x.recordFinal(fork, nextObs, nextPath)
			continue
		}
		if err := x.visit(fork, nextObs, nextPath, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (x *explorer) recordFinal(e *engine.Engine, obs []engine.ObservableEvent, path []string) {
	fp := e.DB().Fingerprint()
	if _, ok := x.res.FinalDBs[fp]; !ok {
		x.res.FinalDBs[fp] = e.DB().Clone()
		x.res.Witnesses[fp] = path
	}
	if x.opts.TrackObservables {
		s := renderStream(obs)
		if _, ok := x.res.Streams[s]; !ok {
			x.res.Streams[s] = append([]engine.ObservableEvent{}, obs...)
		}
	}
}

// FinalFingerprints returns the distinct final database fingerprints in a
// deterministic order, for stable test output.
func (r *Result) FinalFingerprints() [][32]byte {
	out := make([][32]byte, 0, len(r.FinalDBs))
	for fp := range r.FinalDBs {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i][:]) < string(out[j][:]) })
	return out
}

// StreamRenderings returns the distinct observable streams (canonical
// renderings) sorted, for stable test output.
func (r *Result) StreamRenderings() []string {
	out := make([]string, 0, len(r.Streams))
	for s := range r.Streams {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
