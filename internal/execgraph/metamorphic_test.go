package execgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"activerules/internal/engine"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/workload"
)

// verdict is the schedule- and declaration-order-independent summary of
// an exploration: everything the explorers promise to hold invariant
// under worker count, shard count, and rule permutation.
type verdict struct {
	states      int
	finals      map[[32]byte]bool
	streams     map[string]bool
	branching   bool
	cycle       bool
	bound       bool
	anyRollback bool
	maxEligible int
}

func summarize(r *Result) verdict {
	v := verdict{
		states:      r.StatesExplored,
		finals:      make(map[[32]byte]bool),
		streams:     make(map[string]bool),
		branching:   r.Branching,
		cycle:       r.CycleDetected,
		bound:       r.BoundExceeded,
		anyRollback: r.AnyRollback,
		maxEligible: r.MaxEligible,
	}
	for fp := range r.FinalDBs {
		v.finals[fp] = true
	}
	for s := range r.Streams {
		v.streams[s] = true
	}
	return v
}

func compareVerdicts(t *testing.T, label string, want, got verdict) {
	t.Helper()
	if want.bound || got.bound {
		if want.bound != got.bound {
			t.Errorf("%s: BoundExceeded: want %v, got %v", label, want.bound, got.bound)
		}
		return
	}
	if got.states != want.states {
		t.Errorf("%s: StatesExplored: want %d, got %d", label, want.states, got.states)
	}
	if got.branching != want.branching {
		t.Errorf("%s: Branching: want %v, got %v", label, want.branching, got.branching)
	}
	if got.cycle != want.cycle {
		t.Errorf("%s: CycleDetected: want %v, got %v", label, want.cycle, got.cycle)
	}
	if got.anyRollback != want.anyRollback {
		t.Errorf("%s: AnyRollback: want %v, got %v", label, want.anyRollback, got.anyRollback)
	}
	if got.maxEligible != want.maxEligible {
		t.Errorf("%s: MaxEligible: want %d, got %d", label, want.maxEligible, got.maxEligible)
	}
	if len(got.finals) != len(want.finals) {
		t.Errorf("%s: final states: want %d, got %d", label, len(want.finals), len(got.finals))
	} else {
		for fp := range want.finals {
			if !got.finals[fp] {
				t.Errorf("%s: a final fingerprint is missing", label)
				break
			}
		}
	}
	if len(got.streams) != len(want.streams) {
		t.Errorf("%s: streams: want %d, got %d", label, len(want.streams), len(got.streams))
	} else {
		for s := range want.streams {
			if !got.streams[s] {
				t.Errorf("%s: a stream is missing", label)
				break
			}
		}
	}
}

// engineFromSet builds an explorable engine from an already-compiled
// rule set, reusing the deterministic workload seed and user script.
func engineFromSet(t *testing.T, sch *schema.Schema, set *rules.Set, seed int64, rows, ops int) *engine.Engine {
	t.Helper()
	db := workload.SeedDatabase(sch, rows)
	e := engine.New(set, db, engine.Options{})
	script := workload.UserScript(sch, rand.New(rand.NewSource(seed+1)), ops)
	if _, err := e.ExecUser(script); err != nil {
		t.Fatalf("user script: %v", err)
	}
	return e
}

// TestMetamorphicParallelismAndShards pins the first metamorphic
// relation: the verdict is invariant under the worker count and the
// memo shard count, both of which are pure performance knobs.
func TestMetamorphicParallelismAndShards(t *testing.T) {
	for _, cfg := range []workload.Config{diffConfigs()[3], diffConfigs()[8], diffConfigs()[23]} {
		e, _ := workloadEngine(t, cfg, 3, 6)
		opts := Options{TrackObservables: true, MaxStates: 1500}
		seq, err := Explore(e, opts)
		if err != nil {
			t.Fatal(err)
		}
		base := summarize(seq)
		for _, workers := range []int{1, 2, 8} {
			for _, shards := range []int{1, 16, 256} {
				popts := opts
				popts.Parallelism = workers
				popts.MemoShards = shards
				res, err := ExploreParallel(e, popts)
				if err != nil {
					t.Fatal(err)
				}
				compareVerdicts(t, fmt.Sprintf("seed %d workers=%d shards=%d", cfg.Seed, workers, shards),
					base, summarize(res))
			}
		}
	}
}

// TestMetamorphicRuleOrderPermutation pins the second metamorphic
// relation: permuting the rule declaration order must not change any
// verdict. Rule order affects only internal iteration (state hashing,
// eligible-rule ordering), never the explored state space — final
// database fingerprints and stream renderings are order-free, so they
// compare across permutations directly.
func TestMetamorphicRuleOrderPermutation(t *testing.T) {
	for _, cfg := range []workload.Config{diffConfigs()[1], diffConfigs()[5], diffConfigs()[21]} {
		g, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{TrackObservables: true, MaxStates: 1500, Parallelism: 4}
		base := verdict{}
		for perm := 0; perm < 4; perm++ {
			defs := append([]rules.Definition(nil), g.Defs...)
			if perm > 0 {
				rand.New(rand.NewSource(int64(perm))).Shuffle(len(defs), func(i, j int) {
					defs[i], defs[j] = defs[j], defs[i]
				})
			}
			set, err := rules.NewSet(g.Schema, defs)
			if err != nil {
				t.Fatalf("seed %d perm %d: %v", cfg.Seed, perm, err)
			}
			e := engineFromSet(t, g.Schema, set, cfg.Seed, 3, 6)
			res, err := ExploreParallel(e, opts)
			if err != nil {
				t.Fatal(err)
			}
			if perm == 0 {
				base = summarize(res)
				continue
			}
			compareVerdicts(t, fmt.Sprintf("seed %d perm %d", cfg.Seed, perm), base, summarize(res))
		}
	}
}
