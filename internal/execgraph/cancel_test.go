package execgraph

import (
	"context"
	"errors"
	"testing"
	"time"
)

// time0 returns an already-expired deadline.
func time0() time.Time { return time.Unix(0, 1) }

func TestExploreContextPreCancelled(t *testing.T) {
	e := prep(t, "table t (v int)\ntable u (v int)", `
create rule r on t when inserted then insert into u select v from inserted
`, "insert into t values (1)", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExploreContext(ctx, e, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The engine itself is never mutated by exploration; a normal
	// exploration afterwards still works.
	res, err := Explore(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminates() || len(res.FinalDBs) != 1 {
		t.Error("post-cancel exploration should succeed")
	}
}

func TestExploreContextCancelMidway(t *testing.T) {
	// Nonterminating ping-pong: exploration would only stop at the cycle
	// check; an already-expired deadline stops it immediately with an
	// error instead of a partial result.
	e := prep(t, "table a (v int)\ntable b (v int)", `
create rule ra on a when inserted then delete from a; insert into b values (1)
create rule rb on b when inserted then delete from b; insert into a values (1)
`, "insert into a values (1)", nil)
	ctx, cancel := context.WithDeadline(context.Background(), time0())
	defer cancel()
	if _, err := ExploreContext(ctx, e, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}
