// Package baseline implements an HH91-style unique-fixed-point analyzer,
// the comparison point for the subsumption claim of Section 9 of the
// paper.
//
// Hellerstein & Hsu (IBM RJ 8009, 1991) — like the earlier [Ras90] and
// [ZH90] — analyze production systems without the paper's priority-aware
// refinement: a rule set is guaranteed a unique fixed point when rule
// applications cannot interfere, which in the unprioritized setting means
// every pair of distinct rules must commute (compare Corollary 6.9: with
// P = ∅ the paper's Confluence Requirement degenerates to exactly this).
// The baseline therefore accepts a rule set iff (1) its triggering graph
// is acyclic and (2) every pair of distinct rules commutes under the
// conservative conditions of Lemma 6.1, ignoring priorities entirely.
//
// The paper's analysis properly subsumes this baseline: every
// baseline-accepted set satisfies the Confluence Requirement (all pairs
// commute, so every R1 × R2 check passes), while the paper's analysis
// additionally accepts sets whose conflicts are resolved by priorities.
// The E5 experiment quantifies the gap.
package baseline

import (
	"activerules/internal/analysis"
	"activerules/internal/rules"
)

// Verdict is the baseline analysis outcome.
type Verdict struct {
	// Terminates reports an acyclic triggering graph (no discharges; the
	// baseline has no interactive component).
	Terminates bool
	// AllPairsCommute reports that every pair of distinct rules commutes
	// under Lemma 6.1 with no certifications.
	AllPairsCommute bool
	// FailedPairs lists the noncommuting pairs (by name, a < b).
	FailedPairs [][2]string
}

// UniqueFixedPoint reports the overall verdict: the rule set is
// guaranteed a unique fixed point by the baseline criteria.
func (v *Verdict) UniqueFixedPoint() bool { return v.Terminates && v.AllPairsCommute }

// Analyze runs the baseline analysis.
func Analyze(set *rules.Set) *Verdict {
	a := analysis.New(set, nil)
	v := &Verdict{}

	// Termination: acyclic triggering graph, no discharge heuristics
	// (the baseline has no user in the loop). Reuse the graph directly.
	g := analysis.BuildTriggeringGraph(set)
	v.Terminates = len(g.CyclicSCCs(nil, nil)) == 0

	rs := set.Rules()
	v.AllPairsCommute = true
	for i, ri := range rs {
		for _, rj := range rs[i+1:] {
			if ok, _ := a.Commute(ri, rj); !ok {
				v.AllPairsCommute = false
				pa, pb := ri.Name, rj.Name
				if pa > pb {
					pa, pb = pb, pa
				}
				v.FailedPairs = append(v.FailedPairs, [2]string{pa, pb})
			}
		}
	}
	return v
}
