package baseline

import (
	"testing"

	"activerules/internal/analysis"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/workload"
)

func compile(t *testing.T, schemaSrc, rulesSrc string) *rules.Set {
	t.Helper()
	sch := schema.MustParse(schemaSrc)
	set, err := rules.NewSet(sch, ruledef.MustParse(rulesSrc))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestBaselineAcceptsCommutingSet(t *testing.T) {
	set := compile(t, "table t (v int)\ntable a (v int)\ntable b (v int)", `
create rule ra on t when inserted then insert into a values (1)
create rule rb on t when inserted then insert into b values (1)
`)
	v := Analyze(set)
	if !v.UniqueFixedPoint() {
		t.Errorf("disjoint writers should pass the baseline: %+v", v)
	}
}

func TestBaselineRejectsOrderedConflict(t *testing.T) {
	// The pair conflicts but is ordered: the paper's analysis accepts,
	// the priority-blind baseline rejects — the proper-subsumption gap.
	set := compile(t, "table trig (x int)\ntable t (v int)", `
create rule ri on trig when inserted then update t set v = 1 precedes rj
create rule rj on trig when inserted then update t set v = 2
`)
	bv := Analyze(set)
	if bv.UniqueFixedPoint() {
		t.Fatal("baseline must reject the conflicting pair (it ignores priorities)")
	}
	if len(bv.FailedPairs) != 1 || bv.FailedPairs[0] != [2]string{"ri", "rj"} {
		t.Errorf("FailedPairs = %v", bv.FailedPairs)
	}
	av := analysis.New(set, nil).Confluence()
	if !av.Guaranteed {
		t.Error("the paper's analysis should accept the ordered pair")
	}
}

func TestBaselineRejectsCycles(t *testing.T) {
	set := compile(t, "table t (v int)\ntable u (v int)", `
create rule r1 on t when inserted then insert into u values (1)
create rule r2 on u when inserted then insert into t values (1)
`)
	if Analyze(set).UniqueFixedPoint() {
		t.Error("cyclic set must be rejected")
	}
}

// TestSubsumption is the E5 invariant on random workloads: whenever the
// baseline accepts, the paper's analysis accepts (never vice versa being
// required).
func TestSubsumption(t *testing.T) {
	accepted, baselineAccepted := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		g := workload.MustGenerate(workload.Config{
			Seed: seed, Rules: 6, Tables: 4, Acyclic: true,
			UpdateFrac: 0.4, DeleteFrac: 0.1,
			PriorityDensity: 0.4, ConditionFrac: 0.3,
		})
		bv := Analyze(g.Set)
		av := analysis.New(g.Set, nil).Confluence()
		if av.Guaranteed {
			accepted++
		}
		if bv.UniqueFixedPoint() {
			baselineAccepted++
			if !av.Guaranteed {
				t.Fatalf("seed %d: baseline accepted but the paper's analysis rejected — subsumption broken", seed)
			}
		}
	}
	if accepted < baselineAccepted {
		t.Errorf("paper analysis accepted %d < baseline %d", accepted, baselineAccepted)
	}
	t.Logf("accepted: paper=%d baseline=%d of 60", accepted, baselineAccepted)
}
