package serve

// Drain racing a concurrent checkpoint: a checkpoint arriving after
// readiness flips must get a typed rejection promptly — never enqueue
// behind a drain that will not serve it, never hang.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"activerules/internal/engine"
)

func TestCheckpointDuringDrainRejectsTyped(t *testing.T) {
	g := newGate()
	s, _ := newTestServer(t, Config{Engine: engine.Options{WrapMutator: g.wrap}})

	// Occupy the worker mid-request so the drain cannot finish yet.
	inflight := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
		inflight <- err
	}()
	<-g.entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return s.Health().State == StateDraining })

	checkpointErr := make(chan error, 1)
	go func() { checkpointErr <- s.Checkpoint(context.Background()) }()
	select {
	case err := <-checkpointErr:
		var ce *ClosedError
		if !errors.As(err, &ce) {
			t.Fatalf("Checkpoint during drain = %v, want *ClosedError", err)
		}
		if ce.State != StateDraining {
			t.Errorf("ClosedError.State = %q, want %q", ce.State, StateDraining)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Checkpoint hung while the server was draining")
	}

	// The drained request still completes; the drain then finishes.
	close(g.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestCheckpointRacingDrain hammers Checkpoint from several goroutines
// while Shutdown races them, across several rounds: every call must
// return (no hangs), and every failure must be the typed *ClosedError.
// Run under -race this also checks the state flip itself.
func TestCheckpointRacingDrain(t *testing.T) {
	for round := 0; round < 5; round++ {
		s, _ := newTestServer(t, Config{})
		var wg sync.WaitGroup
		bad := make(chan error, 64)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := s.Checkpoint(context.Background())
					if err == nil {
						continue
					}
					var ce *ClosedError
					if !errors.As(err, &ce) {
						bad <- err
					}
					return
				}
			}()
		}
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("round %d: Shutdown: %v", round, err)
		}
		wg.Wait()
		close(bad)
		for err := range bad {
			t.Fatalf("round %d: checkpoint failed with untyped error: %v", round, err)
		}
	}
}
