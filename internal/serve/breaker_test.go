package serve

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"activerules/internal/engine"
	"activerules/internal/retry"
)

func TestAttributeIndictsOnlyDeterministicFaults(t *testing.T) {
	pe := &engine.PanicError{Value: "boom"}
	cases := []struct {
		name string
		err  error
		want []string
	}{
		{"rule panic", &engine.ExecError{Rule: "r1", Cause: pe}, []string{"r1"}},
		{"rule sql error", &engine.ExecError{Rule: "r1", Cause: errors.New("dup")}, nil},
		{"livelock cycle dedups and sorts", &engine.LivelockError{Cycle: []string{"b", "a", "b"}}, []string{"a", "b"}},
		{"budget without witness", engine.ErrMaxSteps, nil},
		{"cancellation", &engine.CancelledError{Cause: errors.New("deadline")}, nil},
		{"durability", &engine.DurabilityError{Op: "commit", Cause: errors.New("disk")}, nil},
		{"user-script panic (no rule)", errors.New("engine: user script: panic"), nil},
	}
	for _, c := range cases {
		if got := attribute(c.err); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: attribute = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBreakerTripAndProbeLifecycle(t *testing.T) {
	t0 := time.Unix(0, 0)
	pol := retry.Policy{Initial: 10 * time.Millisecond, Jitter: 0}
	b := newBreaker(2, true, pol, 42)

	// One fault: counted, not tripped.
	if b.noteFault([]string{"r"}, t0) {
		t.Fatal("tripped below threshold")
	}
	// A success in between resets the consecutive count.
	b.noteSuccess(map[string]int{"r": 1})
	if b.noteFault([]string{"r"}, t0) {
		t.Fatal("tripped after reset + one fault")
	}
	// Second consecutive fault trips.
	if !b.noteFault([]string{"r"}, t0) {
		t.Fatal("did not trip at threshold")
	}
	if got := b.quarantinedNames(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("quarantined = %v", got)
	}

	// Not due yet.
	if p := b.dueProbes(t0.Add(9 * time.Millisecond)); p != nil {
		t.Fatalf("early probe: %v", p)
	}
	// Due: half-open, so it is neither quarantined nor re-probed.
	if p := b.dueProbes(t0.Add(10 * time.Millisecond)); len(p) != 1 || p[0] != "r" {
		t.Fatalf("dueProbes = %v", p)
	}
	if got := b.quarantinedNames(); len(got) != 0 {
		t.Fatalf("half-open rule still listed quarantined: %v", got)
	}
	if got := b.probingNames(); len(got) != 1 {
		t.Fatalf("probing = %v", got)
	}

	// Probe fails: re-open with the doubled backoff (20ms).
	t1 := t0.Add(10 * time.Millisecond)
	if !b.noteFault([]string{"r"}, t1) {
		t.Fatal("failed probe should change the active set")
	}
	if p := b.dueProbes(t1.Add(19 * time.Millisecond)); p != nil {
		t.Fatalf("re-opened breaker probed before doubled backoff: %v", p)
	}
	if p := b.dueProbes(t1.Add(20 * time.Millisecond)); len(p) != 1 {
		t.Fatalf("dueProbes after doubled backoff = %v", p)
	}

	// Probe succeeds: breaker closes and the schedule resets, so a
	// later re-trip replays the same 10ms-first sequence.
	if restored := b.noteSuccess(map[string]int{"r": 1}); len(restored) != 1 || restored[0] != "r" {
		t.Fatalf("restored = %v", restored)
	}
	t2 := t1.Add(time.Hour)
	b.noteFault([]string{"r"}, t2)
	b.noteFault([]string{"r"}, t2)
	if p := b.dueProbes(t2.Add(10 * time.Millisecond)); len(p) != 1 {
		t.Fatalf("reset schedule should probe at 10ms again, got %v", p)
	}
}

func TestBreakerDeterministicPerSeed(t *testing.T) {
	// Jittered schedules from equal seeds make equal probe times; a
	// different seed diverges.
	run := func(seed int64) []time.Time {
		b := newBreaker(1, true, retry.Policy{Initial: time.Second, Jitter: -1}, seed)
		t0 := time.Unix(0, 0)
		var out []time.Time
		for i := 0; i < 4; i++ {
			b.noteFault([]string{"x"}, t0)
			out = append(out, b.health["x"].probeAt)
			b.dueProbes(b.health["x"].probeAt) // half-open so next fault re-opens
		}
		return out
	}
	a, b2 := run(7), run(7)
	if !reflect.DeepEqual(a, b2) {
		t.Errorf("same seed diverged: %v vs %v", a, b2)
	}
	if c := run(8); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical jittered schedules")
	}
}

func TestBreakerDisabledProbingNeverProbes(t *testing.T) {
	b := newBreaker(1, false, retry.Policy{}, 0)
	b.noteFault([]string{"x"}, time.Unix(0, 0))
	if p := b.dueProbes(time.Unix(1<<40, 0)); p != nil {
		t.Fatalf("probing disabled but dueProbes = %v", p)
	}
}
