package serve

import (
	"fmt"
	"sort"
	"strings"

	"activerules/internal/analysis"
	"activerules/internal/rules"
	"activerules/internal/schema"
)

// Degraded-mode guarantees (paper §7). When the breaker quarantines a
// rule, the served rule set shrinks from R to R' = R \ Q. What does the
// reduced system still guarantee? Definition 7.1 answers per table: the
// significant set Sig(T) is exactly the rules that can directly or
// indirectly affect T's final contents, so
//
//	Q ∩ Sig(T) = ∅  ⇒  quarantining Q cannot change T's final contents.
//
// Such tables are UNAFFECTED: the degraded server computes the same
// final contents for them as a healthy one (on executions where the
// quarantined rules would not have faulted). For the remaining tables
// we fall back to the §7 analysis of the reduced set itself: a
// PartialConfluence verdict over R' says whether the degraded system is
// at least still deterministic for that table, even though its contents
// may differ from the healthy system's.

// TableGuarantee is the degraded-mode verdict for one table.
type TableGuarantee struct {
	// Table is the table name.
	Table string
	// Unaffected reports that no quarantined rule is in the full rule
	// set's Sig(Table): by Definition 7.1, the quarantine cannot change
	// this table's final contents.
	Unaffected bool
	// SigQuarantined lists the quarantined rules that ARE significant
	// for the table (sorted; empty iff Unaffected).
	SigQuarantined []string
	// Confluent is the reduced rule set's partial-confluence verdict for
	// the table: does the degraded system remain deterministic here?
	Confluent bool
	// WasConfluent is the full rule set's baseline verdict, computed at
	// server start, so reports can distinguish "lost determinism to the
	// quarantine" from "was never guaranteed".
	WasConfluent bool
}

// DegradedReport describes the serving guarantees under the current
// quarantine set. Its String form is deterministic: equal quarantine
// and probing sets yield byte-identical reports.
type DegradedReport struct {
	// Tenant is the id of the tenant this server belongs to (empty for
	// a single-tenant server). Multi-tenant soak logs attribute every
	// report line through it.
	Tenant string
	// Quarantined lists rules with an open breaker (sorted).
	Quarantined []string
	// Probing lists half-open rules currently readmitted for a live
	// probe (sorted).
	Probing []string
	// Degraded reports whether any table's contents can be affected by
	// the quarantine (i.e. some table is not Unaffected).
	Degraded bool
	// Termination is the tiered termination status of the rule set
	// actually being served (the reduced set when rules are
	// quarantined). Removing a rule can flip a status either way: losing
	// a replenisher may make a cycle dischargeable, while losing a rule
	// whose certificate anchored an SCC may not — so the live status is
	// recomputed, never carried over.
	Termination analysis.TerminationStatus
	// WasTermination is the full rule set's baseline status, computed at
	// server start.
	WasTermination analysis.TerminationStatus
	// Tables holds one verdict per served table, sorted by name.
	Tables []TableGuarantee
}

// String renders the report deterministically, one line per table.
func (r *DegradedReport) String() string {
	var b strings.Builder
	if r.Tenant != "" {
		fmt.Fprintf(&b, "tenant: %s\n", r.Tenant)
	}
	fmt.Fprintf(&b, "quarantined: %s\n", nameList(r.Quarantined))
	fmt.Fprintf(&b, "probing: %s\n", nameList(r.Probing))
	if !r.Degraded {
		b.WriteString("mode: full service (no table affected by quarantine)\n")
	} else {
		b.WriteString("mode: DEGRADED\n")
	}
	fmt.Fprintf(&b, "termination: %s (was %s)\n", r.Termination, r.WasTermination)
	for _, t := range r.Tables {
		if t.Unaffected {
			fmt.Fprintf(&b, "table %s: unaffected (Sig ∩ quarantine = ∅); confluent=%v (was %v)\n",
				t.Table, t.Confluent, t.WasConfluent)
		} else {
			fmt.Fprintf(&b, "table %s: DEGRADED (significant rules quarantined: %s); reduced-set confluent=%v (was %v)\n",
				t.Table, nameList(t.SigQuarantined), t.Confluent, t.WasConfluent)
		}
	}
	return b.String()
}

func nameList(names []string) string {
	if len(names) == 0 {
		return "[]"
	}
	return "[" + strings.Join(names, " ") + "]"
}

// Baseline is the full-rule-set analysis a server's degraded-mode
// reporting starts from: the per-table §7 significant sets and partial-
// confluence verdicts plus the tiered termination status. Computing it
// runs the analyzer once; callers hosting many servers over identical
// rule sets (internal/tenant's shared analysis cache) compute it once
// and hand it to every server via Config.Baseline. A Baseline is
// immutable after construction and safe to share.
type Baseline struct {
	// Tables are the report tables, sorted.
	Tables []string
	// Sig maps each table to the names of its significant rules — the
	// rules that can directly or indirectly affect the table's final
	// contents (Definition 7.1).
	Sig map[string]map[string]bool
	// Conf maps each table to the full set's partial-confluence verdict.
	Conf map[string]bool
	// Term is the full set's tiered termination status.
	Term analysis.TerminationStatus
}

// resolveTables returns the report table list: the explicit selection,
// or every schema table, sorted either way.
func resolveTables(sch *schema.Schema, tables []string) []string {
	if len(tables) == 0 {
		for _, t := range sch.SortedTables() {
			tables = append(tables, t.Name)
		}
	} else {
		tables = append([]string(nil), tables...)
	}
	sort.Strings(tables)
	return tables
}

// ComputeBaseline validates the rule set and runs the §7 analysis that
// degraded-mode reporting needs: per-table significant sets and
// partial-confluence verdicts, plus the tiered termination status.
// tables empty means every schema table. par > 0 sets the analyzer's
// worker count (verdicts are identical at every parallelism).
func ComputeBaseline(sch *schema.Schema, defs []rules.Definition, tables []string, par int) (*Baseline, error) {
	full, err := rules.NewSet(sch, defs)
	if err != nil {
		return nil, err
	}
	a := analysis.New(full, nil)
	if par > 0 {
		a.SetParallelism(par)
	}
	bl := &Baseline{
		Tables: resolveTables(sch, tables),
		Sig:    map[string]map[string]bool{},
		Conf:   map[string]bool{},
	}
	for _, t := range bl.Tables {
		v := a.PartialConfluence([]string{t})
		sig := map[string]bool{}
		for _, name := range v.SigNames() {
			sig[name] = true
		}
		bl.Sig[t] = sig
		bl.Conf[t] = v.Guaranteed()
	}
	bl.Term = a.Termination().Status
	return bl, nil
}

// degradedAnalysis holds the full-set baseline and derives reduced-set
// reports as the quarantine set evolves. All methods run on the worker
// goroutine.
type degradedAnalysis struct {
	sch    *schema.Schema
	defs   []rules.Definition
	tenant string
	bl     *Baseline
}

// newDegradedAnalysis wraps a caller-provided baseline, or computes one
// when bl is nil. A provided baseline MUST describe exactly (sch, defs,
// tables) — the tenant layer guarantees this by keying its cache on the
// canonical rule-set hash.
func newDegradedAnalysis(sch *schema.Schema, defs []rules.Definition, tables []string, tenant string, bl *Baseline) (*degradedAnalysis, error) {
	if bl == nil {
		var err error
		bl, err = ComputeBaseline(sch, defs, tables, 0)
		if err != nil {
			return nil, err
		}
	} else if _, err := rules.NewSet(sch, defs); err != nil {
		// Still validate the definitions: the baseline skips analysis,
		// not compilation.
		return nil, err
	}
	return &degradedAnalysis{sch: sch, defs: defs, tenant: tenant, bl: bl}, nil
}

// activeDefs filters the definitions down to the rules not in removed,
// scrubbing ordering references to removed rules so the reduced set
// still validates.
func activeDefs(defs []rules.Definition, removed map[string]bool) []rules.Definition {
	out := make([]rules.Definition, 0, len(defs))
	for _, d := range defs {
		if removed[d.Name] {
			continue
		}
		d.Precedes = dropNames(d.Precedes, removed)
		d.Follows = dropNames(d.Follows, removed)
		out = append(out, d)
	}
	return out
}

func dropNames(names []string, removed map[string]bool) []string {
	var out []string
	for _, n := range names {
		if !removed[n] {
			out = append(out, n)
		}
	}
	return out
}

// report builds the degraded-mode report for the given quarantine and
// probing sets (both sorted by the caller). A probing rule is live, so
// only the quarantined set reduces the analyzed rule set.
func (da *degradedAnalysis) report(quarantined, probing []string) (*DegradedReport, error) {
	rep := &DegradedReport{
		Tenant:         da.tenant,
		Quarantined:    append([]string(nil), quarantined...),
		Probing:        append([]string(nil), probing...),
		Termination:    da.bl.Term,
		WasTermination: da.bl.Term,
	}
	q := map[string]bool{}
	for _, n := range quarantined {
		q[n] = true
	}
	var reduced *analysis.Analyzer
	if len(q) > 0 {
		set, err := rules.NewSet(da.sch, activeDefs(da.defs, q))
		if err != nil {
			return nil, fmt.Errorf("serve: reduced rule set invalid: %w", err)
		}
		reduced = analysis.New(set, nil)
		rep.Termination = reduced.Termination().Status
	}
	for _, t := range da.bl.Tables {
		// When Q ∩ Sig(t) = ∅ the removed rules are all non-significant
		// for t, so Sig_reduced(t) = Sig_full(t) and the confluence
		// verdict carries over unchanged — no need to re-analyze.
		g := TableGuarantee{
			Table:        t,
			Unaffected:   true,
			WasConfluent: da.bl.Conf[t],
			Confluent:    da.bl.Conf[t],
		}
		for _, n := range quarantined {
			if da.bl.Sig[t][n] {
				g.SigQuarantined = append(g.SigQuarantined, n)
			}
		}
		if len(g.SigQuarantined) > 0 {
			g.Unaffected = false
			rep.Degraded = true
			g.Confluent = reduced.PartialConfluence([]string{t}).Guaranteed()
		}
		rep.Tables = append(rep.Tables, g)
	}
	return rep, nil
}
