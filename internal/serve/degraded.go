package serve

import (
	"fmt"
	"sort"
	"strings"

	"activerules/internal/analysis"
	"activerules/internal/rules"
	"activerules/internal/schema"
)

// Degraded-mode guarantees (paper §7). When the breaker quarantines a
// rule, the served rule set shrinks from R to R' = R \ Q. What does the
// reduced system still guarantee? Definition 7.1 answers per table: the
// significant set Sig(T) is exactly the rules that can directly or
// indirectly affect T's final contents, so
//
//	Q ∩ Sig(T) = ∅  ⇒  quarantining Q cannot change T's final contents.
//
// Such tables are UNAFFECTED: the degraded server computes the same
// final contents for them as a healthy one (on executions where the
// quarantined rules would not have faulted). For the remaining tables
// we fall back to the §7 analysis of the reduced set itself: a
// PartialConfluence verdict over R' says whether the degraded system is
// at least still deterministic for that table, even though its contents
// may differ from the healthy system's.

// TableGuarantee is the degraded-mode verdict for one table.
type TableGuarantee struct {
	// Table is the table name.
	Table string
	// Unaffected reports that no quarantined rule is in the full rule
	// set's Sig(Table): by Definition 7.1, the quarantine cannot change
	// this table's final contents.
	Unaffected bool
	// SigQuarantined lists the quarantined rules that ARE significant
	// for the table (sorted; empty iff Unaffected).
	SigQuarantined []string
	// Confluent is the reduced rule set's partial-confluence verdict for
	// the table: does the degraded system remain deterministic here?
	Confluent bool
	// WasConfluent is the full rule set's baseline verdict, computed at
	// server start, so reports can distinguish "lost determinism to the
	// quarantine" from "was never guaranteed".
	WasConfluent bool
}

// DegradedReport describes the serving guarantees under the current
// quarantine set. Its String form is deterministic: equal quarantine
// and probing sets yield byte-identical reports.
type DegradedReport struct {
	// Quarantined lists rules with an open breaker (sorted).
	Quarantined []string
	// Probing lists half-open rules currently readmitted for a live
	// probe (sorted).
	Probing []string
	// Degraded reports whether any table's contents can be affected by
	// the quarantine (i.e. some table is not Unaffected).
	Degraded bool
	// Termination is the tiered termination status of the rule set
	// actually being served (the reduced set when rules are
	// quarantined). Removing a rule can flip a status either way: losing
	// a replenisher may make a cycle dischargeable, while losing a rule
	// whose certificate anchored an SCC may not — so the live status is
	// recomputed, never carried over.
	Termination analysis.TerminationStatus
	// WasTermination is the full rule set's baseline status, computed at
	// server start.
	WasTermination analysis.TerminationStatus
	// Tables holds one verdict per served table, sorted by name.
	Tables []TableGuarantee
}

// String renders the report deterministically, one line per table.
func (r *DegradedReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quarantined: %s\n", nameList(r.Quarantined))
	fmt.Fprintf(&b, "probing: %s\n", nameList(r.Probing))
	if !r.Degraded {
		b.WriteString("mode: full service (no table affected by quarantine)\n")
	} else {
		b.WriteString("mode: DEGRADED\n")
	}
	fmt.Fprintf(&b, "termination: %s (was %s)\n", r.Termination, r.WasTermination)
	for _, t := range r.Tables {
		if t.Unaffected {
			fmt.Fprintf(&b, "table %s: unaffected (Sig ∩ quarantine = ∅); confluent=%v (was %v)\n",
				t.Table, t.Confluent, t.WasConfluent)
		} else {
			fmt.Fprintf(&b, "table %s: DEGRADED (significant rules quarantined: %s); reduced-set confluent=%v (was %v)\n",
				t.Table, nameList(t.SigQuarantined), t.Confluent, t.WasConfluent)
		}
	}
	return b.String()
}

func nameList(names []string) string {
	if len(names) == 0 {
		return "[]"
	}
	return "[" + strings.Join(names, " ") + "]"
}

// degradedAnalysis precomputes the full-set baseline once and derives
// reduced-set reports as the quarantine set evolves. All methods run on
// the worker goroutine.
type degradedAnalysis struct {
	sch    *schema.Schema
	defs   []rules.Definition
	tables []string // report tables, sorted

	// Baseline over the full set, computed once at construction.
	fullSig  map[string]map[string]bool // table -> Sig(table) names
	fullConf map[string]bool            // table -> confluence guaranteed
	fullTerm analysis.TerminationStatus // tiered termination status
}

func newDegradedAnalysis(sch *schema.Schema, defs []rules.Definition, tables []string) (*degradedAnalysis, error) {
	if len(tables) == 0 {
		for _, t := range sch.SortedTables() {
			tables = append(tables, t.Name)
		}
	} else {
		tables = append([]string(nil), tables...)
	}
	sort.Strings(tables)
	full, err := rules.NewSet(sch, defs)
	if err != nil {
		return nil, err
	}
	a := analysis.New(full, nil)
	da := &degradedAnalysis{
		sch:      sch,
		defs:     defs,
		tables:   tables,
		fullSig:  map[string]map[string]bool{},
		fullConf: map[string]bool{},
	}
	for _, t := range tables {
		v := a.PartialConfluence([]string{t})
		sig := map[string]bool{}
		for _, name := range v.SigNames() {
			sig[name] = true
		}
		da.fullSig[t] = sig
		da.fullConf[t] = v.Guaranteed()
	}
	da.fullTerm = a.Termination().Status
	return da, nil
}

// activeDefs filters the definitions down to the rules not in removed,
// scrubbing ordering references to removed rules so the reduced set
// still validates.
func activeDefs(defs []rules.Definition, removed map[string]bool) []rules.Definition {
	out := make([]rules.Definition, 0, len(defs))
	for _, d := range defs {
		if removed[d.Name] {
			continue
		}
		d.Precedes = dropNames(d.Precedes, removed)
		d.Follows = dropNames(d.Follows, removed)
		out = append(out, d)
	}
	return out
}

func dropNames(names []string, removed map[string]bool) []string {
	var out []string
	for _, n := range names {
		if !removed[n] {
			out = append(out, n)
		}
	}
	return out
}

// report builds the degraded-mode report for the given quarantine and
// probing sets (both sorted by the caller). A probing rule is live, so
// only the quarantined set reduces the analyzed rule set.
func (da *degradedAnalysis) report(quarantined, probing []string) (*DegradedReport, error) {
	rep := &DegradedReport{
		Quarantined:    append([]string(nil), quarantined...),
		Probing:        append([]string(nil), probing...),
		Termination:    da.fullTerm,
		WasTermination: da.fullTerm,
	}
	q := map[string]bool{}
	for _, n := range quarantined {
		q[n] = true
	}
	var reduced *analysis.Analyzer
	if len(q) > 0 {
		set, err := rules.NewSet(da.sch, activeDefs(da.defs, q))
		if err != nil {
			return nil, fmt.Errorf("serve: reduced rule set invalid: %w", err)
		}
		reduced = analysis.New(set, nil)
		rep.Termination = reduced.Termination().Status
	}
	for _, t := range da.tables {
		// When Q ∩ Sig(t) = ∅ the removed rules are all non-significant
		// for t, so Sig_reduced(t) = Sig_full(t) and the confluence
		// verdict carries over unchanged — no need to re-analyze.
		g := TableGuarantee{
			Table:        t,
			Unaffected:   true,
			WasConfluent: da.fullConf[t],
			Confluent:    da.fullConf[t],
		}
		for _, n := range quarantined {
			if da.fullSig[t][n] {
				g.SigQuarantined = append(g.SigQuarantined, n)
			}
		}
		if len(g.SigQuarantined) > 0 {
			g.Unaffected = false
			rep.Degraded = true
			g.Confluent = reduced.PartialConfluence([]string{t}).Guaranteed()
		}
		rep.Tables = append(rep.Tables, g)
	}
	return rep, nil
}
