package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"activerules/internal/engine"
	"activerules/internal/faultinject"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/wal"
)

const swapSchema = `
table t (v int)
table l1 (v int)
table l2 (v int)
`

func swapDefs(t *testing.T, src string) []rules.Definition {
	t.Helper()
	defs, err := ruledef.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return defs
}

// TestSwapRulesInstalls proves a hot swap takes effect at a transaction
// boundary: requests before the swap run the old rule set, requests
// after run the new one, and the durable state reflects exactly that
// split.
func TestSwapRulesInstalls(t *testing.T) {
	sch := schema.MustParse(swapSchema)
	oldDefs := swapDefs(t, `create rule r1 on t when inserted then insert into l1 select v from inserted`)
	newDefs := swapDefs(t, `create rule r2 on t when inserted then insert into l2 select v from inserted`)

	fsys := wal.NewMemFS()
	s, err := New(sch, oldDefs, "wal", Config{WAL: wal.Options{FS: fsys}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"}); err != nil {
		t.Fatal(err)
	}
	if err := s.SwapRules(context.Background(), newDefs, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{SQL: "insert into t values (2)"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	db, _, err := wal.Recover("wal", sch, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Table("t").Len(); got != 2 {
		t.Errorf("t has %d rows, want 2", got)
	}
	if got := db.Table("l1").Len(); got != 1 {
		t.Errorf("l1 has %d rows, want 1 (only the pre-swap insert runs r1)", got)
	}
	if got := db.Table("l2").Len(); got != 1 {
		t.Errorf("l2 has %d rows, want 1 (only the post-swap insert runs r2)", got)
	}
}

// TestSwapRulesRefreshesBaseline proves the degraded-mode report after
// a swap describes the NEW rule set (termination verdict and tables),
// not a stale baseline.
func TestSwapRulesRefreshesBaseline(t *testing.T) {
	sch := schema.MustParse(`
table t (v int)
table ping (v int)
table pong (v int)
`)
	calm := swapDefs(t, `create rule r1 on t when inserted then delete from t`)
	cyclic := swapDefs(t, `
create rule ra on ping when inserted then delete from ping; insert into pong values (1)
create rule rb on pong when inserted then delete from pong; insert into ping values (1)
`)
	s, err := New(sch, calm, "wal", Config{WAL: wal.Options{FS: wal.NewMemFS()}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Health().Report.Termination
	if err := s.SwapRules(context.Background(), cyclic, nil); err != nil {
		t.Fatal(err)
	}
	after := s.Health().Report.Termination
	if before == after {
		t.Errorf("report termination unchanged across swap (%v); baseline is stale", after)
	}
}

// TestSwapRulesRetainsBreaker proves breaker state survives a swap for
// rules that keep their name and is dropped for rules that disappear.
func TestSwapRulesRetainsBreaker(t *testing.T) {
	sch := schema.MustParse(`
table t (v int)
table poison (v int)
table l1 (v int)
`)
	hostile := swapDefs(t, `
create rule copy on t when inserted then insert into l1 select v from inserted
create rule hostile on t when inserted then insert into poison select v from inserted
`)
	stillHostile := swapDefs(t, `
create rule hostile on t when inserted then insert into poison select v from inserted
`)
	calm := swapDefs(t, `create rule copy on t when inserted then insert into l1 select v from inserted`)

	in := faultinject.New(faultinject.Config{PanicTable: "poison"})
	s, err := New(sch, hostile, "wal", Config{
		WAL:                 wal.Options{FS: wal.NewMemFS()},
		Engine:              engine.Options{WrapMutator: in.Wrap},
		QuarantineThreshold: 2,
		DisableProbing:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Trip the hostile rule's breaker.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), Request{SQL: fmt.Sprintf("insert into t values (%d)", i)}); err == nil {
			t.Fatal("hostile rule did not fault")
		}
	}
	if got := s.Health().Report.Quarantined; len(got) != 1 || got[0] != "hostile" {
		t.Fatalf("quarantined = %v, want [hostile]", got)
	}

	// Swap to a set that keeps the rule name: still quarantined.
	if err := s.SwapRules(context.Background(), stillHostile, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Health().Report.Quarantined; len(got) != 1 || got[0] != "hostile" {
		t.Errorf("after name-preserving swap quarantined = %v, want [hostile]", got)
	}

	// Swap the rule away: its breaker state is dropped.
	if err := s.SwapRules(context.Background(), calm, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Health().Report.Quarantined; len(got) != 0 {
		t.Errorf("after removing swap quarantined = %v, want []", got)
	}
	// The surviving set serves cleanly.
	if _, err := s.Submit(context.Background(), Request{SQL: "insert into t values (9)"}); err != nil {
		t.Fatal(err)
	}
}

// TestTenantTaggedErrors audits the serving-layer error rendering for
// the tenant field: every typed error names its tenant, and the empty
// tenant renders the exact pre-tenancy message.
func TestTenantTaggedErrors(t *testing.T) {
	cases := []struct {
		err        error
		want, bare string
	}{
		{
			err:  &OverloadError{Tenant: "acme", Reason: OverloadQueueFull, QueueLen: 4, QueueCap: 4},
			want: "serve[tenant acme]: overloaded: admission queue full (4/4)",
			bare: "serve: overloaded: admission queue full (4/4)",
		},
		{
			err:  &OverloadError{Tenant: "acme", Reason: OverloadProjectedWait, ProjectedWait: 2 * time.Second, Deadline: time.Second, QueueLen: 3, QueueCap: 4},
			want: "serve[tenant acme]: overloaded: projected queue wait 2s exceeds deadline 1s (queue 3/4)",
			bare: "serve: overloaded: projected queue wait 2s exceeds deadline 1s (queue 3/4)",
		},
		{
			err:  &DeadlineError{Tenant: "acme", Waited: time.Second},
			want: "serve[tenant acme]: deadline expired after waiting 1s in queue; request shed unexecuted",
			bare: "serve: deadline expired after waiting 1s in queue; request shed unexecuted",
		},
		{
			err:  &ClosedError{Tenant: "acme", State: StateDraining},
			want: "serve[tenant acme]: server draining",
			bare: "serve: server draining",
		},
		{
			err:  &ClosedError{Tenant: "acme", State: StateFailed, Cause: errors.New("boom")},
			want: "serve[tenant acme]: server failed: boom",
			bare: "serve: server failed: boom",
		},
	}
	for _, c := range cases {
		if got := c.err.Error(); got != c.want {
			t.Errorf("tenant rendering:\n got %q\nwant %q", got, c.want)
		}
	}
	// Empty tenant must be byte-identical to the pre-tenancy messages.
	bare := []error{
		&OverloadError{Reason: OverloadQueueFull, QueueLen: 4, QueueCap: 4},
		&OverloadError{Reason: OverloadProjectedWait, ProjectedWait: 2 * time.Second, Deadline: time.Second, QueueLen: 3, QueueCap: 4},
		&DeadlineError{Waited: time.Second},
		&ClosedError{State: StateDraining},
		&ClosedError{State: StateFailed, Cause: errors.New("boom")},
	}
	for i, err := range bare {
		if got := err.Error(); got != cases[i].bare {
			t.Errorf("bare rendering:\n got %q\nwant %q", got, cases[i].bare)
		}
	}
}

// TestTenantStampedByServer proves a tenant-configured server stamps
// its id onto errors and the degraded report end-to-end.
func TestTenantStampedByServer(t *testing.T) {
	sch := schema.MustParse(`table t (v int)`)
	defs := swapDefs(t, `create rule r1 on t when inserted then delete from t`)
	s, err := New(sch, defs, "wal", Config{WAL: wal.Options{FS: wal.NewMemFS()}, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Health().Report.String(); !strings.HasPrefix(got, "tenant: acme\n") {
		t.Errorf("degraded report does not lead with the tenant id:\n%s", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
	var ce *ClosedError
	if !errors.As(err, &ce) {
		t.Fatalf("submit after close = %v, want *ClosedError", err)
	}
	if ce.Tenant != "acme" || !strings.Contains(ce.Error(), "[tenant acme]") {
		t.Errorf("closed error not tenant-stamped: %v", err)
	}
}
