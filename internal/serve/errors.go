package serve

import (
	"fmt"
	"time"
)

// The serving layer's failure taxonomy, layered over the engine's
// (internal/engine/errors.go). Every Submit error is one of:
//
//   - *OverloadError — the request was rejected ON ARRIVAL: the
//     admission queue is full, or the projected queue wait already
//     exceeds the request's deadline (shedding at the door beats
//     queueing work that is doomed to expire).
//   - *DeadlineError — the request was admitted but its deadline
//     expired while it was still queued; it was shed without occupying
//     an execution slot.
//   - *ClosedError — the server is draining, closed, or failed; no new
//     work is admitted.
//   - the engine taxonomy (*ExecError, *LivelockError, *CancelledError,
//     *DurabilityError, ErrMaxSteps), passed through for requests that
//     were admitted and executed. Whatever the failure, the request's
//     transaction was rolled back: a failed request never happened.

// OverloadReason says why admission rejected a request.
type OverloadReason string

const (
	// OverloadQueueFull: the bounded admission queue had no free slot.
	OverloadQueueFull OverloadReason = "queue-full"
	// OverloadProjectedWait: the projected queue wait (queue length ×
	// average service time) exceeded the request's deadline.
	OverloadProjectedWait OverloadReason = "projected-wait"
)

// OverloadError reports deadline-aware load shedding at admission. The
// request was never queued and had no effect.
type OverloadError struct {
	// Tenant is the id of the tenant whose admission rejected the
	// request (empty on a single-tenant server).
	Tenant string
	Reason OverloadReason
	// QueueLen and QueueCap describe the admission queue at rejection.
	QueueLen, QueueCap int
	// ProjectedWait is the estimated queue wait at arrival (zero for
	// queue-full rejections).
	ProjectedWait time.Duration
	// Deadline is the request's effective deadline (zero when none).
	Deadline time.Duration
}

func (e *OverloadError) Error() string {
	if e.Reason == OverloadProjectedWait {
		return fmt.Sprintf("serve%s: overloaded: projected queue wait %v exceeds deadline %v (queue %d/%d)",
			tenantTag(e.Tenant), e.ProjectedWait, e.Deadline, e.QueueLen, e.QueueCap)
	}
	return fmt.Sprintf("serve%s: overloaded: admission queue full (%d/%d)", tenantTag(e.Tenant), e.QueueLen, e.QueueCap)
}

// DeadlineError reports a request shed after admission: its deadline
// expired while it waited in the queue, so it was dropped without
// occupying an execution slot and had no effect.
type DeadlineError struct {
	// Tenant is the id of the tenant that shed the request (empty on a
	// single-tenant server).
	Tenant string
	// Waited is how long the request sat in the queue before being shed.
	Waited time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("serve%s: deadline expired after waiting %v in queue; request shed unexecuted", tenantTag(e.Tenant), e.Waited)
}

// ClosedError reports a request rejected because the server is no
// longer accepting work.
type ClosedError struct {
	// Tenant is the id of the tenant whose server refused the request
	// (empty on a single-tenant server).
	Tenant string
	// State is the server state that refused the request: "draining",
	// "closed", or "failed".
	State string
	// Cause carries the failure that wedged the server (state "failed"
	// only).
	Cause error
}

func (e *ClosedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("serve%s: server %s: %v", tenantTag(e.Tenant), e.State, e.Cause)
	}
	return fmt.Sprintf("serve%s: server %s", tenantTag(e.Tenant), e.State)
}

// Unwrap exposes the wedging cause for errors.Is / errors.As.
func (e *ClosedError) Unwrap() error { return e.Cause }

// tenantTag renders the tenant id fragment of an error message:
// "[tenant <id>]" when set, empty otherwise, so single-tenant messages
// are byte-identical to the pre-tenancy era.
func tenantTag(tenant string) string {
	if tenant == "" {
		return ""
	}
	return "[tenant " + tenant + "]"
}
