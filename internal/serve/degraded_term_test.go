package serve

import (
	"strings"
	"testing"

	"activerules/internal/analysis"
)

// TestDegradedReportTerminationStatus pins the tiered termination
// status on the degraded-mode report: the full set's cycle is blocked
// by a replenisher (TermUnknown), and quarantining the replenisher
// leaves a countdown that tier-2 discharges with a ranking
// certificate — the served guarantee genuinely improves under
// quarantine, and the report must say so.
func TestDegradedReportTerminationStatus(t *testing.T) {
	sch, defs := mkSystem(t, "table cd (id int, v int)", `
create rule dec on cd
when updated(v)
then update cd set v = v - 1 where v > 0

create rule reset on cd
when updated(v)
then insert into cd values (9, 5)
`)
	da, err := newDegradedAnalysis(sch, defs, nil, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if da.bl.Term != analysis.TermUnknown {
		t.Fatalf("baseline status = %v, want unknown (reset blocks the ranking discharge)", da.bl.Term)
	}

	healthy, err := da.report(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Termination != analysis.TermUnknown || healthy.WasTermination != analysis.TermUnknown {
		t.Fatalf("healthy report status = %v (was %v), want unknown/unknown",
			healthy.Termination, healthy.WasTermination)
	}
	if !strings.Contains(healthy.String(), "termination: unknown (was unknown)") {
		t.Errorf("report missing termination line:\n%s", healthy.String())
	}

	degraded, err := da.report([]string{"reset"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Termination != analysis.TermCycleDischarged {
		t.Fatalf("reduced status = %v, want cycle-discharged (countdown alone carries a ranking certificate)",
			degraded.Termination)
	}
	if degraded.WasTermination != analysis.TermUnknown {
		t.Fatalf("baseline on degraded report = %v, want unknown", degraded.WasTermination)
	}
	if !strings.Contains(degraded.String(), "termination: cycle-discharged (was unknown)") {
		t.Errorf("report missing upgraded termination line:\n%s", degraded.String())
	}
}
