package serve

import "activerules/internal/wal"

// Replication read hooks. A replication source (internal/replica)
// streams the server's durable WAL bytes to followers; these accessors
// expose exactly the crash-safe prefix — never unsynced bytes — so a
// follower's state is always one the leader could itself recover to.
//
// All three are safe for concurrent use with the worker goroutine: the
// DurableDB pointer is snapshotted under s.mu (a durability-fault
// reopen swaps it), and DurableDB's own position methods are
// internally synchronized against checkpoint rotation.

// replDD snapshots the current DurableDB pointer.
func (s *Server) replDD() *wal.DurableDB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dd
}

// DurablePos returns the active WAL generation and the byte offset of
// its log known to be on stable storage.
func (s *Server) DurablePos() (gen uint64, off int64) {
	return s.replDD().DurablePos()
}

// ReadLog returns up to max bytes of the active generation's log
// starting at off, clipped to the durable prefix. It returns
// wal.ErrGenRotated when gen has been retired by a checkpoint.
func (s *Server) ReadLog(gen uint64, off int64, max int) ([]byte, error) {
	return s.replDD().ReadLog(gen, off, max)
}

// ReadSnapshot returns the current snapshot file's bytes and
// generation; ok=false means no checkpoint has happened yet and the
// follower should start from an empty database at generation 1.
func (s *Server) ReadSnapshot() (data []byte, gen uint64, ok bool, err error) {
	return s.replDD().ReadSnapshot()
}

// Epoch returns the leadership epoch durably stamped on the server's
// WAL (0 outside cluster mode).
func (s *Server) Epoch() uint64 {
	return s.replDD().Epoch()
}

// RequestFence asks the WAL to fence itself at the next journal
// boundary: a durable epoch record is written BEFORE the boundary, so
// no transaction extends the deposed history past it. Safe from any
// goroutine; the fence surfaces to the worker as a sticky
// wal.ErrFenced, which reopen treats as terminal. A deposing
// supervisor follows with Shutdown — a fence still pending at close is
// made durable then.
func (s *Server) RequestFence(epoch uint64) {
	s.replDD().RequestFence(epoch)
}
