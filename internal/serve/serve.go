// Package serve is the concurrent serving layer over a durable rule
// engine: a supervision loop that admits client requests into a bounded
// queue, executes them one at a time on a single worker goroutine (the
// engine is single-threaded by design), and survives the failure modes
// a long-running rule server meets in production —
//
//   - overload: deadline-aware load shedding at admission
//     (*OverloadError) and in-queue expiry (*DeadlineError);
//   - hostile rules: a per-rule circuit breaker quarantines rules that
//     repeatedly panic or livelock, with seeded-backoff half-open
//     probing, and reports the degraded-mode guarantees via the paper's
//     §7 Sig(T') analysis (see degraded.go);
//   - transient durability faults: a wedged write-ahead log is reopened
//     under bounded, jittered retry, recovering the last durable point;
//   - shutdown: draining stops admission, completes queued work under a
//     deadline, checkpoints, and closes the log.
//
// Every request is a transaction: it either commits at a durable point
// or is rolled back so completely — in memory via Engine.Rollback, in
// the log via the abort record — that it never happened.
package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"activerules/internal/engine"
	"activerules/internal/retry"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/sqlmini"
	"activerules/internal/wal"
)

// Server states, visible through Health and ClosedError.
const (
	StateRunning  = "running"
	StateDraining = "draining"
	StateClosed   = "closed"
	StateFailed   = "failed"
)

// reopenSeedSalt decorrelates the WAL-reopen backoff stream from the
// per-rule probe streams derived from the same configured seed.
const reopenSeedSalt = 0x7ea1_5eed

// Config configures a Server. The zero value is usable: unbounded
// deadlines, queue depth 64, quarantine after 3 consecutive attributed
// faults, probing enabled.
type Config struct {
	// WAL configures the write-ahead log (filesystem, sync policy,
	// group commit).
	WAL wal.Options
	// Engine configures rule processing; the Journal field is
	// overwritten by the server.
	Engine engine.Options
	// QueueDepth bounds the admission queue; 0 means 64.
	QueueDepth int
	// DefaultDeadline applies to requests that carry none; 0 means no
	// deadline.
	DefaultDeadline time.Duration
	// DrainTimeout bounds Close's graceful drain; 0 means 5s.
	DrainTimeout time.Duration
	// QuarantineThreshold is the number of consecutive attributed
	// faults that trips a rule's breaker; 0 means 3.
	QuarantineThreshold int
	// ProbeBackoff shapes the half-open probe schedule of quarantined
	// rules (zero value: retry defaults).
	ProbeBackoff retry.Policy
	// DisableProbing keeps tripped breakers open forever. Deterministic
	// soaks use it so the final quarantine set is independent of
	// request interleaving.
	DisableProbing bool
	// DurableRetry shapes the WAL-reopen retry after durability faults;
	// its MaxAttempts also bounds how often a single request is
	// re-executed after losing its durable point.
	DurableRetry retry.Policy
	// Tables selects the tables of the degraded-mode report; empty
	// means every schema table.
	Tables []string
	// Seed feeds every backoff schedule (per-rule probes, reopen); runs
	// with equal seeds and equal fault sequences make equal decisions.
	Seed int64
	// Tenant is the id of the tenant this server belongs to. It is
	// stamped onto every serving-layer error (*OverloadError,
	// *DeadlineError, *ClosedError) and onto the degraded-mode report,
	// so multi-tenant logs and error responses are attributable
	// end-to-end. Empty (the default) renders exactly the single-tenant
	// messages.
	Tenant string
	// Baseline, when non-nil, supplies the precomputed full-set §7
	// analysis (per-table Sig and partial confluence, termination
	// status) and MUST describe exactly this schema + rule set +
	// Tables. The tenant layer's shared analysis cache uses it so a
	// thousand tenants with identical rule sets pay for analysis once.
	// Nil (the default) computes it at construction.
	Baseline *Baseline
	// Now and Sleep are injectable for deterministic tests; nil means
	// time.Now and time.Sleep.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Request is one client transaction: optional user statements followed
// by rule processing to quiescence.
type Request struct {
	// SQL holds user statements executed before the assertion point
	// (may be empty to just run rules on the pending transition).
	SQL string
	// Deadline bounds queue wait + execution; 0 means the server
	// default, negative means none.
	Deadline time.Duration
}

// Response reports a committed request.
type Response struct {
	// Results are the user statements' results, in order.
	Results []sqlmini.StmtResult
	// Considered and Fired count rule activity at the assertion point.
	Considered, Fired int
	// FiredByRule counts action executions per rule (nil if none).
	FiredByRule map[string]int
	// RolledBack reports a rule-directed ROLLBACK: the transaction
	// aborted cleanly (that is a committed outcome, not an error).
	RolledBack bool
	// StateHash is the hex fingerprint of the durable state after the
	// request.
	StateHash string
	// Gen is the WAL generation that holds the commit.
	Gen uint64
	// Attempts is the number of execution attempts (>1 after a
	// durability-fault retry re-ran the request).
	Attempts int
}

// Health is the readiness view.
type Health struct {
	// State is one of the State* constants.
	State string
	// Ready reports that new work is admitted.
	Ready bool
	// Degraded reports that the quarantine affects some table's
	// contents (see DegradedReport).
	Degraded bool
	// Report is the current degraded-mode report (never nil).
	Report *DegradedReport
}

// Stats is the counters view.
type Stats struct {
	State              string
	QueueLen, QueueCap int
	// Accepted counts admitted requests; Completed and Failed partition
	// the finished ones.
	Accepted, Completed, Failed uint64
	// ShedOverload counts admission rejections (*OverloadError);
	// ShedDeadline counts requests shed while queued (*DeadlineError).
	ShedOverload, ShedDeadline uint64
	// Reopens counts WAL reopen recoveries after durability faults.
	Reopens uint64
	// AvgService is the smoothed per-request service time feeding the
	// projected-wait admission check.
	AvgService time.Duration
	// AvgService is also exported as InFlight's sibling: InFlight is 1
	// while the worker is executing a request, 0 otherwise.
	InFlight int
	// Quarantined and Probing list the breaker's open and half-open
	// rules (sorted).
	Quarantined, Probing []string
}

type callKind int

const (
	callAssert callKind = iota
	callCheckpoint
	callSwap
)

type callResult struct {
	resp *Response
	err  error
}

type call struct {
	kind     callKind
	req      Request
	ctx      context.Context
	enq      time.Time
	deadline time.Duration // effective; 0 means none
	done     chan callResult

	// callSwap payload: the replacement rule set with its (pre-built)
	// degraded analysis.
	swapDefs []rules.Definition
	swapDA   *degradedAnalysis
}

// Server serializes requests onto one engine-owning worker goroutine.
// All exported methods are safe for concurrent use.
type Server struct {
	sch   *schema.Schema
	defs  []rules.Definition
	dir   string
	cfg   Config
	now   func() time.Time
	sleep func(time.Duration)

	queue   chan *call
	drainCh chan struct{}
	doneCh  chan struct{}

	mu           sync.Mutex
	state        string
	cause        error // wedging failure (StateFailed)
	closeErr     error
	drainStarted bool
	forceShed    bool
	busy         bool
	inflight     context.CancelFunc
	svcEWMA      time.Duration
	report       *DegradedReport
	accepted     uint64
	completed    uint64
	failedReqs   uint64
	shedOverload uint64
	shedDeadline uint64
	reopens      uint64

	// Worker-owned; never touched off the worker goroutine after New.
	dd  *wal.DurableDB
	eng *engine.Engine
	br  *breaker
	da  *degradedAnalysis
}

// New opens (or recovers) the WAL directory dir, builds the rule system
// from the schema and definitions, and starts the worker. The server is
// immediately ready.
func New(sch *schema.Schema, defs []rules.Definition, dir string, cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	da, err := newDegradedAnalysis(sch, defs, cfg.Tables, cfg.Tenant, cfg.Baseline)
	if err != nil {
		return nil, err
	}
	rep, err := da.report(nil, nil)
	if err != nil {
		return nil, err
	}
	d, err := wal.Open(dir, sch, cfg.WAL)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sch:     sch,
		defs:    defs,
		dir:     dir,
		cfg:     cfg,
		now:     cfg.Now,
		sleep:   cfg.Sleep,
		queue:   make(chan *call, cfg.QueueDepth),
		drainCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
		state:   StateRunning,
		report:  rep,
		da:      da,
		br:      newBreaker(cfg.QuarantineThreshold, !cfg.DisableProbing, cfg.ProbeBackoff, cfg.Seed),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	if err := s.adopt(d); err != nil {
		_ = d.Close()
		return nil, err
	}
	go s.worker()
	return s, nil
}

// adopt wires a freshly opened DurableDB: its recovered state becomes
// the engine's database (observed so mutations reach the log) and the
// current active rule set (full set minus quarantined) is rebuilt over
// it. The s.dd store is mu-guarded because the replication read path
// (replication.go) snapshots the pointer from other goroutines while a
// durability-fault reopen swaps it on the worker.
func (s *Server) adopt(d *wal.DurableDB) error {
	s.mu.Lock()
	s.dd = d
	s.mu.Unlock()
	db := d.State()
	db.SetObserver(d)
	set, err := s.activeSet()
	if err != nil {
		return err
	}
	eopts := s.cfg.Engine
	eopts.Journal = d
	s.eng = engine.New(set, db, eopts)
	return nil
}

func (s *Server) activeSet() (*rules.Set, error) {
	removed := map[string]bool{}
	for _, n := range s.br.quarantinedNames() {
		removed[n] = true
	}
	return rules.NewSet(s.sch, activeDefs(s.defs, removed))
}

// rebuildActive swaps the engine to the current active rule set at a
// transaction boundary. The database (with its observer) carries over,
// so durable state is unaffected.
func (s *Server) rebuildActive() {
	set, err := s.activeSet()
	if err != nil {
		// Cannot happen: every active set is a subset of the validated
		// full set with ordering references scrubbed. Fail safe anyway.
		s.markFailed(err)
		return
	}
	eopts := s.cfg.Engine
	eopts.Journal = s.dd
	s.eng = engine.New(set, s.eng.DB(), eopts)
}

func (s *Server) refreshReport() {
	rep, err := s.da.report(s.br.quarantinedNames(), s.br.probingNames())
	if err != nil {
		s.markFailed(err)
		return
	}
	s.mu.Lock()
	s.report = rep
	s.mu.Unlock()
}

func (s *Server) markFailed(err error) {
	s.mu.Lock()
	if s.state != StateFailed {
		s.state = StateFailed
		s.cause = err
	}
	s.mu.Unlock()
}

// Submit runs one request through admission, queueing, and execution,
// blocking until the worker responds. Errors are the taxonomy in
// errors.go. ctx cancellation is honored between rule considerations;
// a cancelled request is rolled back.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d := req.Deadline
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if d < 0 {
		d = 0
	}
	c := &call{kind: callAssert, req: req, ctx: ctx, deadline: d, done: make(chan callResult, 1)}
	if err := s.admit(c); err != nil {
		return nil, err
	}
	r := <-c.done
	return r.resp, r.err
}

// admit applies admission control: the state check and the enqueue are
// atomic under the mutex, so no request is admitted after draining
// begins (the worker can then drain the queue to empty exactly once).
func (s *Server) admit(c *call) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateRunning {
		return &ClosedError{Tenant: s.cfg.Tenant, State: s.state, Cause: s.cause}
	}
	qlen := len(s.queue)
	if qlen >= cap(s.queue) {
		s.shedOverload++
		return &OverloadError{Tenant: s.cfg.Tenant, Reason: OverloadQueueFull, QueueLen: qlen, QueueCap: cap(s.queue)}
	}
	if c.deadline > 0 && s.svcEWMA > 0 {
		waiting := qlen
		if s.busy {
			waiting++
		}
		if projected := time.Duration(waiting) * s.svcEWMA; projected > c.deadline {
			s.shedOverload++
			return &OverloadError{
				Tenant:        s.cfg.Tenant,
				Reason:        OverloadProjectedWait,
				QueueLen:      qlen,
				QueueCap:      cap(s.queue),
				ProjectedWait: projected,
				Deadline:      c.deadline,
			}
		}
	}
	c.enq = s.now()
	s.accepted++
	s.queue <- c // cannot block: capacity checked under the same mutex
	return nil
}

// Checkpoint commits the current state and rotates the WAL generation,
// serialized with requests on the worker (so it always runs at a
// transaction boundary).
func (s *Server) Checkpoint(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &call{kind: callCheckpoint, ctx: ctx, done: make(chan callResult, 1)}
	s.mu.Lock()
	if s.state != StateRunning {
		defer s.mu.Unlock()
		return &ClosedError{Tenant: s.cfg.Tenant, State: s.state, Cause: s.cause}
	}
	if len(s.queue) >= cap(s.queue) {
		defer s.mu.Unlock()
		s.shedOverload++
		return &OverloadError{Tenant: s.cfg.Tenant, Reason: OverloadQueueFull, QueueLen: len(s.queue), QueueCap: cap(s.queue)}
	}
	c.enq = s.now()
	s.queue <- c
	s.mu.Unlock()
	r := <-c.done
	return r.err
}

// SwapRules hot-replaces the served rule set: the swap is queued like a
// request and installed by the worker at a transaction boundary, so no
// in-flight transaction ever sees a mixed rule set. The durable state
// (database + WAL) carries over untouched; the degraded-mode baseline is
// rebuilt for the new set; breaker state survives for rules that keep
// their name (a quarantined rule stays quarantined across the swap) and
// is dropped for rules that disappear.
//
// baseline, when non-nil, must be the precomputed §7 baseline of
// exactly (schema, defs, Config.Tables); nil computes it here, on the
// caller's goroutine, so the worker only installs. Admission gating —
// deciding whether the new set's analysis verdicts are acceptable — is
// the caller's job (internal/tenant rejects or quarantines regressing
// swaps before calling this).
func (s *Server) SwapRules(ctx context.Context, defs []rules.Definition, baseline *Baseline) error {
	if ctx == nil {
		ctx = context.Background()
	}
	da, err := newDegradedAnalysis(s.sch, defs, s.cfg.Tables, s.cfg.Tenant, baseline)
	if err != nil {
		return err
	}
	c := &call{kind: callSwap, ctx: ctx, swapDefs: defs, swapDA: da, done: make(chan callResult, 1)}
	s.mu.Lock()
	if s.state != StateRunning {
		defer s.mu.Unlock()
		return &ClosedError{Tenant: s.cfg.Tenant, State: s.state, Cause: s.cause}
	}
	if len(s.queue) >= cap(s.queue) {
		defer s.mu.Unlock()
		s.shedOverload++
		return &OverloadError{Tenant: s.cfg.Tenant, Reason: OverloadQueueFull, QueueLen: len(s.queue), QueueCap: cap(s.queue)}
	}
	c.enq = s.now()
	s.queue <- c
	s.mu.Unlock()
	r := <-c.done
	return r.err
}

// Health reports state, readiness, and the degraded-mode guarantees.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Health{
		State:    s.state,
		Ready:    s.state == StateRunning,
		Degraded: s.report.Degraded,
		Report:   s.report,
	}
}

// Stats reports the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	inflight := 0
	if s.busy {
		inflight = 1
	}
	return Stats{
		State:        s.state,
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		InFlight:     inflight,
		Accepted:     s.accepted,
		Completed:    s.completed,
		Failed:       s.failedReqs,
		ShedOverload: s.shedOverload,
		ShedDeadline: s.shedDeadline,
		Reopens:      s.reopens,
		AvgService:   s.svcEWMA,
		Quarantined:  append([]string(nil), s.report.Quarantined...),
		Probing:      append([]string(nil), s.report.Probing...),
	}
}

// Shutdown drains gracefully: admission stops immediately (readiness
// flips), queued and in-flight requests complete, a final checkpoint
// makes the state durable, and the WAL closes. When ctx expires first,
// the in-flight request is cancelled at its next consideration boundary
// and the remaining queue is shed with *ClosedError — the durable state
// stays consistent either way (shed work simply never happened).
// Shutdown returns the close error (nil on a clean drain) and is safe
// to call concurrently and repeatedly.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if !s.drainStarted {
		s.drainStarted = true
		if s.state == StateRunning {
			s.state = StateDraining
		}
		close(s.drainCh)
	}
	s.mu.Unlock()

	// Watchdog: when the drain deadline passes, shed the queue and
	// cancel the in-flight request so the drain stays bounded.
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.forceShed = true
			cancel := s.inflight
			s.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		case <-stop:
		}
	}()
	<-s.doneCh
	close(stop)

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

// Close is Shutdown bounded by Config.DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// worker owns the engine: it executes queued calls one at a time until
// drain begins, then finalizes.
func (s *Server) worker() {
	for {
		select {
		case c := <-s.queue:
			s.handle(c)
		case <-s.drainCh:
			s.finalize()
			return
		}
	}
}

// finalize drains the remaining queue (executing, or shedding once the
// drain deadline forced it), writes the final durable point, and closes
// the log.
func (s *Server) finalize() {
	for {
		select {
		case c := <-s.queue:
			s.mu.Lock()
			shed := s.forceShed
			s.mu.Unlock()
			if shed {
				c.done <- callResult{err: &ClosedError{Tenant: s.cfg.Tenant, State: StateDraining}}
				continue
			}
			s.handle(c)
		default:
			goto drained
		}
	}
drained:
	s.mu.Lock()
	failed := s.state == StateFailed
	cause := s.cause
	s.mu.Unlock()
	var closeErr error
	if failed {
		closeErr = cause
	} else {
		// Final durable point: commit and checkpoint so the next open
		// recovers from a snapshot instead of replaying the log.
		if err := s.eng.Commit(); err != nil {
			closeErr = err
		} else if err := s.dd.Checkpoint(s.eng.DB()); err != nil {
			closeErr = err
		}
	}
	if err := s.dd.Close(); err != nil && closeErr == nil {
		closeErr = err
	}
	s.mu.Lock()
	if s.state != StateFailed {
		s.state = StateClosed
	}
	s.closeErr = closeErr
	s.mu.Unlock()
	close(s.doneCh)
}

// handle runs one queued call to completion and responds on its done
// channel.
func (s *Server) handle(c *call) {
	if c.kind == callCheckpoint {
		c.done <- callResult{err: s.doCheckpoint()}
		return
	}
	if c.kind == callSwap {
		c.done <- callResult{err: s.doSwap(c.swapDefs, c.swapDA)}
		return
	}
	now := s.now()
	s.mu.Lock()
	shed := s.forceShed
	failedState := s.state == StateFailed
	cause := s.cause
	s.mu.Unlock()
	if failedState {
		c.done <- callResult{err: &ClosedError{Tenant: s.cfg.Tenant, State: StateFailed, Cause: cause}}
		return
	}
	if shed {
		c.done <- callResult{err: &ClosedError{Tenant: s.cfg.Tenant, State: StateDraining}}
		return
	}
	// Shed expired work before it takes the execution slot.
	waited := now.Sub(c.enq)
	if c.deadline > 0 && waited >= c.deadline {
		s.mu.Lock()
		s.shedDeadline++
		s.mu.Unlock()
		c.done <- callResult{err: &DeadlineError{Tenant: s.cfg.Tenant, Waited: waited}}
		return
	}
	if cerr := c.ctx.Err(); cerr != nil {
		c.done <- callResult{err: &engine.CancelledError{Cause: cerr}}
		return
	}
	// Readmit quarantined rules whose probe time arrived (half-open).
	if probes := s.br.dueProbes(now); len(probes) != 0 {
		s.rebuildActive()
		s.refreshReport()
	}

	// Execution context: the caller's, bounded by the remaining
	// deadline, cancellable by the drain watchdog.
	ctx, cancel := context.WithCancel(c.ctx)
	if c.deadline > 0 {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithTimeout(ctx, c.deadline-waited)
		defer dcancel()
	}
	s.mu.Lock()
	s.inflight = cancel
	s.busy = true
	s.mu.Unlock()
	start := s.now()
	resp, err := s.executeRequest(ctx, c.req)
	cancel()
	elapsed := s.now().Sub(start)

	s.mu.Lock()
	s.inflight = nil
	s.busy = false
	if s.svcEWMA == 0 {
		s.svcEWMA = elapsed
	} else {
		s.svcEWMA = (4*s.svcEWMA + elapsed) / 5
	}
	if err == nil {
		s.completed++
	} else {
		s.failedReqs++
	}
	s.mu.Unlock()

	// Breaker accounting at the (already re-fenced) boundary.
	if err == nil {
		if restored := s.br.noteSuccess(resp.FiredByRule); len(restored) != 0 {
			s.rebuildActive()
			s.refreshReport()
		}
	} else if indicted := attribute(err); len(indicted) != 0 {
		if s.br.noteFault(indicted, s.now()) {
			s.rebuildActive()
			s.refreshReport()
		}
	}
	c.done <- callResult{resp: resp, err: err}
}

// executeRequest is the transient-fault boundary: when an attempt
// wedges the WAL, the log is reopened (recovering the last durable
// point — the attempt's effects are discarded) and, if the request had
// not failed on its own merits, it is re-executed from scratch. Total
// attempts are bounded by DurableRetry.MaxAttempts.
func (s *Server) executeRequest(ctx context.Context, req Request) (*Response, error) {
	maxAttempts := s.cfg.DurableRetry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 3
	}
	for try := 1; ; try++ {
		resp, execErr, durErr := s.executeOnce(ctx, req)
		if durErr == nil {
			if resp != nil {
				resp.Attempts = try
			}
			return resp, execErr
		}
		if rerr := s.reopen(); rerr != nil {
			return nil, &ClosedError{Tenant: s.cfg.Tenant, State: StateFailed, Cause: rerr}
		}
		if execErr != nil {
			// The request failed deterministically (panic, livelock,
			// SQL error) and additionally damaged the log while rolling
			// back; the log is repaired, the failure stands.
			return nil, execErr
		}
		if try >= maxAttempts {
			return nil, durErr
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, &engine.CancelledError{Cause: cerr}
		}
	}
}

// executeOnce runs one attempt. execErr is the request's own failure
// (engine taxonomy; the request has been rolled back and the journal
// re-fenced). durErr reports durable damage — the WAL rejected a
// boundary record and is now sticky-failed — whether or not the request
// itself also failed.
func (s *Server) executeOnce(ctx context.Context, req Request) (resp *Response, execErr, durErr error) {
	var results []sqlmini.StmtResult
	if req.SQL != "" {
		out, err := s.eng.ExecUser(req.SQL)
		if err != nil {
			if isDurability(err) {
				return nil, nil, err
			}
			return nil, err, s.fence()
		}
		results = out
	}
	res, err := s.eng.AssertContext(ctx)
	if err != nil {
		if isDurability(err) {
			return nil, nil, err
		}
		return nil, err, s.fence()
	}
	// Success — including a rule-directed ROLLBACK, which the engine
	// already aborted cleanly. Commit the request boundary: the engine
	// snapshot advances and the journal gains a commit + begin fence,
	// so the NEXT request's abort reverts only itself.
	if err := s.eng.Commit(); err != nil {
		return nil, nil, err
	}
	fp := s.eng.DB().Fingerprint()
	return &Response{
		Results:     results,
		Considered:  res.Considered,
		Fired:       res.Fired,
		FiredByRule: res.FiredByRule,
		RolledBack:  res.RolledBack,
		StateHash:   hex.EncodeToString(fp[:]),
		Gen:         s.dd.Gen(),
	}, nil, nil
}

// fence rolls the failed request back and re-establishes the journal
// fence (commit + begin) so the next request aborts only to its own
// begin. It returns any durable damage met along the way; the in-memory
// engine is consistent regardless.
func (s *Server) fence() error {
	if err := s.eng.Rollback(); err != nil {
		return err
	}
	return s.eng.Commit()
}

// doSwap installs a replacement rule set on the worker, between
// transactions: new definitions, new degraded baseline, breaker state
// retained only for surviving rule names, engine rebuilt over the same
// database (and journal), report refreshed.
func (s *Server) doSwap(defs []rules.Definition, da *degradedAnalysis) error {
	live := map[string]bool{}
	for _, d := range defs {
		live[d.Name] = true
	}
	s.br.retain(live)
	s.defs = defs
	s.da = da
	s.rebuildActive()
	s.refreshReport()
	s.mu.Lock()
	failed := s.state == StateFailed
	cause := s.cause
	s.mu.Unlock()
	if failed {
		return &ClosedError{Tenant: s.cfg.Tenant, State: StateFailed, Cause: cause}
	}
	return nil
}

// doCheckpoint runs on the worker at a transaction boundary.
func (s *Server) doCheckpoint() error {
	if err := s.eng.Commit(); err != nil {
		if rerr := s.reopen(); rerr != nil {
			return &ClosedError{Tenant: s.cfg.Tenant, State: StateFailed, Cause: rerr}
		}
		return err
	}
	if err := s.dd.Checkpoint(s.eng.DB()); err != nil {
		if rerr := s.reopen(); rerr != nil {
			return &ClosedError{Tenant: s.cfg.Tenant, State: StateFailed, Cause: rerr}
		}
		return err
	}
	return nil
}

// reopen recovers from a wedged WAL: close the handle, reopen the
// directory under bounded jittered retry (recovery discards the
// uncommitted tail, landing exactly on the last durable point), and
// rebuild the engine over the recovered state. An unrecoverable
// directory — or exhausting the retry budget — fails the server.
// A fence is equally terminal: a deposed leader must fail, not
// silently reopen past the epoch that deposed it (Config.WAL.Epoch
// pins the server's claim, so Open itself refuses the stale epoch).
// Reopen is server-level repair, so it deliberately ignores the
// triggering request's context.
func (s *Server) reopen() error {
	_ = s.dd.Close()
	err := retry.Do(context.Background(), s.cfg.DurableRetry, s.cfg.Seed^reopenSeedSalt, s.sleep,
		func(err error) bool {
			return !errors.Is(err, wal.ErrUnrecoverable) && !errors.Is(err, wal.ErrFenced)
		},
		func() error {
			d, err := wal.Open(s.dir, s.sch, s.cfg.WAL)
			if err != nil {
				return err
			}
			return s.adopt(d)
		})
	if err != nil {
		s.markFailed(err)
		return err
	}
	s.mu.Lock()
	s.reopens++
	s.mu.Unlock()
	return nil
}

func isDurability(err error) bool {
	var de *engine.DurabilityError
	return errors.As(err, &de)
}
