package serve

import (
	"errors"
	"hash/fnv"
	"sort"
	"time"

	"activerules/internal/engine"
	"activerules/internal/retry"
)

// breaker is the per-rule circuit breaker driving quarantine. It is
// owned by the worker goroutine; snapshots for Health flow out under
// the server mutex.
//
// States per rule, classic three-state breaker:
//
//	closed    — healthy; consecutive faults are counted.
//	open      — quarantined: the rule is deactivated (removed from the
//	            active set) until its probe time arrives.
//	half-open — the probe time arrived: the rule is reactivated for
//	            live traffic. Its next attributed fault re-opens the
//	            breaker with a longer (jittered exponential) backoff;
//	            a request in which it fires successfully closes it.
type breaker struct {
	threshold int
	probing   bool
	pol       retry.Policy
	seed      int64
	health    map[string]*ruleHealth
}

type ruleHealth struct {
	fails       int // consecutive attributed faults while closed
	quarantined bool
	halfOpen    bool
	sched       *retry.Schedule
	probeAt     time.Time
}

func newBreaker(threshold int, probing bool, pol retry.Policy, seed int64) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	return &breaker{
		threshold: threshold,
		probing:   probing,
		pol:       pol,
		seed:      seed,
		health:    map[string]*ruleHealth{},
	}
}

func (b *breaker) get(name string) *ruleHealth {
	h := b.health[name]
	if h == nil {
		h = &ruleHealth{}
		b.health[name] = h
	}
	return h
}

// ruleSeed derives a per-rule deterministic seed so every rule's probe
// backoff stream is independent yet reproducible.
func (b *breaker) ruleSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return b.seed ^ int64(h.Sum64())
}

// attribute maps an execution error to the rules it indicts: a panicking
// consideration indicts its rule; a livelock witness indicts every rule
// in the repeating cycle. Other failures (SQL errors, deadlines, budget
// exhaustion without a witness, durability faults) indict nobody — they
// are not evidence of a hostile rule.
func attribute(err error) []string {
	var xe *engine.ExecError
	if errors.As(err, &xe) {
		var pe *engine.PanicError
		if errors.As(xe.Cause, &pe) {
			return []string{xe.Rule}
		}
		return nil
	}
	var le *engine.LivelockError
	if errors.As(err, &le) {
		seen := map[string]bool{}
		var out []string
		for _, r := range le.Cycle {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

// noteFault records attributed faults at now and reports whether the
// active rule set changed (a breaker opened or re-opened).
func (b *breaker) noteFault(rules []string, now time.Time) (changed bool) {
	for _, name := range rules {
		h := b.get(name)
		switch {
		case h.quarantined && h.halfOpen:
			// Probe failed: re-open with the next, longer backoff.
			h.halfOpen = false
			h.probeAt = now.Add(h.sched.Next())
			changed = true
		case h.quarantined:
			// Already open; nothing to do (shouldn't receive faults).
		default:
			h.fails++
			if h.fails >= b.threshold {
				h.quarantined = true
				h.fails = 0
				if h.sched == nil {
					h.sched = retry.New(b.pol, b.ruleSeed(name))
				}
				h.probeAt = now.Add(h.sched.Next())
				changed = true
			}
		}
	}
	return changed
}

// noteSuccess records a request that completed: every rule that fired
// in it is proven live. Half-open rules that fired close their breaker
// (restored); closed rules that fired reset their fault count.
// Reporting whether any breaker closed lets the server refresh its
// degraded-mode report.
func (b *breaker) noteSuccess(firedByRule map[string]int) (restored []string) {
	for name := range firedByRule {
		h := b.health[name]
		if h == nil {
			continue
		}
		if h.quarantined && h.halfOpen {
			h.quarantined = false
			h.halfOpen = false
			h.fails = 0
			h.sched.Reset()
			restored = append(restored, name)
			continue
		}
		h.fails = 0
	}
	sort.Strings(restored)
	return restored
}

// dueProbes transitions every open breaker whose probe time has arrived
// into half-open and returns their names (sorted), or nil. The caller
// reactivates them in the engine's rule set.
func (b *breaker) dueProbes(now time.Time) []string {
	if !b.probing {
		return nil
	}
	var out []string
	for name, h := range b.health {
		if h.quarantined && !h.halfOpen && !h.probeAt.After(now) {
			h.halfOpen = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// quarantined returns the names of rules whose breaker is open (NOT
// half-open: a probing rule is live), sorted.
func (b *breaker) quarantinedNames() []string {
	var out []string
	for name, h := range b.health {
		if h.quarantined && !h.halfOpen {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// probingNames returns the names of half-open rules, sorted.
func (b *breaker) probingNames() []string {
	var out []string
	for name, h := range b.health {
		if h.quarantined && h.halfOpen {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// retain drops breaker state for every rule not in live, so a hot
// rule-set swap does not leave ghost quarantine entries for rules that
// no longer exist. Surviving names keep their state: a quarantined rule
// stays quarantined across a swap that keeps it.
func (b *breaker) retain(live map[string]bool) {
	for name := range b.health {
		if !live[name] {
			delete(b.health, name)
		}
	}
}
