package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"activerules/internal/engine"
	"activerules/internal/faultinject"
	"activerules/internal/retry"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
	"activerules/internal/wal"
)

func mkSystem(t *testing.T, schemaSrc, rulesSrc string) (*schema.Schema, []rules.Definition) {
	t.Helper()
	sch := schema.MustParse(schemaSrc)
	defs, err := ruledef.Parse(rulesSrc)
	if err != nil {
		t.Fatal(err)
	}
	return sch, defs
}

const basicSchema = `
table t (v int)
table u (v int)
`

const basicRules = `
create rule copy on t
when inserted
then insert into u select v from inserted
`

// fakeClock is an injectable Now for deterministic queue-wait and
// probe-time tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// gate blocks the engine's first mutation per request until released,
// so tests can hold the worker busy at a known point.
type gate struct {
	entered chan struct{} // one signal per blocked request
	release chan struct{} // one receive unblocks one request
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (g *gate) wrap(m engine.Mutator) engine.Mutator { return &gatedMutator{g: g, m: m} }

type gatedMutator struct {
	g *gate
	m engine.Mutator
}

func (gm *gatedMutator) hold() {
	gm.g.entered <- struct{}{}
	<-gm.g.release
}

func (gm *gatedMutator) Insert(tb string, vals []storage.Value) (storage.TupleID, error) {
	gm.hold()
	return gm.m.Insert(tb, vals)
}
func (gm *gatedMutator) Delete(tb string, id storage.TupleID) error {
	gm.hold()
	return gm.m.Delete(tb, id)
}
func (gm *gatedMutator) Update(tb string, id storage.TupleID, col string, v storage.Value) error {
	gm.hold()
	return gm.m.Update(tb, id, col, v)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *wal.MemFS) {
	t.Helper()
	sch, defs := mkSystem(t, basicSchema, basicRules)
	fsys := wal.NewMemFS()
	cfg.WAL.FS = fsys
	s, err := New(sch, defs, "wal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, fsys
}

func TestSubmitCommitsDurably(t *testing.T) {
	s, fsys := newTestServer(t, Config{})
	resp, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fired != 1 || resp.FiredByRule["copy"] != 1 {
		t.Errorf("Fired=%d FiredByRule=%v, want the copy rule to fire once", resp.Fired, resp.FiredByRule)
	}
	if resp.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", resp.Attempts)
	}
	if resp.StateHash == "" {
		t.Error("empty StateHash")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The committed request survives: recover the directory read-only.
	sch := schema.MustParse(basicSchema)
	db, _, err := wal.Recover("wal", sch, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("t").Len() != 1 || db.Table("u").Len() != 1 {
		t.Errorf("recovered t=%d u=%d, want 1/1", db.Table("t").Len(), db.Table("u").Len())
	}
}

func TestRuleRollbackIsACommittedOutcome(t *testing.T) {
	sch, defs := mkSystem(t, basicSchema, `
create rule veto on t
when inserted
then rollback
`)
	s, err := New(sch, defs, "wal", Config{WAL: wal.Options{FS: wal.NewMemFS()}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.RolledBack {
		t.Error("RolledBack = false, want true")
	}
	// The veto undid the insert.
	resp2, err := s.Submit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.RolledBack {
		t.Error("empty request rolled back")
	}
}

func TestQueueFullOverload(t *testing.T) {
	g := newGate()
	s, _ := newTestServer(t, Config{
		QueueDepth: 2,
		Engine:     engine.Options{WrapMutator: g.wrap},
	})

	var wg sync.WaitGroup
	submit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"}); err != nil {
				t.Errorf("blocked submit failed: %v", err)
			}
		}()
	}
	submit() // A: occupies the worker, blocked at the gate
	<-g.entered
	submit() // B, C: fill the queue
	submit()
	waitFor(t, func() bool { return s.Stats().QueueLen == 2 })

	_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (9)"})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != OverloadQueueFull {
		t.Fatalf("Submit on full queue = %v, want *OverloadError(queue-full)", err)
	}
	if oe.QueueLen != 2 || oe.QueueCap != 2 {
		t.Errorf("queue %d/%d, want 2/2", oe.QueueLen, oe.QueueCap)
	}

	close(g.release) // let everything through
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ShedOverload != 1 || st.Completed != 3 {
		t.Errorf("ShedOverload=%d Completed=%d, want 1, 3", st.ShedOverload, st.Completed)
	}
}

func TestProjectedWaitShedsAtAdmission(t *testing.T) {
	g := newGate()
	s, _ := newTestServer(t, Config{Engine: engine.Options{WrapMutator: g.wrap}})

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
		done <- err
	}()
	<-g.entered // worker busy
	s.mu.Lock()
	s.svcEWMA = time.Second // pretend requests take 1s each
	s.mu.Unlock()

	_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (2)", Deadline: 100 * time.Millisecond})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != OverloadProjectedWait {
		t.Fatalf("Submit = %v, want *OverloadError(projected-wait)", err)
	}
	if oe.ProjectedWait != time.Second || oe.Deadline != 100*time.Millisecond {
		t.Errorf("ProjectedWait=%v Deadline=%v", oe.ProjectedWait, oe.Deadline)
	}

	// A request without a deadline is not shed by projection.
	go func() { _, _ = s.Submit(context.Background(), Request{}) }()
	waitFor(t, func() bool { return s.Stats().QueueLen == 1 })

	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExpiredInQueueShedsWithoutExecuting(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	g := newGate()
	s, fsys := newTestServer(t, Config{
		Now:    clk.Now,
		Engine: engine.Options{WrapMutator: g.wrap},
	})

	blocked := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
		blocked <- err
	}()
	<-g.entered

	// B enqueues with a 20ms deadline, then ages past it in the queue.
	shed := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (99)", Deadline: 20 * time.Millisecond})
		shed <- err
	}()
	waitFor(t, func() bool { return s.Stats().QueueLen == 1 })
	clk.Advance(50 * time.Millisecond)

	close(g.release) // A proceeds; B is then dequeued, already expired
	if err := <-blocked; err != nil {
		t.Fatalf("A failed: %v", err)
	}
	err := <-shed
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("B = %v, want *DeadlineError", err)
	}
	if de.Waited < 20*time.Millisecond {
		t.Errorf("Waited = %v, want >= deadline", de.Waited)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}

	// B never executed: the durable state has A's row but not 99.
	sch := schema.MustParse(basicSchema)
	db, _, err := wal.Recover("wal", sch, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("t").Len() != 1 {
		t.Errorf("recovered t has %d rows, want 1 (the shed request must not run)", db.Table("t").Len())
	}
}

// Quarantine system: the hostile rule copies t into poison, where the
// fault injector panics on every mutation.
const quarantineSchema = `
table t (v int)
table poison (v int)
table audit (v int)
`

const quarantineRules = `
create rule hostile on t
when inserted
then insert into poison select v from inserted

create rule audit on t
when inserted
then insert into audit select v from inserted
`

func newQuarantineServer(t *testing.T, cfg Config) (*Server, *faultinject.Injector) {
	t.Helper()
	sch, defs := mkSystem(t, quarantineSchema, quarantineRules)
	in := faultinject.New(faultinject.Config{PanicTable: "poison"})
	cfg.WAL.FS = wal.NewMemFS()
	cfg.Engine.WrapMutator = in.Wrap
	s, err := New(sch, defs, "wal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, in
}

func TestQuarantineTripsAndDegrades(t *testing.T) {
	s, _ := newQuarantineServer(t, Config{QuarantineThreshold: 2, DisableProbing: true})
	defer s.Close()
	ctx := context.Background()

	// Two consecutive panics attribute to the hostile rule and trip it.
	for i := 0; i < 2; i++ {
		_, err := s.Submit(ctx, Request{SQL: "insert into t values (1)"})
		var xe *engine.ExecError
		if !errors.As(err, &xe) || xe.Rule != "hostile" {
			t.Fatalf("attempt %d = %v, want *ExecError from hostile", i, err)
		}
	}
	h := s.Health()
	if got := h.Report.Quarantined; len(got) != 1 || got[0] != "hostile" {
		t.Fatalf("Quarantined = %v, want [hostile]", got)
	}
	if !h.Degraded {
		t.Error("Degraded = false: hostile is significant for poison")
	}

	// Degraded-mode guarantees: poison is affected, t and audit are not.
	byTable := map[string]TableGuarantee{}
	for _, g := range h.Report.Tables {
		byTable[g.Table] = g
	}
	if byTable["poison"].Unaffected {
		t.Error("poison marked unaffected despite quarantining its writer")
	}
	if !byTable["audit"].Unaffected || !byTable["t"].Unaffected {
		t.Errorf("audit/t should be unaffected: %+v", h.Report.Tables)
	}

	// Service continues without the hostile rule: same request now
	// commits, and the audit rule still fires.
	resp, err := s.Submit(ctx, Request{SQL: "insert into t values (2)"})
	if err != nil {
		t.Fatalf("post-quarantine submit: %v", err)
	}
	if resp.FiredByRule["audit"] != 1 || resp.FiredByRule["hostile"] != 0 {
		t.Errorf("FiredByRule = %v, want audit only", resp.FiredByRule)
	}

	// The report is deterministic: rendering twice is byte-identical.
	if a, b := s.Health().Report.String(), s.Health().Report.String(); a != b {
		t.Error("report rendering is not stable")
	}
	if !strings.Contains(h.Report.String(), "table poison: DEGRADED") {
		t.Errorf("report missing degraded line:\n%s", h.Report.String())
	}
}

func TestQuarantineProbeReopensAndRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	s, in := newQuarantineServer(t, Config{
		QuarantineThreshold: 1,
		ProbeBackoff:        retry.Policy{Initial: 10 * time.Millisecond, Jitter: 0},
		Now:                 clk.Now,
	})
	defer s.Close()
	ctx := context.Background()

	// Trip on the first fault (threshold 1).
	if _, err := s.Submit(ctx, Request{SQL: "insert into t values (1)"}); err == nil {
		t.Fatal("expected panic-driven failure")
	}
	if q := s.Health().Report.Quarantined; len(q) != 1 {
		t.Fatalf("Quarantined = %v", q)
	}

	// Before the probe time, the rule stays out: requests commit.
	if _, err := s.Submit(ctx, Request{SQL: "insert into t values (2)"}); err != nil {
		t.Fatal(err)
	}

	// Past the probe time the rule is readmitted half-open; it is still
	// hostile, so the probe fails and the breaker re-opens with the
	// next backoff (20ms).
	clk.Advance(11 * time.Millisecond)
	if _, err := s.Submit(ctx, Request{SQL: "insert into t values (3)"}); err == nil {
		t.Fatal("probe of a still-hostile rule should fail")
	}
	if q := s.Health().Report.Quarantined; len(q) != 1 {
		t.Fatalf("breaker should re-open, Quarantined = %v", q)
	}

	// The rule is cured (injector disarmed); the next due probe fires
	// it successfully and the breaker closes.
	clk.Advance(21 * time.Millisecond)
	in.Disarm()
	resp, err := s.Submit(ctx, Request{SQL: "insert into t values (4)"})
	if err != nil {
		t.Fatalf("curing probe: %v", err)
	}
	if resp.FiredByRule["hostile"] != 1 {
		t.Errorf("FiredByRule = %v, want hostile restored and firing", resp.FiredByRule)
	}
	h := s.Health()
	if len(h.Report.Quarantined) != 0 || h.Degraded {
		t.Errorf("breaker should close after a successful probe: %+v", h.Report)
	}
}

func TestDurabilityFaultReopensAndRetries(t *testing.T) {
	sch, defs := mkSystem(t, basicSchema, basicRules)

	// Probe run: count the fs operations server open consumes, so the
	// fault can be aimed at the first request's log writes.
	probe := faultinject.New(faultinject.Config{})
	ps, err := New(sch, defs, "wal", Config{WAL: wal.Options{FS: probe.WrapFS(wal.NewMemFS())}})
	if err != nil {
		t.Fatal(err)
	}
	openCalls := probe.FSCalls()
	_ = ps.Close()

	in := faultinject.New(faultinject.Config{FSFailAt: openCalls + 1})
	s, err := New(sch, defs, "wal", Config{
		WAL:          wal.Options{FS: in.WrapFS(wal.NewMemFS())},
		DurableRetry: retry.Policy{Initial: time.Microsecond, MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
	if err != nil {
		t.Fatalf("Submit should survive one transient fs fault: %v", err)
	}
	if resp.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one durability retry)", resp.Attempts)
	}
	if st := s.Stats(); st.Reopens != 1 {
		t.Errorf("Reopens = %d, want 1", st.Reopens)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulDrainCompletesQueuedWork(t *testing.T) {
	g := newGate()
	s, fsys := newTestServer(t, Config{Engine: engine.Options{WrapMutator: g.wrap}})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"}); err != nil {
				t.Errorf("queued submit failed during graceful drain: %v", err)
			}
		}()
	}
	<-g.entered
	waitFor(t, func() bool { return s.Stats().QueueLen == 2 })

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()
	// Readiness flips immediately: new work is refused while queued
	// work still completes.
	waitFor(t, func() bool { return !s.Health().Ready })
	if _, err := s.Submit(context.Background(), Request{SQL: "insert into t values (9)"}); err == nil {
		t.Fatal("Submit after drain start should fail")
	} else {
		var ce *ClosedError
		if !errors.As(err, &ce) || ce.State != StateDraining {
			t.Fatalf("Submit = %v, want *ClosedError(draining)", err)
		}
	}

	close(g.release)
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := s.Health().State; st != StateClosed {
		t.Errorf("state = %s, want closed", st)
	}

	// All three committed and the final checkpoint landed.
	sch := schema.MustParse(basicSchema)
	db, info, err := wal.Recover("wal", sch, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("t").Len() != 3 {
		t.Errorf("recovered t=%d, want 3", db.Table("t").Len())
	}
	if info.Gen < 1 {
		t.Errorf("final checkpoint should rotate the generation, gen=%d", info.Gen)
	}
}

func TestDrainDeadlineShedsQueue(t *testing.T) {
	g := newGate()
	s, fsys := newTestServer(t, Config{Engine: engine.Options{WrapMutator: g.wrap}})

	inFlight := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (1)"})
		inFlight <- err
	}()
	<-g.entered
	queued := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{SQL: "insert into t values (2)"})
		queued <- err
	}()
	waitFor(t, func() bool { return s.Stats().QueueLen == 1 })

	// The drain deadline has already passed: the watchdog cancels the
	// in-flight request and sheds the queue, but the drain still only
	// completes once the worker reaches a cancellation point.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(ctx) }()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.forceShed
	})
	close(g.release)

	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	var ce *engine.CancelledError
	if err := <-inFlight; !errors.As(err, &ce) {
		t.Errorf("in-flight = %v, want *CancelledError", err)
	}
	var cle *ClosedError
	if err := <-queued; !errors.As(err, &cle) {
		t.Errorf("queued = %v, want *ClosedError", err)
	}

	// Neither request's effects are durable; the state is still a
	// consistent durable point (the final checkpoint of an empty tail).
	sch := schema.MustParse(basicSchema)
	db, _, err := wal.Recover("wal", sch, fsys)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("t").Len() != 0 {
		t.Errorf("recovered t=%d, want 0 (shed work never happened)", db.Table("t").Len())
	}
}

func TestSubmitDeadlineCancelsExecution(t *testing.T) {
	// A livelocking rule burns the step budget; a short deadline stops
	// it at a consideration boundary, and the request is rolled back.
	sch, defs := mkSystem(t, "table t (v int)", `
create rule spin on t
when inserted
then insert into t values (1)
`)
	s, err := New(sch, defs, "wal", Config{
		WAL:    wal.Options{FS: wal.NewMemFS()},
		Engine: engine.Options{MaxSteps: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Submit(context.Background(), Request{SQL: "insert into t values (0)", Deadline: 30 * time.Millisecond})
	var ce *engine.CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("Submit = %v, want *CancelledError", err)
	}
	// The server is healthy and the next request commits.
	resp, err := s.Submit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Considered != 0 {
		t.Errorf("Considered = %d after rollback, want 0", resp.Considered)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
