package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"activerules/internal/engine"
	"activerules/internal/faultinject"
	"activerules/internal/retry"
	"activerules/internal/ruledef"
	"activerules/internal/rules"
	"activerules/internal/schema"
	"activerules/internal/storage"
	"activerules/internal/wal"
)

// Chaos soak: N concurrent clients against one server whose rule set
// contains a deterministically panicking rule (hostile, via the
// injector's PanicTable) and a livelocking ping-pong pair (ra/rb),
// while the storage layer injects probabilistic mutation faults from
// the same seeded stream — and, in the crash variant, the filesystem
// under the WAL fails or dies too. Invariants:
//
//  1. Durable state is never corrupted: the recovered state is a
//     durable point — in graceful runs, one the clients observed; in
//     crash runs, one satisfying the workload's transactional
//     consistency relations (rule processing ran to quiescence).
//  2. Drain never deadlocks: Shutdown returns within its deadline.
//  3. Quarantine verdicts and the degraded-mode Sig(T') report are
//     deterministic per seed: two runs of the same seed produce
//     byte-identical reports despite different client interleavings.

const soakSchema = `
table item (v int)
table log (v int)
table poison (v int)
table ping (v int)
table pong (v int)
`

const soakRules = `
create rule copy on item when inserted then insert into log select v from inserted
create rule hostile on item when inserted then insert into poison select v from inserted
create rule ra on ping when inserted then delete from ping; insert into pong values (1)
create rule rb on pong when inserted then delete from pong; insert into ping values (1)
`

func soakSystem(t *testing.T) (*schema.Schema, []rules.Definition) {
	t.Helper()
	sch := schema.MustParse(soakSchema)
	defs, err := ruledef.Parse(soakRules)
	if err != nil {
		t.Fatal(err)
	}
	return sch, defs
}

// soakWorkload is one client's deterministic request sequence. The
// first item inserts meet the hostile rule (panicking until its breaker
// trips); the ping inserts livelock until ra/rb trip; the tail item
// inserts mostly land after quarantine and commit.
func soakWorkload(client int, spin bool) []string {
	base := client * 100
	var reqs []string
	for i := 1; i <= 3; i++ {
		reqs = append(reqs, fmt.Sprintf("insert into item values (%d)", base+i))
	}
	if spin {
		for i := 0; i < 3; i++ {
			reqs = append(reqs, "insert into ping values (1)")
		}
	}
	for i := 4; i <= 6; i++ {
		reqs = append(reqs, fmt.Sprintf("insert into item values (%d)", base+i))
	}
	reqs = append(reqs, "") // empty request: rule processing only
	return reqs
}

// runSoakClients drives the concurrent clients and returns the set of
// StateHashes of every committed response — the durable points the
// clients observed. Deterministic failures (panic, livelock) complete a
// workload item; injected/transient failures are retried; a closed or
// failed server stops the client.
func runSoakClients(t *testing.T, s *Server, clients int, spin bool) map[string]bool {
	t.Helper()
	var mu sync.Mutex
	hashes := map[string]bool{}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, sql := range soakWorkload(c, spin) {
				for attempt := 0; attempt < 100; attempt++ {
					resp, err := s.Submit(context.Background(), Request{SQL: sql})
					if err == nil {
						mu.Lock()
						hashes[resp.StateHash] = true
						mu.Unlock()
						break
					}
					var ce *ClosedError
					if errors.As(err, &ce) {
						return // server drained or failed; run is over
					}
					if len(attribute(err)) != 0 {
						break // deterministic fault, attributed; next item
					}
					// Injected storage fault, durability fault, or
					// cancellation: the request never happened — retry.
				}
			}
		}(c)
	}
	wg.Wait()
	return hashes
}

// checkConsistency verifies the transactional relations every durable
// point of the soak workload satisfies: rule processing ran to
// quiescence before commit (log mirrors item), and no partial effect of
// a panicking or livelocking transaction leaked (poison and pong stay
// empty — hostile never completes, and ping-pong transactions only
// abort).
func checkConsistency(t *testing.T, db *storage.DB, label string) {
	t.Helper()
	if got, want := db.Table("log").Len(), db.Table("item").Len(); got != want {
		t.Errorf("%s: log has %d rows, item has %d — recovered state is not a quiescent durable point", label, got, want)
	}
	if n := db.Table("poison").Len(); n != 0 {
		t.Errorf("%s: poison has %d rows; the hostile rule's partial effects leaked", label, n)
	}
	if n := db.Table("pong").Len(); n != 0 {
		t.Errorf("%s: pong has %d rows; a livelocked transaction leaked", label, n)
	}
}

func emptyHash(sch *schema.Schema) string {
	fp := storage.NewDB(sch).Fingerprint()
	return hex.EncodeToString(fp[:])
}

func shutdownBounded(t *testing.T, s *Server) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		t.Fatal("drain deadlocked: Shutdown did not return")
		return nil
	}
}

func TestServeSoakQuarantineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	sch, defs := soakSystem(t)
	initial := emptyHash(sch)
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spin := seed%2 == 0 // odd seeds never livelock: their reports differ
			var reports [2]string
			for run := 0; run < 2; run++ {
				fsys := wal.NewMemFS()
				in := faultinject.New(faultinject.Config{P: 0.05, Seed: seed, PanicTable: "poison"})
				s, err := New(sch, defs, "wal", Config{
					WAL:                 wal.Options{FS: fsys},
					Engine:              engine.Options{MaxSteps: 80, WrapMutator: in.Wrap},
					QuarantineThreshold: 3,
					DisableProbing:      true,
					Seed:                seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				hashes := runSoakClients(t, s, 4, spin)
				if err := shutdownBounded(t, s); err != nil {
					t.Fatalf("run %d: drain: %v", run, err)
				}

				h := s.Health()
				reports[run] = h.Report.String()
				wantQ := []string{"hostile"}
				if spin {
					wantQ = []string{"hostile", "ra", "rb"}
				}
				if got := fmt.Sprint(h.Report.Quarantined); got != fmt.Sprint(wantQ) {
					t.Errorf("run %d: quarantined = %v, want %v", run, h.Report.Quarantined, wantQ)
				}

				// Never corrupts durable state: the recovered hash is a
				// durable point the clients observed.
				db, _, err := wal.Recover("wal", sch, fsys)
				if err != nil {
					t.Fatalf("run %d: recover: %v", run, err)
				}
				fp := db.Fingerprint()
				if got := hex.EncodeToString(fp[:]); !hashes[got] && got != initial {
					t.Errorf("run %d: recovered state is not an observed durable point", run)
				}
				checkConsistency(t, db, fmt.Sprintf("run %d", run))
			}
			if reports[0] != reports[1] {
				t.Errorf("degraded-mode report is not deterministic per seed:\n--- run 0 ---\n%s--- run 1 ---\n%s",
					reports[0], reports[1])
			}
		})
	}
}

// soakConfig is the shared server configuration of the fs-fault runs.
func soakFSConfig(in *faultinject.Injector, fsys wal.FS, seed int64) Config {
	return Config{
		WAL:                 wal.Options{FS: in.WrapFS(fsys)},
		Engine:              engine.Options{MaxSteps: 80, WrapMutator: in.Wrap},
		QuarantineThreshold: 3,
		DisableProbing:      true,
		DurableRetry:        retry.Policy{Initial: time.Microsecond, Max: time.Millisecond, MaxAttempts: 5},
		Seed:                seed,
	}
}

func TestServeSoakCrashAndTransientFS(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	sch, defs := soakSystem(t)
	initial := emptyHash(sch)
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()

			// Probe run: no fs faults; counts the fs operations a full
			// graceful run performs so the fault points below aim inside
			// the workload.
			probe := faultinject.New(faultinject.Config{P: 0.05, Seed: seed, PanicTable: "poison"})
			ps, err := New(sch, defs, "wal", soakFSConfig(probe, wal.NewMemFS(), seed))
			if err != nil {
				t.Fatal(err)
			}
			openCalls := probe.FSCalls()
			runSoakClients(t, ps, 3, true)
			if err := shutdownBounded(t, ps); err != nil {
				t.Fatalf("probe drain: %v", err)
			}
			total := probe.FSCalls()
			if total <= openCalls {
				t.Fatalf("weak probe: %d fs calls total, %d at open", total, openCalls)
			}

			// Transient single fs fault mid-workload: the server reopens
			// the WAL and keeps serving; the drain completes; the
			// recovered state is consistent. (The fault can land in the
			// final checkpoint instead, in which case Shutdown reports
			// it — both outcomes must leave consistent durable state.)
			{
				fsys := wal.NewMemFS()
				in := faultinject.New(faultinject.Config{
					P: 0.05, Seed: seed, PanicTable: "poison",
					FSFailAt: openCalls + (total-openCalls)/2,
				})
				s, err := New(sch, defs, "wal", soakFSConfig(in, fsys, seed))
				if err != nil {
					t.Fatal(err)
				}
				hashes := runSoakClients(t, s, 3, true)
				_ = shutdownBounded(t, s)
				db, _, err := wal.Recover("wal", sch, fsys)
				if err != nil {
					t.Fatalf("transient: recover: %v", err)
				}
				fp := db.Fingerprint()
				if got := hex.EncodeToString(fp[:]); !hashes[got] && got != initial {
					// A commit can land durably in the instant the
					// response path then fails; the recovered state may
					// then be one commit ahead of the last observed hash.
					// Consistency (below) still must hold.
					t.Logf("transient: recovered state not among observed hashes (tolerated)")
				}
				checkConsistency(t, db, "transient")
			}

			// Simulated crashes at three points spread across the run:
			// the server fails (reopen meets ErrCrashed until the budget
			// exhausts), clients drain off with *ClosedError, Shutdown
			// still returns, and recovery from the power-lossed
			// filesystem is deterministic and consistent.
			span := total - openCalls
			for _, k := range []int{openCalls + 1, openCalls + span/2, total} {
				fsys := wal.NewMemFS()
				in := faultinject.New(faultinject.Config{
					P: 0.05, Seed: seed, PanicTable: "poison",
					FSCrashAt: k,
				})
				s, err := New(sch, defs, "wal", soakFSConfig(in, fsys, seed))
				if err != nil {
					t.Fatalf("crash at %d: New: %v", k, err)
				}
				runSoakClients(t, s, 3, true)
				_ = shutdownBounded(t, s) // a failed server still drains

				// Recovery is read-only deterministic: two passes agree,
				// and the state satisfies the workload's invariants.
				db1, _, err := wal.Recover("wal", sch, fsys)
				if err != nil {
					t.Fatalf("crash at %d: recover: %v", k, err)
				}
				db2, _, err := wal.Recover("wal", sch, fsys)
				if err != nil {
					t.Fatalf("crash at %d: second recover: %v", k, err)
				}
				if db1.Fingerprint() != db2.Fingerprint() {
					t.Errorf("crash at %d: recovery is not deterministic", k)
				}
				checkConsistency(t, db1, fmt.Sprintf("crash at %d", k))
			}
		})
	}
}
