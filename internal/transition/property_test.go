package transition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

// TestNetEffectReconstructsFinalState is the central [WF90] property:
// applying the net effect of a transition to the initial state yields
// exactly the final state, for arbitrary operation sequences. Inserted
// rows are added, deleted rows removed by value, and updated rows
// rewritten from their old to their new value.
func TestNetEffectReconstructsFinalState(t *testing.T) {
	sch := schema.MustParse("table t (a int, b int)")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDB(sch)
		// Pre-populate committed rows (not part of the transition).
		for i := 0; i < 3; i++ {
			db.MustInsert("t", storage.IntV(int64(i)), storage.IntV(rng.Int63n(5)))
		}
		initial := db.Clone()
		l := &Log{}
		live := db.Table("t").IDs()
		for i := 0; i < int(n%24); i++ {
			switch rng.Intn(3) {
			case 0:
				id := db.MustInsert("t", storage.IntV(rng.Int63n(5)), storage.IntV(rng.Int63n(5)))
				l.RecordInsert("t", id)
				live = append(live, id)
			case 1:
				if len(live) == 0 {
					continue
				}
				k := rng.Intn(len(live))
				id := live[k]
				tu := db.Table("t").Get(id)
				old := append([]storage.Value{}, tu.Vals...)
				db.Delete("t", id)
				l.RecordDelete("t", id, old)
				live = append(live[:k], live[k+1:]...)
			case 2:
				if len(live) == 0 {
					continue
				}
				id := live[rng.Intn(len(live))]
				tu := db.Table("t").Get(id)
				old := append([]storage.Value{}, tu.Vals...)
				if _, err := db.Update("t", id, "b", storage.IntV(rng.Int63n(5))); err != nil {
					return false
				}
				l.RecordUpdate("t", id, old)
			}
		}
		net := Compute(l, 0, db)

		// Replay the net effect onto the initial state.
		replay := initial.Clone()
		if tn := net.Table("t"); tn != nil {
			deleteByValue := func(row []storage.Value) bool {
				found := false
				var target storage.TupleID
				replay.Table("t").Scan(func(tu *storage.Tuple) bool {
					if rowsIdentical(tu.Vals, row) {
						target = tu.ID
						found = true
						return false
					}
					return true
				})
				if found {
					replay.Delete("t", target)
				}
				return found
			}
			for _, row := range tn.Deleted {
				if !deleteByValue(row) {
					return false // net claimed a deletion of a row not present initially
				}
			}
			for _, up := range tn.Updated {
				found := false
				var target storage.TupleID
				replay.Table("t").Scan(func(tu *storage.Tuple) bool {
					if rowsIdentical(tu.Vals, up.Old) {
						target = tu.ID
						found = true
						return false
					}
					return true
				})
				if !found {
					return false
				}
				for i, v := range up.New {
					if _, err := replay.Update("t", target, replay.Schema().Table("t").Column(i).Name, v); err != nil {
						return false
					}
				}
			}
			for _, row := range tn.Inserted {
				if _, err := replay.Insert("t", row); err != nil {
					return false
				}
			}
		}
		return replay.Fingerprint() == db.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestNetOpsSubsetOfRawOps: the net effect's operation set never invents
// operations — every net op kind appeared as a raw op on that table
// (update columns may shrink, never grow).
func TestNetOpsSubsetOfRawOps(t *testing.T) {
	sch := schema.MustParse("table t (a int, b int)")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDB(sch)
		id0 := db.MustInsert("t", storage.IntV(0), storage.IntV(0))
		l := &Log{}
		raw := schema.NewOpSet()
		live := []storage.TupleID{id0}
		for i := 0; i < int(n%16); i++ {
			switch rng.Intn(3) {
			case 0:
				id := db.MustInsert("t", storage.IntV(rng.Int63n(3)), storage.IntV(0))
				l.RecordInsert("t", id)
				raw.Add(schema.Insert("t"))
				live = append(live, id)
			case 1:
				if len(live) == 0 {
					continue
				}
				k := rng.Intn(len(live))
				tu := db.Table("t").Get(live[k])
				old := append([]storage.Value{}, tu.Vals...)
				db.Delete("t", live[k])
				l.RecordDelete("t", live[k], old)
				raw.Add(schema.Delete("t"))
				live = append(live[:k], live[k+1:]...)
			case 2:
				if len(live) == 0 {
					continue
				}
				id := live[rng.Intn(len(live))]
				tu := db.Table("t").Get(id)
				old := append([]storage.Value{}, tu.Vals...)
				db.Update("t", id, "a", storage.IntV(rng.Int63n(3)))
				l.RecordUpdate("t", id, old)
				raw.Add(schema.Update("t", "a"))
			}
		}
		for op := range Compute(l, 0, db).Ops() {
			// An insert+update composite yields (I,t): insert must have
			// been raw. A delete after update yields (D,t): delete raw.
			if !raw.Contains(op) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestComputeTableMatchesFiltered: ComputeTable agrees with filtering
// the full net effect to one table.
func TestComputeTableMatchesFiltered(t *testing.T) {
	sch := schema.MustParse("table t (a int)\ntable u (a int)")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := storage.NewDB(sch)
		l := &Log{}
		for i := 0; i < int(n%12); i++ {
			tbl := "t"
			if rng.Intn(2) == 0 {
				tbl = "u"
			}
			id := db.MustInsert(tbl, storage.IntV(rng.Int63n(4)))
			l.RecordInsert(tbl, id)
		}
		full := Compute(l, 0, db)
		part := ComputeTable(l, 0, db, "t")
		return part.TableFingerprint("t") == full.TableFingerprint("t") &&
			part.Table("u") == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
