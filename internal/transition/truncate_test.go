package transition

import (
	"testing"

	"activerules/internal/storage"
)

func TestTruncateToRestoresMarkAndLastTouch(t *testing.T) {
	db, l := fixture()
	id := doInsert(db, l, "t", storage.IntV(1), storage.IntV(10))
	mark := l.Mark()
	doUpdate(db, l, "t", id, "v", storage.IntV(20))
	doInsert(db, l, "u", storage.IntV(7))
	if l.Mark() != mark+2 {
		t.Fatalf("mark = %d, want %d", l.Mark(), mark+2)
	}

	l.TruncateTo(mark)
	if l.Mark() != mark {
		t.Errorf("mark after truncate = %d, want %d", l.Mark(), mark)
	}
	// u's only entry was truncated away; t's surviving entry is index 0.
	if got := l.LastTouch("u"); got != -1 {
		t.Errorf("LastTouch(u) = %d, want -1", got)
	}
	if got := l.LastTouch("t"); got != 0 {
		t.Errorf("LastTouch(t) = %d, want 0", got)
	}

	// The suffix net from 0 must be exactly the surviving insert.
	n := Compute(l, 0, db)
	tn := n.Table("t")
	if tn == nil || len(tn.Inserted) != 1 || len(tn.Updated) != 0 {
		t.Errorf("unexpected net after truncate: %+v", tn)
	}
	if n.Table("u") != nil {
		t.Error("truncated table u must not appear in the net")
	}
}

func TestTruncateToZeroAndNoop(t *testing.T) {
	db, l := fixture()
	doInsert(db, l, "t", storage.IntV(1), storage.IntV(10))
	l.TruncateTo(5) // beyond the end: no-op
	if l.Mark() != 1 {
		t.Errorf("mark = %d after overlong truncate", l.Mark())
	}
	l.TruncateTo(0)
	if l.Mark() != 0 || l.LastTouch("t") != -1 {
		t.Error("TruncateTo(0) must behave like Truncate")
	}
}
