// Package transition implements the net-effect transition theory of
// Widom & Finkelstein (SIGMOD 1990) that Starburst rule semantics are
// built on (Section 2 of the paper):
//
//  1. if a tuple is updated several times, only the composite update is
//     considered;
//  2. if a tuple is updated then deleted, only the deletion (of the
//     original tuple) is considered;
//  3. if a tuple is inserted then updated, this is considered as
//     inserting the updated tuple;
//  4. if a tuple is inserted then deleted, it is not considered at all.
//
// A Log records primitive operations as they execute; Compute derives the
// net effect of any suffix of the log against the current database state.
// The net effect yields both the triggering operation set (for deciding
// which rules are triggered) and the materialized transition tables
// (inserted, deleted, new-updated, old-updated) a considered rule sees.
package transition

import (
	"crypto/sha256"
	"sort"
	"strings"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

// entryKind is the primitive operation kind recorded in the log.
type entryKind int

const (
	entryInsert entryKind = iota
	entryDelete
	entryUpdate
)

// Kind classifies a primitive log entry for delta-driven triggering:
// the compiled engine tracks the last log position per (table, kind) so
// a rule's candidate bit can be cleared exactly when no unconsumed
// entry of a kind it watches remains on its table.
type Kind int

// Entry kind classes, aligned with the internal entry kinds.
const (
	KindInsert Kind = Kind(entryInsert)
	KindDelete Kind = Kind(entryDelete)
	KindUpdate Kind = Kind(entryUpdate)
)

// Entry is one primitive data modification. For deletes and updates,
// OldRow captures the full tuple value immediately before the operation,
// which is what net-effect computation needs to reconstruct the state at
// the start of any log suffix.
type Entry struct {
	kind   entryKind
	table  string
	id     storage.TupleID
	oldRow []storage.Value // delete/update only
}

// Log is an append-only record of primitive operations since the current
// rule assertion point. Positions in the log ("marks") identify the
// transition each rule has yet to see (Section 2: a rule is triggered iff
// its transition predicate holds for the composite transition since it
// was last considered).
type Log struct {
	entries []Entry
	// lastTouch[t] is the index of the most recent entry on table t,
	// letting the engine skip net-effect computation for rules whose
	// table has not changed since their mark.
	lastTouch map[string]int
	// lastKind[t][k] is the index of the most recent entry of kind k on
	// table t, or -1. A net-effect op of kind k on t can only arise from
	// a raw entry of kind k on t (see compute: net inserts need an
	// insert entry, net deletes a delete entry, net updates an update
	// entry), so LastTouchKind bounds triggering per kind.
	lastKind map[string][3]int
}

// LastTouch returns the index of the most recent entry on the table, or
// -1 if the table is untouched.
func (l *Log) LastTouch(table string) int {
	if l.lastTouch == nil {
		return -1
	}
	if i, ok := l.lastTouch[strings.ToLower(table)]; ok {
		return i
	}
	return -1
}

// LastTouchKind returns the index of the most recent entry of the given
// kind on the table, or -1 if no such entry exists.
func (l *Log) LastTouchKind(table string, k Kind) int {
	if l.lastKind == nil {
		return -1
	}
	if ks, ok := l.lastKind[strings.ToLower(table)]; ok {
		return ks[k]
	}
	return -1
}

func (l *Log) touch(table string, kind entryKind) {
	if l.lastTouch == nil {
		l.lastTouch = make(map[string]int)
		l.lastKind = make(map[string][3]int)
	}
	pos := len(l.entries)
	l.lastTouch[table] = pos
	ks, ok := l.lastKind[table]
	if !ok {
		ks = [3]int{-1, -1, -1}
	}
	ks[kind] = pos
	l.lastKind[table] = ks
}

// Mark returns the current log position.
func (l *Log) Mark() int { return len(l.entries) }

// RecordInsert records insertion of the identified tuple.
func (l *Log) RecordInsert(table string, id storage.TupleID) {
	table = strings.ToLower(table)
	l.touch(table, entryInsert)
	l.entries = append(l.entries, Entry{kind: entryInsert, table: table, id: id})
}

// RecordDelete records deletion; old is the tuple's value at deletion and
// is copied.
func (l *Log) RecordDelete(table string, id storage.TupleID, old []storage.Value) {
	table = strings.ToLower(table)
	l.touch(table, entryDelete)
	l.entries = append(l.entries, Entry{
		kind: entryDelete, table: table, id: id, oldRow: cloneRow(old)})
}

// RecordUpdate records an update; old is the full tuple value immediately
// before the update and is copied.
func (l *Log) RecordUpdate(table string, id storage.TupleID, old []storage.Value) {
	table = strings.ToLower(table)
	l.touch(table, entryUpdate)
	l.entries = append(l.entries, Entry{
		kind: entryUpdate, table: table, id: id, oldRow: cloneRow(old)})
}

// Truncate discards all entries (used at assertion-point boundaries).
func (l *Log) Truncate() {
	l.entries = l.entries[:0]
	l.lastTouch = nil
	l.lastKind = nil
}

// TruncateTo discards every entry at or after mark, returning the log to
// the state it had when Mark reported mark. The engine uses it to erase
// the recording of a failed rule action after the database savepoint has
// been rolled back.
func (l *Log) TruncateTo(mark int) {
	if mark >= len(l.entries) {
		return
	}
	if mark <= 0 {
		l.Truncate()
		return
	}
	entries := l.entries[:mark]
	l.Truncate()
	l.entries = entries
	for i, e := range l.entries {
		if l.lastTouch == nil {
			l.lastTouch = make(map[string]int)
			l.lastKind = make(map[string][3]int)
		}
		l.lastTouch[e.table] = i
		ks, ok := l.lastKind[e.table]
		if !ok {
			ks = [3]int{-1, -1, -1}
		}
		ks[e.kind] = i
		l.lastKind[e.table] = ks
	}
}

// Clone returns an independent copy of the log. Entries are immutable
// once recorded, so a shallow copy of the slice suffices.
func (l *Log) Clone() *Log {
	nl := &Log{entries: make([]Entry, len(l.entries))}
	copy(nl.entries, l.entries)
	if l.lastTouch != nil {
		nl.lastTouch = make(map[string]int, len(l.lastTouch))
		for t, i := range l.lastTouch {
			nl.lastTouch[t] = i
		}
	}
	if l.lastKind != nil {
		nl.lastKind = make(map[string][3]int, len(l.lastKind))
		for t, ks := range l.lastKind {
			nl.lastKind[t] = ks
		}
	}
	return nl
}

func cloneRow(row []storage.Value) []storage.Value {
	out := make([]storage.Value, len(row))
	copy(out, row)
	return out
}

// UpdatedPair is the old and new value of one net-updated tuple.
type UpdatedPair struct {
	Old, New []storage.Value
}

// TableNet is the net effect restricted to one table.
type TableNet struct {
	Table    string
	Inserted [][]storage.Value // final values of net-inserted tuples
	Deleted  [][]storage.Value // original values of net-deleted tuples
	Updated  []UpdatedPair     // original and final values of net-updated tuples

	// UpdatedColumns are the columns with at least one net change.
	UpdatedColumns []string
}

// Net is the net effect of a log suffix: per-table inserted, deleted, and
// updated tuples plus the induced operation set.
type Net struct {
	tables map[string]*TableNet
	order  []string // deterministic table iteration order (first touch)
}

// EmptyNet returns a net effect with no changes, shareable because Net
// is immutable after computation.
func EmptyNet() *Net { return &Net{tables: map[string]*TableNet{}} }

// Compute derives the net effect of the log suffix starting at mark,
// reading final tuple values from db (the current state). Tuples whose
// composite update is the identity are dropped entirely (no net effect).
func Compute(l *Log, mark int, db *storage.DB) *Net {
	return compute(l, mark, db, "")
}

// ComputeTable is Compute restricted to entries on one table — all a
// rule's transition predicate and transition tables ever need, and much
// cheaper when the suffix is dominated by other tables.
func ComputeTable(l *Log, mark int, db *storage.DB, table string) *Net {
	return compute(l, mark, db, strings.ToLower(table))
}

// compute derives the net effect; a non-empty only restricts to entries
// of that table.
func compute(l *Log, mark int, db *storage.DB, only string) *Net {
	type tupState struct {
		table    string
		first    entryKind
		baseline []storage.Value // value at suffix start (delete/update first ops)
		deleted  bool
	}
	states := make(map[storage.TupleID]*tupState)
	var idOrder []storage.TupleID

	for _, e := range l.entries[mark:] {
		if only != "" && e.table != only {
			continue
		}
		st, ok := states[e.id]
		if !ok {
			st = &tupState{table: e.table, first: e.kind}
			if e.kind != entryInsert {
				st.baseline = e.oldRow
			}
			states[e.id] = st
			idOrder = append(idOrder, e.id)
			if e.kind == entryDelete {
				st.deleted = true
			}
			continue
		}
		if e.kind == entryDelete {
			st.deleted = true
		}
		// Later updates need no bookkeeping: the baseline is already
		// fixed and final values come from the database.
	}

	n := &Net{tables: make(map[string]*TableNet)}
	for _, id := range idOrder {
		st := states[id]
		tn := n.tableNet(st.table)
		switch st.first {
		case entryInsert:
			if st.deleted {
				continue // rule 4: insert then delete is nothing
			}
			tu := db.Table(st.table).Get(id)
			if tu == nil {
				continue // defensive: tuple vanished without a logged delete
			}
			tn.Inserted = append(tn.Inserted, cloneRow(tu.Vals)) // rules 3: final values
		case entryUpdate:
			if st.deleted {
				tn.Deleted = append(tn.Deleted, st.baseline) // rule 2: original tuple
				continue
			}
			tu := db.Table(st.table).Get(id)
			if tu == nil {
				continue
			}
			if rowsIdentical(st.baseline, tu.Vals) {
				continue // composite update is the identity: no net effect
			}
			tn.Updated = append(tn.Updated, UpdatedPair{Old: st.baseline, New: cloneRow(tu.Vals)})
		case entryDelete:
			tn.Deleted = append(tn.Deleted, st.baseline)
		}
	}
	n.finalize(db.Schema())
	return n
}

func (n *Net) tableNet(table string) *TableNet {
	tn, ok := n.tables[table]
	if !ok {
		tn = &TableNet{Table: table}
		n.tables[table] = tn
		n.order = append(n.order, table)
	}
	return tn
}

// finalize computes UpdatedColumns and drops empty per-table nets.
func (n *Net) finalize(sch *schema.Schema) {
	var live []string
	for _, table := range n.order {
		tn := n.tables[table]
		if len(tn.Inserted) == 0 && len(tn.Deleted) == 0 && len(tn.Updated) == 0 {
			delete(n.tables, table)
			continue
		}
		def := sch.Table(table)
		changed := map[int]bool{}
		for _, up := range tn.Updated {
			for i := range up.Old {
				if !valuesIdentical(up.Old[i], up.New[i]) {
					changed[i] = true
				}
			}
		}
		cols := make([]int, 0, len(changed))
		for i := range changed {
			cols = append(cols, i)
		}
		sort.Ints(cols)
		for _, i := range cols {
			tn.UpdatedColumns = append(tn.UpdatedColumns, def.Column(i).Name)
		}
		live = append(live, table)
	}
	n.order = live
}

// Table returns the net effect for one table, or nil if the table is
// untouched.
func (n *Net) Table(table string) *TableNet { return n.tables[strings.ToLower(table)] }

// Tables returns the touched tables in first-touch order.
func (n *Net) Tables() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// IsEmpty reports whether the net effect contains no changes at all.
func (n *Net) IsEmpty() bool { return len(n.tables) == 0 }

// Ops returns the operation set induced by the net effect: (I,t) if any
// tuple was net-inserted into t, (D,t) if any was net-deleted, and
// (U,t.c) for every column c with a net change. This is the set matched
// against Triggered-By to decide rule triggering.
func (n *Net) Ops() schema.OpSet {
	out := schema.NewOpSet()
	for _, table := range n.order {
		tn := n.tables[table]
		if len(tn.Inserted) > 0 {
			out.Add(schema.Insert(table))
		}
		if len(tn.Deleted) > 0 {
			out.Add(schema.Delete(table))
		}
		for _, c := range tn.UpdatedColumns {
			out.Add(schema.Update(table, c))
		}
	}
	return out
}

// Fingerprint returns a canonical digest of the net effect, used by the
// execution-graph model checker as part of state identity (a state is a
// database plus each rule's pending transition, Section 4).
func (n *Net) Fingerprint() [32]byte {
	tables := make([]string, len(n.order))
	copy(tables, n.order)
	sort.Strings(tables)
	return n.fingerprintTables(tables)
}

// TableFingerprint digests the net effect restricted to one table. A
// rule's future behaviour depends only on its pending transition
// restricted to its own table (its transition predicate and transition
// tables both concern that table alone), so the model checker uses this
// restricted digest for per-rule state identity — matching the paper's
// (D, TR) abstraction.
func (n *Net) TableFingerprint(table string) [32]byte {
	table = strings.ToLower(table)
	if _, ok := n.tables[table]; !ok {
		return n.fingerprintTables(nil)
	}
	return n.fingerprintTables([]string{table})
}

func (n *Net) fingerprintTables(tables []string) [32]byte {
	h := sha256.New()
	for _, table := range tables {
		tn := n.tables[table]
		h.Write([]byte(table))
		h.Write([]byte{'{'})
		writeSortedRows(h, "I", tn.Inserted)
		writeSortedRows(h, "D", tn.Deleted)
		pairs := make([][]byte, len(tn.Updated))
		for i, up := range tn.Updated {
			b := encodeRow(nil, up.Old)
			b = append(b, '>')
			pairs[i] = encodeRow(b, up.New)
		}
		sort.Slice(pairs, func(i, j int) bool { return string(pairs[i]) < string(pairs[j]) })
		h.Write([]byte("U"))
		for _, p := range pairs {
			h.Write(p)
			h.Write([]byte{';'})
		}
		h.Write([]byte{'}'})
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeSortedRows(h interface{ Write([]byte) (int, error) }, tag string, rows [][]storage.Value) {
	encs := make([][]byte, len(rows))
	for i, r := range rows {
		encs[i] = encodeRow(nil, r)
	}
	sort.Slice(encs, func(i, j int) bool { return string(encs[i]) < string(encs[j]) })
	h.Write([]byte(tag))
	for _, e := range encs {
		h.Write(e)
		h.Write([]byte{';'})
	}
}

// encodeRow appends the canonical (injective) encoding of a row.
func encodeRow(b []byte, row []storage.Value) []byte {
	for _, v := range row {
		b = v.AppendCanonical(b)
		b = append(b, ',')
	}
	return b
}

// rowsIdentical compares rows by exact representation (null equals null
// here: identity, not SQL equality, is what "no net change" means).
func rowsIdentical(a, b []storage.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valuesIdentical(a[i], b[i]) {
			return false
		}
	}
	return true
}

func valuesIdentical(a, b storage.Value) bool { return a == b }
