package transition

import (
	"testing"

	"activerules/internal/schema"
	"activerules/internal/storage"
)

func fixture() (*storage.DB, *Log) {
	sch := schema.MustParse("table t (id int, v int)\ntable u (id int)")
	return storage.NewDB(sch), &Log{}
}

// doInsert / doDelete / doUpdate apply a change to the DB and record it,
// as the engine's recording mutator does.
func doInsert(db *storage.DB, l *Log, table string, vals ...storage.Value) storage.TupleID {
	id := db.MustInsert(table, vals...)
	l.RecordInsert(table, id)
	return id
}

func doDelete(db *storage.DB, l *Log, table string, id storage.TupleID) {
	tu := db.Table(table).Get(id)
	old := make([]storage.Value, len(tu.Vals))
	copy(old, tu.Vals)
	db.Delete(table, id)
	l.RecordDelete(table, id, old)
}

func doUpdate(db *storage.DB, l *Log, table string, id storage.TupleID, col string, v storage.Value) {
	tu := db.Table(table).Get(id)
	old := make([]storage.Value, len(tu.Vals))
	copy(old, tu.Vals)
	if _, err := db.Update(table, id, col, v); err != nil {
		panic(err)
	}
	l.RecordUpdate(table, id, old)
}

func TestNetRule1CompositeUpdate(t *testing.T) {
	db, l := fixture()
	id := db.MustInsert("t", storage.IntV(1), storage.IntV(10))
	mark := l.Mark()
	doUpdate(db, l, "t", id, "v", storage.IntV(20))
	doUpdate(db, l, "t", id, "v", storage.IntV(30))
	n := Compute(l, mark, db)
	tn := n.Table("t")
	if tn == nil || len(tn.Updated) != 1 {
		t.Fatalf("expected one composite update, got %+v", tn)
	}
	if tn.Updated[0].Old[1].I != 10 || tn.Updated[0].New[1].I != 30 {
		t.Errorf("composite update = %v -> %v", tn.Updated[0].Old, tn.Updated[0].New)
	}
	if got := n.Ops().String(); got != "{(U,t.v)}" {
		t.Errorf("Ops = %s", got)
	}
}

func TestNetRule2UpdateThenDelete(t *testing.T) {
	db, l := fixture()
	id := db.MustInsert("t", storage.IntV(1), storage.IntV(10))
	mark := l.Mark()
	doUpdate(db, l, "t", id, "v", storage.IntV(99))
	doDelete(db, l, "t", id)
	n := Compute(l, mark, db)
	tn := n.Table("t")
	if len(tn.Deleted) != 1 || len(tn.Updated) != 0 {
		t.Fatalf("expected only a deletion: %+v", tn)
	}
	// The deletion is of the ORIGINAL tuple.
	if tn.Deleted[0][1].I != 10 {
		t.Errorf("deleted values = %v, want original v=10", tn.Deleted[0])
	}
	if got := n.Ops().String(); got != "{(D,t)}" {
		t.Errorf("Ops = %s", got)
	}
}

func TestNetRule3InsertThenUpdate(t *testing.T) {
	db, l := fixture()
	mark := l.Mark()
	id := doInsert(db, l, "t", storage.IntV(1), storage.IntV(10))
	doUpdate(db, l, "t", id, "v", storage.IntV(42))
	n := Compute(l, mark, db)
	tn := n.Table("t")
	if len(tn.Inserted) != 1 || len(tn.Updated) != 0 {
		t.Fatalf("expected only an insertion: %+v", tn)
	}
	if tn.Inserted[0][1].I != 42 {
		t.Errorf("inserted values = %v, want updated v=42", tn.Inserted[0])
	}
	if got := n.Ops().String(); got != "{(I,t)}" {
		t.Errorf("Ops = %s", got)
	}
}

func TestNetRule4InsertThenDelete(t *testing.T) {
	db, l := fixture()
	mark := l.Mark()
	id := doInsert(db, l, "t", storage.IntV(1), storage.IntV(10))
	doDelete(db, l, "t", id)
	n := Compute(l, mark, db)
	if !n.IsEmpty() {
		t.Fatalf("insert+delete should have no net effect: %v", n.Tables())
	}
	if n.Ops().Len() != 0 {
		t.Errorf("Ops should be empty")
	}
}

func TestNetIdentityUpdateDropped(t *testing.T) {
	db, l := fixture()
	id := db.MustInsert("t", storage.IntV(1), storage.IntV(10))
	mark := l.Mark()
	doUpdate(db, l, "t", id, "v", storage.IntV(20))
	doUpdate(db, l, "t", id, "v", storage.IntV(10)) // back to original
	n := Compute(l, mark, db)
	if !n.IsEmpty() {
		t.Fatalf("identity composite update should vanish: %+v", n.Table("t"))
	}
}

func TestNetUpdatedColumns(t *testing.T) {
	db, l := fixture()
	a := db.MustInsert("t", storage.IntV(1), storage.IntV(10))
	b := db.MustInsert("t", storage.IntV(2), storage.IntV(20))
	mark := l.Mark()
	doUpdate(db, l, "t", a, "v", storage.IntV(11))
	doUpdate(db, l, "t", b, "id", storage.IntV(3))
	n := Compute(l, mark, db)
	tn := n.Table("t")
	if len(tn.UpdatedColumns) != 2 || tn.UpdatedColumns[0] != "id" || tn.UpdatedColumns[1] != "v" {
		t.Errorf("UpdatedColumns = %v", tn.UpdatedColumns)
	}
	if got := n.Ops().String(); got != "{(U,t.id), (U,t.v)}" {
		t.Errorf("Ops = %s", got)
	}
}

func TestNetSuffixSemantics(t *testing.T) {
	// A rule that has already seen the first part of the log computes its
	// net effect only over the suffix.
	db, l := fixture()
	id := doInsert(db, l, "t", storage.IntV(1), storage.IntV(10))
	mark := l.Mark() // rule considered here
	doUpdate(db, l, "t", id, "v", storage.IntV(20))
	n := Compute(l, mark, db)
	tn := n.Table("t")
	// From the suffix's viewpoint the tuple already existed: an update.
	if len(tn.Updated) != 1 || len(tn.Inserted) != 0 {
		t.Fatalf("suffix net should be an update: %+v", tn)
	}
	// From the start of the log it is an insertion of the updated tuple.
	n2 := Compute(l, 0, db)
	tn2 := n2.Table("t")
	if len(tn2.Inserted) != 1 || tn2.Inserted[0][1].I != 20 {
		t.Fatalf("full net should be insert of updated tuple: %+v", tn2)
	}
}

func TestNetMultipleTables(t *testing.T) {
	db, l := fixture()
	mark := l.Mark()
	doInsert(db, l, "t", storage.IntV(1), storage.IntV(1))
	doInsert(db, l, "u", storage.IntV(2))
	n := Compute(l, mark, db)
	if len(n.Tables()) != 2 {
		t.Fatalf("Tables = %v", n.Tables())
	}
	want := "{(I,t), (I,u)}"
	if got := n.Ops().String(); got != want {
		t.Errorf("Ops = %s, want %s", got, want)
	}
}

func TestUntriggeringScenario(t *testing.T) {
	// The untriggering case of Section 3: rule r1 is triggered by an
	// insert, but r2 deletes the inserted tuples before r1 is considered.
	// After r2's action, the composite transition has no (I,t) left.
	db, l := fixture()
	mark := l.Mark() // r1's viewpoint
	id := doInsert(db, l, "t", storage.IntV(1), storage.IntV(1))
	if !Compute(l, mark, db).Ops().Contains(schema.Insert("t")) {
		t.Fatal("r1 should initially be triggered by (I,t)")
	}
	doDelete(db, l, "t", id) // r2's action
	if Compute(l, mark, db).Ops().Contains(schema.Insert("t")) {
		t.Error("after deletion the composite transition should not contain (I,t): r1 untriggered")
	}
}

func TestFingerprintStability(t *testing.T) {
	// Same net content in different orders yields the same fingerprint.
	mk := func(reverse bool) [32]byte {
		db, l := fixture()
		mark := l.Mark()
		vals := [][]storage.Value{
			{storage.IntV(1), storage.IntV(1)},
			{storage.IntV(2), storage.IntV(2)},
		}
		if reverse {
			vals[0], vals[1] = vals[1], vals[0]
		}
		for _, v := range vals {
			doInsert(db, l, "t", v...)
		}
		return Compute(l, mark, db).Fingerprint()
	}
	if mk(false) != mk(true) {
		t.Error("fingerprint should be order-independent")
	}
	// Different content differs.
	db, l := fixture()
	mark := l.Mark()
	doInsert(db, l, "t", storage.IntV(9), storage.IntV(9))
	if Compute(l, mark, db).Fingerprint() == mk(false) {
		t.Error("different nets should have different fingerprints")
	}
	// Empty net has a stable fingerprint distinct from non-empty.
	db2, l2 := fixture()
	e1 := Compute(l2, 0, db2).Fingerprint()
	if e1 == mk(false) {
		t.Error("empty net should differ from non-empty")
	}
}

func TestFingerprintDistinguishesKind(t *testing.T) {
	// An insert of a row and a delete of the same row must not collide.
	mkIns := func() [32]byte {
		db, l := fixture()
		mark := l.Mark()
		doInsert(db, l, "t", storage.IntV(1), storage.IntV(1))
		return Compute(l, mark, db).Fingerprint()
	}
	mkDel := func() [32]byte {
		db, l := fixture()
		id := db.MustInsert("t", storage.IntV(1), storage.IntV(1))
		mark := l.Mark()
		doDelete(db, l, "t", id)
		return Compute(l, mark, db).Fingerprint()
	}
	if mkIns() == mkDel() {
		t.Error("insert net and delete net of the same row must differ")
	}
}

func TestTruncate(t *testing.T) {
	db, l := fixture()
	doInsert(db, l, "t", storage.IntV(1), storage.IntV(1))
	if l.Mark() != 1 {
		t.Fatalf("Mark = %d", l.Mark())
	}
	l.Truncate()
	if l.Mark() != 0 {
		t.Fatalf("Mark after Truncate = %d", l.Mark())
	}
	if !Compute(l, 0, db).IsEmpty() {
		t.Error("net after truncate should be empty")
	}
}
