// Package retry provides seeded, jittered exponential backoff: the
// delay sequence a Schedule emits is a pure function of its Policy and
// seed, so every component that retries — the serving layer's
// half-open quarantine probes, its durability-fault reopen loop — is
// reproducible in tests and across runs.
//
// The jitter is "equal jitter": a delay d becomes
// d*(1-Jitter) + u*d*Jitter with u drawn uniformly from the seeded
// generator. Consumers that share one logical fault domain should share
// one Schedule so the stream stays aligned with the decisions made.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrBudget reports that a schedule's MaxElapsed budget is exhausted:
// the next wait would push the cumulative emitted delay past the cap.
// Supervised loops (a cluster node's reconnect/promotion machinery)
// treat it as "stop retrying and escalate", distinct from cancellation.
var ErrBudget = errors.New("retry: elapsed budget exhausted")

// Policy shapes a backoff schedule.
type Policy struct {
	// Initial is the pre-jitter delay before the first retry; 0 means
	// 10ms.
	Initial time.Duration
	// Max caps the pre-jitter delay; 0 means 5s.
	Max time.Duration
	// Multiplier grows the delay between attempts; values below 1 mean
	// 2.0.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]. 0 disables jitter (fully deterministic even without the
	// seed); negative values mean the default of 0.5.
	Jitter float64
	// MaxAttempts bounds the total number of operation invocations Do
	// performs (first try included); values below 1 mean 3.
	MaxAttempts int
	// MaxElapsed bounds the CUMULATIVE delay a schedule may emit since
	// its creation (or last Reset): once the next delay would push the
	// running total past it, Wait refuses with ErrBudget instead of
	// sleeping, and Do stops retrying. The accounting sums the emitted
	// delays themselves — not wall-clock time — so the cutoff is a pure
	// function of policy and seed, deterministic in tests. 0 (the
	// default) means unbounded: a plain follower retries until closed.
	MaxElapsed time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Initial <= 0 {
		p.Initial = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0.5
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	return p
}

// Schedule emits the delay sequence of one Policy under one seed. It is
// not safe for concurrent use.
type Schedule struct {
	pol     Policy
	seed    int64
	rng     *rand.Rand
	attempt int
	elapsed time.Duration // sum of delays emitted since New/Reset
}

// New returns a schedule at attempt zero. Two schedules built from the
// same policy and seed emit identical delay sequences.
func New(pol Policy, seed int64) *Schedule {
	return &Schedule{pol: pol.withDefaults(), seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next retry and advances the
// schedule. The pre-jitter delay is Initial*Multiplier^attempt capped at
// Max; jitter then replaces the final Jitter fraction with a uniform
// draw from the seeded generator.
func (s *Schedule) Next() time.Duration {
	d := float64(s.pol.Initial)
	for i := 0; i < s.attempt; i++ {
		d *= s.pol.Multiplier
		if d >= float64(s.pol.Max) {
			d = float64(s.pol.Max)
			break
		}
	}
	s.attempt++
	if s.pol.Jitter > 0 {
		d = d*(1-s.pol.Jitter) + s.rng.Float64()*d*s.pol.Jitter
	}
	s.elapsed += time.Duration(d)
	return time.Duration(d)
}

// Elapsed returns the cumulative delay emitted since New or the last
// Reset — the quantity Policy.MaxElapsed bounds.
func (s *Schedule) Elapsed() time.Duration { return s.elapsed }

// Attempt returns how many delays have been emitted since the last
// Reset.
func (s *Schedule) Attempt() int { return s.attempt }

// Wait sleeps the schedule's next delay, honoring ctx: when ctx is done
// before (or, for an injected sleep, during) the wait, Wait returns
// ctx.Err() instead of nil. A nil sleep waits in real time on a timer
// that ctx interrupts immediately — a reconnect loop or half-open probe
// can never sleep past a drain deadline. An injected sleep (virtual
// time in tests) runs to completion and the context is re-checked after
// it, so a recorder that cancels the context "mid-sleep" still sees the
// cancellation honored at the attempt boundary.
// When the policy sets MaxElapsed and the next delay would push the
// cumulative emitted delay past it, Wait returns ErrBudget without
// sleeping.
func (s *Schedule) Wait(ctx context.Context, sleep func(time.Duration)) error {
	if s.pol.MaxElapsed > 0 && s.elapsed >= s.pol.MaxElapsed {
		return ErrBudget
	}
	d := s.Next()
	if s.pol.MaxElapsed > 0 && s.elapsed > s.pol.MaxElapsed {
		return ErrBudget
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if sleep == nil {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	}
	sleep(d)
	return ctx.Err()
}

// Reset rewinds the schedule to attempt zero AND re-seeds the
// generator, so a breaker that closes and later re-trips replays the
// identical delay sequence.
func (s *Schedule) Reset() {
	s.attempt = 0
	s.elapsed = 0
	s.rng = rand.New(rand.NewSource(s.seed))
}

// Do invokes op up to pol.MaxAttempts times, sleeping a jittered
// backoff between attempts. It stops early when op succeeds, when
// retryable (nil means "retry everything") rejects the error, or when
// ctx is done — whichever comes first — and returns the last error (or
// ctx.Err() on cancellation before or during a wait: the between-
// attempt sleep is interruptible, so a caller under a drain deadline is
// released the moment the deadline hits, not after the backoff runs
// out). sleep may be nil for a real-time timer; tests inject a recorder
// to run in virtual time (the context is then re-checked after each
// recorded sleep).
func Do(ctx context.Context, pol Policy, seed int64, sleep func(time.Duration), retryable func(error) bool, op func() error) error {
	pol = pol.withDefaults()
	sched := New(pol, seed)
	var err error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if cerr := sched.Wait(ctx, sleep); cerr != nil {
				if errors.Is(cerr, ErrBudget) {
					// The elapsed budget ran out between attempts: the
					// operation's own last failure is the useful error.
					return err
				}
				return cerr
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
	}
	return err
}
