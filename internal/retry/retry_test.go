package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestScheduleDeterministicPerSeed pins that the delay sequence is a
// pure function of (policy, seed): two schedules agree delay-for-delay,
// and Reset replays the identical sequence.
func TestScheduleDeterministicPerSeed(t *testing.T) {
	pol := Policy{Initial: 10 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5}
	a, b := New(pol, 42), New(pol, 42)
	var first []time.Duration
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: schedules diverge: %v vs %v", i, da, db)
		}
		first = append(first, da)
	}
	a.Reset()
	for i, want := range first {
		if got := a.Next(); got != want {
			t.Fatalf("after Reset, attempt %d = %v, want %v", i, got, want)
		}
	}
}

// TestScheduleSeedsDiffer guards against the jitter silently ignoring
// the seed: different seeds must (for this policy) produce different
// delay sequences.
func TestScheduleSeedsDiffer(t *testing.T) {
	pol := Policy{Initial: 10 * time.Millisecond, Max: time.Second, Jitter: 1}
	a, b := New(pol, 1), New(pol, 2)
	same := true
	for i := 0; i < 8; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fully-jittered schedules")
	}
}

// TestScheduleEnvelope checks the exponential envelope: with jitter J,
// every delay lies in [(1-J)*base, base] where base doubles per attempt
// until Max.
func TestScheduleEnvelope(t *testing.T) {
	pol := Policy{Initial: 8 * time.Millisecond, Max: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.25}
	s := New(pol, 7)
	base := float64(pol.Initial)
	for i := 0; i < 10; i++ {
		d := float64(s.Next())
		lo, hi := base*(1-pol.Jitter), base
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, time.Duration(d), time.Duration(lo), time.Duration(hi))
		}
		base *= 2
		if base > float64(pol.Max) {
			base = float64(pol.Max)
		}
	}
}

// TestScheduleNoJitterExact pins the exact unjittered sequence — the
// arithmetic itself, independent of any RNG.
func TestScheduleNoJitterExact(t *testing.T) {
	s := New(Policy{Initial: 5 * time.Millisecond, Max: 40 * time.Millisecond, Multiplier: 2, Jitter: 0}, 0)
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 40 * time.Millisecond,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("attempt %d = %v, want %v", i, got, w)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, Jitter: 0},
		1, func(d time.Duration) { sleeps = append(sleeps, d) }, nil,
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 || len(sleeps) != 2 {
		t.Fatalf("calls = %d (want 3), sleeps = %d (want 2)", calls, len(sleeps))
	}
}

func TestDoBoundedAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), Policy{MaxAttempts: 4}, 1,
		func(time.Duration) {}, nil,
		func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("err = %v, calls = %d; want boom after exactly 4 attempts", err, calls)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5}, 1,
		func(time.Duration) {}, func(err error) bool { return !errors.Is(err, fatal) },
		func() error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want fatal after 1 attempt", err, calls)
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 5}, 1,
		func(time.Duration) {}, nil,
		func() error { calls++; cancel(); return errors.New("transient") })
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want context.Canceled after 1 attempt", err, calls)
	}
}

// TestDoCancelledMidSleep: a cancellation arriving DURING the
// between-attempt wait is honored at the wait, with the deterministic
// schedule intact up to that point — the op never runs again. This is
// the drain-deadline shape: a reconnect loop must release the instant
// the deadline passes, not after its backoff budget.
func TestDoCancelledMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sleeps []time.Duration
	want := New(Policy{MaxAttempts: 5, Jitter: 0}, 7).Next()
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 5, Jitter: 0}, 7,
		func(d time.Duration) {
			sleeps = append(sleeps, d)
			cancel() // the deadline fires mid-sleep
		}, nil,
		func() error { calls++; return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no attempt after the cancelled wait)", calls)
	}
	if len(sleeps) != 1 || sleeps[0] != want {
		t.Fatalf("sleeps = %v, want exactly [%v] (deterministic schedule up to the cancellation)", sleeps, want)
	}
}

// TestDoRealTimerInterrupted: with a nil sleep (real time), a pending
// cancellation cuts the wait short instead of sleeping it out.
func TestDoRealTimerInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	err := Do(ctx, Policy{Initial: time.Hour, Jitter: 0, MaxAttempts: 3}, 1,
		nil, nil,
		func() error { calls++; cancel(); return errors.New("transient") })
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want context.Canceled after 1 attempt", err, calls)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Do slept %v of an hour-long backoff despite cancellation", elapsed)
	}
}

// TestScheduleWaitCancelled: Wait consumes exactly one scheduled delay
// and reports the cancellation.
func TestScheduleWaitCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(Policy{Jitter: 0}, 3)
	if err := s.Wait(ctx, func(time.Duration) { t.Fatal("slept despite cancelled ctx") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if s.Attempt() != 1 {
		t.Fatalf("Attempt = %d, want 1 (the delay was consumed)", s.Attempt())
	}
}

// TestScheduleMaxElapsedDeterministic pins the MaxElapsed cutoff as a
// pure function of (policy, seed): the budget is charged against the
// EMITTED delays, never wall-clock time, so the exact attempt at which
// Wait starts refusing with ErrBudget is reproducible.
func TestScheduleMaxElapsedDeterministic(t *testing.T) {
	pol := Policy{
		Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Multiplier: 2, Jitter: 0, MaxElapsed: 65 * time.Millisecond,
	}
	// Unjittered delays: 10, 20, 40, 80, ... cumulative 10, 30, 70.
	// The third wait (cumulative 70ms) exceeds the 65ms budget.
	s := New(pol, 3)
	noSleep := func(time.Duration) {}
	for i := 0; i < 2; i++ {
		if err := s.Wait(context.Background(), noSleep); err != nil {
			t.Fatalf("wait %d = %v, want nil", i, err)
		}
	}
	if err := s.Wait(context.Background(), noSleep); !errors.Is(err, ErrBudget) {
		t.Fatalf("third wait = %v, want ErrBudget", err)
	}
	if got := s.Elapsed(); got != 70*time.Millisecond {
		t.Errorf("Elapsed = %v, want 70ms", got)
	}
	// Exhaustion is sticky until Reset, which restores the full budget
	// and the identical delay stream.
	if err := s.Wait(context.Background(), noSleep); !errors.Is(err, ErrBudget) {
		t.Fatal("budget exhaustion must be sticky")
	}
	s.Reset()
	if err := s.Wait(context.Background(), noSleep); err != nil {
		t.Fatalf("wait after Reset = %v, want nil", err)
	}
	if got := s.Elapsed(); got != 10*time.Millisecond {
		t.Errorf("Elapsed after Reset+wait = %v, want 10ms", got)
	}

	// With jitter, two same-seed schedules exhaust at the same attempt.
	jpol := pol
	jpol.Jitter = 0.5
	a, b := New(jpol, 99), New(jpol, 99)
	for i := 0; i < 8; i++ {
		ea := a.Wait(context.Background(), noSleep)
		eb := b.Wait(context.Background(), noSleep)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("wait %d: same-seed schedules disagree: %v vs %v", i, ea, eb)
		}
	}
}

// TestDoMaxElapsed: Do stops retrying when the budget runs out and
// returns the operation's last error — the failure that matters to the
// supervised loop — not the budget sentinel.
func TestDoMaxElapsed(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	var slept time.Duration
	err := Do(context.Background(),
		Policy{Initial: 10 * time.Millisecond, Multiplier: 2, Jitter: 0,
			MaxAttempts: 100, MaxElapsed: 35 * time.Millisecond},
		1, func(d time.Duration) { slept += d }, nil,
		func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	// Delays 10, 20 fit the 35ms budget; the 40ms third delay does not:
	// exactly 3 attempts, and nothing ever slept past the budget.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if slept > 35*time.Millisecond {
		t.Fatalf("slept %v, past the 35ms budget", slept)
	}
}

// TestDoMaxElapsedUnsetUnbounded guards the default: a zero MaxElapsed
// must not bound anything (the plain follower retries until closed).
func TestDoMaxElapsedUnsetUnbounded(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 6, Jitter: 0}, 1,
		func(time.Duration) {}, nil,
		func() error { calls++; return errors.New("x") })
	if err == nil || calls != 6 {
		t.Fatalf("calls = %d (want 6), err = %v", calls, err)
	}
}
