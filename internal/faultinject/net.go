package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Network fault domain. The replication source writes one protocol
// frame per conn.Write, so counting Writes counts frames: the knobs
// below drop, duplicate, truncate, delay, or sever at exact frame
// numbers — the frame-level faults a flaky network inflicts on a WAL
// stream — and the follower's CRC/offset discipline must turn every one
// of them into a clean reconnect, never divergence.
//
// Unlike the storage and fs domains, connection writes happen on
// per-connection goroutines, so the net state carries its own mutex and
// its own seeded generator (the injector's main rng stays
// single-threaded for the engine).

// NetConfig selects which connection writes (frames) fail and how.
// Counts are 1-based across all connections wrapped by the injector.
type NetConfig struct {
	// DropAt silently swallows the Nth frame (reported as written);
	// the follower sees an offset gap and reconnects. 0 disables.
	DropAt int
	// DupAt writes the Nth frame twice; the follower must ignore the
	// duplicate. 0 disables.
	DupAt int
	// TruncAt transfers only a random prefix of the Nth frame and then
	// severs the connection — a torn frame. 0 disables.
	TruncAt int
	// SeverAt closes the connection at the Nth frame without writing
	// it. 0 disables.
	SeverAt int
	// DelayAt stalls the Nth frame by Delay before writing it.
	// 0 disables.
	DelayAt int
	// Delay is the stall for DelayAt; 0 means 1ms.
	Delay time.Duration
	// DropP drops each frame independently with this probability,
	// drawn from a generator seeded with Seed.
	DropP float64
	// Seed feeds the net domain's generator.
	Seed int64
}

// netState is the injector's shared, mutex-guarded network domain.
type netState struct {
	mu          sync.Mutex
	cfg         NetConfig
	rng         *rand.Rand
	writes      int
	faults      int
	partitioned bool
}

// ConfigureNet arms the network fault domain. Call before WrapNetConn.
func (in *Injector) ConfigureNet(cfg NetConfig) {
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	in.netMu.Lock()
	in.net = &netState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in.netMu.Unlock()
}

// NetWrites returns the number of connection writes (frames) observed.
func (in *Injector) NetWrites() int {
	in.netMu.Lock()
	defer in.netMu.Unlock()
	if in.net == nil {
		return 0
	}
	in.net.mu.Lock()
	defer in.net.mu.Unlock()
	return in.net.writes
}

// NetFaults returns the number of network faults injected.
func (in *Injector) NetFaults() int {
	in.netMu.Lock()
	defer in.netMu.Unlock()
	if in.net == nil {
		return 0
	}
	in.net.mu.Lock()
	defer in.net.mu.Unlock()
	return in.net.faults
}

// PartitionNet raises or heals a network partition on every connection
// wrapped by this injector: while partitioned, each write fails and
// closes its connection — modeling a link that has gone dark in BOTH
// directions, the symmetric-partition case a failover supervisor must
// survive without splitting the brain. Dial paths consult
// NetPartitioned so reconnects fail too until the partition heals.
// Arms the net domain if ConfigureNet has not run.
func (in *Injector) PartitionNet(on bool) {
	in.netMu.Lock()
	if in.net == nil {
		in.net = &netState{rng: rand.New(rand.NewSource(0))}
	}
	st := in.net
	in.netMu.Unlock()
	st.mu.Lock()
	st.partitioned = on
	st.mu.Unlock()
}

// NetPartitioned reports whether a partition raised by PartitionNet is
// in effect — the predicate an injectable dial hook checks.
func (in *Injector) NetPartitioned() bool {
	in.netMu.Lock()
	st := in.net
	in.netMu.Unlock()
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.partitioned
}

// WrapNetConn wraps a connection with the injector's network fault
// domain; pass the method value as the replication source's WrapConn
// hook. Connections wrapped before ConfigureNet pass writes through
// untouched.
func (in *Injector) WrapNetConn(c net.Conn) net.Conn {
	return &injConn{Conn: c, in: in}
}

// netAction is the decided fate of one frame write.
type netAction int

const (
	netPass netAction = iota
	netDrop
	netDup
	netTrunc
	netSever
	netDelay
)

// netCheck counts one frame write and decides its fate.
func (in *Injector) netCheck(size int) (netAction, int) {
	in.netMu.Lock()
	st := in.net
	in.netMu.Unlock()
	if st == nil {
		return netPass, 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.writes++
	n := st.writes
	if st.partitioned {
		st.faults++
		return netSever, 0
	}
	probabilistic := st.cfg.DropP > 0 && st.rng.Float64() < st.cfg.DropP
	switch {
	case st.cfg.SeverAt > 0 && n == st.cfg.SeverAt:
		st.faults++
		return netSever, 0
	case st.cfg.TruncAt > 0 && n == st.cfg.TruncAt:
		st.faults++
		k := 0
		if size > 0 {
			k = st.rng.Intn(size)
		}
		return netTrunc, k
	case (st.cfg.DropAt > 0 && n == st.cfg.DropAt) || probabilistic:
		st.faults++
		return netDrop, 0
	case st.cfg.DupAt > 0 && n == st.cfg.DupAt:
		st.faults++
		return netDup, 0
	case st.cfg.DelayAt > 0 && n == st.cfg.DelayAt:
		st.faults++
		return netDelay, 0
	}
	return netPass, 0
}

// injConn is the fault-injecting connection view.
type injConn struct {
	net.Conn
	in *Injector
}

func (c *injConn) Write(p []byte) (int, error) {
	act, k := c.in.netCheck(len(p))
	switch act {
	case netDrop:
		// Swallowed in flight: the sender believes it was delivered.
		return len(p), nil
	case netDup:
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		return c.Conn.Write(p)
	case netTrunc:
		n, _ := c.Conn.Write(p[:k])
		c.Conn.Close()
		return n, fmt.Errorf("%w: torn frame (%d of %d bytes)", ErrInjected, n, len(p))
	case netSever:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection severed", ErrInjected)
	case netDelay:
		c.in.netMu.Lock()
		d := time.Millisecond
		if c.in.net != nil {
			d = c.in.net.cfg.Delay
		}
		c.in.netMu.Unlock()
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}
