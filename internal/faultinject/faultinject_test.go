package faultinject

import (
	"errors"
	"testing"

	"activerules/internal/schema"
	"activerules/internal/sqlmini"
	"activerules/internal/storage"
)

func testDB(t *testing.T) *storage.DB {
	t.Helper()
	sch, err := schema.Parse("table t (v int)")
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewDB(sch)
}

func TestFailAtNthCall(t *testing.T) {
	db := testDB(t)
	in := New(Config{FailAt: 3})
	m := in.Wrap(sqlmini.DirectMutator(db))
	for i := 1; i <= 5; i++ {
		_, err := m.Insert("t", []storage.Value{storage.IntV(int64(i))})
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call 3: want injected fault, got %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if in.Calls() != 5 || in.Faults() != 1 {
		t.Errorf("calls=%d faults=%d, want 5/1", in.Calls(), in.Faults())
	}
	if db.Table("t").Len() != 4 {
		t.Errorf("failed call must not mutate: %d rows", db.Table("t").Len())
	}
}

func TestCounterSharedAcrossWraps(t *testing.T) {
	db := testDB(t)
	in := New(Config{FailAt: 2})
	m1 := in.Wrap(sqlmini.DirectMutator(db))
	m2 := in.Wrap(sqlmini.DirectMutator(db))
	if _, err := m1.Insert("t", []storage.Value{storage.IntV(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Insert("t", []storage.Value{storage.IntV(2)}); !errors.Is(err, ErrInjected) {
		t.Fatal("counter must be shared across Wrap calls")
	}
}

func TestDisarmKeepsCounting(t *testing.T) {
	db := testDB(t)
	in := New(Config{FailAt: 1})
	in.Disarm()
	m := in.Wrap(sqlmini.DirectMutator(db))
	if _, err := m.Insert("t", []storage.Value{storage.IntV(1)}); err != nil {
		t.Fatal("disarmed injector must not fault")
	}
	if in.Calls() != 1 {
		t.Errorf("calls=%d, want 1", in.Calls())
	}
	in.Arm()
	// FailAt=1 already passed while disarmed; no fault anymore.
	if _, err := m.Insert("t", []storage.Value{storage.IntV(2)}); err != nil {
		t.Fatal("missed FailAt point must not fire later")
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func() []int {
		db := testDB(t)
		in := New(Config{P: 0.3, Seed: 42})
		m := in.Wrap(sqlmini.DirectMutator(db))
		var failed []int
		for i := 0; i < 50; i++ {
			if _, err := m.Insert("t", []storage.Value{storage.IntV(int64(i))}); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("p=0.3 over 50 calls should fail some but not all: %d", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed must fail the same calls: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must fail the same calls: %v vs %v", a, b)
		}
	}
}

func TestPanicAt(t *testing.T) {
	db := testDB(t)
	in := New(Config{PanicAt: 1})
	m := in.Wrap(sqlmini.DirectMutator(db))
	defer func() {
		if recover() == nil {
			t.Error("PanicAt must panic")
		}
	}()
	m.Delete("t", 1)
}

func TestUpdateAndDeletePaths(t *testing.T) {
	db := testDB(t)
	id := db.MustInsert("t", storage.IntV(1))
	in := New(Config{FailAt: 1})
	m := in.Wrap(sqlmini.DirectMutator(db))
	if err := m.Update("t", id, "v", storage.IntV(2)); !errors.Is(err, ErrInjected) {
		t.Error("update path must inject")
	}
	in2 := New(Config{FailAt: 1})
	m2 := in2.Wrap(sqlmini.DirectMutator(db))
	if err := m2.Delete("t", id); !errors.Is(err, ErrInjected) {
		t.Error("delete path must inject")
	}
	if got := db.Table("t").Get(id); got == nil || got.Vals[0] != storage.IntV(1) {
		t.Error("injected faults must not mutate")
	}
}
