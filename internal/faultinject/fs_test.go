package faultinject_test

import (
	"errors"
	"testing"

	"activerules/internal/faultinject"
	"activerules/internal/schema"
	"activerules/internal/storage"
	"activerules/internal/wal"
)

func fsTestSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustParse("table t (v int)")
}

// writeWorkload opens a durable session on fsys and commits rows until
// an error surfaces, returning how many commits succeeded.
func writeWorkload(t *testing.T, fsys wal.FS, rows int) (committed int, err error) {
	t.Helper()
	d, err := wal.Open("w", fsTestSchema(t), wal.Options{FS: fsys})
	if err != nil {
		return 0, err
	}
	for i := 0; i < rows; i++ {
		db := d.State()
		db.SetObserver(d)
		if _, err := db.Insert("t", []storage.Value{storage.IntV(int64(i))}); err != nil {
			d.Close()
			return committed, err
		}
		if err := d.Commit(); err != nil {
			d.Close()
			return committed, err
		}
		committed++
	}
	// Close flushes and syncs: its error (the WAL's sticky error) counts.
	return committed, d.Close()
}

func TestWrapFSCountsAndFails(t *testing.T) {
	// Probe: count fs operations of a fault-free run.
	probe := faultinject.New(faultinject.Config{})
	probe.Disarm()
	if n, err := writeWorkload(t, probe.WrapFS(wal.NewMemFS()), 5); err != nil || n != 5 {
		t.Fatalf("probe: committed %d, err %v", n, err)
	}
	ops := probe.FSCalls()
	if ops < 7 { // open, initial write+sync, then write+sync per commit
		t.Fatalf("probe counted only %d fs ops", ops)
	}
	// Every single operation, failed in turn, surfaces as ErrInjected
	// somewhere in the session — never a panic, never silence.
	for k := 1; k <= ops; k++ {
		in := faultinject.New(faultinject.Config{FSFailAt: k})
		_, err := writeWorkload(t, in.WrapFS(wal.NewMemFS()), 5)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("FSFailAt=%d: err = %v, want ErrInjected", k, err)
		}
	}
}

func TestWrapFSCrashFreezesEverything(t *testing.T) {
	fsys := wal.NewMemFS()
	in := faultinject.New(faultinject.Config{FSCrashAt: 4, Seed: 1})
	wrapped := in.WrapFS(fsys)
	_, err := writeWorkload(t, wrapped, 5)
	if !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// Every subsequent operation on the wrapped fs fails too.
	if _, err := wrapped.Create("w/x"); !errors.Is(err, faultinject.ErrCrashed) {
		t.Errorf("post-crash create: %v", err)
	}
	if err := wrapped.Remove("w/x"); !errors.Is(err, faultinject.ErrCrashed) {
		t.Errorf("post-crash remove: %v", err)
	}
	// The underlying fs recovered cleanly: some committed prefix.
	if _, _, err := wal.Recover("w", fsTestSchema(t), fsys); err != nil {
		t.Errorf("recovery after crash: %v", err)
	}
}

func TestWrapFSShortWrite(t *testing.T) {
	// A short write at every write point must never corrupt recovery:
	// the torn frame is truncated away.
	for k := 1; k <= 12; k++ {
		fsys := wal.NewMemFS()
		in := faultinject.New(faultinject.Config{FSShortWriteAt: k, Seed: int64(k)})
		_, werr := writeWorkload(t, in.WrapFS(fsys), 5)
		db, _, err := wal.Recover("w", fsTestSchema(t), fsys)
		if err != nil {
			t.Fatalf("FSShortWriteAt=%d: recover: %v (workload err %v)", k, err, werr)
		}
		if db == nil {
			t.Fatalf("FSShortWriteAt=%d: nil recovered state", k)
		}
	}
}
