package faultinject

import (
	"errors"
	"fmt"
	"math/rand"

	"activerules/internal/wal"
)

// ErrCrashed is the sentinel for a simulated process crash: the
// filesystem operation at the crash point never happened, and every
// later operation on the wrapped filesystem fails with this error. The
// crash-test harness (internal/crashtest) then recovers from the
// underlying filesystem as a fresh process would.
var ErrCrashed = errors.New("faultinject: simulated crash")

// The filesystem fault knobs live in Config next to the mutation knobs
// so one seeded injector drives both fault domains — a chaos scenario
// can interleave storage faults and fs faults from a single
// deterministic stream.

// crasher is implemented by filesystems that can apply power-loss
// semantics to their own state (wal.MemFS).
type crasher interface {
	Crash(*rand.Rand)
}

// shortWriter is implemented by file handles that can apply a partial
// write (wal.MemFS handles).
type shortWriter interface {
	ShortWrite(p []byte, n int) (int, error)
}

// WrapFS returns a filesystem that delegates to fsys, injecting faults
// at the state-changing operations (Create, OpenAppend, Write, Sync,
// SyncDir, Rename, Remove, Truncate) according to the injector's FS
// configuration. Read-side operations (ReadFile, ReadDir, MkdirAll) are
// never counted or failed: they model the recovery path, which runs in
// a fresh process after the fault.
//
// The fs call counter is separate from the mutation call counter, but
// the random stream is shared: probabilistic storage and fs faults
// drawn from one seed interleave deterministically for a fixed
// workload.
func (in *Injector) WrapFS(fsys wal.FS) wal.FS {
	in.fs = fsys
	return injFS{in: in, fs: fsys}
}

// FSCalls returns the number of state-changing filesystem operations
// observed so far, including while disarmed. A fault-free probe run
// measures how many fs injection points a scenario has.
func (in *Injector) FSCalls() int { return in.fsCalls }

// Crashed reports whether the simulated crash point has been reached.
func (in *Injector) Crashed() bool { return in.crashed }

// fsCheck counts one state-changing fs operation and decides its fate:
// nil (proceed), an injected failure, or a simulated crash. The crash
// freezes the injector — all later operations fail without counting —
// and applies power-loss semantics to the wrapped filesystem when it
// supports them.
func (in *Injector) fsCheck(op, name string) error {
	if in.crashed {
		return ErrCrashed
	}
	in.fsCalls++
	probabilistic := in.cfg.FSP > 0 && in.rng.Float64() < in.cfg.FSP
	if !in.armed {
		return nil
	}
	if in.cfg.FSCrashAt > 0 && in.fsCalls == in.cfg.FSCrashAt {
		in.faults++
		in.crashed = true
		if c, ok := in.fs.(crasher); ok {
			c.Crash(in.rng)
		}
		return fmt.Errorf("%w: at %s %s (fs call %d)", ErrCrashed, op, name, in.fsCalls)
	}
	if (in.cfg.FSFailAt > 0 && in.fsCalls == in.cfg.FSFailAt) || probabilistic {
		in.faults++
		return fmt.Errorf("%w: %s %s (fs call %d)", ErrInjected, op, name, in.fsCalls)
	}
	return nil
}

// injFS is the fault-injecting filesystem view.
type injFS struct {
	in *Injector
	fs wal.FS
}

func (f injFS) MkdirAll(dir string) error { return f.fs.MkdirAll(dir) }

func (f injFS) Create(name string) (wal.File, error) {
	if err := f.in.fsCheck("create", name); err != nil {
		return nil, err
	}
	file, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return injFile{in: f.in, f: file, name: name}, nil
}

func (f injFS) OpenAppend(name string) (wal.File, error) {
	if err := f.in.fsCheck("open-append", name); err != nil {
		return nil, err
	}
	file, err := f.fs.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return injFile{in: f.in, f: file, name: name}, nil
}

func (f injFS) ReadFile(name string) ([]byte, error) { return f.fs.ReadFile(name) }

func (f injFS) Rename(oldname, newname string) error {
	if err := f.in.fsCheck("rename", newname); err != nil {
		return err
	}
	return f.fs.Rename(oldname, newname)
}

func (f injFS) Remove(name string) error {
	if err := f.in.fsCheck("remove", name); err != nil {
		return err
	}
	return f.fs.Remove(name)
}

func (f injFS) Truncate(name string, size int64) error {
	if err := f.in.fsCheck("truncate", name); err != nil {
		return err
	}
	return f.fs.Truncate(name, size)
}

func (f injFS) SyncDir(dir string) error {
	if err := f.in.fsCheck("sync-dir", dir); err != nil {
		return err
	}
	return f.fs.SyncDir(dir)
}

func (f injFS) ReadDir(dir string) ([]string, error) { return f.fs.ReadDir(dir) }

// injFile is the fault-injecting file-handle view.
type injFile struct {
	in   *Injector
	f    wal.File
	name string
}

// Write injects at write points. A crash here loses this write entirely
// (the operation "never happened"); FSShortWriteAt instead lets a
// random prefix of the buffer reach the file before the error, the
// classic torn-write shape the torn-tail rule must absorb.
func (h injFile) Write(p []byte) (int, error) {
	in := h.in
	if in.armed && !in.crashed && in.cfg.FSShortWriteAt > 0 && in.fsCalls+1 == in.cfg.FSShortWriteAt && len(p) > 0 {
		in.fsCalls++
		in.faults++
		if sw, ok := h.f.(shortWriter); ok {
			return sw.ShortWrite(p, in.rng.Intn(len(p)))
		}
		return 0, fmt.Errorf("%w: short write %s (fs call %d)", ErrInjected, h.name, in.fsCalls)
	}
	if err := in.fsCheck("write", h.name); err != nil {
		return 0, err
	}
	return h.f.Write(p)
}

func (h injFile) Sync() error {
	if err := h.in.fsCheck("fsync", h.name); err != nil {
		return err
	}
	return h.f.Sync()
}

// Close is not an injection point: the WAL treats close as best-effort
// and every interesting failure is already covered by write and fsync.
func (h injFile) Close() error { return h.f.Close() }
