package faultinject

import (
	"testing"

	"activerules/internal/storage"
)

// nullMutator applies nothing; the injector decides fate before
// delegation, which is all these tests observe.
type nullMutator struct{}

func (nullMutator) Insert(string, []storage.Value) (storage.TupleID, error) { return 1, nil }
func (nullMutator) Delete(string, storage.TupleID) error                    { return nil }
func (nullMutator) Update(string, storage.TupleID, string, storage.Value) error {
	return nil
}

// TestPanicTablePanicsEveryTouch pins the hostile-rule knob: every
// mutation on the configured table panics, on every call, while other
// tables pass through untouched.
func TestPanicTablePanicsEveryTouch(t *testing.T) {
	in := New(Config{PanicTable: "poison"})
	m := in.Wrap(nullMutator{})

	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected injected panic")
			}
		}()
		f()
	}
	for i := 0; i < 3; i++ {
		mustPanic(func() { m.Insert("poison", nil) })
		mustPanic(func() { m.Update("poison", 1, "v", storage.IntV(0)) })
		mustPanic(func() { m.Delete("poison", 1) })
	}
	if _, err := m.Insert("fine", nil); err != nil {
		t.Fatalf("untargeted table failed: %v", err)
	}
	if got := in.Faults(); got != 9 {
		t.Errorf("Faults = %d, want 9", got)
	}
}

// TestPanicTableRespectsDisarm checks a disarmed injector lets the
// poisoned table through (resume paths disarm to make progress).
func TestPanicTableRespectsDisarm(t *testing.T) {
	in := New(Config{PanicTable: "poison"})
	in.Disarm()
	m := in.Wrap(nullMutator{})
	if _, err := m.Insert("poison", nil); err != nil {
		t.Fatalf("disarmed injector injected: %v", err)
	}
	if in.Faults() != 0 {
		t.Errorf("Faults = %d, want 0", in.Faults())
	}
}
