// Package faultinject provides deterministic fault injection for the
// engine's storage mutation path. An Injector wraps the engine's
// recording mutator (via engine Options.WrapMutator) and makes chosen
// primitive mutations fail — the Nth call, or each call with a seeded
// probability — without applying them, so the partial-state scenarios a
// real storage backend can produce (a multi-row statement failing
// halfway) are reproducible in tests.
//
// The injector is deliberately single-threaded, like the engine it
// instruments. A failed call performs no mutation at all: the fault
// model is "the statement's Nth primitive operation was rejected",
// leaving every earlier operation of the same statement applied — which
// is exactly the mess the engine's action atomicity must clean up.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"activerules/internal/sqlmini"
	"activerules/internal/storage"
)

// ErrInjected is the sentinel all injected failures wrap; test code
// checks errors.Is(err, ErrInjected) to distinguish injected faults from
// genuine ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Config selects which mutations fail.
type Config struct {
	// FailAt makes the Nth mutation call (1-based, counted across the
	// injector's whole lifetime) return an error; 0 disables.
	FailAt int
	// PanicAt makes the Nth mutation call panic instead of returning an
	// error, exercising panic containment; 0 disables.
	PanicAt int
	// PanicTable makes EVERY mutation touching the named table panic —
	// a deterministically hostile rule: any rule whose action writes the
	// table fails on every consideration, which is the repeated-fault
	// shape the serving layer's quarantine breaker must trip on. Empty
	// disables.
	PanicTable string
	// P makes each mutation fail independently with this probability,
	// drawn from a deterministic generator seeded with Seed.
	P    float64
	Seed int64

	// Filesystem fault knobs, honored by WrapFS (see fs.go). The fs call
	// counter is independent of the mutation counter; the random stream
	// is shared.

	// FSFailAt makes the Nth state-changing filesystem operation
	// (1-based) fail without performing it; 0 disables.
	FSFailAt int
	// FSShortWriteAt makes the Nth filesystem operation, which must be a
	// write, transfer only a random prefix of its buffer before failing;
	// 0 disables.
	FSShortWriteAt int
	// FSCrashAt simulates a process crash at the Nth filesystem
	// operation: the operation does not happen, the wrapped filesystem
	// suffers power-loss semantics (unsynced tails torn), and every
	// later operation fails with ErrCrashed; 0 disables.
	FSCrashAt int
	// FSP makes each filesystem operation fail independently with this
	// probability.
	FSP float64
}

// Injector decides, deterministically, which mutation calls fail. One
// injector may wrap any number of mutators (the engine builds a fresh
// recording mutator per script and per rule action); the call counter
// and random stream are shared across all of them.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	calls  int
	faults int
	armed  bool

	// filesystem fault state (fs.go)
	fsCalls int
	crashed bool
	fs      any // the FS most recently passed to WrapFS

	// network fault state (net.go); guarded by netMu because
	// connection writes run on per-connection goroutines.
	netMu sync.Mutex
	net   *netState
}

// New returns an armed injector for the configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), armed: true}
}

// Wrap returns a Mutator that delegates to m, injecting faults according
// to the injector's configuration. Pass the method value in.Wrap as
// engine Options.WrapMutator.
func (in *Injector) Wrap(m sqlmini.Mutator) sqlmini.Mutator {
	return wrapped{in: in, m: m}
}

// Calls returns the number of mutation calls observed so far, including
// calls made while disarmed. A fault-free probe run with a disarmed
// injector measures how many injection points a scenario has.
func (in *Injector) Calls() int { return in.calls }

// Faults returns the number of faults injected so far.
func (in *Injector) Faults() int { return in.faults }

// Arm (re-)enables fault injection; counting continues either way.
func (in *Injector) Arm() { in.armed = true }

// Disarm stops injecting faults while keeping the call counter running,
// so a suspended engine can be resumed fault-free.
func (in *Injector) Disarm() { in.armed = false }

// check counts one mutation call and decides whether it fails.
func (in *Injector) check(op, table string) error {
	in.calls++
	// The probabilistic draw happens even when disarmed or when FailAt
	// decides first, so the random stream consumed per call is stable
	// and runs with different FailAt values stay comparable.
	probabilistic := in.cfg.P > 0 && in.rng.Float64() < in.cfg.P
	if !in.armed {
		return nil
	}
	if in.cfg.PanicTable != "" && table == in.cfg.PanicTable {
		in.faults++
		panic(fmt.Sprintf("faultinject: injected panic on table %s (%s, call %d)", table, op, in.calls))
	}
	if in.cfg.PanicAt > 0 && in.calls == in.cfg.PanicAt {
		in.faults++
		panic(fmt.Sprintf("faultinject: injected panic at %s %s (call %d)", op, table, in.calls))
	}
	if (in.cfg.FailAt > 0 && in.calls == in.cfg.FailAt) || probabilistic {
		in.faults++
		return fmt.Errorf("%w: %s %s (call %d)", ErrInjected, op, table, in.calls)
	}
	return nil
}

// wrapped is the fault-injecting mutator view.
type wrapped struct {
	in *Injector
	m  sqlmini.Mutator
}

func (w wrapped) Insert(table string, vals []storage.Value) (storage.TupleID, error) {
	if err := w.in.check("insert", table); err != nil {
		return 0, err
	}
	return w.m.Insert(table, vals)
}

func (w wrapped) Delete(table string, id storage.TupleID) error {
	if err := w.in.check("delete", table); err != nil {
		return err
	}
	return w.m.Delete(table, id)
}

func (w wrapped) Update(table string, id storage.TupleID, col string, v storage.Value) error {
	if err := w.in.check("update", table); err != nil {
		return err
	}
	return w.m.Update(table, id, col, v)
}
