// Package rules defines the Starburst production-rule model of Section 2
// and the preliminary analysis definitions of Section 3: Triggered-By,
// Performs, Triggers, Reads, Can-Untrigger, Choose, and Observable, plus
// the user-defined priority partial order P.
//
// A rule is authored as a Definition (raw SQL text plus trigger and
// priority clauses) and compiled into a Rule by NewSet, which validates
// the whole rule set against a schema and precomputes the derived sets.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"activerules/internal/schema"
	"activerules/internal/sqlmini"
)

// TriggerSpec is one triggering operation of a rule's transition
// predicate: inserted, deleted, or updated(c1, ..., cn). For OpUpdate an
// empty Columns list means "any column of the rule's table".
type TriggerSpec struct {
	Kind    schema.OpKind
	Columns []string // OpUpdate only
}

// String renders the spec in rule-definition syntax.
func (ts TriggerSpec) String() string {
	switch ts.Kind {
	case schema.OpInsert:
		return "inserted"
	case schema.OpDelete:
		return "deleted"
	case schema.OpUpdate:
		if len(ts.Columns) == 0 {
			return "updated"
		}
		return "updated(" + strings.Join(ts.Columns, ", ") + ")"
	default:
		return fmt.Sprintf("TriggerSpec(%d)", int(ts.Kind))
	}
}

// Definition is the authored form of a rule, mirroring the syntax of
// Section 2:
//
//	create rule name on table
//	when transition predicate
//	[if condition]
//	then action
//	[precedes rule-list]
//	[follows rule-list]
type Definition struct {
	Name     string
	Table    string
	Triggers []TriggerSpec
	// Condition is an SQL predicate source; empty means "no condition"
	// (always true).
	Condition string
	// Action is a sequence of SQL statement sources executed in order.
	Action []string
	// Precedes and Follows name rules this rule is ordered against.
	Precedes []string
	Follows  []string

	// Line and Col locate the rule's CREATE RULE keyword in its source
	// file (1-based); zero when the rule was built programmatically.
	Line, Col int
}

// Rule is a compiled rule: parsed and resolved condition/action plus the
// precomputed derived sets of Section 3.
type Rule struct {
	Name     string
	Table    string
	Triggers []TriggerSpec

	Condition sqlmini.Expr        // nil when the rule has no condition
	Action    []sqlmini.Statement // resolved statements

	Precedes []string // as authored (validated names)
	Follows  []string

	// Line and Col locate the rule definition in its source file
	// (1-based); zero when built programmatically.
	Line, Col int

	// Derived sets (Section 3), computed at compile time:
	triggeredBy schema.OpSet
	performs    schema.OpSet
	reads       schema.ColSet
	observable  bool

	// index is the rule's position in its Set, for deterministic
	// iteration and compact bitset-style bookkeeping.
	index int
}

// Index returns the rule's position within its Set.
func (r *Rule) Index() int { return r.index }

// TriggeredBy returns the operations in O that trigger the rule.
func (r *Rule) TriggeredBy() schema.OpSet { return r.triggeredBy }

// Performs returns the operations in O the rule's action may perform.
func (r *Rule) Performs() schema.OpSet { return r.performs }

// Reads returns the columns the rule may read in its condition or action,
// with transition-table references charged to the rule's table.
func (r *Rule) Reads() schema.ColSet { return r.reads }

// Observable reports whether the rule's action may be observable
// (contains a SELECT or ROLLBACK statement).
func (r *Rule) Observable() bool { return r.observable }

// AllowedTrans returns the transition tables this rule may reference,
// derived from its triggering operations (Section 2).
func (r *Rule) AllowedTrans() map[sqlmini.TransKind]bool {
	out := map[sqlmini.TransKind]bool{}
	for _, ts := range r.Triggers {
		switch ts.Kind {
		case schema.OpInsert:
			out[sqlmini.TransInserted] = true
		case schema.OpDelete:
			out[sqlmini.TransDeleted] = true
		case schema.OpUpdate:
			out[sqlmini.TransNewUpdated] = true
			out[sqlmini.TransOldUpdated] = true
		}
	}
	return out
}

// String renders the full rule in definition syntax.
func (r *Rule) String() string {
	var sb strings.Builder
	sb.WriteString("create rule ")
	sb.WriteString(r.Name)
	sb.WriteString(" on ")
	sb.WriteString(r.Table)
	sb.WriteString("\nwhen ")
	parts := make([]string, len(r.Triggers))
	for i, ts := range r.Triggers {
		parts[i] = ts.String()
	}
	sb.WriteString(strings.Join(parts, ", "))
	if r.Condition != nil {
		sb.WriteString("\nif ")
		sb.WriteString(r.Condition.String())
	}
	sb.WriteString("\nthen ")
	acts := make([]string, len(r.Action))
	for i, st := range r.Action {
		acts[i] = st.String()
	}
	sb.WriteString(strings.Join(acts, ";\n     "))
	if len(r.Precedes) > 0 {
		sb.WriteString("\nprecedes ")
		sb.WriteString(strings.Join(r.Precedes, ", "))
	}
	if len(r.Follows) > 0 {
		sb.WriteString("\nfollows ")
		sb.WriteString(strings.Join(r.Follows, ", "))
	}
	return sb.String()
}

// computeTriggeredBy expands the rule's trigger specs into an OpSet.
// updated with no columns expands to every column of the rule's table.
func computeTriggeredBy(table *schema.Table, specs []TriggerSpec) schema.OpSet {
	out := schema.NewOpSet()
	for _, ts := range specs {
		switch ts.Kind {
		case schema.OpInsert:
			out.Add(schema.Insert(table.Name))
		case schema.OpDelete:
			out.Add(schema.Delete(table.Name))
		case schema.OpUpdate:
			cols := ts.Columns
			if len(cols) == 0 {
				cols = table.ColumnNames()
			}
			for _, c := range cols {
				out.Add(schema.Update(table.Name, c))
			}
		}
	}
	return out
}

// SortRulesByName orders a slice of rules by name, for stable reports.
func SortRulesByName(rs []*Rule) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}

// Names returns the rule names in slice order.
func Names(rs []*Rule) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}
