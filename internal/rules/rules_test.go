package rules

import (
	"strings"
	"testing"

	"activerules/internal/schema"
)

func bankSchema() *schema.Schema {
	return schema.MustParse(`
table account (id int, owner string, balance float)
table audit   (id int, msg string)
table holds   (id int, acct int)
`)
}

// bankDefs builds a small, realistic rule set:
//
//	r_audit: log every new account          (triggered by insert on account)
//	r_hold:  place a hold on overdrawn accounts (update balance -> insert holds)
//	r_purge: drop holds of deleted accounts (delete on account -> delete holds)
//	r_guard: rollback on negative audit ids (observable)
func bankDefs() []Definition {
	return []Definition{
		{
			Name: "r_audit", Table: "account",
			Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action:   []string{"insert into audit select id, owner from inserted"},
		},
		{
			Name: "r_hold", Table: "account",
			Triggers:  []TriggerSpec{{Kind: schema.OpUpdate, Columns: []string{"balance"}}},
			Condition: "exists (select 1 from new-updated nu where nu.balance < 0)",
			Action:    []string{"insert into holds select id, id from new-updated nu where nu.balance < 0"},
		},
		{
			Name: "r_purge", Table: "account",
			Triggers: []TriggerSpec{{Kind: schema.OpDelete}},
			Action:   []string{"delete from holds where acct in (select id from deleted)"},
			Follows:  []string{"r_audit"},
		},
		{
			Name: "r_guard", Table: "audit",
			Triggers:  []TriggerSpec{{Kind: schema.OpInsert}},
			Condition: "exists (select 1 from inserted where id < 0)",
			Action:    []string{"rollback"},
			Precedes:  []string{"r_hold"},
		},
	}
}

func bankSet(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet(bankSchema(), bankDefs())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileBasics(t *testing.T) {
	s := bankSet(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	r := s.Rule("R_AUDIT") // case-insensitive
	if r == nil || r.Table != "account" {
		t.Fatal("rule lookup failed")
	}
	if got := r.TriggeredBy().String(); got != "{(I,account)}" {
		t.Errorf("TriggeredBy(r_audit) = %s", got)
	}
	if got := r.Performs().String(); got != "{(I,audit)}" {
		t.Errorf("Performs(r_audit) = %s", got)
	}
	// Reads: transition-table columns charged to account.
	if got := r.Reads().String(); got != "{account.id, account.owner}" {
		t.Errorf("Reads(r_audit) = %s", got)
	}
	if r.Observable() {
		t.Error("r_audit is not observable")
	}
	if !s.Rule("r_guard").Observable() {
		t.Error("r_guard (rollback) is observable")
	}
}

func TestTriggeredByUpdatedAllColumns(t *testing.T) {
	s, err := NewSet(bankSchema(), []Definition{{
		Name: "r", Table: "account",
		Triggers: []TriggerSpec{{Kind: schema.OpUpdate}},
		Action:   []string{"delete from holds"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Rule("r").TriggeredBy()
	if got.Len() != 3 { // one (U,account.c) per column
		t.Errorf("bare updated should expand to all columns: %s", got)
	}
}

func TestTriggersRelation(t *testing.T) {
	s := bankSet(t)
	// r_audit inserts into audit, which triggers r_guard.
	got := Names(s.Triggers(s.Rule("r_audit")))
	if len(got) != 1 || got[0] != "r_guard" {
		t.Errorf("Triggers(r_audit) = %v", got)
	}
	// r_hold inserts into holds: triggers nothing.
	if n := len(s.Triggers(s.Rule("r_hold"))); n != 0 {
		t.Errorf("Triggers(r_hold) has %d rules", n)
	}
	if !s.CanTrigger(s.Rule("r_audit"), s.Rule("r_guard")) {
		t.Error("CanTrigger(r_audit, r_guard) should hold")
	}
}

func TestCanUntrigger(t *testing.T) {
	s := bankSet(t)
	// A deletion from account can untrigger rules triggered by inserts or
	// updates on account: r_audit and r_hold.
	got := Names(s.CanUntrigger(schema.NewOpSet(schema.Delete("account"))))
	if strings.Join(got, ",") != "r_audit,r_hold" {
		t.Errorf("CanUntrigger = %v", got)
	}
	// Deletion from holds untriggering nothing (no rule triggered by holds).
	if n := len(s.CanUntrigger(schema.NewOpSet(schema.Delete("holds")))); n != 0 {
		t.Errorf("CanUntrigger(holds) = %d rules", n)
	}
	// r_purge deletes from holds; it cannot untrigger r_audit.
	if s.CanBeUntriggeredBy(s.Rule("r_audit"), s.Rule("r_purge")) {
		t.Error("r_purge cannot untrigger r_audit")
	}
}

func TestPriorities(t *testing.T) {
	s := bankSet(t)
	// r_guard precedes r_hold; r_purge follows r_audit (so r_audit higher).
	if !s.Higher(s.Rule("r_guard"), s.Rule("r_hold")) {
		t.Error("r_guard > r_hold expected")
	}
	if !s.Higher(s.Rule("r_audit"), s.Rule("r_purge")) {
		t.Error("r_audit > r_purge expected")
	}
	if s.Higher(s.Rule("r_hold"), s.Rule("r_guard")) {
		t.Error("ordering should be antisymmetric")
	}
	if !s.Unordered(s.Rule("r_audit"), s.Rule("r_hold")) {
		t.Error("r_audit and r_hold are unordered")
	}
	if s.Unordered(s.Rule("r_audit"), s.Rule("r_audit")) {
		t.Error("a rule is not unordered with itself")
	}
}

func TestTransitivePriorities(t *testing.T) {
	defs := []Definition{
		{Name: "a", Table: "audit", Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action: []string{"delete from audit"}, Precedes: []string{"b"}},
		{Name: "b", Table: "audit", Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action: []string{"delete from audit"}, Precedes: []string{"c"}},
		{Name: "c", Table: "audit", Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action: []string{"delete from audit"}},
	}
	s, err := NewSet(bankSchema(), defs)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Higher(s.Rule("a"), s.Rule("c")) {
		t.Error("transitivity: a > c")
	}
}

func TestPriorityCycleRejected(t *testing.T) {
	defs := []Definition{
		{Name: "a", Table: "audit", Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action: []string{"delete from audit"}, Precedes: []string{"b"}},
		{Name: "b", Table: "audit", Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action: []string{"delete from audit"}, Precedes: []string{"a"}},
	}
	if _, err := NewSet(bankSchema(), defs); err == nil {
		t.Error("priority cycle should be rejected")
	}
}

func TestChoose(t *testing.T) {
	s := bankSet(t)
	guard, hold, audit := s.Rule("r_guard"), s.Rule("r_hold"), s.Rule("r_audit")
	got := Names(s.Choose([]*Rule{hold, guard, audit}))
	// r_guard > r_hold, so r_hold is ineligible while r_guard is triggered.
	if strings.Join(got, ",") != "r_guard,r_audit" {
		t.Errorf("Choose = %v", got)
	}
	got2 := Names(s.Choose([]*Rule{hold, audit}))
	if strings.Join(got2, ",") != "r_hold,r_audit" {
		t.Errorf("Choose without guard = %v", got2)
	}
}

func TestUnorderedPairs(t *testing.T) {
	s := bankSet(t)
	pairs := s.UnorderedPairs()
	// 4 rules = 6 pairs; 2 ordered (guard>hold, audit>purge) => 4 unordered.
	if len(pairs) != 4 {
		t.Errorf("UnorderedPairs = %d, want 4", len(pairs))
	}
}

func TestWithOrdering(t *testing.T) {
	s := bankSet(t)
	s2, err := s.WithOrdering([2]string{"r_audit", "r_hold"})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Higher(s2.Rule("r_audit"), s2.Rule("r_hold")) {
		t.Error("added ordering missing")
	}
	if s.Higher(s.Rule("r_audit"), s.Rule("r_hold")) {
		t.Error("WithOrdering mutated the original set")
	}
	// Adding an ordering that closes a cycle is rejected.
	if _, err := s2.WithOrdering([2]string{"r_hold", "r_audit"}); err == nil {
		t.Error("cycle via WithOrdering should be rejected")
	}
	if _, err := s.WithOrdering([2]string{"nosuch", "r_hold"}); err == nil {
		t.Error("unknown rule should be rejected")
	}
	if _, err := s.WithOrdering([2]string{"r_hold", "r_hold"}); err == nil {
		t.Error("self ordering should be rejected")
	}
}

func TestObservableRulesAndWriters(t *testing.T) {
	s := bankSet(t)
	if got := Names(s.ObservableRules()); len(got) != 1 || got[0] != "r_guard" {
		t.Errorf("ObservableRules = %v", got)
	}
	if got := Names(s.Writers([]string{"HOLDS"})); strings.Join(got, ",") != "r_hold,r_purge" {
		t.Errorf("Writers(holds) = %v", got)
	}
	if got := Names(s.Writers([]string{"audit"})); strings.Join(got, ",") != "r_audit" {
		t.Errorf("Writers(audit) = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	mk := func(mod func(*Definition)) []Definition {
		d := Definition{
			Name: "r", Table: "account",
			Triggers: []TriggerSpec{{Kind: schema.OpInsert}},
			Action:   []string{"delete from holds"},
		}
		mod(&d)
		return []Definition{d}
	}
	cases := []struct {
		name string
		defs []Definition
	}{
		{"empty name", mk(func(d *Definition) { d.Name = " " })},
		{"unknown table", mk(func(d *Definition) { d.Table = "nosuch" })},
		{"no triggers", mk(func(d *Definition) { d.Triggers = nil })},
		{"bad trigger column", mk(func(d *Definition) {
			d.Triggers = []TriggerSpec{{Kind: schema.OpUpdate, Columns: []string{"nope"}}}
		})},
		{"columns on insert trigger", mk(func(d *Definition) {
			d.Triggers = []TriggerSpec{{Kind: schema.OpInsert, Columns: []string{"id"}}}
		})},
		{"duplicate insert trigger", mk(func(d *Definition) {
			d.Triggers = []TriggerSpec{{Kind: schema.OpInsert}, {Kind: schema.OpInsert}}
		})},
		{"bad condition", mk(func(d *Definition) { d.Condition = "not valid sql ((" })},
		{"condition wrong trans table", mk(func(d *Definition) {
			d.Condition = "exists (select 1 from deleted)" // insert-triggered rule
		})},
		{"no action", mk(func(d *Definition) { d.Action = nil })},
		{"bad action", mk(func(d *Definition) { d.Action = []string{"drop table holds"} })},
		{"action type error", mk(func(d *Definition) {
			d.Action = []string{"update account set balance = 'oops'"}
		})},
		{"condition type error", mk(func(d *Definition) {
			d.Condition = "(select count(*) from audit)" // int, not boolean
		})},
		{"action resolve error", mk(func(d *Definition) { d.Action = []string{"delete from nosuch"} })},
		{"unknown precedes", mk(func(d *Definition) { d.Precedes = []string{"ghost"} })},
		{"unknown follows", mk(func(d *Definition) { d.Follows = []string{"ghost"} })},
		{"self precedes", mk(func(d *Definition) { d.Precedes = []string{"r"} })},
		{"duplicate rule", append(mk(func(d *Definition) {}), mk(func(d *Definition) {})...)},
	}
	for _, c := range cases {
		if _, err := NewSet(bankSchema(), c.defs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRuleStringRendering(t *testing.T) {
	s := bankSet(t)
	out := s.Rule("r_hold").String()
	for _, want := range []string{"create rule r_hold on account", "when updated(balance)", "if exists", "then insert into holds"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	out2 := s.Rule("r_purge").String()
	if !strings.Contains(out2, "follows r_audit") {
		t.Errorf("String() missing follows clause:\n%s", out2)
	}
	if got := (TriggerSpec{Kind: schema.OpUpdate}).String(); got != "updated" {
		t.Errorf("bare updated spec = %q", got)
	}
}
