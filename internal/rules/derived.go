package rules

import (
	"strings"

	"activerules/internal/schema"
)

// Triggers computes the Triggers relationship of Section 3: all rules r'
// (possibly including r itself) that can become triggered as a result of
// r's action, i.e. Performs(r) ∩ Triggered-By(r') ≠ ∅. The result is in
// definition order.
func (s *Set) Triggers(r *Rule) []*Rule {
	var out []*Rule
	for _, r2 := range s.rules {
		if r.performs.Intersects(r2.triggeredBy) {
			out = append(out, r2)
		}
	}
	return out
}

// CanTrigger reports whether r's action can trigger r2.
func (s *Set) CanTrigger(r, r2 *Rule) bool {
	return r.performs.Intersects(r2.triggeredBy)
}

// CanUntrigger computes the Can-Untrigger set of Section 3 for a set of
// operations O': all rules that can be untriggered by O'. A rule can be
// untriggered when a deletion from its table can undo the insertions or
// updates that triggered it:
//
//	Can-Untrigger(O') = {r ∈ R | (D,t) ∈ O' and (I,t) or (U,t.c) ∈
//	                     Triggered-By(r) for some t, t.c}
func (s *Set) CanUntrigger(ops schema.OpSet) []*Rule {
	var out []*Rule
	for _, r := range s.rules {
		if s.opsCanUntrigger(ops, r) {
			out = append(out, r)
		}
	}
	return out
}

// CanBeUntriggeredBy reports whether operations of r1 can untrigger r2.
func (s *Set) CanBeUntriggeredBy(r2, r1 *Rule) bool {
	return s.opsCanUntrigger(r1.performs, r2)
}

func (s *Set) opsCanUntrigger(ops schema.OpSet, r *Rule) bool {
	for op := range ops {
		if op.Kind != schema.OpDelete {
			continue
		}
		for trig := range r.triggeredBy {
			if trig.Table != op.Table {
				continue
			}
			if trig.Kind == schema.OpInsert || trig.Kind == schema.OpUpdate {
				return true
			}
		}
	}
	return false
}

// Choose computes the Choose set of Section 3: the subset of the
// triggered rules eligible for consideration, i.e. those with no other
// triggered rule having precedence over them. The result preserves the
// order of the input slice.
func (s *Set) Choose(triggered []*Rule) []*Rule {
	var out []*Rule
	for _, ri := range triggered {
		eligible := true
		for _, rj := range triggered {
			if rj != ri && s.Higher(rj, ri) {
				eligible = false
				break
			}
		}
		if eligible {
			out = append(out, ri)
		}
	}
	return out
}

// UnorderedPairs enumerates all unordered pairs {ri, rj}, i < j by
// definition index. These are the pairs the Confluence Requirement of
// Definition 6.5 must be checked for (Observation 6.2).
func (s *Set) UnorderedPairs() [][2]*Rule {
	var out [][2]*Rule
	for i, ri := range s.rules {
		for _, rj := range s.rules[i+1:] {
			if s.Unordered(ri, rj) {
				out = append(out, [2]*Rule{ri, rj})
			}
		}
	}
	return out
}

// ObservableRules returns the rules whose actions may be observable.
func (s *Set) ObservableRules() []*Rule {
	var out []*Rule
	for _, r := range s.rules {
		if r.observable {
			out = append(out, r)
		}
	}
	return out
}

// Writers returns the rules that perform any operation on any of the
// given tables, the seed of the Sig(T') computation (Definition 7.1).
func (s *Set) Writers(tables []string) []*Rule {
	want := map[string]bool{}
	for _, t := range tables {
		want[strings.ToLower(t)] = true
	}
	var out []*Rule
	for _, r := range s.rules {
		for op := range r.performs {
			if want[op.Table] {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
