package rules

import (
	"fmt"
	"strings"

	"activerules/internal/schema"
	"activerules/internal/sqlmini"
)

// Set is a compiled, validated rule set R together with the priority
// partial order P (Section 3). Sets are immutable after construction.
type Set struct {
	sch    *schema.Schema
	rules  []*Rule
	byName map[string]*Rule

	// higher[i][j] reports ri > rj in the transitive closure of P.
	higher [][]bool
}

// NewSet compiles the definitions against the schema. It validates rule
// names, tables, trigger columns, priority references (rejecting priority
// cycles), parses and resolves conditions and actions, and precomputes
// the derived sets of Section 3.
func NewSet(sch *schema.Schema, defs []Definition) (*Set, error) {
	s := &Set{sch: sch, byName: make(map[string]*Rule, len(defs))}
	for _, def := range defs {
		r, err := compileRule(sch, def)
		if err != nil {
			return nil, err
		}
		if _, dup := s.byName[r.Name]; dup {
			return nil, fmt.Errorf("rules: duplicate rule name %q", r.Name)
		}
		r.index = len(s.rules)
		s.rules = append(s.rules, r)
		s.byName[r.Name] = r
	}
	if err := s.buildPriorities(); err != nil {
		return nil, err
	}
	return s, nil
}

func compileRule(sch *schema.Schema, def Definition) (*Rule, error) {
	name := strings.ToLower(strings.TrimSpace(def.Name))
	if name == "" {
		return nil, fmt.Errorf("rules: rule with empty name")
	}
	table := sch.Table(def.Table)
	if table == nil {
		return nil, fmt.Errorf("rules: rule %q is on unknown table %q", name, def.Table)
	}
	if len(def.Triggers) == 0 {
		return nil, fmt.Errorf("rules: rule %q has no triggering operations", name)
	}
	r := &Rule{Name: name, Table: table.Name, Line: def.Line, Col: def.Col}
	seen := map[string]bool{}
	for _, ts := range def.Triggers {
		cols := make([]string, len(ts.Columns))
		for i, c := range ts.Columns {
			c = strings.ToLower(c)
			if !table.HasColumn(c) {
				return nil, fmt.Errorf("rules: rule %q: table %q has no column %q", name, table.Name, c)
			}
			cols[i] = c
		}
		if ts.Kind != schema.OpUpdate && len(cols) > 0 {
			return nil, fmt.Errorf("rules: rule %q: %s trigger cannot list columns", name, ts.Kind)
		}
		key := ts.Kind.String()
		if ts.Kind != schema.OpUpdate {
			if seen[key] {
				return nil, fmt.Errorf("rules: rule %q: duplicate %s trigger", name, ts.Kind)
			}
			seen[key] = true
		}
		r.Triggers = append(r.Triggers, TriggerSpec{Kind: ts.Kind, Columns: cols})
	}
	r.triggeredBy = computeTriggeredBy(table, r.Triggers)

	rc := &sqlmini.ResolveContext{
		Schema:       sch,
		RuleTable:    table.Name,
		AllowedTrans: r.AllowedTrans(),
	}
	if strings.TrimSpace(def.Condition) != "" {
		cond, err := sqlmini.ParseExpr(def.Condition)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %q condition: %v", name, err)
		}
		if err := sqlmini.ResolveExpr(cond, rc); err != nil {
			return nil, fmt.Errorf("rules: rule %q condition: %v", name, err)
		}
		if err := sqlmini.CheckCondition(cond, sch); err != nil {
			return nil, fmt.Errorf("rules: rule %q condition: %v", name, err)
		}
		r.Condition = cond
	}
	if len(def.Action) == 0 {
		return nil, fmt.Errorf("rules: rule %q has no action", name)
	}
	for _, src := range def.Action {
		sts, err := sqlmini.ParseStatements(src)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %q action: %v", name, err)
		}
		for _, st := range sts {
			if err := sqlmini.ResolveStatement(st, rc); err != nil {
				return nil, fmt.Errorf("rules: rule %q action: %v", name, err)
			}
			if err := sqlmini.CheckStatement(st, sch); err != nil {
				return nil, fmt.Errorf("rules: rule %q action: %v", name, err)
			}
			r.Action = append(r.Action, st)
		}
	}

	// Derived sets: Performs, Reads, Observable (Section 3).
	r.performs = schema.NewOpSet()
	r.reads = schema.NewColSet()
	if r.Condition != nil {
		r.reads.AddAll(sqlmini.ExprReads(r.Condition, sch))
	}
	for _, st := range r.Action {
		r.performs.AddAll(sqlmini.StatementPerforms(st))
		r.reads.AddAll(sqlmini.StatementReads(st, sch))
		if sqlmini.IsObservable(st) {
			r.observable = true
		}
	}

	for _, p := range def.Precedes {
		r.Precedes = append(r.Precedes, strings.ToLower(strings.TrimSpace(p)))
	}
	for _, f := range def.Follows {
		r.Follows = append(r.Follows, strings.ToLower(strings.TrimSpace(f)))
	}
	return r, nil
}

// buildPriorities validates priority references, constructs the direct
// ordering from precedes/follows clauses, and closes it transitively,
// rejecting cycles (which would make P not a partial order).
func (s *Set) buildPriorities() error {
	n := len(s.rules)
	s.higher = make([][]bool, n)
	for i := range s.higher {
		s.higher[i] = make([]bool, n)
	}
	addEdge := func(hi, lo *Rule) {
		s.higher[hi.index][lo.index] = true
	}
	for _, r := range s.rules {
		for _, name := range r.Precedes {
			other, ok := s.byName[name]
			if !ok {
				return fmt.Errorf("rules: rule %q precedes unknown rule %q", r.Name, name)
			}
			if other == r {
				return fmt.Errorf("rules: rule %q precedes itself", r.Name)
			}
			addEdge(r, other)
		}
		for _, name := range r.Follows {
			other, ok := s.byName[name]
			if !ok {
				return fmt.Errorf("rules: rule %q follows unknown rule %q", r.Name, name)
			}
			if other == r {
				return fmt.Errorf("rules: rule %q follows itself", r.Name)
			}
			addEdge(other, r)
		}
	}
	// Transitive closure (Floyd–Warshall on the boolean matrix).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !s.higher[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if s.higher[k][j] {
					s.higher[i][j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if s.higher[i][i] {
			return fmt.Errorf("rules: priority cycle involving rule %q", s.rules[i].Name)
		}
	}
	return nil
}

// Schema returns the schema the set was compiled against.
func (s *Set) Schema() *schema.Schema { return s.sch }

// Rules returns the rules in definition order. The slice must not be
// modified.
func (s *Set) Rules() []*Rule { return s.rules }

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Rule returns the named rule, or nil.
func (s *Set) Rule(name string) *Rule { return s.byName[strings.ToLower(name)] }

// Higher reports whether ri > rj is in the transitive closure of P.
func (s *Set) Higher(ri, rj *Rule) bool { return s.higher[ri.index][rj.index] }

// Ordered reports whether ri and rj are ordered (ri > rj or rj > ri in P).
// A rule is not considered ordered with itself.
func (s *Set) Ordered(ri, rj *Rule) bool {
	return s.Higher(ri, rj) || s.Higher(rj, ri)
}

// Unordered reports whether two distinct rules have no priority ordering.
func (s *Set) Unordered(ri, rj *Rule) bool {
	return ri != rj && !s.Ordered(ri, rj)
}

// WithOrdering returns a new Set identical to s but with the additional
// direct orderings given as (higher, lower) name pairs. It is used by the
// interactive confluence workflow of Section 6.4 (Approach 2: add a
// priority between conflicting rules). The underlying rules are shared.
func (s *Set) WithOrdering(pairs ...[2]string) (*Set, error) {
	ns := &Set{sch: s.sch, rules: s.rules, byName: s.byName}
	n := len(s.rules)
	ns.higher = make([][]bool, n)
	for i := range ns.higher {
		ns.higher[i] = make([]bool, n)
		copy(ns.higher[i], s.higher[i])
	}
	for _, p := range pairs {
		hi := ns.Rule(p[0])
		lo := ns.Rule(p[1])
		if hi == nil || lo == nil {
			return nil, fmt.Errorf("rules: WithOrdering: unknown rule in pair %v", p)
		}
		if hi == lo {
			return nil, fmt.Errorf("rules: WithOrdering: rule %q cannot precede itself", p[0])
		}
		ns.higher[hi.index][lo.index] = true
	}
	// Re-close transitively and check antisymmetry.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !ns.higher[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if ns.higher[k][j] {
					ns.higher[i][j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if ns.higher[i][i] {
			return nil, fmt.Errorf("rules: WithOrdering: priority cycle involving rule %q", s.rules[i].Name)
		}
	}
	return ns, nil
}
