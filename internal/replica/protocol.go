// Package replica streams a leader's write-ahead log to followers over
// TCP. The unit of replication is the WAL byte: a follower's local log
// is an exact byte prefix of the leader's durable log for the same
// generation, so every state a follower can expose — and every state a
// promoted follower recovers to — is one the leader itself could
// recover to after a crash. The leader never ships unsynced bytes.
//
// Wire protocol. The follower opens the connection and sends one JSON
// line, the handshake: the generation, byte offset, and CRC of the log
// prefix it already holds. The leader verifies that prefix against its
// own log (a CRC mismatch means the follower's bytes diverged — e.g.
// the leader crashed and truncated an unsynced suffix the follower
// never saw, then overwrote it) and answers with a stream of binary
// frames:
//
//	snapshot 'S' | u64 gen | u32 len | u32 crc | payload
//	chunk    'C' | u64 gen | u64 off | u32 len | u32 crc | payload
//
// A snapshot frame resets the follower to the enclosed snapshot (empty
// payload: a fresh database at the given generation) and restarts its
// log at offset zero; chunk frames carry contiguous log bytes. All
// integers are big-endian; the CRC is CRC-32C over the payload. Each
// frame is written with a single conn.Write, which is what lets the
// network fault injector (internal/faultinject) drop, duplicate,
// truncate, or delay whole frames deterministically.
//
// Every fault collapses to reconnect: a dropped frame surfaces as an
// offset gap, a torn frame as a CRC or framing error, a severed
// connection as a read error — the follower drops the connection, backs
// off (internal/retry), and the next handshake resumes from its durable
// local position.
package replica

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameSnapshot = 'S'
	frameChunk    = 'C'

	// maxFramePayload bounds a frame a follower will accept; beyond it
	// the stream is considered corrupt (a torn frame whose length field
	// is garbage), and the connection is dropped.
	maxFramePayload = 64 << 20

	// maxHandshake bounds the handshake line a source will read.
	maxHandshake = 1 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// handshake is the follower's opening message: the position (and
// content CRC) of the log prefix it already holds, which the leader
// either extends or overrides with a snapshot. Gen 0 means "no local
// state — send a snapshot".
type handshake struct {
	Gen uint64 `json:"gen"`
	Off int64  `json:"off"`
	CRC uint32 `json:"crc"`
}

func writeHandshake(w io.Writer, hs handshake) error {
	b, err := json.Marshal(hs)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func readHandshake(r *bufio.Reader) (handshake, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		return handshake{}, fmt.Errorf("replica: handshake: %w", err)
	}
	if len(line) > maxHandshake {
		return handshake{}, fmt.Errorf("replica: handshake too long (%d bytes)", len(line))
	}
	var hs handshake
	if err := json.Unmarshal(line, &hs); err != nil {
		return handshake{}, fmt.Errorf("replica: handshake: %w", err)
	}
	return hs, nil
}

// snapshotFrame builds an 'S' frame. payload may be empty (fresh
// database at gen).
func snapshotFrame(gen uint64, payload []byte) []byte {
	b := make([]byte, 0, 1+8+4+4+len(payload))
	b = append(b, frameSnapshot)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// chunkFrame builds a 'C' frame carrying log bytes [off, off+len) of
// gen. A zero-length chunk is a keepalive.
func chunkFrame(gen uint64, off int64, payload []byte) []byte {
	b := make([]byte, 0, 1+8+8+4+4+len(payload))
	b = append(b, frameChunk)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint64(b, uint64(off))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// frame is one decoded leader-to-follower message.
type frame struct {
	kind    byte
	gen     uint64
	off     int64 // chunk only
	payload []byte
}

// readFrame reads and CRC-verifies one frame. Any framing damage — an
// unknown kind byte, an implausible length, a digest mismatch — is an
// error; the caller drops the connection and reconnects.
func readFrame(r *bufio.Reader) (frame, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return frame{}, err
	}
	var hdr [24]byte
	var fr frame
	fr.kind = kind
	var n, want int
	switch kind {
	case frameSnapshot:
		want = 16 // gen + len + crc
	case frameChunk:
		want = 24 // gen + off + len + crc
	default:
		return frame{}, fmt.Errorf("replica: unknown frame kind 0x%02x", kind)
	}
	if _, err := io.ReadFull(r, hdr[:want]); err != nil {
		return frame{}, err
	}
	fr.gen = binary.BigEndian.Uint64(hdr[:8])
	n = 8
	if kind == frameChunk {
		fr.off = int64(binary.BigEndian.Uint64(hdr[8:16]))
		n = 16
	}
	plen := binary.BigEndian.Uint32(hdr[n : n+4])
	sum := binary.BigEndian.Uint32(hdr[n+4 : n+8])
	if plen > maxFramePayload {
		return frame{}, fmt.Errorf("replica: frame payload %d exceeds limit", plen)
	}
	if plen > 0 {
		fr.payload = make([]byte, plen)
		if _, err := io.ReadFull(r, fr.payload); err != nil {
			return frame{}, err
		}
	}
	if got := crc32.Checksum(fr.payload, crcTable); got != sum {
		return frame{}, fmt.Errorf("replica: frame crc mismatch (got %08x want %08x)", got, sum)
	}
	return fr, nil
}
