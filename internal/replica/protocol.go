// Package replica streams a leader's write-ahead log to followers over
// TCP. The unit of replication is the WAL byte: a follower's local log
// is an exact byte prefix of the leader's durable log for the same
// generation, so every state a follower can expose — and every state a
// promoted follower recovers to — is one the leader itself could
// recover to after a crash. The leader never ships unsynced bytes.
//
// Wire protocol. The follower opens the connection and sends one JSON
// line, the handshake: the generation, byte offset, and CRC of the log
// prefix it already holds. The leader verifies that prefix against its
// own log (a CRC mismatch means the follower's bytes diverged — e.g.
// the leader crashed and truncated an unsynced suffix the follower
// never saw, then overwrote it) and answers with a stream of binary
// frames:
//
//	snapshot 'S' | u64 gen   | u32 len | u32 crc | payload
//	chunk    'C' | u64 gen   | u64 off | u32 len | u32 crc | payload
//	lease    'L' | u64 epoch | u32 ms  | u32 len | u32 crc | addr
//
// A snapshot frame resets the follower to the enclosed snapshot (empty
// payload: a fresh database at the given generation) and restarts its
// log at offset zero; chunk frames carry contiguous log bytes. All
// integers are big-endian; the CRC is CRC-32C over the payload. Each
// frame is written with a single conn.Write, which is what lets the
// network fault injector (internal/faultinject) drop, duplicate,
// truncate, or delay whole frames deterministically.
//
// Cluster extensions (internal/cluster; all absent in plain
// replication, which stays byte-identical to its pre-cluster wire
// form). The handshake carries the follower's highest observed epoch —
// a source seeing a HIGHER epoch than its own leader's knows that
// leader is deposed and must fence. A handshake with probe=true asks
// for a single lease frame and no stream: the liveness/epoch probe a
// supervisor aims at its peer. Lease frames grant/renew a leadership
// lease for the given epoch and duration, piggybacked on the
// chunk/keepalive stream; the payload is the leader's advertised client
// address (where a follower redirects clients). The follower answers
// frames with ack lines — the same JSON line shape as the handshake —
// reporting its durable position, which backs both lease renewal on the
// leader side and synchronous commit acknowledgment.
//
// Every fault collapses to reconnect: a dropped frame surfaces as an
// offset gap, a torn frame as a CRC or framing error, a severed
// connection as a read error — the follower drops the connection, backs
// off (internal/retry), and the next handshake resumes from its durable
// local position.
package replica

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"
)

const (
	frameSnapshot = 'S'
	frameChunk    = 'C'
	frameLease    = 'L'

	// maxFramePayload bounds a frame a follower will accept; beyond it
	// the stream is considered corrupt (a torn frame whose length field
	// is garbage), and the connection is dropped.
	maxFramePayload = 64 << 20

	// maxHandshake bounds the handshake line a source will read.
	maxHandshake = 1 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// handshake is the follower's opening message: the position (and
// content CRC) of the log prefix it already holds, which the leader
// either extends or overrides with a snapshot. Gen 0 means "no local
// state — send a snapshot". Epoch is the highest leadership epoch the
// sender has observed (omitted when 0, keeping the pre-cluster wire
// form); Probe asks for one lease frame instead of a stream. The same
// line shape doubles as the follower's ack message after the
// handshake: gen/off are then its durable position.
type handshake struct {
	Gen   uint64 `json:"gen"`
	Off   int64  `json:"off"`
	CRC   uint32 `json:"crc"`
	Epoch uint64 `json:"epoch,omitempty"`
	Probe bool   `json:"probe,omitempty"`
}

func writeHandshake(w io.Writer, hs handshake) error {
	b, err := json.Marshal(hs)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func readHandshake(r *bufio.Reader) (handshake, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		return handshake{}, fmt.Errorf("replica: handshake: %w", err)
	}
	if len(line) > maxHandshake {
		return handshake{}, fmt.Errorf("replica: handshake too long (%d bytes)", len(line))
	}
	var hs handshake
	if err := json.Unmarshal(line, &hs); err != nil {
		return handshake{}, fmt.Errorf("replica: handshake: %w", err)
	}
	return hs, nil
}

// snapshotFrame builds an 'S' frame. payload may be empty (fresh
// database at gen).
func snapshotFrame(gen uint64, payload []byte) []byte {
	b := make([]byte, 0, 1+8+4+4+len(payload))
	b = append(b, frameSnapshot)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// chunkFrame builds a 'C' frame carrying log bytes [off, off+len) of
// gen. A zero-length chunk is a keepalive.
func chunkFrame(gen uint64, off int64, payload []byte) []byte {
	b := make([]byte, 0, 1+8+8+4+4+len(payload))
	b = append(b, frameChunk)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint64(b, uint64(off))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// leaseFrame builds an 'L' frame granting (or renewing) a leadership
// lease: the leader's epoch, the lease duration in milliseconds, and
// the leader's advertised client address as the payload.
func leaseFrame(epoch uint64, lease time.Duration, addr string) []byte {
	payload := []byte(addr)
	b := make([]byte, 0, 1+8+4+4+4+len(payload))
	b = append(b, frameLease)
	b = binary.BigEndian.AppendUint64(b, epoch)
	b = binary.BigEndian.AppendUint32(b, uint32(lease/time.Millisecond))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// frame is one decoded leader-to-follower message.
type frame struct {
	kind    byte
	gen     uint64
	off     int64         // chunk only
	epoch   uint64        // lease only
	lease   time.Duration // lease only
	payload []byte
}

// ProbeResult is a cluster source's answer to a liveness/epoch probe.
type ProbeResult struct {
	Epoch uint64        // the probed leader's current epoch
	Lease time.Duration // its lease duration
	Addr  string        // its advertised client address
}

// Probe performs a liveness/epoch probe over an established
// connection: send a probe handshake carrying the caller's observed
// epoch, then read the single lease frame a cluster source answers
// with. The caller dials (so fault-injection dial hooks apply) and
// closes the connection.
func Probe(conn net.Conn, epoch uint64, timeout time.Duration) (ProbeResult, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := writeHandshake(conn, handshake{Probe: true, Epoch: epoch}); err != nil {
		return ProbeResult{}, err
	}
	fr, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		return ProbeResult{}, err
	}
	if fr.kind != frameLease {
		return ProbeResult{}, fmt.Errorf("replica: probe answered with frame 0x%02x, want lease", fr.kind)
	}
	return ProbeResult{Epoch: fr.epoch, Lease: fr.lease, Addr: string(fr.payload)}, nil
}

// ReadProbe reads one handshake line from c and reports whether it is
// a probe. A cluster node's probe responder — which answers epoch
// queries while the node is not leading, and so is not a full
// replication source — uses it to triage incoming connections.
func ReadProbe(c net.Conn) (bool, error) {
	hs, err := readHandshake(bufio.NewReader(c))
	if err != nil {
		return false, err
	}
	return hs.Probe, nil
}

// AnswerProbe builds the lease frame a probe answer consists of. A
// zero lease means "not leading — epoch report only".
func AnswerProbe(epoch uint64, lease time.Duration, addr string) []byte {
	return leaseFrame(epoch, lease, addr)
}

// readFrame reads and CRC-verifies one frame. Any framing damage — an
// unknown kind byte, an implausible length, a digest mismatch — is an
// error; the caller drops the connection and reconnects.
func readFrame(r *bufio.Reader) (frame, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return frame{}, err
	}
	var hdr [24]byte
	var fr frame
	fr.kind = kind
	var n, want int
	switch kind {
	case frameSnapshot:
		want = 16 // gen + len + crc
	case frameChunk:
		want = 24 // gen + off + len + crc
	case frameLease:
		want = 20 // epoch + ms + len + crc
	default:
		return frame{}, fmt.Errorf("replica: unknown frame kind 0x%02x", kind)
	}
	if _, err := io.ReadFull(r, hdr[:want]); err != nil {
		return frame{}, err
	}
	switch kind {
	case frameLease:
		fr.epoch = binary.BigEndian.Uint64(hdr[:8])
		fr.lease = time.Duration(binary.BigEndian.Uint32(hdr[8:12])) * time.Millisecond
		n = 12
	case frameChunk:
		fr.gen = binary.BigEndian.Uint64(hdr[:8])
		fr.off = int64(binary.BigEndian.Uint64(hdr[8:16]))
		n = 16
	default:
		fr.gen = binary.BigEndian.Uint64(hdr[:8])
		n = 8
	}
	plen := binary.BigEndian.Uint32(hdr[n : n+4])
	sum := binary.BigEndian.Uint32(hdr[n+4 : n+8])
	if plen > maxFramePayload {
		return frame{}, fmt.Errorf("replica: frame payload %d exceeds limit", plen)
	}
	if plen > 0 {
		fr.payload = make([]byte, plen)
		if _, err := io.ReadFull(r, fr.payload); err != nil {
			return frame{}, err
		}
	}
	if got := crc32.Checksum(fr.payload, crcTable); got != sum {
		return frame{}, fmt.Errorf("replica: frame crc mismatch (got %08x want %08x)", got, sum)
	}
	return fr, nil
}
